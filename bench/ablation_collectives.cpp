// Ablation: Quadrics hardware broadcast. Disabling it pushes
// barrier/bcast/allreduce onto pure point-to-point trees — quantifying
// how much of Fig. 12's QSN advantage comes from the Elite hardware.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

namespace {
double allreduce_us(bool hw) {
  cluster::ClusterConfig cfg{.nodes = 8, .net = cluster::Net::kQuadrics};
  cfg.tweak_elan_channel = [hw](mpi::ElanChannelConfig& c) {
    c.use_hw_bcast = hw;
  };
  cluster::Cluster c(cfg);
  double us = 0;
  c.run([&us](mpi::Comm& comm) -> sim::Task<void> {
    co_await comm.barrier();
    const int iters = 50;
    const double t0 = comm.wtime();
    for (int i = 0; i < iters; ++i) {
      co_await comm.allreduce(mpi::View::synth(0x100, 8), 1,
                              mpi::Dtype::kDouble, mpi::ROp::kSum);
    }
    co_await comm.barrier();
    if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
  });
  return us;
}
}  // namespace

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"config", "allreduce_4B_us"});
  t.row().add(std::string("hardware broadcast")).add(allreduce_us(true), 1);
  t.row().add(std::string("p2p tree only")).add(allreduce_us(false), 1);
  out.emit("Ablation: Quadrics 8-node allreduce with and without the "
           "Elite hardware broadcast",
           t);
  return 0;
}
