// Ablation: host-driven vs NIC-autonomous rendezvous progress.
//
// The paper attributes Quadrics' overlap advantage to NIC-resident
// protocol handling. Here we graft that property onto the InfiniBand
// device (as if MVAPICH had a progress thread / NIC offload) and measure
// the overlap potential with everything else unchanged.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

namespace {
double overlap_at(std::uint64_t size, bool nic_progress) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kInfiniBand};
  cfg.tweak_channel = [nic_progress](mpi::RdvChannelConfig& c) {
    c.nic_progress = nic_progress;
  };
  // Reimplement the Fig. 6 measurement inline on a tweaked cluster.
  cluster::Cluster c(cfg);
  auto round = [&](double comp_us, int iters) {
    double us = 0;
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      const int peer = 1 - comm.rank();
      const mpi::View sbuf = mpi::View::synth(0x1000000 + comm.rank(), size);
      const mpi::View rbuf = mpi::View::synth(0x2000000 + comm.rank(), size);
      co_await comm.barrier();
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        mpi::Request rreq = co_await comm.irecv(rbuf, peer, 0);
        mpi::Request sreq = co_await comm.isend(sbuf, peer, 0);
        if (comp_us > 0) co_await comm.compute(comp_us * 1e-6);
        co_await comm.wait(sreq);
        co_await comm.wait(rreq);
      }
      co_await comm.barrier();
      if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
    });
    return us;
  };
  const double base = round(0, 6);
  const double budget = base * 1.01 + 0.3;
  double lo = 0, hi = 2 * base + 600;
  if (round(hi, 6) <= budget) return hi;
  for (int i = 0; i < 20; ++i) {
    const double mid = 0.5 * (lo + hi);
    (round(mid, 6) <= budget ? lo : hi) = mid;
  }
  return lo;
}
}  // namespace

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"size", "host_driven_us", "nic_progress_us"});
  for (std::uint64_t size : {4096ull, 16384ull, 65536ull}) {
    t.row()
        .add(util::size_label(size))
        .add(overlap_at(size, false), 1)
        .add(overlap_at(size, true), 1);
  }
  out.emit("Ablation: overlap potential, InfiniBand host-driven rendezvous "
           "vs hypothetical NIC-side progress (the Quadrics property)",
           t);
  return 0;
}
