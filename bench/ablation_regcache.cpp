// Ablation: the pin-down cache. With registration made free, the
// buffer-reuse sensitivity of InfiniBand (paper Fig. 7) disappears.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"reuse_pct", "lat_us_normal", "lat_us_free_reg"});
  for (int reuse : {0, 50, 100}) {
    const double normal = microbench::buffer_reuse_latency(
        cluster::Net::kInfiniBand, {8192}, reuse)[0].value;
    // Zero-cost registration via the cluster tweak hook.
    cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kInfiniBand};
    cfg.tweak_ib = [](ib::IbConfig& c) {
      c.regcache.register_base = sim::Time::zero();
      c.regcache.register_per_page = sim::Time::zero();
      c.regcache.deregister_cost = sim::Time::zero();
    };
    cluster::Cluster c(cfg);
    double free_reg = 0;
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      const int iters = 50;
      std::uint64_t fresh = 0x9000000 + comm.rank() * 0x1000000;
      co_await comm.barrier();
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        const bool hot = (static_cast<long>(i + 1) * reuse) / 100 >
                         (static_cast<long>(i) * reuse) / 100;
        mpi::View buf =
            hot ? mpi::View::synth(0x100000 + comm.rank(), 8192)
                : mpi::View::synth(fresh += 12288, 8192);
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
      if (comm.rank() == 0) free_reg = (comm.wtime() - t0) / (2.0 * iters) * 1e6;
    });
    t.row().add(reuse).add(normal, 1).add(free_reg, 1);
  }
  out.emit("Ablation: InfiniBand 8K latency vs buffer reuse, with real "
           "vs free registration (pin-down cache relevance)",
           t);
  return 0;
}
