// Shared helpers for the per-figure/table bench binaries.
//
// Every binary prints one paper artifact: a header naming the figure or
// table, then aligned columns (or CSV with --csv). Where the paper gives
// a value, it is printed alongside ours.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"
#include "microbench/microbench.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace mns::bench {

inline const std::vector<cluster::Net> kAllNets{
    cluster::Net::kInfiniBand, cluster::Net::kMyrinet,
    cluster::Net::kQuadrics};

struct Output {
  bool csv = false;
  void emit(const std::string& title, const util::Table& t) const {
    if (csv) {
      t.print_csv(std::cout);
    } else {
      std::cout << "=== " << title << " ===\n";
      t.print(std::cout);
      std::cout << '\n';
    }
  }
};

inline Output parse_output(int argc, char** argv) {
  util::Flags flags(argc, argv);
  Output out;
  out.csv = flags.get_bool("csv", false);
  flags.reject_unknown();
  return out;
}

/// Three series (one per net) over a size sweep -> one table.
inline util::Table series_table(
    const char* value_name,
    const std::vector<std::uint64_t>& sizes,
    const std::vector<microbench::Point>& ib,
    const std::vector<microbench::Point>& my,
    const std::vector<microbench::Point>& qs, int precision = 2) {
  util::Table t({"size", std::string("IBA_") + value_name,
                 std::string("Myri_") + value_name,
                 std::string("QSN_") + value_name});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.row()
        .add(util::size_label(sizes[i]))
        .add(ib[i].value, precision)
        .add(my[i].value, precision)
        .add(qs[i].value, precision);
  }
  return t;
}

/// Run one registry app at paper scale (skeleton mode) and return the
/// simulated seconds (rank 0).
inline double run_app(const std::string& name, cluster::Net net,
                      std::size_t nodes, int ppn = 1,
                      cluster::Bus bus = cluster::Bus::kDefault) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = net, .bus = bus};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  if (!spec.ranks_ok(c.ranks())) {
    throw std::invalid_argument(name + " cannot run on " +
                                std::to_string(c.ranks()) + " ranks");
  }
  apps::AppResult r0;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    auto r = co_await spec.run_full(comm, apps::Mode::kSkeleton);
    if (comm.rank() == 0) r0 = r;
  });
  return r0.app_seconds;
}

}  // namespace mns::bench
