// Shared helpers for the per-figure/table bench binaries.
//
// Every binary prints one paper artifact: a header naming the figure or
// table, then aligned columns (or CSV with --csv). Where the paper gives
// a value, it is printed alongside ours.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "microbench/microbench.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace mns::bench {

inline const std::vector<cluster::Net> kAllNets{
    cluster::Net::kInfiniBand, cluster::Net::kMyrinet,
    cluster::Net::kQuadrics};

struct Output {
  bool csv = false;
  // --jobs N: fan independent simulation points over N threads (0 =
  // whole machine). Output is bit-identical for every N; see
  // sweep/sweep_runner.hpp.
  int jobs = 1;
  // --express: opt into the fabric's express message path for the app
  // harnesses (run_app). Wall-clock only by intent, but contended
  // collectives can shift same-instant event order and drift simulated
  // time by microseconds — published artifacts are generated without it
  // (see ClusterConfig::express).
  bool express = false;
  // --seed N / --faults SPEC: deterministic chaos harness (src/fault).
  // Published artifacts are generated without --faults; with it, packet
  // drops/corruption, link flaps, NIC stalls and registration failures
  // are injected and the per-fabric recovery protocols (and their MPI
  // degradation paths) carry the run to completion. --seed reseeds the
  // plan; the same (seed, spec, workload) always yields the same run.
  std::uint64_t seed = 1;
  fault::FaultPlan faults;  // empty unless --faults was given
  // --partitions N: PDES partition count for in-run parallelism (see
  // ClusterConfig::partitions and src/sim/pdes). 1 — the default for
  // every published artifact — is the sequential engine, byte-identical
  // to the seed outputs; N > 1 must produce the same bytes, and the
  // chaos suite enforces it.
  int partitions = 1;
  // --max-sim-time US: progress guard. A run whose simulated clock would
  // cross this horizon aborts with the watchdog's progress diagnostic on
  // stderr and exit code 3 instead of spinning forever (armed chaos
  // plans meeting misconfigured retry budgets can otherwise livelock).
  // 0 (the default) means unlimited.
  sim::Time max_sim_time = sim::Time::zero();
  void emit(const std::string& title, const util::Table& t) const {
    if (csv) {
      t.print_csv(std::cout);
    } else {
      std::cout << "=== " << title << " ===\n";
      t.print(std::cout);
      std::cout << '\n';
    }
  }
};

/// Process-wide --max-sim-time horizon, set by parse_output and consumed
/// by run_app so the guard covers every harness without threading one
/// more parameter through thirty call sites. Zero = unlimited.
inline sim::Time& guard_sim_time() {
  static sim::Time t = sim::Time::zero();
  return t;
}

inline Output parse_output(int argc, char** argv) {
  Output out;
  // CLI boundary: a malformed --seed/--faults/--jobs (or a typo'd flag)
  // prints one clear line and exits 2 — never an unhandled
  // std::invalid_argument out of main.
  const int rc = util::run_cli([&] {
    util::Flags flags(argc, argv);
    out.csv = flags.get_bool("csv", false);
    out.jobs = static_cast<int>(flags.get_int("jobs", 1));
    out.express = flags.get_bool("express", false);
    out.partitions = static_cast<int>(flags.get_int("partitions", 1));
    if (out.partitions < 1) {
      throw std::invalid_argument("--partitions must be >= 1");
    }
    const bool seed_given = flags.has("seed");
    out.seed = flags.get_uint("seed", 1);
    out.max_sim_time =
        sim::Time::us(static_cast<std::int64_t>(
            flags.get_uint("max-sim-time", 0)));
    const std::string spec = flags.get("faults", "");
    if (!spec.empty()) {
      out.faults = fault::FaultPlan::parse(spec);
      // An explicit --seed overrides a seed: clause inside the spec.
      if (seed_given) out.faults.set_seed(out.seed);
    }
    flags.reject_unknown();
    return 0;
  });
  if (rc != 0) std::exit(rc);
  guard_sim_time() = out.max_sim_time;
  return out;
}

/// Evaluate fn(net) for the three paper nets, fanned over --jobs. Each
/// call builds and runs its own private Cluster/Engine on one worker, so
/// warm-cache calibration inside a series is untouched.
template <class Fn>
auto per_net(const Output& out, Fn&& fn)
    -> std::array<std::invoke_result_t<Fn&, cluster::Net>, 3> {
  auto v = sweep::SweepRunner(out.jobs).map(kAllNets, fn);
  return {std::move(v[0]), std::move(v[1]), std::move(v[2])};
}

/// Fan fn(0) .. fn(n-1) over --jobs; results come back in index order.
template <class Fn>
auto sweep_indexed(const Output& out, std::size_t n, Fn&& fn) {
  return sweep::SweepRunner(out.jobs).run_indexed(n, std::forward<Fn>(fn));
}

/// Three series (one per net) over a size sweep -> one table.
inline util::Table series_table(
    const char* value_name,
    const std::vector<std::uint64_t>& sizes,
    const std::vector<microbench::Point>& ib,
    const std::vector<microbench::Point>& my,
    const std::vector<microbench::Point>& qs, int precision = 2) {
  util::Table t({"size", std::string("IBA_") + value_name,
                 std::string("Myri_") + value_name,
                 std::string("QSN_") + value_name});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.row()
        .add(util::size_label(sizes[i]))
        .add(ib[i].value, precision)
        .add(my[i].value, precision)
        .add(qs[i].value, precision);
  }
  return t;
}

/// series_table over a per_net() result.
inline util::Table series_table(
    const char* value_name, const std::vector<std::uint64_t>& sizes,
    const std::array<std::vector<microbench::Point>, 3>& nets,
    int precision = 2) {
  return series_table(value_name, sizes, nets[0], nets[1], nets[2],
                      precision);
}

/// Run one registry app at paper scale (skeleton mode) and return the
/// simulated seconds (rank 0).
inline double run_app(const std::string& name, cluster::Net net,
                      std::size_t nodes, int ppn = 1,
                      cluster::Bus bus = cluster::Bus::kDefault,
                      bool express = false,
                      const fault::FaultPlan& faults = {},
                      int partitions = 1) {
  // Scaling sweeps (tab02) run clusters smaller than a fixed
  // --partitions request; clamp here so one flag value covers the whole
  // sweep. The library itself stays strict (Cluster rejects
  // partitions > nodes).
  const int parts = std::min(partitions, static_cast<int>(nodes));
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = net, .bus = bus,
      .express = express, .partitions = parts, .faults = faults,
      .max_sim_time = guard_sim_time()};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  if (!spec.ranks_ok(c.ranks())) {
    throw std::invalid_argument(name + " cannot run on " +
                                std::to_string(c.ranks()) + " ranks");
  }
  apps::AppResult r0;
  try {
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      auto r = co_await spec.run_full(comm, apps::Mode::kSkeleton);
      if (comm.rank() == 0) r0 = r;
    });
  } catch (const sim::LivelockError& e) {
    // --max-sim-time guard: surface the progress diagnostic and exit
    // cleanly with a distinct code rather than letting the exception
    // unwind through a sweep worker.
    std::cerr << "--max-sim-time exceeded in " << name << " on "
              << cluster::net_name(net) << ":\n"
              << e.report() << '\n';
    std::exit(3);
  }
  return r0.app_seconds;
}

}  // namespace mns::bench
