// Calibration report: every headline micro-benchmark number next to the
// paper's measured value. Run after any model change; the calibration
// test suite asserts the same values within tolerance bands.
#include <cstdio>

#include "microbench/microbench.hpp"

using namespace mns;
using cluster::Net;
using microbench::Options;

namespace {

double at(const std::vector<microbench::Point>& pts, std::uint64_t size) {
  for (const auto& p : pts) {
    if (p.size == size) return p.value;
  }
  return -1;
}

void row(const char* what, double paper, double ours) {
  std::printf("  %-44s %9.1f %9.1f   %+6.1f%%\n", what, paper, ours,
              paper > 0 ? (ours - paper) / paper * 100.0 : 0.0);
}

}  // namespace

int main() {
  std::printf("%-46s %9s %9s %9s\n", "metric", "paper", "ours", "delta");

  const std::vector<std::uint64_t> small{4};
  const std::vector<std::uint64_t> big{1 << 20};

  row("IBA small latency (us)", 6.8, at(microbench::latency(Net::kInfiniBand, small), 4));
  row("Myri small latency (us)", 6.7, at(microbench::latency(Net::kMyrinet, small), 4));
  row("QSN small latency (us)", 4.6, at(microbench::latency(Net::kQuadrics, small), 4));

  row("IBA peak bandwidth W=16 (MB/s)", 841, at(microbench::bandwidth(Net::kInfiniBand, big), 1 << 20));
  row("Myri peak bandwidth (MB/s)", 235, at(microbench::bandwidth(Net::kMyrinet, big), 1 << 20));
  row("QSN peak bandwidth (MB/s)", 308, at(microbench::bandwidth(Net::kQuadrics, big), 1 << 20));

  row("IBA host overhead (us)", 1.7, at(microbench::host_overhead(Net::kInfiniBand, small), 4));
  row("Myri host overhead (us)", 0.8, at(microbench::host_overhead(Net::kMyrinet, small), 4));
  row("QSN host overhead (us)", 3.3, at(microbench::host_overhead(Net::kQuadrics, small), 4));

  row("IBA bidir latency (us)", 7.0, at(microbench::bidir_latency(Net::kInfiniBand, small), 4));
  row("Myri bidir latency (us)", 10.1, at(microbench::bidir_latency(Net::kMyrinet, small), 4));
  row("QSN bidir latency (us)", 7.4, at(microbench::bidir_latency(Net::kQuadrics, small), 4));

  row("IBA bidir bandwidth (MB/s)", 900, at(microbench::bidir_bandwidth(Net::kInfiniBand, big), 1 << 20));
  row("Myri bidir peak ~64-256K (MB/s)", 473, at(microbench::bidir_bandwidth(Net::kMyrinet, {64 << 10}), 64 << 10));
  row("Myri bidir 1M (MB/s, <340)", 335, at(microbench::bidir_bandwidth(Net::kMyrinet, big), 1 << 20));
  row("QSN bidir bandwidth (MB/s)", 375, at(microbench::bidir_bandwidth(Net::kQuadrics, big), 1 << 20));

  row("IBA intra latency (us)", 1.6, at(microbench::intranode_latency(Net::kInfiniBand, small), 4));
  row("Myri intra latency (us)", 1.3, at(microbench::intranode_latency(Net::kMyrinet, small), 4));
  row("QSN intra latency (us, > inter 4.6)", 6.0, at(microbench::intranode_latency(Net::kQuadrics, small), 4));
  row("IBA intra bandwidth 1M (MB/s)", 450, at(microbench::intranode_bandwidth(Net::kInfiniBand, big), 1 << 20));

  Options coll;
  coll.nodes = 8;
  row("IBA alltoall 4B (us)", 31, at(microbench::alltoall_latency(Net::kInfiniBand, small, coll), 4));
  row("Myri alltoall 4B (us)", 36, at(microbench::alltoall_latency(Net::kMyrinet, small, coll), 4));
  row("QSN alltoall 4B (us)", 67, at(microbench::alltoall_latency(Net::kQuadrics, small, coll), 4));
  row("IBA allreduce 4B (us)", 46, at(microbench::allreduce_latency(Net::kInfiniBand, small, coll), 4));
  row("Myri allreduce 4B (us)", 35, at(microbench::allreduce_latency(Net::kMyrinet, small, coll), 4));
  row("QSN allreduce 4B (us)", 28, at(microbench::allreduce_latency(Net::kQuadrics, small, coll), 4));

  Options pci;
  pci.bus = cluster::Bus::kPci66;
  row("IBA-PCI small latency (us)", 7.4, at(microbench::latency(Net::kInfiniBand, small, pci), 4));
  row("IBA-PCI bandwidth (MB/s)", 378, at(microbench::bandwidth(Net::kInfiniBand, big, pci), 1 << 20));

  const auto mem = microbench::memory_usage(Net::kInfiniBand, 8);
  row("IBA memory 2 nodes (MB)", 25, mem.front().value);
  row("IBA memory 8 nodes (MB)", 55, mem.back().value);

  return 0;
}
