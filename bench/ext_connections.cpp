// Extension (paper Section 3.8, after Wu et al.): on-demand RC connection
// management. Compares InfiniBand MPI memory footprints: static
// all-to-all connections vs connections created on first use, under an
// all-to-all application (FT) and a nearest-neighbour one (LU).
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

double footprint_mb(std::size_t nodes, bool on_demand, const char* app) {
  cluster::ClusterConfig cfg{.nodes = nodes,
                             .net = cluster::Net::kInfiniBand};
  cfg.tweak_ib = [on_demand](ib::IbConfig& c) {
    c.on_demand_connections = on_demand;
  };
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(app);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  return static_cast<double>(c.device_memory_bytes(0)) / (1 << 20);
}

}  // namespace

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"nodes", "static_MB", "ondemand_ft_MB", "ondemand_lu_MB"});
  for (std::size_t nodes : {4, 8, 16}) {
    t.row()
        .add(static_cast<std::uint64_t>(nodes))
        .add(footprint_mb(nodes, false, "ft"), 1)
        .add(footprint_mb(nodes, true, "ft"), 1)
        .add(footprint_mb(nodes, true, "lu"), 1);
  }
  out.emit("Extension: InfiniBand MPI memory footprint, static vs "
           "on-demand RC connections (Fig. 13's growth disappears for "
           "nearest-neighbour apps)",
           t);
  return 0;
}
