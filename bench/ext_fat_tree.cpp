// Extension: scalability projection beyond the paper's 16 nodes.
//
// The paper's conclusion raises (but cannot test) how these fabrics
// behave past a single switch. We project InfiniBand class-B application
// times to 32/64 nodes behind a two-level fat tree (leaf radix 8), next
// to the idealized single-crossbar numbers — showing which applications
// feel the uplink oversubscription (alltoall-heavy IS/FT) and which do
// not (nearest-neighbour LU).
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

double app_secs(const char* app, std::size_t nodes, std::size_t radix) {
  cluster::ClusterConfig cfg{.nodes = nodes,
                             .net = cluster::Net::kInfiniBand};
  cfg.tweak_ib = [radix](ib::IbConfig& c) {
    c.switch_cfg.fat_tree_radix = radix;
  };
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(app);
  apps::AppResult r0;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    auto r = co_await spec.run_full(comm, apps::Mode::kSkeleton);
    if (comm.rank() == 0) r0 = r;
  });
  return r0.app_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool big = flags.get_bool("big", false);
  Output out;
  out.csv = flags.get_bool("csv", false);
  flags.reject_unknown();
  util::Table t({"app", "nodes", "crossbar_s", "fattree8_s", "penalty_pct"});
  const std::vector<std::size_t> node_counts =
      big ? std::vector<std::size_t>{32, 64} : std::vector<std::size_t>{32};
  // 32 nodes keeps the sweep fast; pass --big for 64-node projections.
  for (const char* app : {"is", "ft", "mg", "lu"}) {
    for (std::size_t nodes : node_counts) {
      const double flat = app_secs(app, nodes, 0);
      const double tree = app_secs(app, nodes, 8);
      t.row()
          .add(std::string(app))
          .add(static_cast<std::uint64_t>(nodes))
          .add(flat, 2)
          .add(tree, 2)
          .add((tree - flat) / flat * 100.0, 1);
    }
  }
  out.emit("Extension: class-B InfiniBand beyond one switch — ideal "
           "crossbar vs 2-level fat tree (leaf radix 8)",
           t);
  return 0;
}
