// Extension (paper Section 3.7, after Kini et al.): InfiniBand collective
// fast paths over hardware multicast, vs the stock point-to-point
// algorithms. The paper stated "we are currently working along this
// direction"; this bench quantifies what that work buys.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

double collective_us(std::size_t nodes, bool mc, const char* which) {
  cluster::ClusterConfig cfg{.nodes = nodes,
                             .net = cluster::Net::kInfiniBand};
  if (mc) {
    cfg.tweak_channel = [](mpi::RdvChannelConfig& c) {
      c.hw_multicast = true;
      c.hw_bcast_overhead = sim::Time::us(5);
    };
  }
  cluster::Cluster c(cfg);
  double us = 0;
  std::string op = which;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await comm.barrier();
    const int iters = 40;
    const double t0 = comm.wtime();
    for (int i = 0; i < iters; ++i) {
      if (op == "bcast") {
        co_await comm.bcast(mpi::View::synth(0x100, 64), 0);
      } else if (op == "allreduce") {
        co_await comm.allreduce(mpi::View::synth(0x200, 8), 1,
                                mpi::Dtype::kDouble, mpi::ROp::kSum);
      } else {
        co_await comm.barrier();
      }
    }
    co_await comm.barrier();
    if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"op", "nodes", "p2p_us", "multicast_us", "speedup"});
  for (const char* op : {"bcast", "allreduce", "barrier"}) {
    for (std::size_t nodes : {8, 16}) {
      const double p2p = collective_us(nodes, false, op);
      const double mc = collective_us(nodes, true, op);
      t.row()
          .add(std::string(op))
          .add(static_cast<std::uint64_t>(nodes))
          .add(p2p, 1)
          .add(mc, 1)
          .add(p2p / mc, 2);
    }
  }
  out.emit("Extension: InfiniBand collectives, point-to-point trees vs "
           "hardware multicast (bcast/allreduce gain; barrier is gather-"
           "bound without RDMA-flag fan-in)",
           t);
  return 0;
}
