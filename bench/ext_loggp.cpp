// Extension: LogGP characterization of the three fabrics — the analysis
// the paper's related work (Bell et al., IPDPS'03) applied to the same
// interconnect generation.
#include "bench_common.hpp"
#include "microbench/logp.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"net", "o_s_us", "o_r_us", "L_us", "g_us", "G_ns_per_B"});
  for (auto net : kAllNets) {
    const auto p = microbench::extract_loggp(net);
    t.row()
        .add(std::string(cluster::net_name(net)))
        .add(p.os_us, 2)
        .add(p.or_us, 2)
        .add(p.L_us, 2)
        .add(p.g_us, 2)
        .add(p.G_ns_per_byte, 2);
  }
  out.emit("Extension: LogGP parameters extracted from the simulated "
           "fabrics (Bell et al. methodology)",
           t);
  return 0;
}
