// Paper Fig. 1: MPI ping-pong latency across the three interconnects.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 16 << 10);
  const auto [ib, my, qs] = per_net(
      out, [&](cluster::Net net) { return microbench::latency(net, sizes); });
  auto t = series_table("lat_us", sizes, ib, my, qs);
  out.emit("Fig 1: MPI latency (us) | paper smalls: IBA 6.8, Myri 6.7, QSN 4.6",
           t);
  return 0;
}
