// Paper Fig. 2: uni-directional bandwidth for window sizes 4 and 16.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 1 << 20);
  util::Table t({"size", "IBA_4", "IBA_16", "Myri_4", "Myri_16", "QSN_4",
                 "QSN_16"});
  microbench::Options w4, w16;
  w4.window = 4;
  w16.window = 16;
  // (net, window) points in column order: net outer, window inner.
  const auto cols = sweep_indexed(out, 6, [&](std::size_t i) {
    return microbench::bandwidth(kAllNets[i / 2], sizes,
                                 i % 2 == 0 ? w4 : w16);
  });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto& row = t.row().add(util::size_label(sizes[i]));
    for (const auto& c : cols) row.add(c[i].value, 1);
  }
  out.emit(
      "Fig 2: bandwidth (MB/s, MB=2^20) | paper peaks: IBA 841, Myri 235, "
      "QSN 308; IBA dips at 2K (eager->rendezvous)",
      t);
  return 0;
}
