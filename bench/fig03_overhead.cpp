// Paper Fig. 3: host overhead (sender+receiver) in the latency test.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(2, 1024);
  auto t = series_table(
      "ovh_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::host_overhead(net, sizes);
      }));
  out.emit("Fig 3: host overhead (us) | paper: Myri 0.8, IBA 1.7, QSN 3.3",
           t);
  return 0;
}
