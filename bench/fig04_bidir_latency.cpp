// Paper Fig. 4: bi-directional latency.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  auto t = series_table(
      "bidir_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::bidir_latency(net, sizes);
      }));
  out.emit(
      "Fig 4: bi-directional latency (us) | paper smalls: IBA 7.0, Myri "
      "10.1, QSN 7.4 (ours run lower for Myri/QSN; shape preserved)",
      t);
  return 0;
}
