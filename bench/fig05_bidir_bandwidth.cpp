// Paper Fig. 5: bi-directional aggregate bandwidth, window 16.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 1 << 20);
  auto t = series_table(
      "bibw_MBs", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::bidir_bandwidth(net, sizes);
      }),
      1);
  out.emit(
      "Fig 5: bi-directional bandwidth (MB/s) | paper: IBA 900 (PCI-X "
      "bound), Myri 473 dropping <340 past 256K (SRAM), QSN 375 (PCI)",
      t);
  return 0;
}
