// Paper Fig. 6: computation/communication overlap potential.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 64 << 10);
  auto t = series_table(
      "overlap_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::overlap_potential(net, sizes);
      }),
      1);
  out.emit(
      "Fig 6: overlap potential (us) | paper shape: IBA/Myri plateau at the "
      "rendezvous switch (host-driven handshake); QSN grows steadily "
      "(NIC-resident Tports matching)",
      t);
  return 0;
}
