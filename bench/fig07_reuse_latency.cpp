// Paper Fig. 7: latency under buffer reuse rates 0/50/100%.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(64, 16 << 10);
  util::Table t({"size", "IBA_0", "IBA_50", "IBA_100", "Myri_0", "Myri_50",
                 "Myri_100", "QSN_0", "QSN_50", "QSN_100"});
  // (net, reuse) points in column order: net outer, reuse inner.
  const int kReuse[] = {0, 50, 100};
  const auto cols = sweep_indexed(out, 9, [&](std::size_t i) {
    return microbench::buffer_reuse_latency(kAllNets[i / 3], sizes,
                                            kReuse[i % 3]);
  });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto& row = t.row().add(util::size_label(sizes[i]));
    for (const auto& c : cols) row.add(c[i].value, 1);
  }
  out.emit(
      "Fig 7: latency vs buffer reuse (us) | paper shape: IBA suffers >1K "
      "(registration), Myri unaffected <16K (copy-eager), QSN steep at all "
      "sizes (NIC MMU sync)",
      t);
  return 0;
}
