// Paper Fig. 9: intra-node (SMP) latency.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  auto t = series_table(
      "intra_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::intranode_latency(net, sizes);
      }));
  out.emit(
      "Fig 9: intra-node latency (us) | paper: Myri 1.3, IBA 1.6, QSN worse "
      "than its inter-node 4.6 (NIC loopback, no shm path)",
      t);
  return 0;
}
