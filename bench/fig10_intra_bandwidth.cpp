// Paper Fig. 10: intra-node (SMP) bandwidth.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 1 << 20);
  auto t = series_table(
      "intra_MBs", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::intranode_bandwidth(net, sizes);
      }),
      1);
  out.emit(
      "Fig 10: intra-node bandwidth (MB/s) | paper shape: Myri/QSN drop for "
      "large messages (cache thrashing); IBA >450 via NIC loopback",
      t);
  return 0;
}
