// Paper Fig. 11: MPI_Alltoall latency on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  auto t = series_table(
      "a2a_us", sizes,
      microbench::alltoall_latency(cluster::Net::kInfiniBand, sizes),
      microbench::alltoall_latency(cluster::Net::kMyrinet, sizes),
      microbench::alltoall_latency(cluster::Net::kQuadrics, sizes), 1);
  out.emit("Fig 11: Alltoall on 8 nodes (us) | paper smalls: IBA 31, Myri "
           "36, QSN 67",
           t);
  return 0;
}
