// Paper Fig. 11: MPI_Alltoall latency on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  auto t = series_table(
      "a2a_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::alltoall_latency(net, sizes);
      }),
      1);
  out.emit("Fig 11: Alltoall on 8 nodes (us) | paper smalls: IBA 31, Myri "
           "36, QSN 67",
           t);
  return 0;
}
