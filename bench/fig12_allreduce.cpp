// Paper Fig. 12: MPI_Allreduce latency on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  auto t = series_table(
      "ar_us", sizes,
      per_net(out, [&](cluster::Net net) {
        return microbench::allreduce_latency(net, sizes);
      }),
      1);
  out.emit("Fig 12: Allreduce on 8 nodes (us) | paper smalls: QSN 28 "
           "(hardware bcast), Myri 35, IBA 46",
           t);
  return 0;
}
