// Paper Fig. 13: MPI memory usage of a barrier program vs node count.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"nodes", "IBA_MB", "Myri_MB", "QSN_MB"});
  const auto [ib, my, qs] = per_net(
      out, [&](cluster::Net net) { return microbench::memory_usage(net, 8); });
  for (std::size_t i = 0; i < ib.size(); ++i) {
    t.row()
        .add(ib[i].size)
        .add(ib[i].value, 1)
        .add(my[i].value, 1)
        .add(qs[i].value, 1);
  }
  out.emit("Fig 13: MPI memory usage (MB) | paper: IBA grows with nodes "
           "(RC connections), Myri/QSN flat",
           t);
  return 0;
}
