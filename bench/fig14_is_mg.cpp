// Paper Fig. 14: IS and MG class-B execution time on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "IBA_s", "Myri_s", "QSN_s", "paper_IBA", "paper_Myri",
                 "paper_QSN"});
  struct Row { const char* app; double ib, my, qs; };
  for (Row r : {Row{"IS", 1.78, 2.89, 2.47}, Row{"MG", 5.81, 6.29, 6.04}}) {
    const std::string app = r.app == std::string("IS") ? "is" : "mg";
    t.row()
        .add(std::string(r.app))
        .add(run_app(app, cluster::Net::kInfiniBand, 8), 2)
        .add(run_app(app, cluster::Net::kMyrinet, 8), 2)
        .add(run_app(app, cluster::Net::kQuadrics, 8), 2)
        .add(r.ib, 2)
        .add(r.my, 2)
        .add(r.qs, 2);
  }
  out.emit("Fig 14: IS and MG on 8 nodes (class B, seconds)", t);
  return 0;
}
