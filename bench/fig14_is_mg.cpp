// Paper Fig. 14: IS and MG class-B execution time on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "IBA_s", "Myri_s", "QSN_s", "paper_IBA", "paper_Myri",
                 "paper_QSN"});
  struct Row { const char* app; double ib, my, qs; };
  const Row rows[] = {Row{"IS", 1.78, 2.89, 2.47}, Row{"MG", 5.81, 6.29, 6.04}};
  const auto secs = sweep_indexed(out, 6, [&](std::size_t i) {
    const std::string app = i / 3 == 0 ? "is" : "mg";
    return run_app(app, kAllNets[i % 3], 8, 1, cluster::Bus::kDefault,
                   out.express, out.faults, out.partitions);
  });
  for (std::size_t r = 0; r < 2; ++r) {
    t.row()
        .add(std::string(rows[r].app))
        .add(secs[r * 3 + 0], 2)
        .add(secs[r * 3 + 1], 2)
        .add(secs[r * 3 + 2], 2)
        .add(rows[r].ib, 2)
        .add(rows[r].my, 2)
        .add(rows[r].qs, 2);
  }
  out.emit("Fig 14: IS and MG on 8 nodes (class B, seconds)", t);
  return 0;
}
