// Paper Fig. 15: SP and BT on 4 nodes, LU on 8 nodes (class B seconds).
// The paper gives no numeric values for SP/BT (bars only); the takeaway
// it draws is that Quadrics closes the gap on SP/BT thanks to its
// computation/communication overlap of the large non-blocking exchanges.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "nodes", "IBA_s", "Myri_s", "QSN_s"});
  struct Row { const char* app; std::size_t nodes; };
  for (Row r : {Row{"sp", 4}, Row{"bt", 4}, Row{"lu", 8}}) {
    t.row()
        .add(std::string(r.app))
        .add(static_cast<std::uint64_t>(r.nodes))
        .add(run_app(r.app, cluster::Net::kInfiniBand, r.nodes), 2)
        .add(run_app(r.app, cluster::Net::kMyrinet, r.nodes), 2)
        .add(run_app(r.app, cluster::Net::kQuadrics, r.nodes), 2);
  }
  out.emit("Fig 15: SP/BT on 4 nodes, LU on 8 nodes (class B, seconds) | "
           "paper LU: IBA 165.5, Myri 170.7, QSN 168.2",
           t);
  return 0;
}
