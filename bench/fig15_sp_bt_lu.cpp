// Paper Fig. 15: SP and BT on 4 nodes, LU on 8 nodes (class B seconds).
// The paper gives no numeric values for SP/BT (bars only); the takeaway
// it draws is that Quadrics closes the gap on SP/BT thanks to its
// computation/communication overlap of the large non-blocking exchanges.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "nodes", "IBA_s", "Myri_s", "QSN_s"});
  struct Row { const char* app; std::size_t nodes; };
  const Row rows[] = {Row{"sp", 4}, Row{"bt", 4}, Row{"lu", 8}};
  const auto secs = sweep_indexed(out, 9, [&](std::size_t i) {
    return run_app(rows[i / 3].app, kAllNets[i % 3], rows[i / 3].nodes, 1,
                   cluster::Bus::kDefault, out.express, out.faults, out.partitions);
  });
  for (std::size_t r = 0; r < 3; ++r) {
    t.row()
        .add(std::string(rows[r].app))
        .add(static_cast<std::uint64_t>(rows[r].nodes))
        .add(secs[r * 3 + 0], 2)
        .add(secs[r * 3 + 1], 2)
        .add(secs[r * 3 + 2], 2);
  }
  out.emit("Fig 15: SP/BT on 4 nodes, LU on 8 nodes (class B, seconds) | "
           "paper LU: IBA 165.5, Myri 170.7, QSN 168.2",
           t);
  return 0;
}
