// Paper Fig. 16: CG and FT class-B execution time on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "IBA_s", "Myri_s", "QSN_s", "paper_IBA", "paper_Myri",
                 "paper_QSN"});
  struct Row { const char* app; double ib, my, qs; };
  const Row rows[] = {Row{"cg", 28.68, 29.65, 30.12},
                      Row{"ft", 37.92, 41.40, 43.23}};
  const auto secs = sweep_indexed(out, 6, [&](std::size_t i) {
    return run_app(rows[i / 3].app, kAllNets[i % 3], 8, 1,
                   cluster::Bus::kDefault, out.express, out.faults, out.partitions);
  });
  for (std::size_t r = 0; r < 2; ++r) {
    t.row()
        .add(std::string(rows[r].app))
        .add(secs[r * 3 + 0], 2)
        .add(secs[r * 3 + 1], 2)
        .add(secs[r * 3 + 2], 2)
        .add(rows[r].ib, 2)
        .add(rows[r].my, 2)
        .add(rows[r].qs, 2);
  }
  out.emit("Fig 16: CG and FT on 8 nodes (class B, seconds)", t);
  return 0;
}
