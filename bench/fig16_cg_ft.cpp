// Paper Fig. 16: CG and FT class-B execution time on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "IBA_s", "Myri_s", "QSN_s", "paper_IBA", "paper_Myri",
                 "paper_QSN"});
  struct Row { const char* app; double ib, my, qs; };
  for (Row r : {Row{"cg", 28.68, 29.65, 30.12}, Row{"ft", 37.92, 41.40, 43.23}}) {
    t.row()
        .add(std::string(r.app))
        .add(run_app(r.app, cluster::Net::kInfiniBand, 8), 2)
        .add(run_app(r.app, cluster::Net::kMyrinet, 8), 2)
        .add(run_app(r.app, cluster::Net::kQuadrics, 8), 2)
        .add(r.ib, 2)
        .add(r.my, 2)
        .add(r.qs, 2);
  }
  out.emit("Fig 16: CG and FT on 8 nodes (class B, seconds)", t);
  return 0;
}
