// Paper Fig. 17: Sweep3D (inputs 50 and 150) on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"input", "IBA_s", "Myri_s", "QSN_s", "paper_IBA",
                 "paper_Myri", "paper_QSN"});
  struct Row { const char* app; const char* label; double ib, my, qs; };
  const Row rows[] = {Row{"s3d50", "50", 3.59, 3.57, 4.38},
                      Row{"s3d150", "150", 91.43, 89.66, 95.99}};
  const auto secs = sweep_indexed(out, 6, [&](std::size_t i) {
    return run_app(rows[i / 3].app, kAllNets[i % 3], 8, 1,
                   cluster::Bus::kDefault, out.express, out.faults, out.partitions);
  });
  for (std::size_t r = 0; r < 2; ++r) {
    t.row()
        .add(std::string(rows[r].label))
        .add(secs[r * 3 + 0], 2)
        .add(secs[r * 3 + 1], 2)
        .add(secs[r * 3 + 2], 2)
        .add(rows[r].ib, 2)
        .add(rows[r].my, 2)
        .add(rows[r].qs, 2);
  }
  out.emit("Fig 17: Sweep3D on 8 nodes (seconds) | known deviation: the "
           "paper's QSN penalty on input 50 does not reproduce",
           t);
  return 0;
}
