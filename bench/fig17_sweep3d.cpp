// Paper Fig. 17: Sweep3D (inputs 50 and 150) on 8 nodes.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"input", "IBA_s", "Myri_s", "QSN_s", "paper_IBA",
                 "paper_Myri", "paper_QSN"});
  struct Row { const char* app; const char* label; double ib, my, qs; };
  for (Row r : {Row{"s3d50", "50", 3.59, 3.57, 4.38},
                Row{"s3d150", "150", 91.43, 89.66, 95.99}}) {
    t.row()
        .add(std::string(r.label))
        .add(run_app(r.app, cluster::Net::kInfiniBand, 8), 2)
        .add(run_app(r.app, cluster::Net::kMyrinet, 8), 2)
        .add(run_app(r.app, cluster::Net::kQuadrics, 8), 2)
        .add(r.ib, 2)
        .add(r.my, 2)
        .add(r.qs, 2);
  }
  out.emit("Fig 17: Sweep3D on 8 nodes (seconds) | known deviation: the "
           "paper's QSN penalty on input 50 does not reproduce",
           t);
  return 0;
}
