// Paper Figs. 18-23: speedups (base = 2 nodes) for IS, CG, MG, LU and
// Sweep3D 50/150 on all three interconnects.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "net", "speedup_4", "speedup_8", "ideal_4",
                 "ideal_8"});
  for (const char* app : {"is", "cg", "mg", "lu", "s3d50", "s3d150"}) {
    for (auto net : kAllNets) {
      const double t2 = run_app(app, net, 2, 1, cluster::Bus::kDefault,
                                out.express, {}, out.partitions);
      const double t4 = run_app(app, net, 4, 1, cluster::Bus::kDefault,
                                out.express, {}, out.partitions);
      const double t8 = run_app(app, net, 8, 1, cluster::Bus::kDefault,
                                out.express, {}, out.partitions);
      t.row()
          .add(std::string(app))
          .add(std::string(cluster::net_name(net)))
          .add(t2 / t4 * 2.0, 2)
          .add(t2 / t8 * 2.0, 2)
          .add(4.0, 0)
          .add(8.0, 0);
    }
  }
  out.emit("Figs 18-23: speedup over 2-node base (x2 = ideal at 4 nodes, "
           "x8 at 8)",
           t);
  return 0;
}
