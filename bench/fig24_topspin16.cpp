// Paper Fig. 24: InfiniBand scalability on the 16-node Topspin cluster.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "n2_s", "n4_s", "n8_s", "n16_s", "speedup_16v2"});
  for (const char* app : {"is", "cg", "mg", "lu", "ft", "s3d50", "s3d150"}) {
    const double t2 = run_app(app, cluster::Net::kInfiniBand, 2, 1,
                              cluster::Bus::kDefault, out.express, {}, out.partitions);
    const double t4 = run_app(app, cluster::Net::kInfiniBand, 4, 1,
                              cluster::Bus::kDefault, out.express, {}, out.partitions);
    const double t8 = run_app(app, cluster::Net::kInfiniBand, 8, 1,
                              cluster::Bus::kDefault, out.express, {}, out.partitions);
    const double t16 = run_app(app, cluster::Net::kInfiniBand, 16, 1,
                               cluster::Bus::kDefault, out.express, {}, out.partitions);
    t.row()
        .add(std::string(app))
        .add(t2, 2)
        .add(t4, 2)
        .add(t8, 2)
        .add(t16, 2)
        .add(t2 / t16 * 2.0, 2);
  }
  // SP/BT at square counts only: 4 and 16.
  for (const char* app : {"sp", "bt"}) {
    const double t4 = run_app(app, cluster::Net::kInfiniBand, 4, 1,
                              cluster::Bus::kDefault, out.express, {}, out.partitions);
    const double t16 = run_app(app, cluster::Net::kInfiniBand, 16, 1,
                               cluster::Bus::kDefault, out.express, {}, out.partitions);
    t.row()
        .add(std::string(app))
        .add(std::string("-"))
        .add(t4, 2)
        .add(std::string("-"))
        .add(t16, 2)
        .add(std::string("-"));
  }
  out.emit("Fig 24: InfiniBand scalability, 16-node Topspin-style cluster "
           "(class B, seconds)",
           t);
  return 0;
}
