// Paper Fig. 25: SMP mode — 16 processes on 8 nodes, block mapping.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "IBA_s", "Myri_s", "QSN_s"});
  for (const char* app : {"is", "cg", "mg", "lu", "ft", "s3d50", "s3d150"}) {
    t.row()
        .add(std::string(app))
        .add(run_app(app, cluster::Net::kInfiniBand, 8, 2,
                     cluster::Bus::kDefault, out.express, {}, out.partitions), 2)
        .add(run_app(app, cluster::Net::kMyrinet, 8, 2,
                     cluster::Bus::kDefault, out.express, {}, out.partitions), 2)
        .add(run_app(app, cluster::Net::kQuadrics, 8, 2,
                     cluster::Bus::kDefault, out.express, {}, out.partitions), 2);
  }
  out.emit("Fig 25: 16 processes on 8 nodes, block mapping (class B, "
           "seconds) | paper: IBA best except MG and Sweep3D-150; QSN hurt "
           "by its intra-node path",
           t);
  return 0;
}
