// Paper Fig. 26: MPI over InfiniBand latency, PCI vs PCI-X host bus.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 4 << 10);
  microbench::Options pci;
  pci.bus = cluster::Bus::kPci66;
  const auto buses = sweep_indexed(out, 2, [&](std::size_t i) {
    return microbench::latency(cluster::Net::kInfiniBand, sizes,
                               i == 0 ? microbench::Options{} : pci);
  });
  const auto& x = buses[0];
  const auto& p = buses[1];
  util::Table t({"size", "PCIX_us", "PCI_us"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.row().add(util::size_label(sizes[i])).add(x[i].value, 2).add(p[i].value, 2);
  }
  out.emit("Fig 26: IBA latency PCI vs PCI-X (us) | paper: small-message "
           "latency only +0.6us on PCI",
           t);
  return 0;
}
