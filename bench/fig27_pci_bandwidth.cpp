// Paper Fig. 27: MPI over InfiniBand bandwidth, PCI vs PCI-X host bus.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  const auto sizes = util::size_sweep(4, 1 << 20);
  microbench::Options pci;
  pci.bus = cluster::Bus::kPci66;
  const auto buses = sweep_indexed(out, 2, [&](std::size_t i) {
    return microbench::bandwidth(cluster::Net::kInfiniBand, sizes,
                                 i == 0 ? microbench::Options{} : pci);
  });
  const auto& x = buses[0];
  const auto& p = buses[1];
  util::Table t({"size", "PCIX_MBs", "PCI_MBs"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t.row().add(util::size_label(sizes[i])).add(x[i].value, 1).add(p[i].value, 1);
  }
  out.emit("Fig 27: IBA bandwidth PCI vs PCI-X (MB/s) | paper: 841 -> 378 "
           "on PCI",
           t);
  return 0;
}
