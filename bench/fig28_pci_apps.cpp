// Paper Fig. 28: NAS class B over InfiniBand, PCI vs PCI-X, plus the
// cross-network comparison the paper draws: with just PCI, InfiniBand
// still beats Myrinet/Quadrics on bandwidth-bound applications.
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "nodes", "PCIX_s", "PCI_s", "degrade_pct", "Myri_s",
                 "QSN_s"});
  struct Row { const char* app; std::size_t nodes; };
  for (Row r : {Row{"is", 8}, Row{"cg", 8}, Row{"mg", 8}, Row{"lu", 8},
                Row{"ft", 8}, Row{"sp", 4}, Row{"bt", 4}}) {
    const double x =
        run_app(r.app, cluster::Net::kInfiniBand, r.nodes, 1,
                cluster::Bus::kPcix133, out.express, {}, out.partitions);
    const double p =
        run_app(r.app, cluster::Net::kInfiniBand, r.nodes, 1,
                cluster::Bus::kPci66, out.express, {}, out.partitions);
    t.row()
        .add(std::string(r.app))
        .add(static_cast<std::uint64_t>(r.nodes))
        .add(x, 2)
        .add(p, 2)
        .add((p - x) / x * 100.0, 1)
        .add(run_app(r.app, cluster::Net::kMyrinet, r.nodes, 1,
                     cluster::Bus::kDefault, out.express, {}, out.partitions), 2)
        .add(run_app(r.app, cluster::Net::kQuadrics, r.nodes, 1,
                     cluster::Bus::kDefault, out.express, {}, out.partitions), 2);
  }
  out.emit("Fig 28: IBA class B, PCI vs PCI-X (seconds) | paper: average "
           "degradation <5%; IS/FT/CG on PCI still match or beat "
           "Myri/QSN",
           t);
  return 0;
}
