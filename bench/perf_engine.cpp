// Engine performance micro-benchmarks (google-benchmark): these measure
// the SIMULATOR itself (host performance), not the modelled hardware.
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

using namespace mns;

static void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      eng.after(sim::Time::ns(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EventThroughput)->Unit(benchmark::kMillisecond);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Mailbox<int> a(eng), b(eng);
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        a.send(i);
        co_await b.receive();
      }
    }(a, b));
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        co_await a.receive();
        b.send(i);
      }
    }(a, b));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 40000);
}
BENCHMARK(BM_CoroutinePingPong)->Unit(benchmark::kMillisecond);

static void BM_MpiLatencySim(benchmark::State& state) {
  for (auto _ : state) {
    cluster::ClusterConfig cfg{.nodes = 2,
                               .net = cluster::Net::kInfiniBand};
    cluster::Cluster c(cfg);
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(0x1000 + comm.rank(), 64);
      for (int i = 0; i < 500; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MpiLatencySim)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
