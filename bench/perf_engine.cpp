// Engine performance micro-benchmarks (google-benchmark): these measure
// the SIMULATOR itself (host performance), not the modelled hardware.
//
// CI runs this binary in Release and uploads the JSON report; by default
// it writes BENCH_engine.json next to the working directory (pass your
// own --benchmark_out to override).
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <vector>

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "ib/ib_fabric.hpp"
#include "model/node_hw.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/pdes/pdes.hpp"
#include "sim/sync.hpp"
#include "sweep/sweep_runner.hpp"

using namespace mns;

static void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      eng.after(sim::Time::ns(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EventThroughput)->Unit(benchmark::kMillisecond);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Mailbox<int> a(eng), b(eng);
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        a.send(i);
        co_await b.receive();
      }
    }(a, b));
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        co_await a.receive();
        b.send(i);
      }
    }(a, b));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 40000);
}
BENCHMARK(BM_CoroutinePingPong)->Unit(benchmark::kMillisecond);

static void BM_MpiLatencySim(benchmark::State& state) {
  for (auto _ : state) {
    cluster::ClusterConfig cfg{.nodes = 2,
                               .net = cluster::Net::kInfiniBand};
    cluster::Cluster c(cfg);
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(0x1000 + comm.rank(), 64);
      for (int i = 0; i < 500; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MpiLatencySim)->Unit(benchmark::kMillisecond);

// Message data path, fabric level: an uncontended ping-pong stream of
// 64 KB messages over the IB model (32 MTU packets each), every message
// posted as the previous one lands. Arg 0 forces the pooled packet state
// machine; Arg 1 enables the express closed-form path — the intended
// steady state, expected >= 2x the packet machine's message throughput.
// Simulated timing is bit-identical between the two.
static void BM_MessagePathStream(benchmark::State& state) {
  const bool express = state.range(0) != 0;
  constexpr int kMsgs = 2000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
    fab.set_express(express);
    int left = kMsgs;
    std::function<void()> bounce = [&] {
      if (--left == 0) return;
      model::NetMsg m;
      m.src = left % 2;  // alternate direction each bounce
      m.dst = 1 - m.src;
      m.bytes = 64 << 10;
      m.remote_arrival = bounce;
      fab.post(std::move(m));
    };
    model::NetMsg first;
    first.src = 0;
    first.dst = 1;
    first.bytes = 64 << 10;
    first.remote_arrival = bounce;
    fab.post(std::move(first));
    eng.run();
    benchmark::DoNotOptimize(fab.messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_MessagePathStream)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Same data path under fan-in contention: two senders stream into one
// receiver, so express launches keep getting demoted back to packet
// granularity. Tracks the demotion overhead (Arg 1) against the plain
// packet machine (Arg 0).
static void BM_MessagePathContended(benchmark::State& state) {
  const bool express = state.range(0) != 0;
  constexpr int kPerStream = 1000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw c(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b, &c};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(3));
    fab.set_express(express);
    int left[2] = {kPerStream, kPerStream};
    std::function<void()> repost[2];
    for (int s = 0; s < 2; ++s) {
      repost[s] = [&, s] {
        if (--left[s] == 0) return;
        model::NetMsg m;
        m.src = s;
        m.dst = 2;
        m.bytes = 16 << 10;
        m.remote_arrival = repost[s];
        fab.post(std::move(m));
      };
      model::NetMsg m;
      m.src = s;
      m.dst = 2;
      m.bytes = 16 << 10;
      m.remote_arrival = repost[s];
      fab.post(std::move(m));
    }
    eng.run();
    benchmark::DoNotOptimize(fab.messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kPerStream);
}
BENCHMARK(BM_MessagePathContended)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Recovery-path hot loop: the same fabric-level bounce stream as
// BM_MessagePathStream, but with a 20% deterministic drop rate on the
// 0->1 link — a retransmit storm. Exercises lose_packet/arm_rto/
// resend_lost, the cancellable-timer slab, and the error surface (the
// bounce continues through on_failed when a message exhausts its
// budget), so the bench_compare regression gate covers the fault
// machinery alongside the happy path.
static void BM_RetransmitStorm(benchmark::State& state) {
  constexpr int kMsgs = 1000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
    fault::FaultPlan plan;
    plan.set_seed(7).drop(0, 1, 0.20).corrupt(1, 0, 0.05);
    fab.set_fault_plan(plan);
    int left = kMsgs;
    std::function<void()> bounce = [&] {
      if (--left == 0) return;
      model::NetMsg m;
      m.src = left % 2;
      m.dst = 1 - m.src;
      m.bytes = 16 << 10;
      m.remote_arrival = bounce;
      m.on_failed = bounce;  // an abandoned message must not stall the run
      fab.post(std::move(m));
    };
    model::NetMsg first;
    first.src = 0;
    first.dst = 1;
    first.bytes = 16 << 10;
    first.remote_arrival = bounce;
    first.on_failed = bounce;
    fab.post(std::move(first));
    eng.run();
    benchmark::DoNotOptimize(fab.packets_retransmitted());
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_RetransmitStorm)->Unit(benchmark::kMillisecond);

// Fail-stop degradation hot loop: the 0->1 link dies permanently before
// the first message, so message #1 runs the full retry cycle, exhausts
// its budget and teaches the shard the link is dead — and every later
// 0->1 message takes the sender_loop degradation fast path (bounded
// backoff + abort_degraded) instead of re-running retransmission.
// Measures the learned-dead fast-fail cost the graceful-degradation
// design note promises stays O(1) per message; the healthy 1->0
// direction runs interleaved as the control.
static void BM_LinkDownRecovery(benchmark::State& state) {
  constexpr int kMsgs = 1000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
    fault::FaultPlan plan;
    plan.set_seed(7).link_down(0, 1, sim::Time::zero());
    fab.set_fault_plan(plan);
    int left = kMsgs;
    std::function<void()> bounce = [&] {
      if (--left == 0) return;
      model::NetMsg m;
      m.src = left % 2;
      m.dst = 1 - m.src;
      m.bytes = 16 << 10;
      m.remote_arrival = bounce;
      m.on_failed = bounce;  // degraded-path aborts keep the run moving
      fab.post(std::move(m));
    };
    model::NetMsg first;
    first.src = 0;
    first.dst = 1;
    first.bytes = 16 << 10;
    first.remote_arrival = bounce;
    first.on_failed = bounce;
    fab.post(std::move(first));
    eng.run();
    benchmark::DoNotOptimize(fab.messages_aborted());
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_LinkDownRecovery)->Unit(benchmark::kMillisecond);

// Fault-aware collective end-to-end: one NIC on an 8-node InfiniBand
// cluster dies early, and every later allreduce runs the degradation
// fast path plus the deterministic error-agreement epilogue (the binomial
// fan-in/fan-out that gives all live ranks the same verdict). Guards the
// epilogue's overhead and the degraded collective's termination — each
// round still completes delivered-or-errored.
static void BM_DegradedAllreduce(benchmark::State& state) {
  constexpr std::uint64_t kBytes = 4 << 10;
  constexpr int kRounds = 8;
  for (auto _ : state) {
    cluster::ClusterConfig cfg{.nodes = 8,
                               .net = cluster::Net::kInfiniBand};
    cfg.faults = fault::FaultPlan(7).nic_down(5, sim::Time::us(5));
    cluster::Cluster c(cfg);
    int errors = 0;
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(
          0x40000u + (static_cast<unsigned>(comm.rank()) << 16), kBytes);
      for (int round = 0; round < kRounds; ++round) {
        co_await comm.allreduce(buf, kBytes / 8, mpi::Dtype::kInt64,
                                mpi::ROp::kSum);
        if (comm.rank() == 0 && comm.last_error() != mpi::kErrNone) {
          ++errors;
        }
      }
    });
    if (errors == 0) state.SkipWithError("dead NIC never surfaced");
    benchmark::DoNotOptimize(c.fabric().messages_aborted());
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_DegradedAllreduce)->Unit(benchmark::kMillisecond);

// Frame-pool churn: every spawn allocates a Root frame plus a Task frame,
// and every completion retires both, so each wave recycles its frames
// through the per-thread pool (40k promise allocations per iteration).
static void BM_FramePoolChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int wave = 0; wave < 100; ++wave) {
      for (int i = 0; i < 200; ++i) {
        eng.spawn([](sim::Engine& e, int d) -> sim::Task<void> {
          co_await e.delay(sim::Time::ns(d));
        }(eng, i));
      }
      eng.run();
    }
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_FramePoolChurn)->Unit(benchmark::kMillisecond);

// Sweep fan-out: twelve independent 2-node ping-pong simulations mapped
// over the runner, as the fig/tab harnesses do. Arg is --jobs; real time
// shows the between-simulation scaling (and jobs=1 the runner's overhead).
static void BM_SweepRunner(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto secs = sweep::SweepRunner(jobs).run_indexed(12, [](std::size_t i) {
      cluster::ClusterConfig cfg{
          .nodes = 2,
          .net = static_cast<cluster::Net>(i % 3)};
      cluster::Cluster c(cfg);
      c.run([](mpi::Comm& comm) -> sim::Task<void> {
        const mpi::View buf = mpi::View::synth(0x1000 + comm.rank(), 64);
        for (int k = 0; k < 200; ++k) {
          if (comm.rank() == 0) {
            co_await comm.send(buf, 1, 0);
            co_await comm.recv(buf, 1, 0);
          } else {
            co_await comm.recv(buf, 0, 0);
            co_await comm.send(buf, 0, 0);
          }
        }
      });
      return c.engine().now().to_seconds();
    });
    benchmark::DoNotOptimize(secs.data());
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// In-run parallelism (src/sim/pdes): one simulation partitioned across
// worker threads with conservative lookahead. Arg is the partition count;
// Arg(1) is the same workload on the inline sequential path, so the
// 1-vs-4 ratio is the wall-clock speedup the partitioned core buys and
// the Arg(1) row tracks its overhead. Results are digest-checked
// against the sequential run — the speedup is only admissible because
// the output bytes are identical.

namespace {
inline std::uint64_t pdes_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

// 64-node wavefront sweep: the Sweep3D dependency pattern of Fig. 17 /
// Table 2, at the paper's 8x8 scale. Cell (i,j) computes when its west
// and north halves arrive, then feeds east and south; 48 pipelined waves
// keep every anti-diagonal busy, so at steady state all 64 cells (16 per
// partition at Arg(4)) have work each hop.
static void BM_PdesSweep3D64(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  constexpr int kGrid = 8;
  constexpr int kWaves = 48;
  constexpr int kSpin = 1600;  // per-cell compute, ~the event cost of a
                               // skeleton-mode Sweep3D cell update
  constexpr std::int64_t kHopPs = 1000;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const auto topo = sim::pdes::Topology::blocks(
        kGrid * kGrid, parts, sim::Time::ps(kHopPs));
    auto cnt = std::make_shared<std::vector<int>>(kGrid * kGrid, 0);
    auto acc = std::make_shared<std::vector<std::uint64_t>>(kGrid * kGrid, 1);
    const auto build = [&](sim::pdes::Context& ctx) {
      sim::pdes::Context* cp = &ctx;
      const auto fire = [cnt, acc](sim::pdes::Context& c, int n,
                                   std::uint64_t w) {
        auto& a = (*acc)[static_cast<std::size_t>(n)];
        std::uint64_t v = a ^ w;
        for (int s = 0; s < kSpin; ++s) v = pdes_mix(v);
        a = v;
        const int i = n / kGrid, j = n % kGrid;
        if (j + 1 < kGrid) {
          c.send(n, n + 1, c.now() + sim::Time::ps(kHopPs), v);
        }
        if (i + 1 < kGrid) {
          c.send(n, n + kGrid, c.now() + sim::Time::ps(kHopPs), v);
        }
        if (n == kGrid * kGrid - 1) c.emit(n, v);  // wave completion
      };
      for (int n : ctx.nodes()) {
        const int i = n / kGrid, j = n % kGrid;
        const int expected = (i > 0 ? 1 : 0) + (j > 0 ? 1 : 0);
        ctx.on_message(n, [cnt, fire, expected](sim::pdes::Context& c,
                                                int node, std::uint64_t w) {
          auto& k = (*cnt)[static_cast<std::size_t>(node)];
          if (++k < expected) return;
          k = 0;
          fire(c, node, w);
        });
        if (n == 0) {
          for (int wave = 0; wave < kWaves; ++wave) {
            ctx.engine().at(sim::Time::ps((wave + 1) * kHopPs),
                            sim::EventFn::make([cp, fire, wave] {
                              fire(*cp, 0,
                                   static_cast<std::uint64_t>(wave));
                            }));
          }
        }
      }
    };
    const auto r = sim::pdes::run(topo, build);
    sink ^= r.digest();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kWaves * kGrid * kGrid);
}
BENCHMARK(BM_PdesSweep3D64)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// 64-node torus halo exchange: the neighbor-exchange phase of the
// Table 2 CG/MG class-B runs. Every step each node swaps halos with its
// four torus neighbors and computes when all four arrive — lockstep
// epochs, the friendliest and the most synchronization-heavy shape for
// a conservative core.
static void BM_PdesHalo64(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  constexpr int kGrid = 8;
  constexpr int kSteps = 64;
  constexpr int kSpin = 1600;
  constexpr std::int64_t kHopPs = 1000;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const auto topo = sim::pdes::Topology::blocks(
        kGrid * kGrid, parts, sim::Time::ps(kHopPs));
    auto cnt = std::make_shared<std::vector<int>>(kGrid * kGrid, 0);
    auto step = std::make_shared<std::vector<int>>(kGrid * kGrid, 0);
    auto acc = std::make_shared<std::vector<std::uint64_t>>(kGrid * kGrid, 1);
    const auto build = [&](sim::pdes::Context& ctx) {
      sim::pdes::Context* cp = &ctx;
      const auto exchange = [](sim::pdes::Context& c, int n,
                               std::uint64_t v) {
        const int i = n / kGrid, j = n % kGrid;
        const int east = i * kGrid + (j + 1) % kGrid;
        const int west = i * kGrid + (j + kGrid - 1) % kGrid;
        const int south = ((i + 1) % kGrid) * kGrid + j;
        const int north = ((i + kGrid - 1) % kGrid) * kGrid + j;
        const sim::Time when = c.now() + sim::Time::ps(kHopPs);
        c.send(n, east, when, v);
        c.send(n, west, when, v);
        c.send(n, south, when, v);
        c.send(n, north, when, v);
      };
      for (int n : ctx.nodes()) {
        ctx.on_message(n, [cnt, step, acc, exchange](
                              sim::pdes::Context& c, int node,
                              std::uint64_t w) {
          auto& a = (*acc)[static_cast<std::size_t>(node)];
          a ^= w;
          auto& k = (*cnt)[static_cast<std::size_t>(node)];
          if (++k < 4) return;
          k = 0;
          std::uint64_t v = a;
          for (int s = 0; s < kSpin; ++s) v = pdes_mix(v);
          a = v;
          auto& st = (*step)[static_cast<std::size_t>(node)];
          if (++st < kSteps) {
            exchange(c, node, v);
          } else {
            c.emit(node, v);  // final field value, digest-checked
          }
        });
        ctx.engine().at(sim::Time::ps(kHopPs),
                        sim::EventFn::make([cp, exchange, n] {
                          exchange(*cp, n, static_cast<std::uint64_t>(n));
                        }));
      }
    };
    const auto r = sim::pdes::run(topo, build);
    sink ^= r.digest();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kSteps * kGrid * kGrid);
}
BENCHMARK(BM_PdesHalo64)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// -- partitioned cluster workloads -----------------------------------------
//
// The synthetic PDES benches above measure the executor in isolation; these
// run the REAL cluster fabric (split-flow netfabric, NIC/bus pipes, MPI
// procs) on the partitioned executor — the workload `--partitions=N` exists
// for. Arg is the partition count; the result must be bit-identical across
// args (digest-checked below), so any real-time delta between Arg(1) and
// Arg(4) is pure executor scaling. On a one-core host the parallel args
// measure overhead, not speedup — read the JSON on a multi-core box.

static std::uint64_t run_cluster_app(const char* name, int partitions) {
  cluster::ClusterConfig cfg{.nodes = 64,
                             .ppn = 1,
                             .net = cluster::Net::kInfiniBand,
                             .partitions = partitions};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  apps::AppResult r0;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    auto r = co_await spec.run_full(comm, apps::Mode::kSkeleton);
    if (comm.rank() == 0) r0 = r;
  });
  std::uint64_t bits = 0;
  std::memcpy(&bits, &r0.app_seconds, sizeof(bits));
  return bits ^ static_cast<std::uint64_t>(c.now().count_ps());
}

// Sweep3D input 50 on 64 nodes over InfiniBand: wavefront dependences,
// the paper's Fig. 17 workload at Table 2 scale.
static void BM_ClusterSweep3D64(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  static const std::uint64_t want = run_cluster_app("s3d50", 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t got = run_cluster_app("s3d50", parts);
    if (got != want) state.SkipWithError("partition digest mismatch");
    sink ^= got;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());  // app runs per second
}
BENCHMARK(BM_ClusterSweep3D64)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// NAS CG class B on 64 ranks: the irregular sparse-matvec exchange from
// the paper's Fig. 16, heavier on concurrent point-to-point traffic.
static void BM_ClusterCg64(benchmark::State& state) {
  const int parts = static_cast<int>(state.range(0));
  static const std::uint64_t want = run_cluster_app("cg", 1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    const std::uint64_t got = run_cluster_app("cg", parts);
    if (got != want) state.SkipWithError("partition digest mismatch");
    sink ^= got;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());  // app runs per second
}
BENCHMARK(BM_ClusterCg64)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Default the JSON report so CI (and anyone running the binary bare)
  // gets BENCH_engine.json without extra flags.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_engine.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
