// Engine performance micro-benchmarks (google-benchmark): these measure
// the SIMULATOR itself (host performance), not the modelled hardware.
//
// CI runs this binary in Release and uploads the JSON report; by default
// it writes BENCH_engine.json next to the working directory (pass your
// own --benchmark_out to override).
#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "ib/ib_fabric.hpp"
#include "model/node_hw.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sweep/sweep_runner.hpp"

using namespace mns;

static void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      eng.after(sim::Time::ns(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EventThroughput)->Unit(benchmark::kMillisecond);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Mailbox<int> a(eng), b(eng);
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        a.send(i);
        co_await b.receive();
      }
    }(a, b));
    eng.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<void> {
      for (int i = 0; i < 20000; ++i) {
        co_await a.receive();
        b.send(i);
      }
    }(a, b));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 40000);
}
BENCHMARK(BM_CoroutinePingPong)->Unit(benchmark::kMillisecond);

static void BM_MpiLatencySim(benchmark::State& state) {
  for (auto _ : state) {
    cluster::ClusterConfig cfg{.nodes = 2,
                               .net = cluster::Net::kInfiniBand};
    cluster::Cluster c(cfg);
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(0x1000 + comm.rank(), 64);
      for (int i = 0; i < 500; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MpiLatencySim)->Unit(benchmark::kMillisecond);

// Message data path, fabric level: an uncontended ping-pong stream of
// 64 KB messages over the IB model (32 MTU packets each), every message
// posted as the previous one lands. Arg 0 forces the pooled packet state
// machine; Arg 1 enables the express closed-form path — the intended
// steady state, expected >= 2x the packet machine's message throughput.
// Simulated timing is bit-identical between the two.
static void BM_MessagePathStream(benchmark::State& state) {
  const bool express = state.range(0) != 0;
  constexpr int kMsgs = 2000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
    fab.set_express(express);
    int left = kMsgs;
    std::function<void()> bounce = [&] {
      if (--left == 0) return;
      model::NetMsg m;
      m.src = left % 2;  // alternate direction each bounce
      m.dst = 1 - m.src;
      m.bytes = 64 << 10;
      m.remote_arrival = bounce;
      fab.post(std::move(m));
    };
    model::NetMsg first;
    first.src = 0;
    first.dst = 1;
    first.bytes = 64 << 10;
    first.remote_arrival = bounce;
    fab.post(std::move(first));
    eng.run();
    benchmark::DoNotOptimize(fab.messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_MessagePathStream)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Same data path under fan-in contention: two senders stream into one
// receiver, so express launches keep getting demoted back to packet
// granularity. Tracks the demotion overhead (Arg 1) against the plain
// packet machine (Arg 0).
static void BM_MessagePathContended(benchmark::State& state) {
  const bool express = state.range(0) != 0;
  constexpr int kPerStream = 1000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw c(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b, &c};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(3));
    fab.set_express(express);
    int left[2] = {kPerStream, kPerStream};
    std::function<void()> repost[2];
    for (int s = 0; s < 2; ++s) {
      repost[s] = [&, s] {
        if (--left[s] == 0) return;
        model::NetMsg m;
        m.src = s;
        m.dst = 2;
        m.bytes = 16 << 10;
        m.remote_arrival = repost[s];
        fab.post(std::move(m));
      };
      model::NetMsg m;
      m.src = s;
      m.dst = 2;
      m.bytes = 16 << 10;
      m.remote_arrival = repost[s];
      fab.post(std::move(m));
    }
    eng.run();
    benchmark::DoNotOptimize(fab.messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kPerStream);
}
BENCHMARK(BM_MessagePathContended)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Recovery-path hot loop: the same fabric-level bounce stream as
// BM_MessagePathStream, but with a 20% deterministic drop rate on the
// 0->1 link — a retransmit storm. Exercises lose_packet/arm_rto/
// resend_lost, the cancellable-timer slab, and the error surface (the
// bounce continues through on_failed when a message exhausts its
// budget), so the bench_compare regression gate covers the fault
// machinery alongside the happy path.
static void BM_RetransmitStorm(benchmark::State& state) {
  constexpr int kMsgs = 1000;
  for (auto _ : state) {
    sim::Engine eng;
    model::NodeHw a(eng, model::pcix_133(), model::xeon_2003_memcpy());
    model::NodeHw b(eng, model::pcix_133(), model::xeon_2003_memcpy());
    std::vector<model::NodeHw*> nodes{&a, &b};
    ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
    fault::FaultPlan plan;
    plan.set_seed(7).drop(0, 1, 0.20).corrupt(1, 0, 0.05);
    fab.set_fault_plan(plan);
    int left = kMsgs;
    std::function<void()> bounce = [&] {
      if (--left == 0) return;
      model::NetMsg m;
      m.src = left % 2;
      m.dst = 1 - m.src;
      m.bytes = 16 << 10;
      m.remote_arrival = bounce;
      m.on_failed = bounce;  // an abandoned message must not stall the run
      fab.post(std::move(m));
    };
    model::NetMsg first;
    first.src = 0;
    first.dst = 1;
    first.bytes = 16 << 10;
    first.remote_arrival = bounce;
    first.on_failed = bounce;
    fab.post(std::move(first));
    eng.run();
    benchmark::DoNotOptimize(fab.packets_retransmitted());
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_RetransmitStorm)->Unit(benchmark::kMillisecond);

// Frame-pool churn: every spawn allocates a Root frame plus a Task frame,
// and every completion retires both, so each wave recycles its frames
// through the per-thread pool (40k promise allocations per iteration).
static void BM_FramePoolChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int wave = 0; wave < 100; ++wave) {
      for (int i = 0; i < 200; ++i) {
        eng.spawn([](sim::Engine& e, int d) -> sim::Task<void> {
          co_await e.delay(sim::Time::ns(d));
        }(eng, i));
      }
      eng.run();
    }
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_FramePoolChurn)->Unit(benchmark::kMillisecond);

// Sweep fan-out: twelve independent 2-node ping-pong simulations mapped
// over the runner, as the fig/tab harnesses do. Arg is --jobs; real time
// shows the between-simulation scaling (and jobs=1 the runner's overhead).
static void BM_SweepRunner(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto secs = sweep::SweepRunner(jobs).run_indexed(12, [](std::size_t i) {
      cluster::ClusterConfig cfg{
          .nodes = 2,
          .net = static_cast<cluster::Net>(i % 3)};
      cluster::Cluster c(cfg);
      c.run([](mpi::Comm& comm) -> sim::Task<void> {
        const mpi::View buf = mpi::View::synth(0x1000 + comm.rank(), 64);
        for (int k = 0; k < 200; ++k) {
          if (comm.rank() == 0) {
            co_await comm.send(buf, 1, 0);
            co_await comm.recv(buf, 1, 0);
          } else {
            co_await comm.recv(buf, 0, 0);
            co_await comm.send(buf, 0, 0);
          }
        }
      });
      return c.engine().now().to_seconds();
    });
    benchmark::DoNotOptimize(secs.data());
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Default the JSON report so CI (and anyone running the binary bare)
  // gets BENCH_engine.json without extra flags.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_engine.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
