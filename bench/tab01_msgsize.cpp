#include "bench_common.hpp"
#include "prof/recorder.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

struct ProfiledRun {
  prof::RankStats totals;
  std::vector<prof::RankStats> per_rank;
};

/// Run one paper-scale app and capture the profiler output — the same way
/// the paper produced Tables 1 and 3-6 via the MPICH logging interface.
ProfiledRun profile_app(const std::string& name, std::size_t nodes,
                        int ppn = 1) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = cluster::Net::kInfiniBand};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  ProfiledRun out;
  out.totals = c.recorder().totals();
  for (int r = 0; r < c.ranks(); ++r) {
    out.per_rank.push_back(c.recorder().rank(r));
  }
  return out;
}

/// The paper's tables report a representative (busiest) rank.
const prof::RankStats& busiest(const ProfiledRun& run) {
  const prof::RankStats* best = &run.per_rank[0];
  for (const auto& st : run.per_rank) {
    if (st.mpi_calls > best->mpi_calls) best = &st;
  }
  return *best;
}

}  // namespace

// Paper Table 1: message size distribution per application (busiest rank,
// class B on 8 nodes; SP/BT on 4).
int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "<2K", "2K-16K", "16K-1M", ">1M", "paper_<2K",
                 "paper_2K-16K", "paper_16K-1M", "paper_>1M"});
  struct Row { const char* app; std::size_t nodes; long p[4]; };
  const Row rows[] = {
      {"is", 8, {14, 11, 0, 11}},      {"cg", 8, {16113, 0, 11856, 0}},
      {"mg", 8, {1607, 630, 3702, 0}}, {"lu", 8, {100021, 0, 1008, 0}},
      {"ft", 8, {24, 0, 0, 22}},       {"sp", 4, {9, 0, 9636, 0}},
      {"bt", 4, {9, 0, 4836, 0}},      {"s3d50", 8, {19236, 0, 0, 0}},
      {"s3d150", 8, {28836, 28800, 0, 0}},
  };
  for (const auto& r : rows) {
    const auto run = profile_app(r.app, r.nodes);
    const auto& st = busiest(run);
    t.row()
        .add(std::string(r.app))
        .add(st.sent.count_in(0, 2 << 10))
        .add(st.sent.count_in(2 << 10, 16 << 10))
        .add(st.sent.count_in(16 << 10, 1 << 20))
        .add(st.sent.count_in(1 << 20, UINT64_MAX))
        .add(static_cast<std::uint64_t>(r.p[0]))
        .add(static_cast<std::uint64_t>(r.p[1]))
        .add(static_cast<std::uint64_t>(r.p[2]))
        .add(static_cast<std::uint64_t>(r.p[3]));
  }
  out.emit("Table 1: message size distribution (busiest rank; counts "
           "include collective calls, as in the paper's MPICH logging)",
           t);
  return 0;
}
