// Paper Table 2: class-B execution times at 2/4/8 nodes for all three
// interconnects (IS, CG, MG, LU, FT, Sweep3D; SP/BT excluded as in the
// paper since they need square rank counts).
#include "bench_common.hpp"

using namespace mns;
using namespace mns::bench;

int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  struct Paper { const char* app; double v[9]; };
  // paper values: IBA{2,4,8}, Myri{2,4,8}, QSN{2,4,8}; -1 = not run.
  const Paper paper[] = {
      {"is", {6.73, 3.30, 1.78, 7.86, 4.99, 2.89, 7.04, 4.71, 2.47}},
      {"cg", {132.26, 81.64, 28.68, 135.76, 74.36, 29.65, 135.05, 73.10, 30.12}},
      {"mg", {23.60, 13.41, 5.81, 25.77, 14.87, 6.29, 24.07, 13.75, 6.04}},
      {"lu", {648.53, 319.57, 165.53, 708.43, 338.70, 170.70, 667.30, 314.55, 168.18}},
      {"ft", {-1, 75.50, 37.92, -1, 82.74, 41.40, -1, 81.89, 43.23}},
      {"s3d50", {13.58, 7.18, 3.59, 13.33, 6.96, 3.57, 14.94, 7.37, 4.38}},
      {"s3d150", {346.43, 179.35, 91.43, 339.22, 176.94, 89.66, 343.60, 177.66, 95.99}},
  };
  util::Table t({"app", "net", "n2_s", "n4_s", "n8_s", "paper_n2",
                 "paper_n4", "paper_n8"});
  // One sweep point per (app, net, nodes) cell; -1 cells never simulate.
  const std::size_t napps = std::size(paper);
  const auto secs = sweep_indexed(out, napps * 9, [&](std::size_t i) {
    const auto& row = paper[i / 9];
    const std::size_t col = (i % 9) / 3;
    const std::size_t k = i % 3;
    if (row.v[col * 3 + k] < 0) return -1.0;  // FT does not fit on 2 nodes
    return run_app(row.app, kAllNets[col], std::size_t{2} << k, 1,
                   cluster::Bus::kDefault, out.express, {}, out.partitions);
  });
  for (std::size_t a = 0; a < napps; ++a) {
    const auto& row = paper[a];
    for (std::size_t col = 0; col < 3; ++col) {
      const std::size_t base = a * 9 + col * 3;
      t.row()
          .add(std::string(row.app))
          .add(std::string(cluster::net_name(kAllNets[col])))
          .add(secs[base + 0], 2)
          .add(secs[base + 1], 2)
          .add(secs[base + 2], 2)
          .add(row.v[col * 3 + 0], 2)
          .add(row.v[col * 3 + 1], 2)
          .add(row.v[col * 3 + 2], 2);
    }
  }
  out.emit("Table 2: class-B execution time vs system size (seconds; "
           "-1 = not run, FT does not fit on 2 nodes)",
           t);
  return 0;
}
