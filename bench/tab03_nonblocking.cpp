#include "bench_common.hpp"
#include "prof/recorder.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

struct ProfiledRun {
  prof::RankStats totals;
  std::vector<prof::RankStats> per_rank;
};

/// Run one paper-scale app and capture the profiler output — the same way
/// the paper produced Tables 1 and 3-6 via the MPICH logging interface.
ProfiledRun profile_app(const std::string& name, std::size_t nodes,
                        int ppn = 1) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = cluster::Net::kInfiniBand};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  ProfiledRun out;
  out.totals = c.recorder().totals();
  for (int r = 0; r < c.ranks(); ++r) {
    out.per_rank.push_back(c.recorder().rank(r));
  }
  return out;
}

/// The paper's tables report a representative (busiest) rank.
const prof::RankStats& busiest(const ProfiledRun& run) {
  const prof::RankStats* best = &run.per_rank[0];
  for (const auto& st : run.per_rank) {
    if (st.mpi_calls > best->mpi_calls) best = &st;
  }
  return *best;
}

}  // namespace

// Paper Table 3: non-blocking MPI usage per application.
int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "isend", "isend_avg", "irecv", "irecv_avg",
                 "paper_isend", "paper_isend_avg", "paper_irecv",
                 "paper_irecv_avg"});
  struct Row { const char* app; std::size_t nodes; long p[4]; };
  const Row rows[] = {
      {"is", 8, {0, 0, 0, 0}},
      {"cg", 8, {0, 0, 13984, 63591}},
      {"mg", 8, {0, 0, 2922, 270400}},
      {"lu", 8, {0, 0, 508, 311692}},
      {"ft", 8, {0, 0, 0, 0}},
      {"sp", 4, {4818, 263970, 4818, 263970}},
      {"bt", 4, {2418, 293108, 2418, 293108}},
      {"s3d50", 8, {0, 0, 0, 0}},
      {"s3d150", 8, {0, 0, 0, 0}},
  };
  for (const auto& r : rows) {
    const auto run = profile_app(r.app, r.nodes);
    const auto& st = busiest(run);
    const auto avg = [](std::uint64_t bytes, std::uint64_t n) {
      return n ? bytes / n : 0;
    };
    t.row()
        .add(std::string(r.app))
        .add(st.isend_calls)
        .add(avg(st.isend_bytes, st.isend_calls))
        .add(st.irecv_calls)
        .add(avg(st.irecv_bytes, st.irecv_calls))
        .add(static_cast<std::uint64_t>(r.p[0]))
        .add(static_cast<std::uint64_t>(r.p[1]))
        .add(static_cast<std::uint64_t>(r.p[2]))
        .add(static_cast<std::uint64_t>(r.p[3]));
  }
  out.emit("Table 3: non-blocking MPI calls (busiest rank; sizes in bytes)",
           t);
  return 0;
}
