#include "bench_common.hpp"
#include "prof/recorder.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

struct ProfiledRun {
  prof::RankStats totals;
  std::vector<prof::RankStats> per_rank;
};

/// Run one paper-scale app and capture the profiler output — the same way
/// the paper produced Tables 1 and 3-6 via the MPICH logging interface.
ProfiledRun profile_app(const std::string& name, std::size_t nodes,
                        int ppn = 1) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = cluster::Net::kInfiniBand};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  ProfiledRun out;
  out.totals = c.recorder().totals();
  for (int r = 0; r < c.ranks(); ++r) {
    out.per_rank.push_back(c.recorder().rank(r));
  }
  return out;
}

/// The paper's tables report a representative (busiest) rank.
const prof::RankStats& busiest(const ProfiledRun& run) {
  const prof::RankStats* best = &run.per_rank[0];
  for (const auto& st : run.per_rank) {
    if (st.mpi_calls > best->mpi_calls) best = &st;
  }
  return *best;
}

}  // namespace

// Paper Table 4: application buffer reuse rates.
int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "reuse_pct", "wt_reuse_pct", "paper_reuse",
                 "paper_wt_reuse"});
  struct Row { const char* app; std::size_t nodes; double p[2]; };
  const Row rows[] = {
      {"is", 8, {81.08, 27.40}},    {"cg", 8, {99.99, 99.98}},
      {"mg", 8, {99.80, 99.83}},    {"lu", 8, {99.99, 99.80}},
      {"ft", 8, {86.00, 91.30}},    {"sp", 4, {99.92, 99.89}},
      {"bt", 4, {99.87, 99.83}},    {"s3d50", 8, {99.96, 99.99}},
      {"s3d150", 8, {99.99, 99.99}},
  };
  for (const auto& r : rows) {
    const auto run = profile_app(r.app, r.nodes);
    const auto& st = run.totals;
    const double pct = st.buffer_accesses
                           ? 100.0 * static_cast<double>(st.buffer_reuses) /
                                 static_cast<double>(st.buffer_accesses)
                           : 0.0;
    const double wt = st.buffer_bytes
                          ? 100.0 * static_cast<double>(st.buffer_reuse_bytes) /
                                static_cast<double>(st.buffer_bytes)
                          : 0.0;
    t.row()
        .add(std::string(r.app))
        .add(pct, 2)
        .add(wt, 2)
        .add(r.p[0], 2)
        .add(r.p[1], 2);
  }
  out.emit("Table 4: buffer reuse rate (all ranks; percentage of MPI "
           "buffer handles previously seen)",
           t);
  return 0;
}
