#include "bench_common.hpp"
#include "prof/recorder.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

struct ProfiledRun {
  prof::RankStats totals;
  std::vector<prof::RankStats> per_rank;
};

/// Run one paper-scale app and capture the profiler output — the same way
/// the paper produced Tables 1 and 3-6 via the MPICH logging interface.
ProfiledRun profile_app(const std::string& name, std::size_t nodes,
                        int ppn = 1) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = cluster::Net::kInfiniBand};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  ProfiledRun out;
  out.totals = c.recorder().totals();
  for (int r = 0; r < c.ranks(); ++r) {
    out.per_rank.push_back(c.recorder().rank(r));
  }
  return out;
}

/// The paper's tables report a representative (busiest) rank.
const prof::RankStats& busiest(const ProfiledRun& run) {
  const prof::RankStats* best = &run.per_rank[0];
  for (const auto& st : run.per_rank) {
    if (st.mpi_calls > best->mpi_calls) best = &st;
  }
  return *best;
}

}  // namespace

// Paper Table 5: collective usage per application.
int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "coll_calls", "pct_calls", "pct_volume",
                 "paper_calls", "paper_pct_calls", "paper_pct_vol"});
  struct Row { const char* app; std::size_t nodes; double p[3]; };
  const Row rows[] = {
      {"is", 8, {35, 97.22, 100.00}}, {"cg", 8, {2, 0.01, 0.00}},
      {"mg", 8, {101, 1.70, 0.03}},   {"lu", 8, {18, 0.02, 0.00}},
      {"ft", 8, {47, 100.00, 100.00}},{"sp", 4, {11, 0.09, 0.02}},
      {"bt", 4, {11, 0.22, 0.01}},    {"s3d50", 8, {39, 0.20, 0.00}},
      {"s3d150", 8, {39, 0.07, 0.00}},
  };
  for (const auto& r : rows) {
    const auto run = profile_app(r.app, r.nodes);
    const auto& st = busiest(run);
    const double pct_calls =
        st.mpi_calls ? 100.0 * static_cast<double>(st.collective_calls) /
                           static_cast<double>(st.mpi_calls)
                     : 0.0;
    const double pct_vol =
        st.total_bytes ? 100.0 * static_cast<double>(st.collective_bytes) /
                             static_cast<double>(st.total_bytes)
                       : 0.0;
    t.row()
        .add(std::string(r.app))
        .add(st.collective_calls)
        .add(pct_calls, 2)
        .add(pct_vol, 2)
        .add(r.p[0], 0)
        .add(r.p[1], 2)
        .add(r.p[2], 2);
  }
  out.emit("Table 5: MPI collective usage (busiest rank)", t);
  return 0;
}
