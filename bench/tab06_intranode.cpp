#include "bench_common.hpp"
#include "prof/recorder.hpp"

using namespace mns;
using namespace mns::bench;

namespace {

struct ProfiledRun {
  prof::RankStats totals;
  std::vector<prof::RankStats> per_rank;
};

/// Run one paper-scale app and capture the profiler output — the same way
/// the paper produced Tables 1 and 3-6 via the MPICH logging interface.
ProfiledRun profile_app(const std::string& name, std::size_t nodes,
                        int ppn = 1) {
  cluster::ClusterConfig cfg{
      .nodes = nodes, .ppn = ppn, .net = cluster::Net::kInfiniBand};
  cluster::Cluster c(cfg);
  const auto& spec = apps::find_app(name);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    co_await spec.run_full(comm, apps::Mode::kSkeleton);
  });
  ProfiledRun out;
  out.totals = c.recorder().totals();
  for (int r = 0; r < c.ranks(); ++r) {
    out.per_rank.push_back(c.recorder().rank(r));
  }
  return out;
}

/// The paper's tables report a representative (busiest) rank.
const prof::RankStats& busiest(const ProfiledRun& run) {
  const prof::RankStats* best = &run.per_rank[0];
  for (const auto& st : run.per_rank) {
    if (st.mpi_calls > best->mpi_calls) best = &st;
  }
  return *best;
}

}  // namespace

// Paper Table 6: intra-node point-to-point share with block mapping,
// 16 processes on 8 nodes (SP/BT: 16 on 8 would need square; the paper
// ran them too — we use 4 nodes x 2).
int main(int argc, char** argv) {
  const Output out = parse_output(argc, argv);
  util::Table t({"app", "intra_calls", "pct_calls", "pct_volume",
                 "paper_pct_calls", "paper_pct_vol"});
  struct Row { const char* app; std::size_t nodes; double p[2]; };
  const Row rows[] = {
      {"is", 8, {100.00, 100.00}},  {"cg", 8, {42.93, 33.41}},
      {"mg", 8, {16.25, 1.43}},     {"lu", 8, {33.16, 21.89}},
      {"ft", 8, {0.00, 0.00}},      {"sp", 8, {16.41, 16.26}},
      {"bt", 8, {16.31, 16.21}},    {"s3d50", 8, {33.29, 33.11}},
      {"s3d150", 8, {33.32, 33.47}},
  };
  for (const auto& r : rows) {
    const auto run = profile_app(r.app, r.nodes, /*ppn=*/2);
    const auto& st = run.totals;
    const double pct_calls =
        st.ptp_calls ? 100.0 * static_cast<double>(st.intra_calls) /
                           static_cast<double>(st.ptp_calls)
                     : 0.0;
    const double pct_vol =
        st.ptp_bytes ? 100.0 * static_cast<double>(st.intra_bytes) /
                           static_cast<double>(st.ptp_bytes)
                     : 0.0;
    t.row()
        .add(std::string(r.app))
        .add(st.intra_calls)
        .add(pct_calls, 2)
        .add(pct_vol, 2)
        .add(r.p[0], 2)
        .add(r.p[1], 2);
  }
  out.emit("Table 6: intra-node point-to-point share, block mapping, 2 "
           "processes per node (all ranks)",
           t);
  return 0;
}
