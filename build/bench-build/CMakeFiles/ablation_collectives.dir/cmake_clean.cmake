file(REMOVE_RECURSE
  "../bench/ablation_collectives"
  "../bench/ablation_collectives.pdb"
  "CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o"
  "CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
