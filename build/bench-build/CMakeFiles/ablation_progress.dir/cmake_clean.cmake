file(REMOVE_RECURSE
  "../bench/ablation_progress"
  "../bench/ablation_progress.pdb"
  "CMakeFiles/ablation_progress.dir/ablation_progress.cpp.o"
  "CMakeFiles/ablation_progress.dir/ablation_progress.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
