# Empty compiler generated dependencies file for ablation_progress.
# This may be replaced when dependencies are built.
