file(REMOVE_RECURSE
  "../bench/ablation_regcache"
  "../bench/ablation_regcache.pdb"
  "CMakeFiles/ablation_regcache.dir/ablation_regcache.cpp.o"
  "CMakeFiles/ablation_regcache.dir/ablation_regcache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
