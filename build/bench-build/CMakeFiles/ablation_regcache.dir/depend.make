# Empty dependencies file for ablation_regcache.
# This may be replaced when dependencies are built.
