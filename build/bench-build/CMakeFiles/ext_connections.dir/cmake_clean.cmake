file(REMOVE_RECURSE
  "../bench/ext_connections"
  "../bench/ext_connections.pdb"
  "CMakeFiles/ext_connections.dir/ext_connections.cpp.o"
  "CMakeFiles/ext_connections.dir/ext_connections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
