# Empty compiler generated dependencies file for ext_connections.
# This may be replaced when dependencies are built.
