file(REMOVE_RECURSE
  "../bench/ext_ib_multicast"
  "../bench/ext_ib_multicast.pdb"
  "CMakeFiles/ext_ib_multicast.dir/ext_ib_multicast.cpp.o"
  "CMakeFiles/ext_ib_multicast.dir/ext_ib_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ib_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
