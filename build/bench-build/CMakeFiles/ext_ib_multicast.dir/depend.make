# Empty dependencies file for ext_ib_multicast.
# This may be replaced when dependencies are built.
