file(REMOVE_RECURSE
  "../bench/ext_loggp"
  "../bench/ext_loggp.pdb"
  "CMakeFiles/ext_loggp.dir/ext_loggp.cpp.o"
  "CMakeFiles/ext_loggp.dir/ext_loggp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_loggp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
