# Empty compiler generated dependencies file for ext_loggp.
# This may be replaced when dependencies are built.
