file(REMOVE_RECURSE
  "../bench/fig01_latency"
  "../bench/fig01_latency.pdb"
  "CMakeFiles/fig01_latency.dir/fig01_latency.cpp.o"
  "CMakeFiles/fig01_latency.dir/fig01_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
