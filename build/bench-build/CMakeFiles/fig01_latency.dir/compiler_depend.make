# Empty compiler generated dependencies file for fig01_latency.
# This may be replaced when dependencies are built.
