file(REMOVE_RECURSE
  "../bench/fig02_bandwidth"
  "../bench/fig02_bandwidth.pdb"
  "CMakeFiles/fig02_bandwidth.dir/fig02_bandwidth.cpp.o"
  "CMakeFiles/fig02_bandwidth.dir/fig02_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
