file(REMOVE_RECURSE
  "../bench/fig03_overhead"
  "../bench/fig03_overhead.pdb"
  "CMakeFiles/fig03_overhead.dir/fig03_overhead.cpp.o"
  "CMakeFiles/fig03_overhead.dir/fig03_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
