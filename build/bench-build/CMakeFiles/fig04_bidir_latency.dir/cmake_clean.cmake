file(REMOVE_RECURSE
  "../bench/fig04_bidir_latency"
  "../bench/fig04_bidir_latency.pdb"
  "CMakeFiles/fig04_bidir_latency.dir/fig04_bidir_latency.cpp.o"
  "CMakeFiles/fig04_bidir_latency.dir/fig04_bidir_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bidir_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
