file(REMOVE_RECURSE
  "../bench/fig05_bidir_bandwidth"
  "../bench/fig05_bidir_bandwidth.pdb"
  "CMakeFiles/fig05_bidir_bandwidth.dir/fig05_bidir_bandwidth.cpp.o"
  "CMakeFiles/fig05_bidir_bandwidth.dir/fig05_bidir_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bidir_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
