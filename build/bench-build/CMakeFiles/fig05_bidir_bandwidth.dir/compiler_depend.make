# Empty compiler generated dependencies file for fig05_bidir_bandwidth.
# This may be replaced when dependencies are built.
