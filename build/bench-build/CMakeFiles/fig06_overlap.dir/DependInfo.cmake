
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_overlap.cpp" "bench-build/CMakeFiles/fig06_overlap.dir/fig06_overlap.cpp.o" "gcc" "bench-build/CMakeFiles/fig06_overlap.dir/fig06_overlap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microbench/CMakeFiles/mns_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mns_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mns_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mns_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mns_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/mns_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/mns_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mns_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/mns_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
