file(REMOVE_RECURSE
  "../bench/fig06_overlap"
  "../bench/fig06_overlap.pdb"
  "CMakeFiles/fig06_overlap.dir/fig06_overlap.cpp.o"
  "CMakeFiles/fig06_overlap.dir/fig06_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
