# Empty compiler generated dependencies file for fig06_overlap.
# This may be replaced when dependencies are built.
