file(REMOVE_RECURSE
  "../bench/fig07_reuse_latency"
  "../bench/fig07_reuse_latency.pdb"
  "CMakeFiles/fig07_reuse_latency.dir/fig07_reuse_latency.cpp.o"
  "CMakeFiles/fig07_reuse_latency.dir/fig07_reuse_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_reuse_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
