# Empty dependencies file for fig07_reuse_latency.
# This may be replaced when dependencies are built.
