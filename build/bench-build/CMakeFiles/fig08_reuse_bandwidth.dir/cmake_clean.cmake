file(REMOVE_RECURSE
  "../bench/fig08_reuse_bandwidth"
  "../bench/fig08_reuse_bandwidth.pdb"
  "CMakeFiles/fig08_reuse_bandwidth.dir/fig08_reuse_bandwidth.cpp.o"
  "CMakeFiles/fig08_reuse_bandwidth.dir/fig08_reuse_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_reuse_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
