# Empty dependencies file for fig08_reuse_bandwidth.
# This may be replaced when dependencies are built.
