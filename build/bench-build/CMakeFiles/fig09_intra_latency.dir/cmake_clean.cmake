file(REMOVE_RECURSE
  "../bench/fig09_intra_latency"
  "../bench/fig09_intra_latency.pdb"
  "CMakeFiles/fig09_intra_latency.dir/fig09_intra_latency.cpp.o"
  "CMakeFiles/fig09_intra_latency.dir/fig09_intra_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_intra_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
