# Empty dependencies file for fig09_intra_latency.
# This may be replaced when dependencies are built.
