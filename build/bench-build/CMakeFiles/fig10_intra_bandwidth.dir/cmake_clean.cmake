file(REMOVE_RECURSE
  "../bench/fig10_intra_bandwidth"
  "../bench/fig10_intra_bandwidth.pdb"
  "CMakeFiles/fig10_intra_bandwidth.dir/fig10_intra_bandwidth.cpp.o"
  "CMakeFiles/fig10_intra_bandwidth.dir/fig10_intra_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_intra_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
