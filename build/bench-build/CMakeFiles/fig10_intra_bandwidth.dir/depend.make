# Empty dependencies file for fig10_intra_bandwidth.
# This may be replaced when dependencies are built.
