file(REMOVE_RECURSE
  "../bench/fig11_alltoall"
  "../bench/fig11_alltoall.pdb"
  "CMakeFiles/fig11_alltoall.dir/fig11_alltoall.cpp.o"
  "CMakeFiles/fig11_alltoall.dir/fig11_alltoall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
