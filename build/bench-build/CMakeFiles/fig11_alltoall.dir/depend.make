# Empty dependencies file for fig11_alltoall.
# This may be replaced when dependencies are built.
