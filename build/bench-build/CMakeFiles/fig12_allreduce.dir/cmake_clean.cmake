file(REMOVE_RECURSE
  "../bench/fig12_allreduce"
  "../bench/fig12_allreduce.pdb"
  "CMakeFiles/fig12_allreduce.dir/fig12_allreduce.cpp.o"
  "CMakeFiles/fig12_allreduce.dir/fig12_allreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
