file(REMOVE_RECURSE
  "../bench/fig13_memory"
  "../bench/fig13_memory.pdb"
  "CMakeFiles/fig13_memory.dir/fig13_memory.cpp.o"
  "CMakeFiles/fig13_memory.dir/fig13_memory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
