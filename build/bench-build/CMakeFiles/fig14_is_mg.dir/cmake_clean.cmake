file(REMOVE_RECURSE
  "../bench/fig14_is_mg"
  "../bench/fig14_is_mg.pdb"
  "CMakeFiles/fig14_is_mg.dir/fig14_is_mg.cpp.o"
  "CMakeFiles/fig14_is_mg.dir/fig14_is_mg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_is_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
