# Empty compiler generated dependencies file for fig14_is_mg.
# This may be replaced when dependencies are built.
