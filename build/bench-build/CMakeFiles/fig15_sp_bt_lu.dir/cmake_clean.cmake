file(REMOVE_RECURSE
  "../bench/fig15_sp_bt_lu"
  "../bench/fig15_sp_bt_lu.pdb"
  "CMakeFiles/fig15_sp_bt_lu.dir/fig15_sp_bt_lu.cpp.o"
  "CMakeFiles/fig15_sp_bt_lu.dir/fig15_sp_bt_lu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_sp_bt_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
