# Empty dependencies file for fig15_sp_bt_lu.
# This may be replaced when dependencies are built.
