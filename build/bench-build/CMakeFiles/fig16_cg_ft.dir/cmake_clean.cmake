file(REMOVE_RECURSE
  "../bench/fig16_cg_ft"
  "../bench/fig16_cg_ft.pdb"
  "CMakeFiles/fig16_cg_ft.dir/fig16_cg_ft.cpp.o"
  "CMakeFiles/fig16_cg_ft.dir/fig16_cg_ft.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cg_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
