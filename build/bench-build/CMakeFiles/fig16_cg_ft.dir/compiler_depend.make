# Empty compiler generated dependencies file for fig16_cg_ft.
# This may be replaced when dependencies are built.
