file(REMOVE_RECURSE
  "../bench/fig17_sweep3d"
  "../bench/fig17_sweep3d.pdb"
  "CMakeFiles/fig17_sweep3d.dir/fig17_sweep3d.cpp.o"
  "CMakeFiles/fig17_sweep3d.dir/fig17_sweep3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_sweep3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
