# Empty dependencies file for fig17_sweep3d.
# This may be replaced when dependencies are built.
