file(REMOVE_RECURSE
  "../bench/fig18_23_speedup"
  "../bench/fig18_23_speedup.pdb"
  "CMakeFiles/fig18_23_speedup.dir/fig18_23_speedup.cpp.o"
  "CMakeFiles/fig18_23_speedup.dir/fig18_23_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_23_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
