# Empty dependencies file for fig18_23_speedup.
# This may be replaced when dependencies are built.
