file(REMOVE_RECURSE
  "../bench/fig24_topspin16"
  "../bench/fig24_topspin16.pdb"
  "CMakeFiles/fig24_topspin16.dir/fig24_topspin16.cpp.o"
  "CMakeFiles/fig24_topspin16.dir/fig24_topspin16.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_topspin16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
