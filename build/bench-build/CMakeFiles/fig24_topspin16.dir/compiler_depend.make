# Empty compiler generated dependencies file for fig24_topspin16.
# This may be replaced when dependencies are built.
