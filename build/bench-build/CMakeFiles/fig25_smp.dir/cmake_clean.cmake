file(REMOVE_RECURSE
  "../bench/fig25_smp"
  "../bench/fig25_smp.pdb"
  "CMakeFiles/fig25_smp.dir/fig25_smp.cpp.o"
  "CMakeFiles/fig25_smp.dir/fig25_smp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
