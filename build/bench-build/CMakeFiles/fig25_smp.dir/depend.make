# Empty dependencies file for fig25_smp.
# This may be replaced when dependencies are built.
