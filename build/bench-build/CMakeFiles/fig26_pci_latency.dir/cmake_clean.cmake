file(REMOVE_RECURSE
  "../bench/fig26_pci_latency"
  "../bench/fig26_pci_latency.pdb"
  "CMakeFiles/fig26_pci_latency.dir/fig26_pci_latency.cpp.o"
  "CMakeFiles/fig26_pci_latency.dir/fig26_pci_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_pci_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
