# Empty compiler generated dependencies file for fig26_pci_latency.
# This may be replaced when dependencies are built.
