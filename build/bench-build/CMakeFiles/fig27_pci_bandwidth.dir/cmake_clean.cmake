file(REMOVE_RECURSE
  "../bench/fig27_pci_bandwidth"
  "../bench/fig27_pci_bandwidth.pdb"
  "CMakeFiles/fig27_pci_bandwidth.dir/fig27_pci_bandwidth.cpp.o"
  "CMakeFiles/fig27_pci_bandwidth.dir/fig27_pci_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_pci_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
