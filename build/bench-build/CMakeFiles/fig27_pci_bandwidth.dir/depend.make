# Empty dependencies file for fig27_pci_bandwidth.
# This may be replaced when dependencies are built.
