file(REMOVE_RECURSE
  "../bench/fig28_pci_apps"
  "../bench/fig28_pci_apps.pdb"
  "CMakeFiles/fig28_pci_apps.dir/fig28_pci_apps.cpp.o"
  "CMakeFiles/fig28_pci_apps.dir/fig28_pci_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_pci_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
