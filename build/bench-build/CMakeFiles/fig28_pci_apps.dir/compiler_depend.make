# Empty compiler generated dependencies file for fig28_pci_apps.
# This may be replaced when dependencies are built.
