file(REMOVE_RECURSE
  "../bench/tab01_msgsize"
  "../bench/tab01_msgsize.pdb"
  "CMakeFiles/tab01_msgsize.dir/tab01_msgsize.cpp.o"
  "CMakeFiles/tab01_msgsize.dir/tab01_msgsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
