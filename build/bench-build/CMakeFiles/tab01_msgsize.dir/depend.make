# Empty dependencies file for tab01_msgsize.
# This may be replaced when dependencies are built.
