file(REMOVE_RECURSE
  "../bench/tab02_scalability"
  "../bench/tab02_scalability.pdb"
  "CMakeFiles/tab02_scalability.dir/tab02_scalability.cpp.o"
  "CMakeFiles/tab02_scalability.dir/tab02_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
