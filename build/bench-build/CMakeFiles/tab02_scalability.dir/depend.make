# Empty dependencies file for tab02_scalability.
# This may be replaced when dependencies are built.
