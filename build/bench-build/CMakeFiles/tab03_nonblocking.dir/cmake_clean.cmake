file(REMOVE_RECURSE
  "../bench/tab03_nonblocking"
  "../bench/tab03_nonblocking.pdb"
  "CMakeFiles/tab03_nonblocking.dir/tab03_nonblocking.cpp.o"
  "CMakeFiles/tab03_nonblocking.dir/tab03_nonblocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
