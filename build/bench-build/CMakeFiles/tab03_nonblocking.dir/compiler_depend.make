# Empty compiler generated dependencies file for tab03_nonblocking.
# This may be replaced when dependencies are built.
