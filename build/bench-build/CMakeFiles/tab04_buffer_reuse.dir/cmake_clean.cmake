file(REMOVE_RECURSE
  "../bench/tab04_buffer_reuse"
  "../bench/tab04_buffer_reuse.pdb"
  "CMakeFiles/tab04_buffer_reuse.dir/tab04_buffer_reuse.cpp.o"
  "CMakeFiles/tab04_buffer_reuse.dir/tab04_buffer_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_buffer_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
