# Empty compiler generated dependencies file for tab04_buffer_reuse.
# This may be replaced when dependencies are built.
