file(REMOVE_RECURSE
  "../bench/tab05_collectives"
  "../bench/tab05_collectives.pdb"
  "CMakeFiles/tab05_collectives.dir/tab05_collectives.cpp.o"
  "CMakeFiles/tab05_collectives.dir/tab05_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
