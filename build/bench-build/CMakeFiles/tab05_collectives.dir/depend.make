# Empty dependencies file for tab05_collectives.
# This may be replaced when dependencies are built.
