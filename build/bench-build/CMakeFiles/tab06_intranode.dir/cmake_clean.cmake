file(REMOVE_RECURSE
  "../bench/tab06_intranode"
  "../bench/tab06_intranode.pdb"
  "CMakeFiles/tab06_intranode.dir/tab06_intranode.cpp.o"
  "CMakeFiles/tab06_intranode.dir/tab06_intranode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_intranode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
