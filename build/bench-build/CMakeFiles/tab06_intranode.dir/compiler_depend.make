# Empty compiler generated dependencies file for tab06_intranode.
# This may be replaced when dependencies are built.
