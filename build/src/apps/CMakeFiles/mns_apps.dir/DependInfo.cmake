
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adi.cpp" "src/apps/CMakeFiles/mns_apps.dir/adi.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/adi.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/mns_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/mns_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/mns_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/mns_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/mns_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/mns_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sweep3d.cpp" "src/apps/CMakeFiles/mns_apps.dir/sweep3d.cpp.o" "gcc" "src/apps/CMakeFiles/mns_apps.dir/sweep3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mns_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mns_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mns_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/mns_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/mns_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mns_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/mns_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
