file(REMOVE_RECURSE
  "CMakeFiles/mns_apps.dir/adi.cpp.o"
  "CMakeFiles/mns_apps.dir/adi.cpp.o.d"
  "CMakeFiles/mns_apps.dir/cg.cpp.o"
  "CMakeFiles/mns_apps.dir/cg.cpp.o.d"
  "CMakeFiles/mns_apps.dir/ft.cpp.o"
  "CMakeFiles/mns_apps.dir/ft.cpp.o.d"
  "CMakeFiles/mns_apps.dir/is.cpp.o"
  "CMakeFiles/mns_apps.dir/is.cpp.o.d"
  "CMakeFiles/mns_apps.dir/lu.cpp.o"
  "CMakeFiles/mns_apps.dir/lu.cpp.o.d"
  "CMakeFiles/mns_apps.dir/mg.cpp.o"
  "CMakeFiles/mns_apps.dir/mg.cpp.o.d"
  "CMakeFiles/mns_apps.dir/registry.cpp.o"
  "CMakeFiles/mns_apps.dir/registry.cpp.o.d"
  "CMakeFiles/mns_apps.dir/sweep3d.cpp.o"
  "CMakeFiles/mns_apps.dir/sweep3d.cpp.o.d"
  "libmns_apps.a"
  "libmns_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
