file(REMOVE_RECURSE
  "libmns_apps.a"
)
