# Empty compiler generated dependencies file for mns_apps.
# This may be replaced when dependencies are built.
