file(REMOVE_RECURSE
  "CMakeFiles/mns_cluster.dir/cluster.cpp.o"
  "CMakeFiles/mns_cluster.dir/cluster.cpp.o.d"
  "libmns_cluster.a"
  "libmns_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
