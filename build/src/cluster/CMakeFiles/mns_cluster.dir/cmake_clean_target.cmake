file(REMOVE_RECURSE
  "libmns_cluster.a"
)
