# Empty dependencies file for mns_cluster.
# This may be replaced when dependencies are built.
