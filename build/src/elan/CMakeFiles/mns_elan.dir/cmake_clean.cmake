file(REMOVE_RECURSE
  "CMakeFiles/mns_elan.dir/elan_fabric.cpp.o"
  "CMakeFiles/mns_elan.dir/elan_fabric.cpp.o.d"
  "libmns_elan.a"
  "libmns_elan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_elan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
