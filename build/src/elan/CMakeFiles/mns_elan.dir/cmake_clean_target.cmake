file(REMOVE_RECURSE
  "libmns_elan.a"
)
