# Empty dependencies file for mns_elan.
# This may be replaced when dependencies are built.
