file(REMOVE_RECURSE
  "CMakeFiles/mns_gm.dir/gm_fabric.cpp.o"
  "CMakeFiles/mns_gm.dir/gm_fabric.cpp.o.d"
  "libmns_gm.a"
  "libmns_gm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_gm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
