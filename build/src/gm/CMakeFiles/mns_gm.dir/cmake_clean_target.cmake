file(REMOVE_RECURSE
  "libmns_gm.a"
)
