# Empty compiler generated dependencies file for mns_gm.
# This may be replaced when dependencies are built.
