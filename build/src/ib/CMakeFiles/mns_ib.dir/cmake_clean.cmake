file(REMOVE_RECURSE
  "CMakeFiles/mns_ib.dir/ib_fabric.cpp.o"
  "CMakeFiles/mns_ib.dir/ib_fabric.cpp.o.d"
  "libmns_ib.a"
  "libmns_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
