file(REMOVE_RECURSE
  "libmns_ib.a"
)
