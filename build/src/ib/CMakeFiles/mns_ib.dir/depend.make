# Empty dependencies file for mns_ib.
# This may be replaced when dependencies are built.
