file(REMOVE_RECURSE
  "CMakeFiles/mns_microbench.dir/logp.cpp.o"
  "CMakeFiles/mns_microbench.dir/logp.cpp.o.d"
  "CMakeFiles/mns_microbench.dir/microbench.cpp.o"
  "CMakeFiles/mns_microbench.dir/microbench.cpp.o.d"
  "libmns_microbench.a"
  "libmns_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
