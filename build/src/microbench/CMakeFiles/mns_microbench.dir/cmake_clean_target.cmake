file(REMOVE_RECURSE
  "libmns_microbench.a"
)
