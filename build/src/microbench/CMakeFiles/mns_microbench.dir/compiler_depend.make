# Empty compiler generated dependencies file for mns_microbench.
# This may be replaced when dependencies are built.
