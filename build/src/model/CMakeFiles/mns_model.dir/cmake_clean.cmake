file(REMOVE_RECURSE
  "CMakeFiles/mns_model.dir/bus.cpp.o"
  "CMakeFiles/mns_model.dir/bus.cpp.o.d"
  "CMakeFiles/mns_model.dir/netfabric.cpp.o"
  "CMakeFiles/mns_model.dir/netfabric.cpp.o.d"
  "CMakeFiles/mns_model.dir/nic_tlb.cpp.o"
  "CMakeFiles/mns_model.dir/nic_tlb.cpp.o.d"
  "CMakeFiles/mns_model.dir/regcache.cpp.o"
  "CMakeFiles/mns_model.dir/regcache.cpp.o.d"
  "libmns_model.a"
  "libmns_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
