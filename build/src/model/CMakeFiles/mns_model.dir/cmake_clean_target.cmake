file(REMOVE_RECURSE
  "libmns_model.a"
)
