# Empty dependencies file for mns_model.
# This may be replaced when dependencies are built.
