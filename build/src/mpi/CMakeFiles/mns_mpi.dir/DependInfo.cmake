
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/ch_elan.cpp" "src/mpi/CMakeFiles/mns_mpi.dir/ch_elan.cpp.o" "gcc" "src/mpi/CMakeFiles/mns_mpi.dir/ch_elan.cpp.o.d"
  "/root/repo/src/mpi/ch_factories.cpp" "src/mpi/CMakeFiles/mns_mpi.dir/ch_factories.cpp.o" "gcc" "src/mpi/CMakeFiles/mns_mpi.dir/ch_factories.cpp.o.d"
  "/root/repo/src/mpi/ch_rdv.cpp" "src/mpi/CMakeFiles/mns_mpi.dir/ch_rdv.cpp.o" "gcc" "src/mpi/CMakeFiles/mns_mpi.dir/ch_rdv.cpp.o.d"
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/mns_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/mns_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/mns_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/mns_mpi.dir/comm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mns_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/mns_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/gm/CMakeFiles/mns_gm.dir/DependInfo.cmake"
  "/root/repo/build/src/elan/CMakeFiles/mns_elan.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/mns_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
