file(REMOVE_RECURSE
  "CMakeFiles/mns_mpi.dir/ch_elan.cpp.o"
  "CMakeFiles/mns_mpi.dir/ch_elan.cpp.o.d"
  "CMakeFiles/mns_mpi.dir/ch_factories.cpp.o"
  "CMakeFiles/mns_mpi.dir/ch_factories.cpp.o.d"
  "CMakeFiles/mns_mpi.dir/ch_rdv.cpp.o"
  "CMakeFiles/mns_mpi.dir/ch_rdv.cpp.o.d"
  "CMakeFiles/mns_mpi.dir/collectives.cpp.o"
  "CMakeFiles/mns_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/mns_mpi.dir/comm.cpp.o"
  "CMakeFiles/mns_mpi.dir/comm.cpp.o.d"
  "libmns_mpi.a"
  "libmns_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
