file(REMOVE_RECURSE
  "libmns_mpi.a"
)
