# Empty dependencies file for mns_mpi.
# This may be replaced when dependencies are built.
