file(REMOVE_RECURSE
  "CMakeFiles/mns_prof.dir/recorder.cpp.o"
  "CMakeFiles/mns_prof.dir/recorder.cpp.o.d"
  "CMakeFiles/mns_prof.dir/trace.cpp.o"
  "CMakeFiles/mns_prof.dir/trace.cpp.o.d"
  "libmns_prof.a"
  "libmns_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
