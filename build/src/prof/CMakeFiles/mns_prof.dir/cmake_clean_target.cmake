file(REMOVE_RECURSE
  "libmns_prof.a"
)
