# Empty compiler generated dependencies file for mns_prof.
# This may be replaced when dependencies are built.
