file(REMOVE_RECURSE
  "CMakeFiles/mns_sim.dir/engine.cpp.o"
  "CMakeFiles/mns_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mns_sim.dir/time.cpp.o"
  "CMakeFiles/mns_sim.dir/time.cpp.o.d"
  "libmns_sim.a"
  "libmns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
