file(REMOVE_RECURSE
  "libmns_sim.a"
)
