# Empty compiler generated dependencies file for mns_sim.
# This may be replaced when dependencies are built.
