# Empty dependencies file for mns_sim.
# This may be replaced when dependencies are built.
