file(REMOVE_RECURSE
  "CMakeFiles/mns_util.dir/bytes.cpp.o"
  "CMakeFiles/mns_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mns_util.dir/flags.cpp.o"
  "CMakeFiles/mns_util.dir/flags.cpp.o.d"
  "CMakeFiles/mns_util.dir/stats.cpp.o"
  "CMakeFiles/mns_util.dir/stats.cpp.o.d"
  "CMakeFiles/mns_util.dir/table.cpp.o"
  "CMakeFiles/mns_util.dir/table.cpp.o.d"
  "libmns_util.a"
  "libmns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
