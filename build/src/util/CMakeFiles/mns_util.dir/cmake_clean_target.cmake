file(REMOVE_RECURSE
  "libmns_util.a"
)
