# Empty compiler generated dependencies file for mns_util.
# This may be replaced when dependencies are built.
