# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_p2p_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_stress_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_ext_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_internals_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
