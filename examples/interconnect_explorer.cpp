// Interconnect explorer: sweep any micro-benchmark over a size range on a
// chosen network and bus — the tool you reach for when asking "what would
// this fabric do for my message size?"
//
//   ./build/examples/interconnect_explorer --bench=latency --net=qsn
//   ./build/examples/interconnect_explorer --bench=bandwidth --net=ib \
//       --bus=pci --from=1K --to=1M --window=32
//
// Benches: latency, bandwidth, bidir_latency, bidir_bandwidth, overhead,
//          overlap, intra_latency, intra_bandwidth, alltoall, allreduce.
#include <iostream>
#include <string>

#include "microbench/microbench.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace mns;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string bench = flags.get("bench", "latency");
  const cluster::Net net = cluster::parse_net(flags.get("net", "ib"));
  const std::string bus_s = flags.get("bus", "default");
  const auto from = flags.get_size("from", 4);
  const auto to = flags.get_size("to", 64 << 10);
  microbench::Options opt;
  opt.window = static_cast<int>(flags.get_int("window", 16));
  opt.nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const int reuse = static_cast<int>(flags.get_int("reuse", 100));
  flags.reject_unknown();

  if (bus_s == "pci") {
    opt.bus = cluster::Bus::kPci66;
  } else if (bus_s == "pcix") {
    opt.bus = cluster::Bus::kPcix133;
  } else if (bus_s != "default") {
    std::cerr << "bad --bus (want default|pci|pcix)\n";
    return 1;
  }

  const auto sizes = util::size_sweep(from, to);
  std::vector<microbench::Point> pts;
  std::string unit;
  if (bench == "latency") {
    pts = microbench::latency(net, sizes, opt);
    unit = "us";
  } else if (bench == "bandwidth") {
    pts = microbench::bandwidth(net, sizes, opt);
    unit = "MB/s";
  } else if (bench == "bidir_latency") {
    pts = microbench::bidir_latency(net, sizes, opt);
    unit = "us";
  } else if (bench == "bidir_bandwidth") {
    pts = microbench::bidir_bandwidth(net, sizes, opt);
    unit = "MB/s";
  } else if (bench == "overhead") {
    pts = microbench::host_overhead(net, sizes, opt);
    unit = "us";
  } else if (bench == "overlap") {
    pts = microbench::overlap_potential(net, sizes, opt);
    unit = "us";
  } else if (bench == "intra_latency") {
    pts = microbench::intranode_latency(net, sizes, opt);
    unit = "us";
  } else if (bench == "intra_bandwidth") {
    pts = microbench::intranode_bandwidth(net, sizes, opt);
    unit = "MB/s";
  } else if (bench == "alltoall") {
    pts = microbench::alltoall_latency(net, sizes, opt);
    unit = "us";
  } else if (bench == "allreduce") {
    pts = microbench::allreduce_latency(net, sizes, opt);
    unit = "us";
  } else if (bench == "reuse_latency") {
    pts = microbench::buffer_reuse_latency(net, sizes, reuse, opt);
    unit = "us";
  } else {
    std::cerr << "unknown --bench '" << bench << "'\n";
    return 1;
  }

  util::Table t({"size", bench + "_" + unit});
  for (const auto& p : pts) {
    t.row().add(util::size_label(p.size)).add(p.value, 2);
  }
  std::cout << bench << " on " << cluster::net_name(net) << " ("
            << opt.nodes << " nodes";
  if (bus_s != "default") std::cout << ", bus " << bus_s;
  std::cout << ")\n";
  t.print(std::cout);
  return 0;
}
