// NAS tour: run any of the application kernels — with REAL verified
// numerics at a test size, or the full class-B communication skeleton —
// on a cluster of your choosing, and report time, verification, and the
// profiler's view of its communication.
//
//   ./build/examples/nas_tour --app=cg --net=myri --nodes=8
//   ./build/examples/nas_tour --app=ft --full --nodes=8
//   ./build/examples/nas_tour --app=lu --nodes=4 --ppn=2
//   ./build/examples/nas_tour --app=cg --trace=cg_timeline.csv
#include <cstdio>
#include <fstream>
#include <string>

#include "prof/trace.hpp"

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"
#include "util/flags.hpp"

using namespace mns;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string app = flags.get("app", "cg");
  cluster::ClusterConfig cfg;
  cfg.net = cluster::parse_net(flags.get("net", "ib"));
  cfg.nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  cfg.ppn = static_cast<int>(flags.get_int("ppn", 1));
  const bool full = flags.get_bool("full", false);
  const std::string trace_path = flags.get("trace", "");
  flags.reject_unknown();

  const auto& spec = apps::find_app(app);
  cluster::Cluster c(cfg);
  if (!spec.ranks_ok(c.ranks())) {
    std::fprintf(stderr, "%s cannot run on %d ranks\n", app.c_str(),
                 c.ranks());
    return 1;
  }

  prof::Tracer tracer;
  if (!trace_path.empty()) c.mpi().set_tracer(&tracer);

  // Skeleton for full scale (class B would not fit in host memory as real
  // arrays); real verified numerics at the test size.
  const apps::Mode mode = full ? apps::Mode::kSkeleton : apps::Mode::kReal;
  apps::AppResult result;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    auto& fn = full ? spec.run_full : spec.run_test;
    auto r = co_await fn(comm, mode);
    if (comm.rank() == 0) result = r;
  });

  std::printf("%s on %d x %s (%s, %s scale)\n", app.c_str(), c.ranks(),
              cluster::net_name(cfg.net),
              full ? "skeleton" : "real numerics",
              full ? "class B/paper" : "test");
  std::printf("  simulated time : %.3f s\n", result.app_seconds);
  if (!full) {
    std::printf("  verified       : %s\n", result.verified ? "YES" : "NO");
    std::printf("  checksum       : %.6g\n", result.checksum);
  }

  const auto totals = c.recorder().totals();
  std::printf("  MPI calls      : %llu (%llu collective)\n",
              static_cast<unsigned long long>(totals.mpi_calls),
              static_cast<unsigned long long>(totals.collective_calls));
  std::printf("  volume         : %.1f MB (%.1f%% collective)\n",
              static_cast<double>(totals.total_bytes) / (1 << 20),
              totals.total_bytes
                  ? 100.0 * static_cast<double>(totals.collective_bytes) /
                        static_cast<double>(totals.total_bytes)
                  : 0.0);
  std::printf("  buffer reuse   : %.2f%%\n",
              totals.buffer_accesses
                  ? 100.0 * static_cast<double>(totals.buffer_reuses) /
                        static_cast<double>(totals.buffer_accesses)
                  : 0.0);
  if (cfg.ppn > 1) {
    std::printf("  intra-node p2p : %.1f%% of calls\n",
                totals.ptp_calls
                    ? 100.0 * static_cast<double>(totals.intra_calls) /
                          static_cast<double>(totals.ptp_calls)
                    : 0.0);
  }
  std::printf("  host events    : %llu simulated\n",
              static_cast<unsigned long long>(
                  c.engine().events_processed()));

  if (!trace_path.empty()) {
    std::ofstream f(trace_path);
    tracer.write_csv(f);
    std::printf("  trace          : %zu events -> %s\n",
                tracer.events().size(), trace_path.c_str());
    // Communication matrix (MB sent rank->rank) and time breakdown.
    const auto m = tracer.comm_matrix(c.ranks());
    std::printf("  comm matrix (MB sent):\n");
    for (int r = 0; r < c.ranks(); ++r) {
      std::printf("    r%-2d", r);
      for (int d = 0; d < c.ranks(); ++d) {
        std::printf(" %7.2f", static_cast<double>(m[r][d]) / (1 << 20));
      }
      std::printf("\n");
    }
    const auto bd = tracer.breakdown(c.ranks());
    std::printf("  per-rank time  : compute / MPI / idle (s)\n");
    for (int r = 0; r < c.ranks(); ++r) {
      std::printf("    r%-2d %8.3f %8.3f %8.3f\n", r, bd[r].compute_s,
                  bd[r].mpi_s, bd[r].idle_s());
    }
  }
  return result.verified || full ? 0 : 1;
}
