// Overlap study: a self-contained demonstration of the paper's deepest
// point (Section 3.4 / Fig. 6) — WHY Quadrics overlaps communication with
// computation and InfiniBand/Myrinet plateau.
//
// A rank posts a large isend+irecv exchange, computes for a configurable
// time, then waits. We print the effective round time as computation
// grows: on IB/GM the rendezvous handshake sits frozen while the host
// computes, so past a small slack every extra microsecond of computation
// is a microsecond of extra round time. On Quadrics the Elan NIC runs the
// protocol itself and the transfer hides completely under computation.
//
//   ./build/examples/overlap_study [--size=64K]
#include <cstdio>

#include "cluster/cluster.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"

using namespace mns;
using mpi::Comm;
using mpi::Request;
using mpi::View;
using sim::Task;

namespace {

double timed_round(cluster::Net net, std::uint64_t size, double comp_us) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = net};
  cluster::Cluster c(cfg);
  double us = 0;
  c.run([&](Comm& comm) -> Task<void> {
    const int peer = 1 - comm.rank();
    const View sbuf = View::synth(0x100000 + comm.rank(), size);
    const View rbuf = View::synth(0x200000 + comm.rank(), size);
    co_await comm.barrier();
    const int iters = 8;
    const double t0 = comm.wtime();
    for (int i = 0; i < iters; ++i) {
      Request rreq = co_await comm.irecv(rbuf, peer, 0);
      Request sreq = co_await comm.isend(sbuf, peer, 0);
      if (comp_us > 0) co_await comm.compute(comp_us * 1e-6);
      co_await comm.wait(sreq);
      co_await comm.wait(rreq);
    }
    if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
  });
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::uint64_t size = flags.get_size("size", 64 << 10);
  flags.reject_unknown();

  std::printf("exchange of %llu bytes + N us of computation, per-round "
              "time (us):\n\n",
              static_cast<unsigned long long>(size));
  std::printf("%10s %10s %10s %10s\n", "compute", "IBA", "Myri", "QSN");
  const double base_ib = timed_round(cluster::Net::kInfiniBand, size, 0);
  for (double comp : {0.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    std::printf("%10.0f %10.1f %10.1f %10.1f\n", comp,
                timed_round(cluster::Net::kInfiniBand, size, comp),
                timed_round(cluster::Net::kMyrinet, size, comp),
                timed_round(cluster::Net::kQuadrics, size, comp));
  }
  std::printf(
      "\nReading the table: a column that stays flat while 'compute' grows "
      "is hiding the transfer under computation (NIC-driven progress); a "
      "column tracking compute + %.0f us is serializing them (host-driven "
      "rendezvous).\n",
      base_ib);
  return 0;
}
