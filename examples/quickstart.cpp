// Quickstart: build a simulated cluster, run an MPI program on it, and
// read out timings — in about forty lines.
//
//   ./build/examples/quickstart [--net=ib|myri|qsn] [--nodes=8]
#include <cstdio>
#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/flags.hpp"

using namespace mns;
using mpi::Comm;
using mpi::View;
using sim::Task;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  cluster::ClusterConfig cfg;
  cfg.net = cluster::parse_net(flags.get("net", "ib"));
  cfg.nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  flags.reject_unknown();

  cluster::Cluster cluster(cfg);
  std::printf("cluster: %zu nodes over %s\n", cfg.nodes,
              cluster::net_name(cfg.net));

  // Every rank runs this coroutine inside the simulation. It is ordinary
  // MPI-looking code: a ring pass of real data, then a reduction.
  std::vector<double> ring_latency_us(static_cast<std::size_t>(cluster.ranks()));
  cluster.run([&](Comm& comm) -> Task<void> {
    const int me = comm.rank();
    const int np = comm.size();

    // Pass a token around the ring 10 times and time it.
    int token = 0;
    const double t0 = comm.wtime();
    for (int lap = 0; lap < 10; ++lap) {
      if (me == 0) {
        ++token;
        co_await comm.send(View::in(&token, 4), (me + 1) % np, 0);
        co_await comm.recv(View::out(&token, 4), np - 1, 0);
      } else {
        co_await comm.recv(View::out(&token, 4), me - 1, 0);
        ++token;
        co_await comm.send(View::in(&token, 4), (me + 1) % np, 0);
      }
    }
    const double per_hop_us =
        (comm.wtime() - t0) / (10.0 * np) * 1e6;
    ring_latency_us[static_cast<std::size_t>(me)] = per_hop_us;

    // A real allreduce over real data.
    double value = me + 1.0;
    co_await comm.allreduce(View::out(&value, 8), 1, mpi::Dtype::kDouble,
                            mpi::ROp::kSum);
    if (me == 0) {
      std::printf("allreduce sum of ranks+1 = %.0f (expected %d)\n", value,
                  np * (np + 1) / 2);
      std::printf("token after 10 laps      = %d (expected %d)\n", token,
                  10 * np);
    }
  });

  std::printf("per-hop ring latency      = %.2f us\n", ring_latency_us[0]);
  std::printf("simulated time            = %.1f us\n",
              cluster.engine().now().to_us());
  std::printf("events processed          = %llu\n",
              static_cast<unsigned long long>(
                  cluster.engine().events_processed()));
  return 0;
}
