// Task farm: a manager/worker pattern exercising the dynamic parts of the
// API the regular benchmarks do not touch — probe for unknown-size
// results, wildcard receives, variable message sizes — on any network.
//
// The manager hands out "work units" (random-size payloads); each worker
// computes for a time proportional to the payload and returns a result of
// a size the manager cannot know in advance, so it probes first.
//
//   ./build/examples/task_farm --net=myri --nodes=8 --units=64
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace mns;
using mpi::Comm;
using mpi::View;
using sim::Task;

namespace {
constexpr int kWork = 1;
constexpr int kResult = 2;
constexpr int kStop = 3;
}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  cluster::ClusterConfig cfg;
  cfg.net = cluster::parse_net(flags.get("net", "ib"));
  cfg.nodes = static_cast<std::size_t>(flags.get_int("nodes", 8));
  const int units = static_cast<int>(flags.get_int("units", 64));
  flags.reject_unknown();

  cluster::Cluster c(cfg);
  long total_checksum = 0;
  int completed = 0;

  c.run([&](Comm& comm) -> Task<> {
    const int np = comm.size();
    if (comm.rank() == 0) {
      // ----- manager -----
      util::Rng rng(42);
      int issued = 0, done = 0;
      // Prime every worker with one unit.
      std::vector<std::int32_t> unit;
      auto send_unit = [&](int worker) -> Task<> {
        const std::uint64_t n = 64 + rng.below(16 << 10);
        unit.assign(n, static_cast<std::int32_t>(issued));
        co_await comm.send(View::in(unit.data(), n * 4), worker, kWork);
        ++issued;
      };
      for (int w = 1; w < np && issued < units; ++w) {
        co_await send_unit(w);
      }
      while (done < issued) {
        // Result size is unknown: probe, then size the buffer.
        const auto st = co_await comm.probe(mpi::kAnySource, kResult);
        std::vector<std::int64_t> result(st.bytes / 8);
        co_await comm.recv(View::out(result.data(), st.bytes), st.source,
                           kResult);
        total_checksum += result.empty() ? 0 : result[0];
        ++done;
        if (issued < units) {
          co_await send_unit(st.source);
        }
      }
      completed = done;
      // Tell everyone to stop.
      for (int w = 1; w < np; ++w) {
        int zero = 0;
        co_await comm.send(View::in(&zero, 4), w, kStop);
      }
    } else {
      // ----- worker -----
      for (;;) {
        const auto st = co_await comm.probe(0, mpi::kAnyTag);
        if (st.tag == kStop) {
          int sink = 0;
          co_await comm.recv(View::out(&sink, 4), 0, kStop);
          break;
        }
        std::vector<std::int32_t> work(st.bytes / 4);
        co_await comm.recv(View::out(work.data(), st.bytes), 0, kWork);
        // "Compute" proportional to the unit size, then build a result
        // whose size depends on the data.
        co_await comm.compute(static_cast<double>(work.size()) * 2e-9);
        long sum = 0;
        for (const auto v : work) sum += v;
        std::vector<std::int64_t> result(1 + work.size() % 173, sum);
        co_await comm.send(View::in(result.data(), result.size() * 8), 0,
                           kResult);
      }
    }
  });

  std::printf("task farm on %zu x %s: %d/%d units, checksum %ld\n",
              cfg.nodes, cluster::net_name(cfg.net), completed, units,
              total_checksum);
  std::printf("simulated makespan: %.3f ms\n",
              c.engine().now().to_us() / 1000.0);
  return completed == units ? 0 : 1;
}
