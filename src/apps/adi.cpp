#include "apps/adi.hpp"

#include <cmath>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::Request;
using mpi::View;

namespace {
enum : int { kCoef = 1, kBack = 2, kNorm = 3 };
}  // namespace

sim::Task<AppResult> run_adi(Comm& comm, AdiParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  const int q = static_cast<int>(std::lround(std::sqrt(np)));
  if (q * q != np) {
    throw std::invalid_argument("SP/BT require a square rank count");
  }
  // Grid over (y,z); x is fully local.
  const int gy = me % q, gz = me / q;
  const BlockRange yb = block_range(p.n, q, gy);
  const BlockRange zb = block_range(p.n, q, gz);
  const int nx = p.n;
  const int nyl = static_cast<int>(yb.size());
  const int nzl = static_cast<int>(zb.size());
  const double tau = 0.4;

  auto idx = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * nyl + j) * nx + i;
  };
  std::vector<double> u, rhs;
  if (real) {
    u.assign(static_cast<std::size_t>(nx) * nyl * nzl, 0.0);
    rhs.resize(u.size());
    util::Rng rng(0xAD1 + static_cast<unsigned>(me));
    for (auto& v : rhs) v = rng.uniform() - 0.5;
  }

  // Local Thomas solve along x for every (j,k) line: u = (I+2t I -t L)^-1 rhs.
  auto solve_x = [&]() -> sim::Task<void> {
    co_await comm.compute(static_cast<double>(nx) * nyl * nzl *
                          p.sec_per_point);
    if (!real) co_return;
    std::vector<double> cp(static_cast<std::size_t>(nx));
    const double dg = 1.0 + 2.0 * tau, off = -tau;
    for (int k = 0; k < nzl; ++k) {
      for (int j = 0; j < nyl; ++j) {
        cp[0] = off / dg;
        u[idx(0, j, k)] /= dg;
        for (int i = 1; i < nx; ++i) {
          const double m = dg - off * cp[static_cast<std::size_t>(i - 1)];
          cp[static_cast<std::size_t>(i)] = off / m;
          u[idx(i, j, k)] =
              (u[idx(i, j, k)] - off * u[idx(i - 1, j, k)]) / m;
        }
        for (int i = nx - 2; i >= 0; --i) {
          u[idx(i, j, k)] -=
              cp[static_cast<std::size_t>(i)] * u[idx(i + 1, j, k)];
        }
      }
    }
  };

  // Distributed Thomas along axis (1=y over grid column, 2=z over grid
  // row), pipelined in `q` blocks of the orthogonal local dimension so
  // ranks overlap (multipartition flavour). Two message phases per block:
  // forward coefficients downstream, back-substitution values upstream.
  auto solve_dist = [&](int axis) -> sim::Task<void> {
    // Multipartition flavour: each rank owns diagonally-shifted cells, so
    // the sweep wraps around the grid — every rank sends at every stage
    // (ring neighbours; grid is rank = gz*q + gy).
    const int pos = axis == 1 ? gy : gz;
    const int prev_pos = (pos - 1 + q) % q;
    const int next_pos = (pos + 1) % q;
    const int prev_r = axis == 1 ? gz * q + prev_pos : prev_pos * q + gy;
    const int next_r = axis == 1 ? gz * q + next_pos : next_pos * q + gy;

    if (q == 1) {  // single rank along the axis: purely local solve
      co_await comm.compute(static_cast<double>(nx) * nyl * nzl *
                            p.sec_per_point);
      co_return;
    }
    const int n_axis_local = axis == 1 ? nyl : nzl;
    const int n_orth = axis == 1 ? nzl : nyl;
    const int blocks = p.pipeline_blocks;  // multipartition stages

    std::vector<double> coef;  // 2 doubles per line in the block
    for (int blk = 0; blk < blocks; ++blk) {
      const BlockRange ob = block_range(n_orth, blocks, blk);
      const std::uint64_t lines =
          static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ob.size());
      // Each stage carries the full face of its cell: all solution
      // components plus the elimination coefficients.
      const std::uint64_t msg_bytes =
          lines * static_cast<std::uint64_t>(p.vars) * 8 * 2;
      // Forward elimination. The sweep-start rank (pos 0) injects before
      // receiving the wrapped face, so the ring pipeline never deadlocks.
      std::vector<double> outbuf;
      if (real) outbuf.assign(msg_bytes / 8, 0.5);
      View sv = real ? View::in(outbuf.data(), msg_bytes)
                     : View::synth(synth_addr(me, kCoef + axis * 8 + blk,
                                              1 << 16),
                                   msg_bytes);
      if (real) coef.resize(msg_bytes / 8);
      View rv = real ? View::out(coef.data(), msg_bytes)
                     : View::synth(synth_addr(me, kCoef + axis * 8 + blk),
                                   msg_bytes);
      if (pos == 0) {
        co_await comm.send(sv, next_r, 910 + axis);
        co_await comm.recv(rv, prev_r, 910 + axis);
        co_await comm.compute(static_cast<double>(lines) * n_axis_local *
                              p.sec_per_point / 2);
      } else {
        co_await comm.recv(rv, prev_r, 910 + axis);
        co_await comm.compute(static_cast<double>(lines) * n_axis_local *
                              p.sec_per_point / 2);
        co_await comm.send(sv, next_r, 910 + axis);
      }
    }
    // Back substitution (reverse direction).
    for (int blk = 0; blk < blocks; ++blk) {
      const BlockRange ob = block_range(n_orth, blocks, blk);
      const std::uint64_t lines =
          static_cast<std::uint64_t>(nx) * static_cast<std::uint64_t>(ob.size());
      const std::uint64_t msg_bytes =
          lines * static_cast<std::uint64_t>(p.vars) * 8;
      // Back substitution flows the other way: pos q-1 starts the ring.
      std::vector<double> outbuf;
      if (real) outbuf.assign(msg_bytes / 8, 0.25);
      View sv = real ? View::in(outbuf.data(), msg_bytes)
                     : View::synth(synth_addr(me, kBack + axis * 8 + blk,
                                              1 << 16),
                                   msg_bytes);
      if (real) coef.resize(msg_bytes / 8);
      View rv = real ? View::out(coef.data(), msg_bytes)
                     : View::synth(synth_addr(me, kBack + axis * 8 + blk),
                                   msg_bytes);
      if (pos == q - 1) {
        Request sq = co_await comm.isend(sv, prev_r, 920 + axis);
        Request rq = co_await comm.irecv(rv, next_r, 920 + axis);
        co_await comm.compute(static_cast<double>(lines) * n_axis_local *
                              p.sec_per_point / 2);
        co_await comm.wait(sq);
        co_await comm.wait(rq);
      } else {
        Request rq = co_await comm.irecv(rv, next_r, 920 + axis);
        co_await comm.wait(rq);
        co_await comm.compute(static_cast<double>(lines) * n_axis_local *
                              p.sec_per_point / 2);
        Request sq = co_await comm.isend(sv, prev_r, 920 + axis);
        co_await comm.wait(sq);
      }
    }
    // The numeric content of the distributed stage: implicit line
    // relaxation along this axis over the local extent (boundary lines
    // one-sided; the coefficient messages above carry the coupling in the
    // real solver, whose schedule we reproduce exactly).
    if (real) {
      const double dg = 1.0 + 2.0 * tau;
      for (int k = 0; k < nzl; ++k) {
        for (int j = 0; j < nyl; ++j) {
          for (int i = 0; i < nx; ++i) {
            double nb = 0;
            if (axis == 1) {
              if (j > 0) nb += u[idx(i, j - 1, k)];
              if (j + 1 < nyl) nb += u[idx(i, j + 1, k)];
            } else {
              if (k > 0) nb += u[idx(i, j, k - 1)];
              if (k + 1 < nzl) nb += u[idx(i, j, k + 1)];
            }
            u[idx(i, j, k)] = (u[idx(i, j, k)] + tau * nb) / dg;
          }
        }
      }
    }
  };

  co_await comm.barrier();
  const double t0 = comm.wtime();

  double prev_delta = 0;
  bool contracting = true;
  std::vector<double> u_old;
  for (int iter = 0; iter < p.iterations; ++iter) {
    if (real) {
      u_old = u;
      // rhs stage: u += tau * (b - A u), damped (explicit part of ADI).
      for (int k = 0; k < nzl; ++k) {
        for (int j = 0; j < nyl; ++j) {
          for (int i = 0; i < nx; ++i) {
            u[idx(i, j, k)] =
                0.8 * u[idx(i, j, k)] + 0.2 * tau * rhs[idx(i, j, k)];
          }
        }
      }
    }
    co_await comm.compute(static_cast<double>(nx) * nyl * nzl *
                          p.sec_per_point);
    co_await solve_x();
    co_await solve_dist(1);
    co_await solve_dist(2);

    // Periodic convergence norm (the paper's ~11 collective calls).
    if (iter == 0 || iter == p.iterations - 1 ||
        (iter + 1) % std::max(1, p.iterations / 10) == 0) {
      double d = 0;
      if (real) {
        for (std::size_t i = 0; i < u.size(); ++i) {
          const double e = u[i] - u_old[i];
          d += e * e;
        }
      }
      View dv = real ? View::out(&d, 8) : View::synth(synth_addr(me, kNorm), 8);
      co_await comm.allreduce(dv, 1, Dtype::kDouble, ROp::kSum);
      if (real) {
        if (iter == 0) {
          prev_delta = d;
        } else if (d > prev_delta) {
          contracting = false;
        }
      }
    }
  }

  AppResult out;
  out.app_seconds = comm.wtime() - t0;
  if (real) {
    double s = 0;
    for (const double v : u) s += v * v;
    co_await comm.allreduce(View::out(&s, 8), 1, Dtype::kDouble, ROp::kSum);
    out.checksum = std::sqrt(s);
    out.verified = contracting && std::isfinite(out.checksum);
  }
  co_return out;
}

}  // namespace mns::apps
