// SP / BT — NAS ADI-style solvers.
//
// Both factorize a 3D implicit operator into per-direction line solves
// (SP: scalar pentadiagonal, BT: block tridiagonal). We implement one
// shared ADI heat-equation solver over a square 2D process grid: the x
// solve is local, while the y and z solves pipeline Thomas-algorithm
// boundary coefficients across the grid in blocks — the ~260 KB
// non-blocking face messages of Tables 1 and 3. SP and BT differ in
// iteration count, per-point work, and message payload width, exactly the
// knobs NPB separates them by.
//
// Real mode marches the heat equation toward steady state and verifies
// the step-to-step change decreases monotonically in norm.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct AdiParams {
  int n;              // global cube dimension
  int iterations;
  int vars;           // solution components per point (SP: 5, BT: 5 blocks)
  int pipeline_blocks;   // multipartition stages per distributed sweep
  double sec_per_point;  // compute model: per point per direction sweep

  static AdiParams sp_test() { return AdiParams{24, 4, 5, 6, 7.8e-7}; }
  static AdiParams sp_class_b() { return AdiParams{102, 400, 5, 6, 7.8e-7}; }
  static AdiParams bt_test() { return AdiParams{24, 4, 5, 5, 1.77e-6}; }
  static AdiParams bt_class_b() { return AdiParams{102, 250, 5, 5, 1.77e-6}; }
};

sim::Task<AppResult> run_adi(mpi::Comm& comm, AdiParams p, Mode mode);

}  // namespace mns::apps
