// Application-benchmark framework.
//
// Each application (the NAS kernels and Sweep3D) is implemented once, with
// two execution modes:
//
//   kReal:     buffers are real memory, the numerics actually run, and the
//              result is verified (residual drops, sort order, inverse
//              transform round-trips). Used by tests and examples at small
//              problem sizes.
//   kSkeleton: the identical control flow and message schedule at full
//              class-B dimensions, but buffers are synthetic Views and the
//              arithmetic is skipped. Computation *time* is still charged
//              through the per-app compute model, so simulated execution
//              times have class-B shape without allocating class-B memory.
//
// Computation cost is network-independent: each app charges
// `comm.compute(work_units * sec_per_unit)` with a single per-app
// sec_per_unit constant calibrated so the 8-node class-B InfiniBand
// totals land on the paper's Table 2; every other (network, nodes)
// combination is then a genuine model prediction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "sim/task.hpp"

namespace mns::apps {

enum class Mode { kReal, kSkeleton };

struct AppResult {
  bool verified = true;      // real mode: numeric checks passed
  double checksum = 0.0;     // representative scalar for determinism tests
  double app_seconds = 0.0;  // simulated wall time of the timed section
};

/// Helper: synthetic buffer address space for skeleton mode. Each rank and
/// logical array gets a stable identity so the registration-cache / MMU /
/// reuse models see the same pattern a real run would.
constexpr std::uint64_t synth_addr(int rank, int array_id,
                                   std::uint64_t offset = 0) {
  return 0x4000'0000'0000ULL + (static_cast<std::uint64_t>(rank) << 32) +
         (static_cast<std::uint64_t>(array_id) << 24) + offset;
}

/// View over a real vector or a synthetic identity, depending on mode.
template <class T>
mpi::View buf_view(Mode mode, std::vector<T>& storage, int rank,
                   int array_id, std::uint64_t elems,
                   std::uint64_t elem_offset = 0) {
  const std::uint64_t bytes = elems * sizeof(T);
  if (mode == Mode::kReal) {
    return mpi::View::out(storage.data() + elem_offset, bytes);
  }
  return mpi::View::synth(synth_addr(rank, array_id, elem_offset * sizeof(T)),
                          bytes);
}

}  // namespace mns::apps
