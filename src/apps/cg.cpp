#include "apps/cg.hpp"

#include <cmath>
#include <limits>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Request;
using mpi::Tag;
using mpi::View;

namespace {

enum : int { kW = 1, kQ = 2, kDot = 3, kPseg = 4 };

/// Deterministic symmetric sparsity: off-diagonal entry (i,j), i != j,
/// exists iff hash(min,max) clears the density threshold; its value is
/// derived from the same hash, so every rank agrees on A without storing
/// it. Diagonal entries are large enough for diagonal dominance.
struct MatrixGen {
  std::int64_t na;
  std::uint64_t thresh;  // of 2^32

  explicit MatrixGen(std::int64_t na_, int nonzer)
      : na(na_),
        thresh(static_cast<std::uint64_t>(
            (static_cast<double>(nonzer) / static_cast<double>(na_)) *
            4294967296.0)) {}

  static std::uint64_t hash(std::int64_t a, std::int64_t b) {
    util::SplitMix64 sm((static_cast<std::uint64_t>(a) << 32) ^
                        static_cast<std::uint64_t>(b) ^ 0xC6A4A793u);
    return sm.next();
  }

  bool has(std::int64_t i, std::int64_t j) const {
    if (i == j) return true;
    const std::int64_t a = i < j ? i : j;
    const std::int64_t b = i < j ? j : i;
    return (hash(a, b) & 0xFFFFFFFFu) < thresh;
  }

  double value(std::int64_t i, std::int64_t j, int nonzer) const {
    if (i == j) {
      // Dominant diagonal: larger than the w.h.p. row sum of |values|<=1.
      return 4.0 * nonzer + 10.0;
    }
    const std::int64_t a = i < j ? i : j;
    const std::int64_t b = i < j ? j : i;
    return static_cast<double>((hash(a, b) >> 32) & 0xFFFF) / 65536.0 - 0.5;
  }
};

struct Csr {
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int32_t> col;  // local column index
  std::vector<double> val;
};

}  // namespace

sim::Task<AppResult> run_cg(Comm& comm, CgParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  if (!is_pow2(np)) {
    throw std::invalid_argument("CG requires a power-of-two rank count");
  }

  // Grid: npcols >= nprows, both powers of two (NPB convention).
  const int l = ilog2(np);
  const int npcols = 1 << ((l + 1) / 2);
  const int nprows = np / npcols;
  const int mycol = me % npcols;
  const int myrow = me / npcols;

  const BlockRange rows = block_range(p.na, nprows, myrow);  // R_r
  const BlockRange cols = block_range(p.na, npcols, mycol);  // C_c
  const auto seg_n = static_cast<std::size_t>(cols.size());
  // The slice of C_c this rank uniquely owns: R_r intersect C_c.
  const std::int64_t own_begin =
      std::max(rows.begin, cols.begin);
  const std::int64_t own_end = std::min(rows.end, cols.end);

  // Build the local sparse block A[R_r x C_c] once (real mode only).
  Csr a;
  std::int64_t nnz_local = 0;
  if (real) {
    MatrixGen gen(p.na, p.nonzer);
    a.row_ptr.push_back(0);
    for (std::int64_t i = rows.begin; i < rows.end; ++i) {
      for (std::int64_t j = cols.begin; j < cols.end; ++j) {
        if (gen.has(i, j)) {
          a.col.push_back(static_cast<std::int32_t>(j - cols.begin));
          a.val.push_back(gen.value(i, j, p.nonzer));
        }
      }
      a.row_ptr.push_back(static_cast<std::int64_t>(a.col.size()));
    }
    nnz_local = static_cast<std::int64_t>(a.col.size());
  } else {
    nnz_local = (2 * p.nonzer + 1) * p.na / np;
  }

  // Column-distributed vectors (segment C_c, replicated down the column).
  std::vector<double> x, r, pv, q, z, w;
  if (real) {
    x.assign(seg_n, 1.0);
    r.resize(seg_n);
    pv.resize(seg_n);
    q.resize(seg_n);
    z.resize(seg_n);
    w.resize(static_cast<std::size_t>(rows.size()));
  }

  // Cache-fit factor: when the per-rank vector segment no longer fits in
  // L2, the sparse matvec streams from DRAM and runs slower per nonzero.
  // This is what makes the paper's CG speed-ups superlinear (Table 2).
  const double cache_f = seg_n * 8 > 200 * 1024 ? 1.35 : 1.0;
  const double sec_nnz = p.sec_per_nnz * cache_f;
  const double sec_axpy = p.sec_per_axpy * cache_f;

  co_await comm.barrier();
  const double t0 = comm.wtime();

  // Butterfly p2p double-sum over all ranks (NPB CG avoids collectives).
  auto psum = [&](double v) -> sim::Task<double> {
    for (int mask = 1; mask < np; mask <<= 1) {
      const int partner = me ^ mask;
      double other = 0;
      co_await comm.sendrecv(View::in(&v, 8), partner, 7001,
                             View::out(&other, 8), partner, 7001);
      v += other;
    }
    co_return v;
  };

  // One matvec: q_seg = (A * p_seg_replicated) redistributed to C_c.
  auto matvec = [&]() -> sim::Task<void> {
    // Local block multiply.
    co_await comm.compute(static_cast<double>(nnz_local) * sec_nnz);
    if (real) {
      for (std::int64_t i = 0; i < rows.size(); ++i) {
        double s = 0;
        for (std::int64_t k = a.row_ptr[static_cast<std::size_t>(i)];
             k < a.row_ptr[static_cast<std::size_t>(i + 1)]; ++k) {
          s += a.val[static_cast<std::size_t>(k)] *
               pv[static_cast<std::size_t>(
                   a.col[static_cast<std::size_t>(k)])];
        }
        w[static_cast<std::size_t>(i)] = s;
      }
    }

    // Sum w across the processor row (recursive doubling over the ranks
    // sharing these matrix rows): log2(npcols) full-vector exchanges —
    // these are CG's large messages (Table 1's 16K-1M class).
    const auto w_n = static_cast<std::uint64_t>(rows.size());
    std::vector<double> tmp;
    if (real) tmp.resize(static_cast<std::size_t>(w_n));
    for (int mask = 1; mask < npcols; mask <<= 1) {
      const int partner = myrow * npcols + (mycol ^ mask);
      View sv = real ? View::in(w.data(), w_n * 8)
                     : View::synth(synth_addr(me, kW), w_n * 8);
      View rv = real ? View::out(tmp.data(), w_n * 8)
                     : View::synth(synth_addr(me, kW, 1 << 20), w_n * 8);
      co_await comm.sendrecv(sv, partner, 7002, rv, partner, 7002);
      if (real) {
        for (std::uint64_t i = 0; i < w_n; ++i) {
          w[static_cast<std::size_t>(i)] += tmp[static_cast<std::size_t>(i)];
        }
      }
      co_await comm.compute(static_cast<double>(w_n) * sec_axpy);
    }

    // Gather within the processor column: every rank contributes its owned
    // chunk; after nprows-1 ring steps each rank has q over all of C_c.
    // (chunk == R_r ^ C_c by construction.)
    if (real) {
      for (std::int64_t i = own_begin; i < own_end; ++i) {
        q[static_cast<std::size_t>(i - cols.begin)] =
            w[static_cast<std::size_t>(i - rows.begin)];
      }
    }
    for (int step = 1; step < nprows; ++step) {
      const int up = ((myrow + step) % nprows) * npcols + mycol;
      const int dn = ((myrow - step + nprows) % nprows) * npcols + mycol;
      // I receive the chunk owned by rank `dn` (its R ^ C_c).
      const BlockRange rr = block_range(p.na, nprows, (myrow - step + nprows) % nprows);
      const std::int64_t rb = std::max(rr.begin, cols.begin);
      const std::int64_t re = std::min(rr.end, cols.end);
      const auto recv_n = static_cast<std::uint64_t>(std::max<std::int64_t>(0, re - rb));
      const auto send_n = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, own_end - own_begin));
      View sv = real ? View::in(q.data() + (own_begin - cols.begin), send_n * 8)
                     : View::synth(synth_addr(me, kQ), send_n * 8);
      View rv = real ? View::out(q.data() + (rb - cols.begin), recv_n * 8)
                     : View::synth(synth_addr(me, kQ, 2 << 20), recv_n * 8);
      co_await comm.sendrecv(sv, up, 7003, rv, dn, 7003);
    }
  };

  // Local partial dot over the uniquely-owned slice.
  auto local_dot = [&](const std::vector<double>& u,
                       const std::vector<double>& v2) {
    if (!real) return 0.0;
    double s = 0;
    for (std::int64_t i = own_begin; i < own_end; ++i) {
      s += u[static_cast<std::size_t>(i - cols.begin)] *
           v2[static_cast<std::size_t>(i - cols.begin)];
    }
    return s;
  };

  double zeta = 0.0;
  bool residual_reduced = true;

  for (int outer = 0; outer < p.outer_iters; ++outer) {
    // r = x; z = 0; p = r; rho = r.r
    if (real) {
      r = x;
      std::fill(z.begin(), z.end(), 0.0);
      pv = r;
    }
    co_await comm.compute(static_cast<double>(seg_n) * sec_axpy * 3);
    double rho = co_await psum(local_dot(r, r));
    const double rho_start = rho;
    double rho_last = rho;

    for (int it = 0; it < p.inner_iters; ++it) {
      co_await matvec();  // q = A p
      const double pq = co_await psum(local_dot(pv, q));
      const double alpha = real && pq != 0.0 ? rho / pq : 0.0;
      if (real) {
        for (std::size_t i = 0; i < seg_n; ++i) {
          z[i] += alpha * pv[i];
          r[i] -= alpha * q[i];
        }
      }
      co_await comm.compute(static_cast<double>(seg_n) * sec_axpy * 2);
      const double rho_new = co_await psum(local_dot(r, r));
      if (real) {
        rho_last = rho_new;
        const double beta = rho != 0.0 ? rho_new / rho : 0.0;
        for (std::size_t i = 0; i < seg_n; ++i) {
          pv[i] = r[i] + beta * pv[i];
        }
        rho = rho_new;
      }
      co_await comm.compute(static_cast<double>(seg_n) * sec_axpy);
    }

    if (real && !(rho_last < rho_start)) residual_reduced = false;

    // zeta = shift + 1 / (x.z); x = z / ||z|| (NPB shape).
    const double xz = co_await psum(local_dot(x, z));
    const double znorm2 = co_await psum(local_dot(z, z));
    if (real && znorm2 > 0) {
      const double inv = 1.0 / std::sqrt(znorm2);
      for (std::size_t i = 0; i < seg_n; ++i) x[i] = z[i] * inv;
      zeta = 20.0 + (xz != 0.0 ? 1.0 / xz : 0.0);
    }
    co_await comm.compute(static_cast<double>(seg_n) * sec_axpy * 2);
  }

  AppResult out;
  out.app_seconds = comm.wtime() - t0;
  out.checksum = zeta;
  if (real) {
    out.verified = residual_reduced && std::isfinite(zeta);
  }
  co_return out;
}

}  // namespace mns::apps
