// CG — NAS conjugate gradient.
//
// Communication skeleton follows NPB's 2D processor grid: per matvec, a
// recursive-halving reduce-scatter across the processor row (the ~64-300 KB
// messages of Table 1), a gather within the processor column, and
// butterfly point-to-point allreduces for the dot products (the ~16k
// 8-byte messages). Collectives are almost absent, matching the paper's
// Table 5 (2 calls in the whole run).
//
// Real mode runs genuine CG on a seeded random symmetric diagonally
// dominant sparse matrix; verification checks monotone residual reduction
// and a finite solution norm.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct CgParams {
  std::int64_t na;       // matrix order
  int nonzer;            // expected off-diagonal nonzeros per row (one side)
  int outer_iters;       // NPB "niter"
  int inner_iters;       // CG iterations per outer step (NPB: 25)
  double sec_per_nnz;    // compute model: matvec cost per stored nonzero
  double sec_per_axpy;   // per vector element per inner iteration

  static CgParams test_size() {
    return CgParams{1024, 6, 3, 8, 5.0e-8, 1.0e-8};
  }
  static CgParams class_b() {
    return CgParams{75000, 13, 75, 25, 5.0e-8, 1.0e-8};
  }
};

sim::Task<AppResult> run_cg(mpi::Comm& comm, CgParams p, Mode mode);

}  // namespace mns::apps
