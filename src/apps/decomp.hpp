// Domain-decomposition helpers shared by the application kernels.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace mns::apps {

/// Split `n` items over `parts`; part `i` gets the contiguous block
/// [begin, end). Remainders go to the leading parts (NAS convention).
struct BlockRange {
  std::int64_t begin;
  std::int64_t end;
  std::int64_t size() const { return end - begin; }
};

constexpr BlockRange block_range(std::int64_t n, int parts, int i) {
  const std::int64_t base = n / parts;
  const std::int64_t rem = n % parts;
  const std::int64_t begin =
      i * base + (i < rem ? i : rem);
  const std::int64_t size = base + (i < rem ? 1 : 0);
  return BlockRange{begin, begin + size};
}

constexpr bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

constexpr int ilog2(int x) {
  int l = 0;
  while ((1 << l) < x) ++l;
  return l;
}

/// 2D process grid (px columns * py rows), rank = py_index * px + px_index.
struct Grid2D {
  int px;
  int py;
  int x(int rank) const { return rank % px; }
  int y(int rank) const { return rank / px; }
  int rank_of(int gx, int gy) const { return gy * px + gx; }
  int west(int rank) const { return x(rank) > 0 ? rank - 1 : -1; }
  int east(int rank) const { return x(rank) < px - 1 ? rank + 1 : -1; }
  int north(int rank) const { return y(rank) > 0 ? rank - px : -1; }
  int south(int rank) const { return y(rank) < py - 1 ? rank + px : -1; }
};

/// Near-square factorization of np (px >= py), e.g. 8 -> 4x2, 16 -> 4x4.
inline Grid2D make_grid2d(int np) {
  for (int py = static_cast<int>(std::uint32_t(1) << (ilog2(np) / 2));
       py >= 1; --py) {
    if (np % py == 0) return Grid2D{np / py, py};
  }
  return Grid2D{np, 1};
}

/// 3D process grid for power-of-two process counts (MG-style).
struct Grid3D {
  int px, py, pz;
  int x(int r) const { return r % px; }
  int y(int r) const { return (r / px) % py; }
  int z(int r) const { return r / (px * py); }
  int rank_of(int gx, int gy, int gz) const {
    return (gz * py + gy) * px + gx;
  }
  /// Neighbour with periodic wrap in the given axis (0=x,1=y,2=z).
  int neighbor(int r, int axis, int dir) const {
    int gx = x(r), gy = y(r), gz = z(r);
    auto wrap = [](int v, int n) { return (v + n) % n; };
    if (axis == 0) gx = wrap(gx + dir, px);
    if (axis == 1) gy = wrap(gy + dir, py);
    if (axis == 2) gz = wrap(gz + dir, pz);
    return rank_of(gx, gy, gz);
  }
};

inline Grid3D make_grid3d(int np) {
  if (!is_pow2(np)) {
    throw std::invalid_argument("3D decomposition needs power-of-two ranks");
  }
  const int l = ilog2(np);
  const int lz = l / 3;
  const int ly = (l - lz) / 2;
  const int lx = l - lz - ly;
  return Grid3D{1 << lx, 1 << ly, 1 << lz};
}

}  // namespace mns::apps
