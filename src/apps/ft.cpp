#include "apps/ft.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::View;
using Cplx = std::complex<double>;

namespace {

enum : int { kSend = 1, kRecv = 2, kSum = 3 };

/// In-place iterative radix-2 FFT over a stride-1 line of length n
/// (power of two). sign = -1 forward, +1 inverse (unscaled).
void fft_line(Cplx* a, int n, int sign) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double ang =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (int i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

}  // namespace

sim::Task<AppResult> run_ft(Comm& comm, FtParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  if (!is_pow2(p.nx) || !is_pow2(p.ny) || !is_pow2(p.nz) || !is_pow2(np)) {
    throw std::invalid_argument("FT needs power-of-two dims and ranks");
  }
  if (p.nz % np != 0 || p.nx % np != 0) {
    throw std::invalid_argument("FT slabs must divide evenly");
  }

  const int nzl = p.nz / np;  // local z planes (slab layout)
  const int nxl = p.nx / np;  // local x columns (pencil layout)
  const std::size_t slab_n =
      static_cast<std::size_t>(p.nx) * p.ny * nzl;
  const std::size_t pencil_n =
      static_cast<std::size_t>(nxl) * p.ny * p.nz;
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(nxl) * p.ny * nzl * sizeof(Cplx);

  std::vector<Cplx> slab, pencil, init, sendbuf, recvbuf;
  if (real) {
    slab.resize(slab_n);
    pencil.resize(pencil_n);
    sendbuf.resize(slab_n);
    recvbuf.resize(slab_n);
    util::Rng rng(0xF7 + static_cast<unsigned>(me));
    for (auto& c : slab) {
      c = Cplx(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }
    init = slab;
  }

  auto slab_idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * p.ny + y) * p.nx + x;
  };
  auto pencil_idx = [&](int xl, int y, int z) {
    return (static_cast<std::size_t>(xl) * p.ny + y) * p.nz + z;
  };

  // Local x and y FFT passes over the slab.
  auto fft_xy = [&](int sign) -> sim::Task<void> {
    co_await comm.compute(static_cast<double>(slab_n) * 2.0 *
                          p.sec_per_point_pass);
    if (!real) co_return;
    std::vector<Cplx> line(static_cast<std::size_t>(
        p.nx > p.ny ? p.nx : p.ny));
    for (int z = 0; z < nzl; ++z) {
      for (int y = 0; y < p.ny; ++y) {
        fft_line(&slab[slab_idx(0, y, z)], p.nx, sign);  // x stride 1
      }
      for (int x = 0; x < p.nx; ++x) {  // y strided: gather/scatter
        for (int y = 0; y < p.ny; ++y) line[y] = slab[slab_idx(x, y, z)];
        fft_line(line.data(), p.ny, sign);
        for (int y = 0; y < p.ny; ++y) slab[slab_idx(x, y, z)] = line[y];
      }
    }
  };

  // Transpose slab -> pencil via alltoall (and back).
  auto transpose = [&](bool to_pencil) -> sim::Task<void> {
    if (real) {
      if (to_pencil) {
        std::size_t w = 0;
        for (int r = 0; r < np; ++r) {
          for (int z = 0; z < nzl; ++z) {
            for (int y = 0; y < p.ny; ++y) {
              for (int xl = 0; xl < nxl; ++xl) {
                sendbuf[w++] = slab[slab_idx(r * nxl + xl, y, z)];
              }
            }
          }
        }
      } else {
        std::size_t w = 0;
        for (int r = 0; r < np; ++r) {
          for (int zl = 0; zl < nzl; ++zl) {
            for (int y = 0; y < p.ny; ++y) {
              for (int xl = 0; xl < nxl; ++xl) {
                sendbuf[w++] = pencil[pencil_idx(xl, y, r * nzl + zl)];
              }
            }
          }
        }
      }
    }
    View sv = real ? View::in(sendbuf.data(), slab_n * sizeof(Cplx))
                   : View::synth(synth_addr(me, kSend),
                                 static_cast<std::uint64_t>(np) * block_bytes);
    View rv = real ? View::out(recvbuf.data(), slab_n * sizeof(Cplx))
                   : View::synth(synth_addr(me, kRecv),
                                 static_cast<std::uint64_t>(np) * block_bytes);
    co_await comm.alltoall(sv, rv, block_bytes);
    if (real) {
      if (to_pencil) {
        std::size_t w = 0;
        for (int r = 0; r < np; ++r) {  // block from rank r: its z-range
          for (int zl = 0; zl < nzl; ++zl) {
            for (int y = 0; y < p.ny; ++y) {
              for (int xl = 0; xl < nxl; ++xl) {
                pencil[pencil_idx(xl, y, r * nzl + zl)] = recvbuf[w++];
              }
            }
          }
        }
      } else {
        std::size_t w = 0;
        for (int r = 0; r < np; ++r) {  // block from rank r: its x-range
          for (int z = 0; z < nzl; ++z) {
            for (int y = 0; y < p.ny; ++y) {
              for (int xl = 0; xl < nxl; ++xl) {
                slab[slab_idx(r * nxl + xl, y, z)] = recvbuf[w++];
              }
            }
          }
        }
      }
    }
  };

  auto fft_z = [&](int sign) -> sim::Task<void> {
    co_await comm.compute(static_cast<double>(pencil_n) *
                          p.sec_per_point_pass);
    if (!real) co_return;
    for (int xl = 0; xl < nxl; ++xl) {
      for (int y = 0; y < p.ny; ++y) {
        fft_line(&pencil[pencil_idx(xl, y, 0)], p.nz, sign);
      }
    }
  };

  auto fft3d = [&](int sign) -> sim::Task<void> {
    co_await fft_xy(sign);
    co_await transpose(true);
    co_await fft_z(sign);
    co_await transpose(false);
  };

  // Verification round-trip (real mode, before the timed section).
  AppResult out;
  if (real) {
    co_await fft3d(-1);
    co_await fft3d(+1);
    const double scale =
        1.0 / (static_cast<double>(p.nx) * p.ny * p.nz);
    double max_err = 0;
    for (std::size_t i = 0; i < slab_n; ++i) {
      max_err = std::max(max_err, std::abs(slab[i] * scale - init[i]));
    }
    double gerr = max_err;
    co_await comm.allreduce(View::out(&gerr, 8), 1, Dtype::kDouble,
                            ROp::kMax);
    out.verified = gerr < 1e-10;
    out.checksum = gerr;
    for (std::size_t i = 0; i < slab_n; ++i) slab[i] *= scale;
  }

  co_await comm.barrier();
  const double t0 = comm.wtime();

  // NPB FT leaves the data transposed between iterations instead of
  // transposing back (one alltoall per iteration; Table 1's 22 huge
  // messages). We alternate: slab->pencil on even iterations,
  // pencil->slab on odd.
  for (int iter = 0; iter < p.iterations; ++iter) {
    const bool to_pencil = (iter % 2) == 0;
    // evolve: frequency-domain phase factors (layout-independent).
    co_await comm.compute(static_cast<double>(slab_n) *
                          p.sec_per_point_pass * 0.5);
    if (real) {
      const double theta = 1e-6 * (iter + 1);
      const Cplx ph(std::cos(theta), std::sin(theta));
      for (auto& c : (to_pencil ? slab : pencil)) c *= ph;
    }
    if (to_pencil) {
      co_await fft_xy(-1);
      co_await transpose(true);
      co_await fft_z(-1);
    } else {
      co_await fft_z(+1);
      co_await transpose(false);
      co_await fft_xy(+1);
    }
    // Checksum allreduce (complex => 2 doubles).
    double sum[2] = {0, 0};
    if (real) {
      const auto& arr = to_pencil ? pencil : slab;
      Cplx s(0, 0);
      for (std::size_t i = 0; i < arr.size(); i += 1024) s += arr[i];
      sum[0] = s.real();
      sum[1] = s.imag();
    }
    View sv2 = real ? View::out(sum, 16)
                    : View::synth(synth_addr(me, kSum), 16);
    co_await comm.allreduce(sv2, 2, Dtype::kDouble, ROp::kSum);
    if (real && !(std::isfinite(sum[0]) && std::isfinite(sum[1]))) {
      out.verified = false;
    }
  }

  out.app_seconds = comm.wtime() - t0;
  co_return out;
}

}  // namespace mns::apps
