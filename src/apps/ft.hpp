// FT — NAS 3D FFT.
//
// Slab-decomposed 3D FFT: x and y transforms are local, then one big
// MPI_Alltoall transposes slabs to pencils for the z transform. Traffic is
// purely collective (Table 5: 100% of calls and volume): ~20 multi-MB
// alltoalls plus one small checksum allreduce per iteration (Table 1's
// 24 small + 22 huge messages).
//
// Real mode verifies by round-tripping: forward + inverse 3D FFT must
// reproduce the initial array to ~1e-10.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct FtParams {
  int nx, ny, nz;   // powers of two
  int iterations;
  double sec_per_point_pass;  // compute model: per point per FFT pass

  static FtParams test_size() { return FtParams{32, 16, 16, 3, 1.20e-7}; }
  static FtParams class_b() { return FtParams{512, 256, 256, 20, 1.20e-7}; }
};

sim::Task<AppResult> run_ft(mpi::Comm& comm, FtParams p, Mode mode);

}  // namespace mns::apps
