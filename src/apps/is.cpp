#include "apps/is.hpp"

#include <algorithm>
#include <numeric>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::View;

namespace {

// Array ids for synthetic buffer identities.
enum : int { kKeys = 1, kHist = 2, kCounts = 3, kRecvKeys = 4, kCtl = 5 };

}  // namespace

sim::Task<AppResult> run_is(Comm& comm, IsParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;

  const BlockRange mine = block_range(p.total_keys, np, me);
  const auto local_n = static_cast<std::size_t>(mine.size());
  const std::uint64_t key_space = 1ULL << p.max_key_log2;
  const std::uint64_t bucket_width =
      key_space / static_cast<std::uint64_t>(p.buckets);

  std::vector<std::int32_t> keys;
  std::vector<std::int32_t> recv_keys;
  std::vector<std::int64_t> hist(static_cast<std::size_t>(p.buckets));
  if (real) {
    keys.resize(local_n);
    util::Rng rng(0x15C0FFEEu + static_cast<unsigned>(me));
    for (auto& k : keys) {
      k = static_cast<std::int32_t>(rng.below(key_space));
    }
  }

  co_await comm.barrier();
  const double t0 = comm.wtime();

  // Buckets are assigned to ranks in contiguous blocks.
  std::uint64_t received = 0;
  for (int iter = 0; iter < p.iterations; ++iter) {
    // 1. Local bucket histogram.
    co_await comm.compute(static_cast<double>(local_n) * p.sec_per_key * 0.4);
    std::vector<std::uint64_t> send_counts(static_cast<std::size_t>(np), 0);
    if (real) {
      std::fill(hist.begin(), hist.end(), 0);
      for (const auto k : keys) {
        ++hist[static_cast<std::size_t>(static_cast<std::uint64_t>(k) /
                                        bucket_width)];
      }
      for (int r = 0; r < np; ++r) {
        const BlockRange b = block_range(p.buckets, np, r);
        std::int64_t n = 0;
        for (std::int64_t bkt = b.begin; bkt < b.end; ++bkt) {
          n += hist[static_cast<std::size_t>(bkt)];
        }
        send_counts[static_cast<std::size_t>(r)] =
            static_cast<std::uint64_t>(n) * sizeof(std::int32_t);
      }
    } else {
      // Balanced keys: each rank receives ~total/np.
      for (int r = 0; r < np; ++r) {
        send_counts[static_cast<std::size_t>(r)] =
            static_cast<std::uint64_t>(
                block_range(p.total_keys, np, r).size()) *
            sizeof(std::int32_t) / static_cast<std::uint64_t>(np);
      }
    }

    // 2. Global bucket histogram.
    View hview = buf_view(mode, hist, me, kHist,
                          static_cast<std::uint64_t>(p.buckets));
    co_await comm.allreduce(hview, static_cast<std::size_t>(p.buckets),
                            Dtype::kInt64, ROp::kSum);

    // 3. Exchange per-destination byte counts.
    std::vector<std::int64_t> counts_out(static_cast<std::size_t>(np));
    std::vector<std::int64_t> counts_in(static_cast<std::size_t>(np));
    for (int r = 0; r < np; ++r) {
      counts_out[static_cast<std::size_t>(r)] =
          static_cast<std::int64_t>(send_counts[static_cast<std::size_t>(r)]);
    }
    View cov = buf_view(mode, counts_out, me, kCounts,
                        static_cast<std::uint64_t>(np));
    View civ = buf_view(mode, counts_in, me, kCounts,
                        static_cast<std::uint64_t>(np), 0);
    // Distinct identity for the inbound array in skeleton mode.
    if (!real) civ = View::synth(synth_addr(me, kCounts, 4096), np * 8);
    co_await comm.alltoall(cov, civ, sizeof(std::int64_t));

    std::vector<std::uint64_t> recv_counts(static_cast<std::size_t>(np));
    if (real) {
      for (int r = 0; r < np; ++r) {
        recv_counts[static_cast<std::size_t>(r)] =
            static_cast<std::uint64_t>(counts_in[static_cast<std::size_t>(r)]);
      }
    } else {
      recv_counts = send_counts;  // balanced by construction
    }

    // 4. Redistribute keys so rank r holds bucket block r.
    const std::uint64_t in_bytes =
        std::accumulate(recv_counts.begin(), recv_counts.end(),
                        std::uint64_t{0});
    std::vector<std::int32_t> send_sorted;
    if (real) {
      // Pack keys by destination (counting sort by bucket block).
      send_sorted = keys;
      std::sort(send_sorted.begin(), send_sorted.end());
      recv_keys.assign(in_bytes / sizeof(std::int32_t), 0);
    }
    View sview = real ? View::in(send_sorted.data(),
                                 send_sorted.size() * sizeof(std::int32_t))
                      : View::synth(synth_addr(me, kKeys),
                                    local_n * sizeof(std::int32_t));
    View rview = real ? View::out(recv_keys.data(), in_bytes)
                      : View::synth(synth_addr(me, kRecvKeys), in_bytes);
    co_await comm.alltoallv(sview, send_counts, rview, recv_counts);
    received = in_bytes / sizeof(std::int32_t);

    // 5. Rank the received keys.
    co_await comm.compute(static_cast<double>(received) * p.sec_per_key * 0.6);
  }

  AppResult out;
  out.app_seconds = comm.wtime() - t0;

  if (real) {
    // Verify: received keys all fall inside my bucket block, sorted
    // neighbours agree at rank boundaries, and no key was lost.
    std::sort(recv_keys.begin(), recv_keys.end());
    const BlockRange myb = block_range(p.buckets, np, me);
    bool ok = true;
    for (const auto k : recv_keys) {
      const auto bkt = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(k) / bucket_width);
      ok = ok && bkt >= myb.begin && bkt < myb.end;
    }
    // Boundary order: my max <= right neighbour's min.
    std::int32_t my_min = recv_keys.empty()
                              ? std::numeric_limits<std::int32_t>::max()
                              : recv_keys.front();
    std::int32_t my_max = recv_keys.empty()
                              ? std::numeric_limits<std::int32_t>::min()
                              : recv_keys.back();
    if (me + 1 < np) {
      co_await comm.send(View::in(&my_max, 4), me + 1, 99);
    }
    if (me > 0) {
      std::int32_t left_max = 0;
      co_await comm.recv(View::out(&left_max, 4), me - 1, 99);
      ok = ok && left_max <= my_min;
    }
    // Count conservation.
    std::int64_t n = static_cast<std::int64_t>(received);
    co_await comm.allreduce(View::out(&n, 8), 1, Dtype::kInt64, ROp::kSum);
    ok = ok && n == p.total_keys;
    out.verified = ok;
    out.checksum = static_cast<double>(my_max);
  }
  co_return out;
}

}  // namespace mns::apps
