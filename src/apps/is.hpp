// IS — NAS integer sort.
//
// The most communication-extreme NAS kernel: almost all traffic is
// collective (Table 5: 97% of calls, 100% of volume) and most bytes move
// in >1 MB alltoallv exchanges (Table 1). Per ranking iteration:
//   1. local bucket counting,
//   2. MPI_Allreduce of the bucket histogram (a few KB),
//   3. MPI_Alltoall of per-destination key counts (tiny),
//   4. MPI_Alltoallv redistributing the keys (the >1 MB messages),
//   5. local ranking of the received keys.
// Verification (real mode): global sortedness across rank boundaries plus
// key-count conservation.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct IsParams {
  std::int64_t total_keys;
  int max_key_log2;     // keys uniform in [0, 2^max_key_log2)
  int buckets;          // power of two
  int iterations;
  double sec_per_key;   // compute model: counting+ranking cost per key/iter

  static IsParams test_size() {
    return IsParams{1 << 14, 16, 256, 4, 3.0e-8};
  }
  static IsParams class_b() {
    // NPB class B: 2^25 keys in [0, 2^21), 10 iterations (+1 untimed).
    return IsParams{1 << 25, 21, 1024, 11, 3.0e-8};
  }
};

sim::Task<AppResult> run_is(mpi::Comm& comm, IsParams p, Mode mode);

}  // namespace mns::apps
