#include "apps/lu.hpp"

#include <cmath>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::Request;
using mpi::View;

namespace {
enum : int { kStripW = 1, kStripN = 2, kFace = 3, kNorm = 4 };
}  // namespace

sim::Task<AppResult> run_lu(Comm& comm, LuParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  const Grid2D g = make_grid2d(np);

  const BlockRange ib = block_range(p.n, g.px, g.x(me));
  const BlockRange jb = block_range(p.n, g.py, g.y(me));
  const int nxl = static_cast<int>(ib.size());
  const int nyl = static_cast<int>(jb.size());
  const int nz = p.n;

  // u and b over the local block with one ghost layer in i and j.
  auto idx = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * (nyl + 2) + j) * (nxl + 2) + i;
  };
  std::vector<double> u, b;
  if (real) {
    u.assign(static_cast<std::size_t>(nxl + 2) * (nyl + 2) * nz, 0.0);
    b.assign(u.size(), 0.0);
    util::Rng rng(0x10 + static_cast<unsigned>(me));
    for (int k = 0; k < nz; ++k) {
      for (int j = 1; j <= nyl; ++j) {
        for (int i = 1; i <= nxl; ++i) {
          b[idx(i, j, k)] = rng.uniform() - 0.5;
        }
      }
    }
  }
  const double diag = 6.0 + 1.0;  // Laplacian diagonal + shift

  // Residual L2 norm of (diag*u - neighbors*u - b) over the local block.
  auto residual_norm = [&]() -> sim::Task<double> {
    // Refresh ghosts first (two irecv + two send pairs, large faces).
    double s = 0;
    if (real) {
      for (int k = 0; k < nz; ++k) {
        for (int j = 1; j <= nyl; ++j) {
          for (int i = 1; i <= nxl; ++i) {
            double au = diag * u[idx(i, j, k)] - u[idx(i - 1, j, k)] -
                        u[idx(i + 1, j, k)] - u[idx(i, j - 1, k)] -
                        u[idx(i, j + 1, k)];
            if (k > 0) au -= u[idx(i, j, k - 1)];
            if (k + 1 < nz) au -= u[idx(i, j, k + 1)];
            const double r = au - b[idx(i, j, k)];
            s += r * r;
          }
        }
      }
    }
    View nv = real ? View::out(&s, 8) : View::synth(synth_addr(me, kNorm), 8);
    co_await comm.allreduce(nv, 1, Dtype::kDouble, ROp::kSum);
    co_return std::sqrt(s);
  };

  // Exchange full u faces with the four neighbours (non-blocking recvs,
  // as NPB LU's exchange_3 does — these are the ~300 KB messages).
  std::vector<double> face_w_in, face_e_in, face_n_in, face_s_in, face_out_w,
      face_out_e, face_out_n, face_out_s;
  const std::uint64_t face_x_bytes = static_cast<std::uint64_t>(nyl) * nz * 8;
  const std::uint64_t face_y_bytes = static_cast<std::uint64_t>(nxl) * nz * 8;
  auto exchange_faces = [&]() -> sim::Task<void> {
    std::vector<Request> reqs;
    auto post_recv = [&](int from, std::vector<double>& store,
                         std::uint64_t bytes, int aid) -> sim::Task<void> {
      if (from < 0) co_return;
      if (real) store.resize(bytes / 8);
      View v = real ? View::out(store.data(), bytes)
                    : View::synth(synth_addr(me, aid), bytes);
      reqs.push_back(co_await comm.irecv(v, from, 900));
    };
    co_await post_recv(g.west(me), face_w_in, face_x_bytes, kFace);
    co_await post_recv(g.east(me), face_e_in, face_x_bytes, kFace + 10);
    co_await post_recv(g.north(me), face_n_in, face_y_bytes, kFace + 20);
    co_await post_recv(g.south(me), face_s_in, face_y_bytes, kFace + 30);

    auto send_face = [&](int to, std::vector<double>& store, bool x_face,
                         int plane, int aid) -> sim::Task<void> {
      if (to < 0) co_return;
      if (real) {
        store.clear();
        if (x_face) {
          for (int k = 0; k < nz; ++k) {
            for (int j = 1; j <= nyl; ++j) store.push_back(u[idx(plane, j, k)]);
          }
        } else {
          for (int k = 0; k < nz; ++k) {
            for (int i = 1; i <= nxl; ++i) store.push_back(u[idx(i, plane, k)]);
          }
        }
      }
      const std::uint64_t bytes = x_face ? face_x_bytes : face_y_bytes;
      View v = real ? View::in(store.data(), bytes)
                    : View::synth(synth_addr(me, aid), bytes);
      co_await comm.send(v, to, 900);
    };
    co_await send_face(g.west(me), face_out_w, true, 1, kFace + 40);
    co_await send_face(g.east(me), face_out_e, true, nxl, kFace + 50);
    co_await send_face(g.north(me), face_out_n, false, 1, kFace + 60);
    co_await send_face(g.south(me), face_out_s, false, nyl, kFace + 70);
    co_await comm.wait_all(std::move(reqs));

    if (real) {
      // Unpack ghosts.
      auto unpack_x = [&](std::vector<double>& store, int plane) {
        std::size_t w = 0;
        for (int k = 0; k < nz; ++k) {
          for (int j = 1; j <= nyl; ++j) u[idx(plane, j, k)] = store[w++];
        }
      };
      auto unpack_y = [&](std::vector<double>& store, int plane) {
        std::size_t w = 0;
        for (int k = 0; k < nz; ++k) {
          for (int i = 1; i <= nxl; ++i) u[idx(i, plane, k)] = store[w++];
        }
      };
      if (g.west(me) >= 0) unpack_x(face_w_in, 0);
      if (g.east(me) >= 0) unpack_x(face_e_in, nxl + 1);
      if (g.north(me) >= 0) unpack_y(face_n_in, 0);
      if (g.south(me) >= 0) unpack_y(face_s_in, nyl + 1);
    }
  };

  // One wavefront sweep (forward: dir=+1 uses west/north inflow and
  // east/south outflow; backward: dir=-1 mirrors). Per k-plane, boundary
  // strips of the just-updated values pipeline across the grid — the
  // famous LU small messages.
  std::vector<double> strip_i(static_cast<std::size_t>(nyl));
  std::vector<double> strip_j(static_cast<std::size_t>(nxl));
  auto sweep = [&](int dir) -> sim::Task<void> {
    const int from_x = dir > 0 ? g.west(me) : g.east(me);
    const int from_y = dir > 0 ? g.north(me) : g.south(me);
    const int to_x = dir > 0 ? g.east(me) : g.west(me);
    const int to_y = dir > 0 ? g.south(me) : g.north(me);
    const std::uint64_t sx_bytes = static_cast<std::uint64_t>(nyl) * 8;
    const std::uint64_t sy_bytes = static_cast<std::uint64_t>(nxl) * 8;
    for (int kk = 0; kk < nz; ++kk) {
      const int k = dir > 0 ? kk : nz - 1 - kk;
      if (from_x >= 0) {
        View v = real ? View::out(strip_i.data(), sx_bytes)
                      : View::synth(synth_addr(me, kStripW), sx_bytes);
        co_await comm.recv(v, from_x, 901);
        if (real) {
          const int plane = dir > 0 ? 0 : nxl + 1;
          for (int j = 1; j <= nyl; ++j) {
            u[idx(plane, j, k)] = strip_i[static_cast<std::size_t>(j - 1)];
          }
        }
      }
      if (from_y >= 0) {
        View v = real ? View::out(strip_j.data(), sy_bytes)
                      : View::synth(synth_addr(me, kStripN), sy_bytes);
        co_await comm.recv(v, from_y, 902);
        if (real) {
          const int plane = dir > 0 ? 0 : nyl + 1;
          for (int i = 1; i <= nxl; ++i) {
            u[idx(i, plane, k)] = strip_j[static_cast<std::size_t>(i - 1)];
          }
        }
      }

      co_await comm.compute(static_cast<double>(nxl) * nyl *
                            p.sec_per_point);
      if (real) {
        // Gauss-Seidel update in sweep order.
        const int i0 = dir > 0 ? 1 : nxl, i1 = dir > 0 ? nxl + 1 : 0;
        const int j0 = dir > 0 ? 1 : nyl, j1 = dir > 0 ? nyl + 1 : 0;
        for (int j = j0; j != j1; j += dir) {
          for (int i = i0; i != i1; i += dir) {
            double rhs = b[idx(i, j, k)] + u[idx(i - 1, j, k)] +
                         u[idx(i + 1, j, k)] + u[idx(i, j - 1, k)] +
                         u[idx(i, j + 1, k)];
            if (k > 0) rhs += u[idx(i, j, k - 1)];
            if (k + 1 < nz) rhs += u[idx(i, j, k + 1)];
            u[idx(i, j, k)] = rhs / diag;
          }
        }
      }

      if (to_x >= 0) {
        if (real) {
          const int plane = dir > 0 ? nxl : 1;
          for (int j = 1; j <= nyl; ++j) {
            strip_i[static_cast<std::size_t>(j - 1)] = u[idx(plane, j, k)];
          }
        }
        View v = real ? View::in(strip_i.data(), sx_bytes)
                      : View::synth(synth_addr(me, kStripW, 4096), sx_bytes);
        co_await comm.send(v, to_x, 901);
      }
      if (to_y >= 0) {
        if (real) {
          const int plane = dir > 0 ? nyl : 1;
          for (int i = 1; i <= nxl; ++i) {
            strip_j[static_cast<std::size_t>(i - 1)] = u[idx(i, plane, k)];
          }
        }
        View v = real ? View::in(strip_j.data(), sy_bytes)
                      : View::synth(synth_addr(me, kStripN, 4096), sy_bytes);
        co_await comm.send(v, to_y, 902);
      }
    }
  };

  co_await comm.barrier();
  const double t0 = comm.wtime();

  const double norm0 = co_await residual_norm();
  for (int iter = 0; iter < p.iterations; ++iter) {
    co_await exchange_faces();
    co_await sweep(+1);  // blts: lower-triangular wavefront
    co_await sweep(-1);  // buts: upper-triangular wavefront
  }
  const double norm1 = co_await residual_norm();

  AppResult out;
  out.app_seconds = comm.wtime() - t0;
  out.checksum = norm1;
  if (real) {
    out.verified = std::isfinite(norm1) && norm1 < norm0 * 0.5;
  }
  co_return out;
}

}  // namespace mns::apps
