// LU — NAS SSOR wavefront solver.
//
// The small-message extreme of the suite (Table 1: ~100k messages under
// 2 KB): the lower/upper triangular sweeps pipeline k-planes across a 2D
// process grid, exchanging one boundary strip per plane per direction.
// Four full-face exchanges per iteration carry the large messages
// (Table 1's ~1000 in 16K-1M; Table 3's 508 irecvs at ~300 KB).
//
// Real mode runs symmetric Gauss-Seidel (SSOR) sweeps on a 7-point
// Laplacian system and verifies the residual drops.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct LuParams {
  int n;            // global grid (n^3)
  int iterations;
  double sec_per_point;  // compute model: per grid point per sweep

  static LuParams test_size() { return LuParams{24, 4, 2.4e-6}; }
  static LuParams class_b() { return LuParams{102, 250, 2.4e-6}; }
};

sim::Task<AppResult> run_lu(mpi::Comm& comm, LuParams p, Mode mode);

}  // namespace mns::apps
