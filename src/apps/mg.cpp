#include "apps/mg.hpp"

#include <cmath>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::View;

namespace {

enum : int { kFaceBase = 10, kNorm = 40 };

/// One grid level's local block, with one ghost layer all around.
struct LevelGrid {
  int nx = 0, ny = 0, nz = 0;  // interior dims
  std::vector<double> u, r, f;

  std::size_t idx(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * (ny + 2) + j) * (nx + 2) + i;
  }
  std::size_t volume() const {
    return static_cast<std::size_t>(nx + 2) * (ny + 2) * (nz + 2);
  }
};

}  // namespace

sim::Task<AppResult> run_mg(Comm& comm, MgParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  const Grid3D g = make_grid3d(np);

  if (p.n % (g.px * 2) != 0 || p.n % (g.py * 2) != 0 ||
      p.n % (g.pz * 2) != 0) {
    throw std::invalid_argument("MG grid must divide evenly over ranks");
  }

  // Build the level hierarchy: coarsen while every local dim stays >= 2.
  std::vector<LevelGrid> levels;
  for (int n = p.n;; n /= 2) {
    LevelGrid lg;
    lg.nx = n / g.px;
    lg.ny = n / g.py;
    lg.nz = n / g.pz;
    if (lg.nx < 2 || lg.ny < 2 || lg.nz < 2) break;
    if (real) {
      lg.u.assign(lg.volume(), 0.0);
      lg.r.assign(lg.volume(), 0.0);
      lg.f.assign(lg.volume(), 0.0);
    }
    levels.push_back(std::move(lg));
    if (n == 2) break;
  }
  const int nlevels = static_cast<int>(levels.size());

  // Random +-1 source at the fine level (NPB flavour). The periodic
  // Laplacian is singular with a constant nullspace, so the source must
  // be projected to zero mean or the V-cycle amplifies the inconsistent
  // component without bound.
  if (real) {
    auto& fine = levels[0];
    util::Rng rng(0x36900 + static_cast<unsigned>(me));
    double local_sum = 0;
    for (int k = 1; k <= fine.nz; ++k) {
      for (int j = 1; j <= fine.ny; ++j) {
        for (int i = 1; i <= fine.nx; ++i) {
          const double v = rng.chance(0.5) ? 1.0 : -1.0;
          fine.f[fine.idx(i, j, k)] = v;
          local_sum += v;
        }
      }
    }
    double gsum = local_sum;
    co_await comm.allreduce(View::out(&gsum, 8), 1, Dtype::kDouble,
                            ROp::kSum);
    const double mean = gsum / (static_cast<double>(p.n) * p.n * p.n);
    for (int k = 1; k <= fine.nz; ++k) {
      for (int j = 1; j <= fine.ny; ++j) {
        for (int i = 1; i <= fine.nx; ++i) {
          fine.f[fine.idx(i, j, k)] -= mean;
        }
      }
    }
  }

  // Ghost-face exchange for array `which` (0=u, 1=r) at level `lv`.
  // Periodic neighbours in each axis; faces packed contiguously.
  auto comm3 = [&](int lv, int which) -> sim::Task<void> {
    auto& lg = levels[static_cast<std::size_t>(lv)];
    const int dims[3] = {lg.nx, lg.ny, lg.nz};
    std::vector<double> sendbuf, recvbuf;
    for (int axis = 0; axis < 3; ++axis) {
      const int da = dims[(axis + 1) % 3];
      const int db = dims[(axis + 2) % 3];
      const std::uint64_t face_bytes =
          static_cast<std::uint64_t>(da) * db * 8;
      for (int dir : {-1, +1}) {
        const int to = g.neighbor(me, axis, dir);
        const int from = g.neighbor(me, axis, -dir);
        auto& arr = which == 0 ? lg.u : lg.r;
        if (to == me) {
          // Single rank along this axis: periodic wrap is a local copy.
          if (real) {
            const int n_axis = dims[axis];
            const int send_plane = dir > 0 ? n_axis : 1;
            const int recv_plane = dir > 0 ? 0 : n_axis + 1;
            for (int b = 1; b <= db; ++b) {
              for (int a2 = 1; a2 <= da; ++a2) {
                int cs[3], cr[3];
                cs[axis] = send_plane;
                cr[axis] = recv_plane;
                cs[(axis + 1) % 3] = cr[(axis + 1) % 3] = a2;
                cs[(axis + 2) % 3] = cr[(axis + 2) % 3] = b;
                arr[lg.idx(cr[0], cr[1], cr[2])] =
                    arr[lg.idx(cs[0], cs[1], cs[2])];
              }
            }
          }
          continue;
        }
        if (real) {
          sendbuf.resize(static_cast<std::size_t>(da) * db);
          recvbuf.resize(static_cast<std::size_t>(da) * db);
          // Pack the boundary plane facing `dir` along `axis`.
          const int n_axis = dims[axis];
          const int send_plane = dir > 0 ? n_axis : 1;
          const int recv_plane = dir > 0 ? 0 : n_axis + 1;
          std::size_t w = 0;
          for (int b = 1; b <= db; ++b) {
            for (int a2 = 1; a2 <= da; ++a2) {
              int c[3];
              c[axis] = send_plane;
              c[(axis + 1) % 3] = a2;
              c[(axis + 2) % 3] = b;
              sendbuf[w++] = arr[lg.idx(c[0], c[1], c[2])];
            }
          }
          co_await comm.sendrecv(
              View::in(sendbuf.data(), face_bytes), to, 800 + axis * 2,
              View::out(recvbuf.data(), face_bytes), from, 800 + axis * 2);
          w = 0;
          for (int b = 1; b <= db; ++b) {
            for (int a2 = 1; a2 <= da; ++a2) {
              int c[3];
              c[axis] = recv_plane;
              c[(axis + 1) % 3] = a2;
              c[(axis + 2) % 3] = b;
              arr[lg.idx(c[0], c[1], c[2])] = recvbuf[w++];
            }
          }
        } else {
          const std::uint64_t id = kFaceBase + lv * 8 + axis * 2 +
                                   (dir > 0 ? 1 : 0);
          co_await comm.sendrecv(
              View::synth(synth_addr(me, static_cast<int>(id)), face_bytes),
              to, 800 + axis * 2,
              View::synth(synth_addr(me, static_cast<int>(id), 1 << 20),
                          face_bytes),
              from, 800 + axis * 2);
        }
      }
    }
  };

  // 7-point residual: r = f - A u (A = Laplacian, h-scaled away).
  auto resid = [&](int lv) -> sim::Task<void> {
    auto& lg = levels[static_cast<std::size_t>(lv)];
    co_await comm3(lv, 0);
    co_await comm.compute(static_cast<double>(lg.nx) * lg.ny * lg.nz *
                          p.sec_per_point);
    if (!real) co_return;
    for (int k = 1; k <= lg.nz; ++k) {
      for (int j = 1; j <= lg.ny; ++j) {
        for (int i = 1; i <= lg.nx; ++i) {
          const double au = 6.0 * lg.u[lg.idx(i, j, k)] -
                            lg.u[lg.idx(i - 1, j, k)] -
                            lg.u[lg.idx(i + 1, j, k)] -
                            lg.u[lg.idx(i, j - 1, k)] -
                            lg.u[lg.idx(i, j + 1, k)] -
                            lg.u[lg.idx(i, j, k - 1)] -
                            lg.u[lg.idx(i, j, k + 1)];
          lg.r[lg.idx(i, j, k)] = lg.f[lg.idx(i, j, k)] - au;
        }
      }
    }
  };

  // Weighted-Jacobi smoothing: u += omega * r / diag.
  auto smooth = [&](int lv) -> sim::Task<void> {
    auto& lg = levels[static_cast<std::size_t>(lv)];
    co_await comm.compute(static_cast<double>(lg.nx) * lg.ny * lg.nz *
                          p.sec_per_point * 0.6);
    if (!real) co_return;
    for (int k = 1; k <= lg.nz; ++k) {
      for (int j = 1; j <= lg.ny; ++j) {
        for (int i = 1; i <= lg.nx; ++i) {
          lg.u[lg.idx(i, j, k)] += (0.8 / 6.0) * lg.r[lg.idx(i, j, k)];
        }
      }
    }
  };

  // Restrict residual lv -> lv+1 (injection of 2x2x2 average).
  auto restrict_to = [&](int lv) -> sim::Task<void> {
    auto& fineg = levels[static_cast<std::size_t>(lv)];
    auto& coarse = levels[static_cast<std::size_t>(lv + 1)];
    co_await comm3(lv, 1);
    co_await comm.compute(static_cast<double>(coarse.nx) * coarse.ny *
                          coarse.nz * p.sec_per_point);
    if (!real) co_return;
    for (int k = 1; k <= coarse.nz; ++k) {
      for (int j = 1; j <= coarse.ny; ++j) {
        for (int i = 1; i <= coarse.nx; ++i) {
          double s = 0;
          for (int dk = 0; dk < 2; ++dk) {
            for (int dj = 0; dj < 2; ++dj) {
              for (int di = 0; di < 2; ++di) {
                s += fineg.r[fineg.idx(2 * i - 1 + di, 2 * j - 1 + dj,
                                       2 * k - 1 + dk)];
              }
            }
          }
          coarse.f[coarse.idx(i, j, k)] = 0.5 * s;
          coarse.u[coarse.idx(i, j, k)] = 0.0;
        }
      }
    }
  };

  // Prolongate u from lv+1 and add as correction to u at lv (injection).
  auto interp_from = [&](int lv) -> sim::Task<void> {
    auto& fineg = levels[static_cast<std::size_t>(lv)];
    auto& coarse = levels[static_cast<std::size_t>(lv + 1)];
    co_await comm3(lv + 1, 0);
    co_await comm.compute(static_cast<double>(fineg.nx) * fineg.ny *
                          fineg.nz * p.sec_per_point * 0.5);
    if (!real) co_return;
    for (int k = 1; k <= fineg.nz; ++k) {
      for (int j = 1; j <= fineg.ny; ++j) {
        for (int i = 1; i <= fineg.nx; ++i) {
          fineg.u[fineg.idx(i, j, k)] +=
              coarse.u[coarse.idx((i + 1) / 2, (j + 1) / 2, (k + 1) / 2)];
        }
      }
    }
  };

  // Global L2 residual norm at the fine level.
  auto resid_norm = [&]() -> sim::Task<double> {
    auto& lg = levels[0];
    double s = 0;
    if (real) {
      for (int k = 1; k <= lg.nz; ++k) {
        for (int j = 1; j <= lg.ny; ++j) {
          for (int i = 1; i <= lg.nx; ++i) {
            const double v = lg.r[lg.idx(i, j, k)];
            s += v * v;
          }
        }
      }
    }
    View nv = real ? View::out(&s, 8) : View::synth(synth_addr(me, kNorm), 8);
    co_await comm.allreduce(nv, 1, Dtype::kDouble, ROp::kSum);
    co_return std::sqrt(s);
  };

  co_await comm.barrier();
  const double t0 = comm.wtime();

  co_await resid(0);
  const double norm0 = co_await resid_norm();

  double norm = norm0;
  for (int iter = 0; iter < p.iterations; ++iter) {
    // Down: pre-smooth, then restrict residuals to the coarsest level.
    // The pre-smoothing is what keeps the piecewise-constant
    // interpolation's rough components under control.
    for (int lv = 0; lv + 1 < nlevels; ++lv) {
      co_await resid(lv);
      co_await smooth(lv);
      co_await resid(lv);
      co_await restrict_to(lv);
    }
    // Coarsest solve: a few smoothing passes.
    for (int s = 0; s < 4; ++s) {
      co_await resid(nlevels - 1);
      co_await smooth(nlevels - 1);
    }
    // NPB MG tracks norms through the cycle (its ~100 collective calls):
    // after the down phase, after the coarsest solve, and twice on the
    // way up, plus the headline residual norm below.
    (void)co_await resid_norm();
    // Up: prolongate corrections and post-smooth twice.
    for (int lv = nlevels - 2; lv >= 0; --lv) {
      co_await interp_from(lv);
      for (int s = 0; s < 2; ++s) {
        co_await resid(lv);
        co_await smooth(lv);
      }
    }
    (void)co_await resid_norm();
    (void)co_await resid_norm();
    co_await resid(0);
    norm = co_await resid_norm();
  }

  AppResult out;
  out.app_seconds = comm.wtime() - t0;
  out.checksum = norm;
  if (real) {
    out.verified = std::isfinite(norm) && norm < norm0 * 0.2;
  }
  co_return out;
}

}  // namespace mns::apps
