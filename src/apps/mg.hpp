// MG — NAS multigrid.
//
// V-cycles on a 3D Poisson problem over a 2x2x2 (at 8 ranks) process
// grid. Communication is dominated by ghost-face exchanges at every grid
// level — large messages at the fine level (the 16K-1M class of Table 1),
// shrinking geometrically toward the coarse levels (the <2K tail) — plus
// an allreduce per iteration for the residual norm (Table 5's ~100
// collective calls).
//
// Real mode runs genuine weighted-Jacobi V-cycles with a 7-point stencil
// and verifies the residual norm drops by a large factor.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct MgParams {
  int n;            // global grid size per dimension (power of two)
  int iterations;
  double sec_per_point;  // compute model: stencil cost per grid point

  static MgParams test_size() { return MgParams{32, 4, 1.65e-8}; }
  static MgParams class_b() { return MgParams{256, 20, 1.65e-8}; }
};

sim::Task<AppResult> run_mg(mpi::Comm& comm, MgParams p, Mode mode);

}  // namespace mns::apps
