#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/adi.hpp"
#include "apps/cg.hpp"
#include "apps/decomp.hpp"
#include "apps/ft.hpp"
#include "apps/is.hpp"
#include "apps/lu.hpp"
#include "apps/mg.hpp"
#include "apps/sweep3d.hpp"

namespace mns::apps {

namespace {

bool any_ranks(int) { return true; }
bool pow2_ranks(int n) { return is_pow2(n); }
bool square_ranks(int n) {
  for (int q = 1; q * q <= n; ++q) {
    if (q * q == n) return true;
  }
  return false;
}

std::vector<AppSpec> build() {
  std::vector<AppSpec> specs;
  specs.push_back({"is",
                   [](mpi::Comm& c, Mode m) {
                     return run_is(c, IsParams::class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_is(c, IsParams::test_size(), m);
                   },
                   any_ranks});
  specs.push_back({"cg",
                   [](mpi::Comm& c, Mode m) {
                     return run_cg(c, CgParams::class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_cg(c, CgParams::test_size(), m);
                   },
                   pow2_ranks});
  specs.push_back({"mg",
                   [](mpi::Comm& c, Mode m) {
                     return run_mg(c, MgParams::class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_mg(c, MgParams::test_size(), m);
                   },
                   pow2_ranks});
  specs.push_back({"ft",
                   [](mpi::Comm& c, Mode m) {
                     return run_ft(c, FtParams::class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_ft(c, FtParams::test_size(), m);
                   },
                   pow2_ranks});
  specs.push_back({"lu",
                   [](mpi::Comm& c, Mode m) {
                     return run_lu(c, LuParams::class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_lu(c, LuParams::test_size(), m);
                   },
                   any_ranks});
  specs.push_back({"sp",
                   [](mpi::Comm& c, Mode m) {
                     return run_adi(c, AdiParams::sp_class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_adi(c, AdiParams::sp_test(), m);
                   },
                   square_ranks});
  specs.push_back({"bt",
                   [](mpi::Comm& c, Mode m) {
                     return run_adi(c, AdiParams::bt_class_b(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_adi(c, AdiParams::bt_test(), m);
                   },
                   square_ranks});
  specs.push_back({"s3d50",
                   [](mpi::Comm& c, Mode m) {
                     return run_sweep3d(c, SweepParams::input_50(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_sweep3d(c, SweepParams::test_size(), m);
                   },
                   any_ranks});
  specs.push_back({"s3d150",
                   [](mpi::Comm& c, Mode m) {
                     return run_sweep3d(c, SweepParams::input_150(), m);
                   },
                   [](mpi::Comm& c, Mode m) {
                     return run_sweep3d(c, SweepParams::test_size(), m);
                   },
                   any_ranks});
  return specs;
}

}  // namespace

const std::vector<AppSpec>& registry() {
  static const std::vector<AppSpec> specs = build();
  return specs;
}

const AppSpec& find_app(const std::string& name) {
  for (const auto& s : registry()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown app '" + name + "'");
}

}  // namespace mns::apps
