// Name-based application registry, used by the bench harnesses and
// examples: "is", "cg", "mg", "ft", "lu", "sp", "bt", "s3d50", "s3d150".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/app.hpp"

namespace mns::apps {

struct AppSpec {
  std::string name;
  /// Paper-scale run (class B / the paper's inputs).
  std::function<sim::Task<AppResult>(mpi::Comm&, Mode)> run_full;
  /// Small run for tests/examples.
  std::function<sim::Task<AppResult>(mpi::Comm&, Mode)> run_test;
  /// Rank-count constraint, e.g. power-of-two or square.
  std::function<bool(int)> ranks_ok;
};

const std::vector<AppSpec>& registry();
const AppSpec& find_app(const std::string& name);

}  // namespace mns::apps
