#include "apps/sweep3d.hpp"

#include <cmath>

#include "apps/decomp.hpp"
#include "util/rng.hpp"

namespace mns::apps {

using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::View;

namespace {
enum : int { kInX = 1, kInY = 2, kNorm = 3 };
}  // namespace

sim::Task<AppResult> run_sweep3d(Comm& comm, SweepParams p, Mode mode) {
  const int np = comm.size();
  const int me = comm.rank();
  const bool real = mode == Mode::kReal;
  // Sweep3D decomposes with more ranks along y than x (the transpose of
  // our default near-square factorization).
  const Grid2D g0 = make_grid2d(np);
  const Grid2D g{g0.py, g0.px};

  const BlockRange xb = block_range(p.n, g.px, g.x(me));
  const BlockRange yb = block_range(p.n, g.py, g.y(me));
  const int nxl = static_cast<int>(xb.size());
  const int nyl = static_cast<int>(yb.size());
  const int nz = p.n;

  auto idx = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * nyl + j) * nxl + i;
  };
  std::vector<double> phi, phi_old, src;
  if (real) {
    phi.assign(static_cast<std::size_t>(nxl) * nyl * nz, 0.0);
    src.assign(phi.size(), 1.0);  // uniform external source
  }
  const double sigma = 1.0;  // total cross-section
  const double mu = 0.35, eta = 0.35, xi = 0.30;  // direction cosines

  // Inflow strips for the active k-block.
  std::vector<double> in_x, in_y;   // [k_in_block][j] and [k_in_block][i]
  std::vector<double> out_x, out_y;

  co_await comm.barrier();
  const double t0 = comm.wtime();

  double delta0 = 0, delta1 = 0;
  for (int iter = 0; iter < p.iterations; ++iter) {
    if (real) {
      phi_old = phi;
      std::fill(phi.begin(), phi.end(), 0.0);
    }
    for (int octant = 0; octant < 8; ++octant) {
      const int sx = (octant & 1) ? -1 : 1;   // x sweep direction
      const int sy = (octant & 2) ? -1 : 1;   // y sweep direction
      const int sz = (octant & 4) ? -1 : 1;   // z sweep direction
      const int from_x = sx > 0 ? g.west(me) : g.east(me);
      const int to_x = sx > 0 ? g.east(me) : g.west(me);
      const int from_y = sy > 0 ? g.north(me) : g.south(me);
      const int to_y = sy > 0 ? g.south(me) : g.north(me);

      const int kblocks = (nz + p.k_block - 1) / p.k_block;
      for (int ab = 0; ab < p.angle_blocks; ++ab)
      for (int kb = 0; kb < kblocks; ++kb) {
        const int k0 = kb * p.k_block;
        const int kn = std::min(p.k_block, nz - k0);
        // Inflow strips carry `angles_per_block` angular fluxes per cell.
        const std::uint64_t x_bytes = static_cast<std::uint64_t>(nyl) * kn *
                                      p.angles_per_block * 8;
        const std::uint64_t y_bytes = static_cast<std::uint64_t>(nxl) * kn *
                                      p.angles_per_block * 8;

        if (from_x >= 0) {
          if (real) in_x.assign(x_bytes / 8, 0.0);
          View v = real ? View::out(in_x.data(), x_bytes)
                        : View::synth(synth_addr(me, kInX), x_bytes);
          co_await comm.recv(v, from_x, 930 + octant);
        } else if (real) {
          in_x.assign(x_bytes / 8, 0.0);  // vacuum boundary
        }
        if (from_y >= 0) {
          if (real) in_y.assign(y_bytes / 8, 0.0);
          View v = real ? View::out(in_y.data(), y_bytes)
                        : View::synth(synth_addr(me, kInY), y_bytes);
          co_await comm.recv(v, from_y, 940 + octant);
        } else if (real) {
          in_y.assign(y_bytes / 8, 0.0);
        }

        co_await comm.compute(static_cast<double>(nxl) * nyl * kn *
                              p.sec_per_cell);
        if (real) {
          out_x.assign(x_bytes / 8, 0.0);
          out_y.assign(y_bytes / 8, 0.0);
          // Upwind diamond-difference-lite sweep of the block.
          std::vector<double> psi_z(static_cast<std::size_t>(nxl) * nyl,
                                    0.0);  // z inflow within the block
          for (int kk = 0; kk < kn; ++kk) {
            const int k = sz > 0 ? k0 + kk : k0 + kn - 1 - kk;
            for (int jj = 0; jj < nyl; ++jj) {
              const int j = sy > 0 ? jj : nyl - 1 - jj;
              for (int ii = 0; ii < nxl; ++ii) {
                const int i = sx > 0 ? ii : nxl - 1 - ii;
                const double fx =
                    ii == 0 ? in_x[static_cast<std::size_t>(kk) * nyl + jj]
                            : out_x[static_cast<std::size_t>(kk) * nyl + jj];
                const double fy =
                    jj == 0 ? in_y[static_cast<std::size_t>(kk) * nxl + ii]
                            : out_y[static_cast<std::size_t>(kk) * nxl + ii];
                const double fz =
                    psi_z[static_cast<std::size_t>(j) * nxl + i];
                // Isotropic in-scatter from the previous iteration's
                // scalar flux: the genuine source-iteration coupling.
                const double scat =
                    phi_old.empty() ? 0.0 : 0.3 * phi_old[idx(i, j, k)];
                const double psi =
                    (src[idx(i, j, k)] + scat +
                     2.0 * (mu * fx + eta * fy + xi * fz)) /
                    (sigma + 2.0 * (mu + eta + xi));
                phi[idx(i, j, k)] +=
                    psi / (8.0 * static_cast<double>(p.angle_blocks));
                // Outflows (diamond difference closure).
                out_x[static_cast<std::size_t>(kk) * nyl + jj] =
                    2.0 * psi - fx;
                out_y[static_cast<std::size_t>(kk) * nxl + ii] =
                    2.0 * psi - fy;
                psi_z[static_cast<std::size_t>(j) * nxl + i] =
                    2.0 * psi - fz;
              }
            }
          }
        }

        if (to_x >= 0) {
          View v = real ? View::in(out_x.data(), x_bytes)
                        : View::synth(synth_addr(me, kInX, 1 << 16), x_bytes);
          co_await comm.send(v, to_x, 930 + octant);
        }
        if (to_y >= 0) {
          View v = real ? View::in(out_y.data(), y_bytes)
                        : View::synth(synth_addr(me, kInY, 1 << 16), y_bytes);
          co_await comm.send(v, to_y, 940 + octant);
        }
      }
    }

    // Source-iteration convergence measure: one small allreduce per
    // iteration plus a couple of extras, the paper's 39 collective calls.
    double d = 0;
    if (real) {
      for (std::size_t i = 0; i < phi.size(); ++i) {
        const double e = phi[i] - phi_old[i];
        d += e * e;
      }
    }
    View dv = real ? View::out(&d, 8) : View::synth(synth_addr(me, kNorm), 8);
    co_await comm.allreduce(dv, 1, Dtype::kDouble, ROp::kSum);
    co_await comm.allreduce(dv, 1, Dtype::kDouble, ROp::kMax);
    co_await comm.barrier();
    if (iter == 0) delta0 = std::sqrt(d);
    if (iter == p.iterations - 1) delta1 = std::sqrt(d);
  }

  AppResult out;
  out.app_seconds = comm.wtime() - t0;
  if (real) {
    double s = 0;
    for (const double v : phi) s += v;
    co_await comm.allreduce(View::out(&s, 8), 1, Dtype::kDouble, ROp::kSum);
    out.checksum = s;
    out.verified = std::isfinite(s) && delta1 < delta0 * 0.9 && s > 0;
  }
  co_return out;
}

}  // namespace mns::apps
