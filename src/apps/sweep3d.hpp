// Sweep3D — the ASCI discrete-ordinates transport kernel.
//
// Eight-octant wavefront sweeps over a 2D (x,y) process decomposition:
// for each octant and k-block, a rank receives inflow fluxes from its
// upstream x and y neighbours, sweeps its block, and forwards outflow to
// the downstream neighbours — thousands of small pipelined messages, no
// collectives to speak of (Tables 1 and 5), and no non-blocking calls
// (Table 3). Input 50 keeps every message under 2 KB; input 150 splits
// evenly between <2K and 2K-16K, exactly the paper's distribution.
//
// Real mode runs source iterations of a one-group upwind transport sweep
// and verifies the scalar-flux change shrinks between iterations.
#pragma once

#include "apps/app.hpp"

namespace mns::apps {

struct SweepParams {
  int n;            // cube dimension (the paper's "input 50" / "input 150")
  int iterations;   // source iterations
  int k_block;      // pipeline granularity in z (sweep3d "mk")
  int angle_blocks; // angle pipeline blocks per octant (6 angles / "mmi")
  int angles_per_block;  // "mmi": angles carried per message
  double sec_per_cell;   // compute model: per cell-angle-block

  static SweepParams test_size() {
    return SweepParams{16, 3, 4, 2, 3, 1.09e-6};
  }
  // mk=1/mmi=3 reproduces the paper's 19236 sub-2K messages.
  static SweepParams input_50() {
    return SweepParams{50, 12, 1, 2, 3, 1.09e-6};
  }
  // mk=2/mmi=3: x-strips land in 2K-16K, y-strips under 2K — the paper's
  // even 28836/28800 split.
  static SweepParams input_150() {
    return SweepParams{150, 12, 2, 2, 3, 1.09e-6};
  }
};

sim::Task<AppResult> run_sweep3d(mpi::Comm& comm, SweepParams p, Mode mode);

}  // namespace mns::apps
