#include "audit/audit.hpp"

namespace mns::audit::detail {

namespace {
std::string location(const char* file, int line) {
  return std::string(file) + ":" + std::to_string(line);
}
}  // namespace

void fail(const char* file, int line, const char* expr,
          const std::string& msg) {
  throw AuditError(location(file, line) + ": audit failed: " + expr +
                   (msg.empty() ? "" : " — " + msg));
}

std::string eq_message(const char* file, int line, const char* lhs_expr,
                       const char* rhs_expr, const std::string& lhs,
                       const std::string& rhs, const std::string& msg) {
  return location(file, line) + ": audit failed: " + lhs_expr + " (" + lhs +
         ") != " + rhs_expr + " (" + rhs + ")" +
         (msg.empty() ? "" : " — " + msg);
}

}  // namespace mns::audit::detail
