// Invariant-audit layer: loud assertions for the simulator's bookkeeping.
//
// The paper's conclusions rest on mechanism-level accounting being exactly
// right (pin-down cache bytes, per-QP memory, request completion), and the
// DES implements those mechanisms in hand-written coroutine code. This
// header provides the inline half of the correctness tooling:
//
//   MNS_AUDIT(cond, msg)       hot-path assertion
//   MNS_AUDIT_EQ(a, b, msg)    equality assertion that prints both values
//
// Both compile to nothing unless the build defines MNS_AUDIT_ENABLED
// (CMake: -DMNS_AUDIT=ON); in audit builds a violation throws AuditError
// carrying file:line and the failed expression. The disabled form still
// type-checks its operands (inside an `if (false)`), so audit expressions
// cannot rot in release builds.
//
// The finalize-time half — conservation checks components register and a
// report aggregates — lives in audit/report.hpp and is always compiled.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace mns::audit {

#if defined(MNS_AUDIT_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Thrown on any audit violation: by MNS_AUDIT* in audit builds, and by
/// AuditReport::require_clean() in every build.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const std::string& msg);

std::string eq_message(const char* file, int line, const char* lhs_expr,
                       const char* rhs_expr, const std::string& lhs,
                       const std::string& rhs, const std::string& msg);

/// Stringify audit operands without dragging <sstream> into hot headers.
template <class T>
  requires std::is_arithmetic_v<T>
std::string stringify(T v) {
  return std::to_string(v);
}
inline const std::string& stringify(const std::string& s) { return s; }
inline std::string stringify(const char* s) { return s; }

template <class A, class B>
void check_eq(const char* file, int line, const A& a, const B& b,
              const char* lhs_expr, const char* rhs_expr,
              const std::string& msg) {
  if (!(a == b)) {
    throw AuditError(eq_message(file, line, lhs_expr, rhs_expr, stringify(a),
                                stringify(b), msg));
  }
}

}  // namespace detail
}  // namespace mns::audit

#if defined(MNS_AUDIT_ENABLED)
#define MNS_AUDIT(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mns::audit::detail::fail(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                 \
  } while (0)
#define MNS_AUDIT_EQ(lhs, rhs, msg)                                   \
  ::mns::audit::detail::check_eq(__FILE__, __LINE__, (lhs), (rhs),    \
                                 #lhs, #rhs, (msg))
#else
// Disabled: never evaluated, but still compiled, so operands stay valid.
#define MNS_AUDIT(cond, msg)                  \
  do {                                        \
    if (false) {                              \
      (void)(cond);                           \
      (void)(msg);                            \
    }                                         \
  } while (0)
#define MNS_AUDIT_EQ(lhs, rhs, msg)           \
  do {                                        \
    if (false) {                              \
      (void)((lhs) == (rhs));                 \
      (void)(msg);                            \
    }                                         \
  } while (0)
#endif
