#include "audit/report.hpp"

namespace mns::audit {

void AuditReport::Scope::fail(std::string message) {
  report_->violations_.push_back(
      Violation{component_, std::move(message)});
}

void AuditReport::Scope::note(std::string message) {
  report_->notes_.push_back(Note{component_, std::move(message)});
}

void AuditReport::add_check(std::string component, Check fn) {
  checks_.push_back(Entry{std::move(component), std::move(fn)});
}

const std::vector<AuditReport::Violation>& AuditReport::run() {
  violations_.clear();
  notes_.clear();
  for (const auto& entry : checks_) {
    Scope scope(*this, entry.component);
    try {
      entry.fn(scope);
    } catch (const std::exception& e) {
      scope.fail(std::string("check aborted: ") + e.what());
    }
  }
  return violations_;
}

void AuditReport::require_clean() {
  run();
  if (!violations_.empty()) throw AuditError(summary());
}

std::string AuditReport::summary() const {
  std::string notes;
  for (const auto& n : notes_) {
    notes += "\n  [" + n.component + "] " + n.message;
  }
  if (violations_.empty()) {
    return "audit clean (" + std::to_string(checks_.size()) + " checks)" +
           notes;
  }
  std::string out = "audit found " + std::to_string(violations_.size()) +
                    " violation(s):";
  for (const auto& v : violations_) {
    out += "\n  [" + v.component + "] " + v.message;
  }
  return out + notes;
}

}  // namespace mns::audit
