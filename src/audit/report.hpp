// Finalize-time conservation audit.
//
// Every major component exposes `register_audits(AuditReport&)`, adding
// named checks over its internal bookkeeping: the registration cache's
// pinned-byte conservation, the fabrics' posted-equals-delivered message
// accounting and Fig. 13 memory formulas, the MPI layer's
// every-request-completed-exactly-once ledger, the engine's drained event
// queue. A harness (Cluster, a test, a bench driver) collects the checks
// and runs them after the simulation finishes.
//
// Unlike the MNS_AUDIT macros (audit.hpp), the report is compiled in every
// build: the checks are O(component state) and run once at finalize, so
// they cost nothing on the simulation hot path. Checks record violations
// through the Scope handed to them; run() aggregates instead of stopping
// at the first failure, so one report shows every broken invariant at once.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "audit/audit.hpp"

namespace mns::audit {

class AuditReport {
 public:
  struct Violation {
    std::string component;
    std::string message;
  };
  /// Informational line recorded by a check (never a failure) — e.g. the
  /// per-partition executor counters, so a skewed partition plan is
  /// visible in the audit output without failing the run.
  struct Note {
    std::string component;
    std::string message;
  };

  /// Handed to each check while it runs; failures are recorded against the
  /// registered component name.
  class Scope {
   public:
    void fail(std::string message);
    void note(std::string message);
    void require(bool cond, std::string message) {
      if (!cond) fail(std::move(message));
    }
    template <class A, class B>
    void require_eq(const A& a, const B& b, const std::string& what) {
      if (!(a == b)) {
        fail(what + ": " + detail::stringify(a) +
             " != " + detail::stringify(b));
      }
    }

   private:
    friend class AuditReport;
    Scope(AuditReport& report, std::string component)
        : report_(&report), component_(std::move(component)) {}
    AuditReport* report_;
    std::string component_;
  };

  using Check = std::function<void(Scope&)>;

  /// Register a named finalize check. Checks run in registration order.
  void add_check(std::string component, Check fn);

  std::size_t check_count() const { return checks_.size(); }

  /// Run every registered check, collecting violations. An AuditError or
  /// other std::exception escaping a check is recorded as a violation of
  /// that check.
  const std::vector<Violation>& run();

  const std::vector<Violation>& violations() const { return violations_; }
  const std::vector<Note>& notes() const { return notes_; }
  bool clean() const { return violations_.empty(); }

  /// run(), then throw AuditError summarizing every violation (if any).
  void require_clean();

  /// Human-readable multi-line summary of the violations.
  std::string summary() const;

 private:
  struct Entry {
    std::string component;
    Check fn;
  };

  std::vector<Entry> checks_;
  std::vector<Violation> violations_;
  std::vector<Note> notes_;
};

}  // namespace mns::audit
