#include "cluster/cluster.hpp"

#include <stdexcept>
#include <utility>

#include "sim/frame_pool.hpp"

namespace mns::cluster {

const char* net_name(Net n) {
  switch (n) {
    case Net::kInfiniBand: return "IBA";
    case Net::kMyrinet: return "Myri";
    case Net::kQuadrics: return "QSN";
  }
  return "?";
}

Net parse_net(const std::string& s) {
  if (s == "ib" || s == "iba" || s == "infiniband") return Net::kInfiniBand;
  if (s == "myri" || s == "gm" || s == "myrinet") return Net::kMyrinet;
  if (s == "qsn" || s == "elan" || s == "quadrics") return Net::kQuadrics;
  throw std::invalid_argument("unknown network '" + s +
                              "' (want ib|myri|qsn)");
}

namespace {
model::BusConfig bus_for(Net net, Bus bus) {
  switch (bus) {
    case Bus::kPci66: return model::pci_66();
    case Bus::kPcix133: return model::pcix_133();
    case Bus::kDefault:
      // The testbed: InfiniHost + Myrinet cards in PCI-X slots, the Elan3
      // QM-400 in a 64-bit/66 MHz PCI slot.
      return net == Net::kQuadrics ? model::pci_66() : model::pcix_133();
  }
  return model::pcix_133();
}
}  // namespace

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  if (cfg_.nodes == 0) throw std::invalid_argument("cluster needs nodes");
  if (cfg_.ppn < 1 || cfg_.ppn > 2) {
    throw std::invalid_argument("ppn must be 1 or 2 (dual-CPU nodes)");
  }

  const model::BusConfig bus = bus_for(cfg_.net, cfg_.bus);

  // Resolve every hardware and channel config (tweaks applied) before
  // constructing anything: the partition layout must be decided first,
  // because each node's pipes, NIC state and MPI procs are built directly
  // on their owning partition's engine.
  ib::IbConfig ib_cfg{};
  gm::GmConfig gm_cfg{};
  elan::ElanConfig elan_cfg{};
  mpi::RdvChannelConfig rdv_cc{};
  mpi::ElanChannelConfig elan_cc{};
  model::NicConfig nic{};
  std::size_t fat_tree_radix = 0;
  bool hw_bcast = false;
  bool on_demand = false;
  switch (cfg_.net) {
    case Net::kInfiniBand: {
      ib_cfg = ib::default_ib_config(cfg_.nodes);
      if (cfg_.tweak_ib) cfg_.tweak_ib(ib_cfg);
      rdv_cc = mpi::default_ch_ib_config();
      if (cfg_.tweak_channel) cfg_.tweak_channel(rdv_cc);
      nic = ib_cfg.nic;
      fat_tree_radix = ib_cfg.switch_cfg.fat_tree_radix;
      hw_bcast = rdv_cc.hw_multicast;
      on_demand = ib_cfg.on_demand_connections;
      break;
    }
    case Net::kMyrinet: {
      gm_cfg = gm::default_gm_config(cfg_.nodes);
      if (cfg_.tweak_gm) cfg_.tweak_gm(gm_cfg);
      rdv_cc = mpi::default_ch_gm_config();
      if (cfg_.tweak_channel) cfg_.tweak_channel(rdv_cc);
      nic = gm_cfg.nic;
      fat_tree_radix = gm_cfg.switch_cfg.fat_tree_radix;
      hw_bcast = rdv_cc.hw_multicast;
      break;
    }
    case Net::kQuadrics: {
      elan_cfg = elan::default_elan_config(cfg_.nodes);
      if (cfg_.tweak_elan) cfg_.tweak_elan(elan_cfg);
      elan_cc = mpi::default_elan_channel_config();
      if (cfg_.tweak_elan_channel) cfg_.tweak_elan_channel(elan_cc);
      nic = elan_cfg.nic;
      fat_tree_radix = elan_cfg.switch_cfg.fat_tree_radix;
      hw_bcast = elan_cc.use_hw_bcast;
      break;
    }
  }

  // Derive and validate the conservative partition plan up front, so an
  // impossible --partitions request fails at construction, not mid-run.
  // The lookahead floor is the fabric's tx wire latency: the one delay
  // every cross-node interaction must pay before it becomes observable.
  plan_ = make_partition_plan(static_cast<int>(cfg_.nodes), cfg_.partitions,
                              nic.tx_wire_latency);

  // The executor enforces when >= now + lookahead on every wire message;
  // the tightest slack any protocol message carries is the minimum of the
  // ENTER (tx wire latency), LOSS (rx fixed latency) and LAND (bus DMA
  // setup) floors.
  sim::Time l_exec = std::min(
      {nic.tx_wire_latency, nic.rx_fixed, bus.per_dma_setup});
  if (cfg_.net == Net::kMyrinet) {
    // Staged fabric: a bulk message's ENTER is deferred to the kTx event
    // (the staging queue is shared with the receive side and only final
    // there), so its slack is the packet's staging serialization — as
    // small as one byte for a runt last packet.
    l_exec = std::min(l_exec, sim::transfer_time(1, gm_cfg.sram_rate));
  }

  // Demote to sequential execution when the configuration's hardware
  // shortcut touches remote-node state outside the wire protocol (see the
  // ClusterConfig::partitions comment), or when the executor would have
  // no conservative window at all.
  effective_partitions_ = cfg_.partitions;
  if (cfg_.partitions > 1 &&
      (hw_bcast || fat_tree_radix > 0 || on_demand ||
       !(l_exec > sim::Time::zero()))) {
    effective_partitions_ = 1;
  }
  const int parts_n = effective_partitions_;

  // Pre-size the event heaps from the topology: per-rank process starts,
  // in-flight window messages, NIC pipeline stages. Over-reserving a
  // little is free; re-growing mid-run costs a full heap copy.
  const std::size_t ranks = cfg_.nodes * static_cast<std::size_t>(cfg_.ppn);
  engines_.reserve(static_cast<std::size_t>(parts_n));
  for (int p = 0; p < parts_n; ++p) {
    engines_.push_back(std::make_unique<sim::Engine>());
    engines_.back()->reserve_events(64 + 48 * ranks);
  }

  // node -> owning engine (everything on engines_[0] when sequential).
  std::vector<sim::Engine*> node_eng(cfg_.nodes, engines_.front().get());
  if (parts_n > 1) {
    for (std::size_t n = 0; n < cfg_.nodes; ++n) {
      node_eng[n] = engines_[static_cast<std::size_t>(plan_.part_of[n])].get();
    }
  }

  std::vector<model::NodeHw*> node_ptrs;
  nodes_.reserve(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    nodes_.push_back(std::make_unique<model::NodeHw>(
        *node_eng[i], bus, model::xeon_2003_memcpy()));
    node_ptrs.push_back(nodes_.back().get());
  }

  mpi_ = std::make_unique<mpi::Mpi>(
      *engines_.front(), mpi::Topology::block(cfg_.nodes, cfg_.ppn),
      parts_n > 1 ? node_eng : std::vector<sim::Engine*>{});

  model::FabricPartitioning fp;
  const model::FabricPartitioning* fpp = nullptr;
  if (parts_n > 1) {
    fp.part_of = plan_.part_of;
    for (auto& e : engines_) fp.engines.push_back(e.get());
    fpp = &fp;
  }

  switch (cfg_.net) {
    case Net::kInfiniBand: {
      ib_ = std::make_unique<ib::IbFabric>(*engines_.front(), node_ptrs,
                                           ib_cfg, fpp);
      ib_->set_express(cfg_.express);
      mpi_->set_device(mpi::make_ch_ib(*mpi_, *ib_, rdv_cc));
      break;
    }
    case Net::kMyrinet: {
      gm_ = std::make_unique<gm::GmFabric>(*engines_.front(), node_ptrs,
                                           gm_cfg, fpp);
      gm_->set_express(cfg_.express);
      mpi_->set_device(mpi::make_ch_gm(*mpi_, *gm_, rdv_cc));
      break;
    }
    case Net::kQuadrics: {
      elan_ = std::make_unique<elan::ElanFabric>(*engines_.front(),
                                                 node_ptrs, elan_cfg, fpp);
      elan_->set_express(cfg_.express);
      mpi_->set_device(mpi::make_ch_elan(*mpi_, *elan_, elan_cc));
      break;
    }
  }

  if (!cfg_.faults.empty()) fabric().set_fault_plan(cfg_.faults);
  // Fail-stop error notifications pay the executor's conservative slack
  // as a uniform cross-node wire delay — in sequential runs too — so a
  // degraded run's timing is bit-identical across partition counts (see
  // NetFabric::run_on_node). A no-op without a fail-stop clause.
  fabric().set_error_notify_delay(l_exec);
  // Fail-stop clauses switch the MPI collectives to their deterministic
  // error-agreement epilogue (see Comm::finish_collective); transient-only
  // plans leave the collectives byte-for-byte unchanged.
  mpi_->set_fail_stop_armed(cfg_.faults.has_fail_stop());

  if (cfg_.max_sim_time > sim::Time::zero()) {
    for (auto& e : engines_) e->set_time_limit(cfg_.max_sim_time);
  }

  if (parts_n > 1) {
    // The executor's conservative window runs on the tightest protocol
    // slack, not the plan's tx-wire-latency bound (the plan documents the
    // physical floor; the executor must also admit LOSS/LAND messages).
    sim::pdes::Topology topo = plan_.to_topology();
    topo.lookahead = l_exec;
    std::vector<sim::Engine*> raw;
    for (auto& e : engines_) raw.push_back(e.get());
    exec_ = std::make_unique<sim::pdes::FabricExecutor>(std::move(topo),
                                                        std::move(raw));
    fabric().bind_executor(*exec_);
  }

  comms_.reserve(mpi_->size());
  for (std::size_t r = 0; r < mpi_->size(); ++r) {
    comms_.push_back(
        std::make_unique<mpi::Comm>(*mpi_, static_cast<mpi::Rank>(r)));
  }

  // Construction spawned the persistent daemon loops (NIC senders,
  // progress engines); everything above this level must drain by the end
  // of a run. Re-snapshotted at each run() so the audit stays exact even
  // when several clusters are alive on this thread (the pool is
  // thread-local and run() is synchronous, so nothing else can allocate
  // between the snapshot and the check). Worker-thread frames (rank
  // programs and transients of partitions > 0) allocate and free on their
  // own thread's pool within a round, so the main-thread check is exact
  // in partitioned runs too.
  frame_pool_baseline_ = sim::frame_pool::stats().outstanding();
}

model::NetFabric& Cluster::fabric() {
  if (ib_) return *ib_;
  if (gm_) return *gm_;
  return *elan_;
}

Cluster::~Cluster() {
  // Destroy the executor first: its worker threads must be joined before
  // the engines they borrow go away.
  exec_.reset();
  // Suspended rank coroutines (e.g. after a DeadlockError run) hold
  // MpiScope/Request locals referencing mpi_ and the fabrics. Destroy
  // their frames while those members are still alive; member destruction
  // order alone would tear down mpi_ first.
  for (auto& e : engines_) e->drop_processes();
}

sim::Time Cluster::run(RankMain rank_main) {
  const sim::Time start = now();
  frame_pool_baseline_ = sim::frame_pool::stats().outstanding();
  try {
    run_ranks(std::move(rank_main), start);
  } catch (const sim::LivelockError& e) {
    // Augment the engine's report with the layers only the cluster can
    // see: the fabric's per-flow stages and (when partitioned) each
    // partition's executor counters and local horizon.
    std::string report = e.report();
    report += "\n" + fabric().progress_report();
    for (std::size_t p = 0; p < engines_.size(); ++p) {
      report += "partition " + std::to_string(p) + ": now=" +
                engines_[p]->now().str() + " pending=" +
                std::to_string(engines_[p]->pending_events()) + "\n";
    }
    if (exec_) {
      const auto& st = exec_->part_stats();
      for (std::size_t p = 0; p < st.size(); ++p) {
        report += "executor part " + std::to_string(p) + ": events=" +
                  std::to_string(st[p].events) + " sent=" +
                  std::to_string(st[p].sent) + " received=" +
                  std::to_string(st[p].received) + " lbts_rounds=" +
                  std::to_string(st[p].lbts_rounds) + "\n";
      }
    }
    throw sim::LivelockError(std::move(report));
  }
  if constexpr (audit::kEnabled) {
    make_audit_report().require_clean();
  }
  return now() - start;
}

void Cluster::run_ranks(RankMain rank_main, sim::Time start) {
  if (!exec_) {
    sim::Engine& eng = *engines_.front();
    for (auto& comm : comms_) {
      // Wrap so each rank's coroutine sees its own Comm.
      eng.spawn([](RankMain fn, mpi::Comm& c) -> sim::Task<void> {
        co_await fn(c);
      }(rank_main, *comm));
    }
    eng.run();
  } else {
    // Partitions may sit at different local times after a previous run
    // (each stops at its own last event); every rank starts this run at
    // the global clock so the spawn instant is partition-invariant. Ranks
    // spawn in ascending order within a partition, matching the
    // sequential engine's spawn order on each node.
    const sim::Time t0 = start;
    exec_->run_round([this, t0, &rank_main](int p) {
      sim::Engine& eng = *engines_[static_cast<std::size_t>(p)];
      eng.at(t0, [this, p, &eng, &rank_main] {
        for (auto& comm : comms_) {
          const int node = mpi_->node_of(comm->rank());
          if (plan_.part_of[static_cast<std::size_t>(node)] != p) continue;
          eng.spawn([](RankMain fn, mpi::Comm& c) -> sim::Task<void> {
            co_await fn(c);
          }(rank_main, *comm));
        }
      });
    });
  }
}

audit::AuditReport Cluster::make_audit_report() {
  audit::AuditReport report;
  for (auto& e : engines_) e->register_audits(report);
  report.add_check("sim::frame_pool", [this](audit::AuditReport::Scope& s) {
    // Empty-at-exit modulo the persistent daemons: every transient frame
    // the run spawned (compute/busy tasks, per-message channel tasks)
    // must have been returned to the pool.
    s.require_eq(sim::frame_pool::stats().outstanding(),
                 frame_pool_baseline_,
                 "coroutine frame pool not back to its pre-run level "
                 "(leaked frame)");
  });
  if (ib_) ib_->register_audits(report);
  if (gm_) gm_->register_audits(report);
  if (elan_) elan_->register_audits(report);
  mpi_->register_audits(report);
  if (exec_) {
    report.add_check(
        "pdes::FabricExecutor", [this](audit::AuditReport::Scope& s) {
          const auto& st = exec_->part_stats();
          std::uint64_t sent = 0;
          std::uint64_t received = 0;
          for (std::size_t p = 0; p < st.size(); ++p) {
            sent += st[p].sent;
            received += st[p].received;
            s.note("partition " + std::to_string(p) + ": events=" +
                   std::to_string(st[p].events) + " sent=" +
                   std::to_string(st[p].sent) + " received=" +
                   std::to_string(st[p].received) + " batches=" +
                   std::to_string(st[p].batches) + " lbts_rounds=" +
                   std::to_string(st[p].lbts_rounds));
          }
          s.note("express demotions at partition boundaries: " +
                 std::to_string(fabric().express_boundary_demotions()));
          s.require_eq(sent, received,
                       "cross-partition message(s) lost in flight");
        });
  }
  return report;
}

}  // namespace mns::cluster
