#include "cluster/cluster.hpp"

#include <stdexcept>

#include "sim/frame_pool.hpp"

namespace mns::cluster {

const char* net_name(Net n) {
  switch (n) {
    case Net::kInfiniBand: return "IBA";
    case Net::kMyrinet: return "Myri";
    case Net::kQuadrics: return "QSN";
  }
  return "?";
}

Net parse_net(const std::string& s) {
  if (s == "ib" || s == "iba" || s == "infiniband") return Net::kInfiniBand;
  if (s == "myri" || s == "gm" || s == "myrinet") return Net::kMyrinet;
  if (s == "qsn" || s == "elan" || s == "quadrics") return Net::kQuadrics;
  throw std::invalid_argument("unknown network '" + s +
                              "' (want ib|myri|qsn)");
}

namespace {
model::BusConfig bus_for(Net net, Bus bus) {
  switch (bus) {
    case Bus::kPci66: return model::pci_66();
    case Bus::kPcix133: return model::pcix_133();
    case Bus::kDefault:
      // The testbed: InfiniHost + Myrinet cards in PCI-X slots, the Elan3
      // QM-400 in a 64-bit/66 MHz PCI slot.
      return net == Net::kQuadrics ? model::pci_66() : model::pcix_133();
  }
  return model::pcix_133();
}
}  // namespace

Cluster::Cluster(const ClusterConfig& cfg)
    : cfg_(cfg), eng_(std::make_unique<sim::Engine>()) {
  if (cfg_.nodes == 0) throw std::invalid_argument("cluster needs nodes");
  if (cfg_.ppn < 1 || cfg_.ppn > 2) {
    throw std::invalid_argument("ppn must be 1 or 2 (dual-CPU nodes)");
  }

  // Pre-size the event heap from the topology: per-rank process starts,
  // in-flight window messages, NIC pipeline stages. Over-reserving a
  // little is free; re-growing mid-run costs a full heap copy.
  const std::size_t ranks = cfg_.nodes * static_cast<std::size_t>(cfg_.ppn);
  eng_->reserve_events(64 + 48 * ranks);

  const model::BusConfig bus = bus_for(cfg_.net, cfg_.bus);
  std::vector<model::NodeHw*> node_ptrs;
  nodes_.reserve(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    nodes_.push_back(std::make_unique<model::NodeHw>(
        *eng_, bus, model::xeon_2003_memcpy()));
    node_ptrs.push_back(nodes_.back().get());
  }

  mpi_ = std::make_unique<mpi::Mpi>(
      *eng_, mpi::Topology::block(cfg_.nodes, cfg_.ppn));

  switch (cfg_.net) {
    case Net::kInfiniBand: {
      auto fc = ib::default_ib_config(cfg_.nodes);
      if (cfg_.tweak_ib) cfg_.tweak_ib(fc);
      ib_ = std::make_unique<ib::IbFabric>(*eng_, node_ptrs, fc);
      ib_->set_express(cfg_.express);
      auto cc = mpi::default_ch_ib_config();
      if (cfg_.tweak_channel) cfg_.tweak_channel(cc);
      mpi_->set_device(mpi::make_ch_ib(*mpi_, *ib_, cc));
      break;
    }
    case Net::kMyrinet: {
      auto fc = gm::default_gm_config(cfg_.nodes);
      if (cfg_.tweak_gm) cfg_.tweak_gm(fc);
      gm_ = std::make_unique<gm::GmFabric>(*eng_, node_ptrs, fc);
      gm_->set_express(cfg_.express);
      auto cc = mpi::default_ch_gm_config();
      if (cfg_.tweak_channel) cfg_.tweak_channel(cc);
      mpi_->set_device(mpi::make_ch_gm(*mpi_, *gm_, cc));
      break;
    }
    case Net::kQuadrics: {
      auto fc = elan::default_elan_config(cfg_.nodes);
      if (cfg_.tweak_elan) cfg_.tweak_elan(fc);
      elan_ = std::make_unique<elan::ElanFabric>(*eng_, node_ptrs, fc);
      elan_->set_express(cfg_.express);
      auto cc = mpi::default_elan_channel_config();
      if (cfg_.tweak_elan_channel) cfg_.tweak_elan_channel(cc);
      mpi_->set_device(mpi::make_ch_elan(*mpi_, *elan_, cc));
      break;
    }
  }

  if (!cfg_.faults.empty()) fabric().set_fault_plan(cfg_.faults);

  // Derive and validate the conservative partition plan up front, so an
  // impossible --partitions request fails at construction, not mid-run.
  // The lookahead floor is the fabric's tx wire latency: the one delay
  // every cross-node interaction must pay before it becomes observable.
  plan_ = make_partition_plan(static_cast<int>(cfg_.nodes), cfg_.partitions,
                              fabric().nic_config().tx_wire_latency);

  comms_.reserve(mpi_->size());
  for (std::size_t r = 0; r < mpi_->size(); ++r) {
    comms_.push_back(
        std::make_unique<mpi::Comm>(*mpi_, static_cast<mpi::Rank>(r)));
  }

  // Construction spawned the persistent daemon loops (NIC senders,
  // progress engines); everything above this level must drain by the end
  // of a run. Re-snapshotted at each run() so the audit stays exact even
  // when several clusters are alive on this thread (the pool is
  // thread-local and run() is synchronous, so nothing else can allocate
  // between the snapshot and the check).
  frame_pool_baseline_ = sim::frame_pool::stats().outstanding();
}

model::NetFabric& Cluster::fabric() {
  if (ib_) return *ib_;
  if (gm_) return *gm_;
  return *elan_;
}

Cluster::~Cluster() {
  // Suspended rank coroutines (e.g. after a DeadlockError run) hold
  // MpiScope/Request locals referencing mpi_ and the fabrics. Destroy
  // their frames while those members are still alive; member destruction
  // order alone would tear down mpi_ first.
  eng_->drop_processes();
}

sim::Time Cluster::run(RankMain rank_main) {
  const sim::Time start = eng_->now();
  frame_pool_baseline_ = sim::frame_pool::stats().outstanding();
  for (auto& comm : comms_) {
    // Wrap so each rank's coroutine sees its own Comm.
    eng_->spawn([](RankMain fn, mpi::Comm& c) -> sim::Task<void> {
      co_await fn(c);
    }(rank_main, *comm));
  }
  eng_->run();
  if constexpr (audit::kEnabled) {
    make_audit_report().require_clean();
  }
  return eng_->now() - start;
}

audit::AuditReport Cluster::make_audit_report() {
  audit::AuditReport report;
  eng_->register_audits(report);
  report.add_check("sim::frame_pool", [this](audit::AuditReport::Scope& s) {
    // Empty-at-exit modulo the persistent daemons: every transient frame
    // the run spawned (compute/busy tasks, per-message channel tasks)
    // must have been returned to the pool.
    s.require_eq(sim::frame_pool::stats().outstanding(),
                 frame_pool_baseline_,
                 "coroutine frame pool not back to its pre-run level "
                 "(leaked frame)");
  });
  if (ib_) ib_->register_audits(report);
  if (gm_) gm_->register_audits(report);
  if (elan_) elan_->register_audits(report);
  mpi_->register_audits(report);
  return report;
}

}  // namespace mns::cluster
