// Cluster: the top-level harness assembling the paper's testbed.
//
// One Cluster = the 8-node dual-Xeon OSU cluster (or the 16-node Topspin
// system) cabled with one of the three interconnects. It owns the engine,
// the per-node hardware, the chosen fabric, and the MPI job, and runs a
// rank program to completion in simulated time.
//
//   cluster::ClusterConfig cfg{.nodes = 8, .net = cluster::Net::kInfiniBand};
//   cluster::Cluster c(cfg);
//   sim::Time t = c.run([](mpi::Comm& comm) -> sim::Task<void> {
//     co_await comm.barrier();
//   });
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audit/report.hpp"
#include "cluster/partition.hpp"
#include "elan/elan_fabric.hpp"
#include "fault/fault.hpp"
#include "gm/gm_fabric.hpp"
#include "ib/ib_fabric.hpp"
#include "model/node_hw.hpp"
#include "mpi/ch_factories.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/pdes/fabric_exec.hpp"

namespace mns::cluster {

enum class Net { kInfiniBand, kMyrinet, kQuadrics };

const char* net_name(Net n);
/// Parse "ib" / "myri" / "qsn" (the paper's series labels).
Net parse_net(const std::string& s);

enum class Bus {
  kDefault,  // historical: IB + Myrinet on PCI-X, Quadrics on PCI
  kPci66,    // force PCI 66 (the paper's Figs. 26-28 experiment)
  kPcix133,
};

struct ClusterConfig {
  std::size_t nodes = 8;
  int ppn = 1;  // processes per node (paper: 1, or 2 for SMP mode)
  Net net = Net::kInfiniBand;
  Bus bus = Bus::kDefault;
  // Opt-in: let the fabric collapse provably-uncontended messages into
  // closed-form express completions (see netfabric.hpp). Timing of every
  // individual flow is bit-identical to the packet machine, but a
  // demotion after the launch window re-schedules the flow's pending
  // event from the demoter's handler, which can flip the order of
  // SAME-INSTANT events against the packet path. Raw fabric traffic
  // never observes that order; full MPI runs do (completion callbacks
  // feed back into posting), so contended collectives can drift by
  // microseconds. Off by default so figure/table artifacts are exactly
  // reproducible; turn on for wall-clock speed when bit-exactness across
  // the express toggle is not required.
  bool express = false;

  /// PDES partition count for the run (see src/sim/pdes and
  /// cluster/partition.hpp). 1 — the default — is the sequential engine,
  /// byte-identical to every artifact the repo has ever produced. N > 1
  /// block-partitions the nodes over N private engines, each run on its
  /// own thread by a pdes::FabricExecutor: a partition owns its nodes'
  /// pipes, NIC state, recovery timers and MPI procs outright, and every
  /// cross-partition interaction travels as a timestamped wire message
  /// (the fabric's split-flow protocol) under the conservative LBTS
  /// window. Results are required (and chaos-tested) to be bit-identical
  /// for any partition count, under --express and under fault plans.
  ///
  /// Configurations whose hardware shortcut reads or writes remote-node
  /// state directly — Elan hardware broadcast / rendezvous hardware
  /// multicast (switch-wide fan-out), fat-tree topologies (shared spine
  /// pipes), IB on-demand connections (symmetric connection tables) —
  /// are demoted to sequential execution: the request is validated and
  /// recorded in partition_plan(), but effective_partitions() reports 1.
  int partitions = 1;

  /// Chaos harness (src/fault): deterministic packet drops / corruption,
  /// link flaps, NIC stalls, registration failures, and fail-stop
  /// linkdown/nicdown clauses. Empty (the default) leaves the data path
  /// bit-identical to a build without the fault layer. Parse from a CLI
  /// spec with fault::FaultPlan::parse.
  fault::FaultPlan faults;

  /// Progress guard: when nonzero, every engine refuses to advance its
  /// clock past this horizon and throws sim::LivelockError carrying a
  /// progress diagnostic (per-flow stage, pending counters, partition
  /// horizons) instead of running a hung or livelocked simulation
  /// forever. Zero (the default) means unlimited.
  sim::Time max_sim_time = sim::Time::zero();

  // Ablation/calibration hooks: mutate the default hardware or channel
  // parameters before construction.
  std::function<void(ib::IbConfig&)> tweak_ib;
  std::function<void(gm::GmConfig&)> tweak_gm;
  std::function<void(elan::ElanConfig&)> tweak_elan;
  std::function<void(mpi::RdvChannelConfig&)> tweak_channel;
  std::function<void(mpi::ElanChannelConfig&)> tweak_elan_channel;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  using RankMain = std::function<sim::Task<void>(mpi::Comm&)>;

  /// Run `rank_main` on every rank to completion; returns elapsed
  /// simulated time for this run. May be called repeatedly (time
  /// accumulates; caches stay warm — like consecutive trials in one job).
  /// In audit builds (MNS_AUDIT=ON) every run finishes with a finalize
  /// audit: any broken conservation law throws audit::AuditError.
  sim::Time run(RankMain rank_main);

  /// Finalize-time invariant report over every layer (engine, fabric,
  /// pin-down caches, MPI). Call after run(); see audit/report.hpp.
  audit::AuditReport make_audit_report();

  sim::Engine& engine() { return *engines_.front(); }
  /// Partition p's engine (p < effective_partitions()).
  sim::Engine& partition_engine(int p) {
    return *engines_.at(static_cast<std::size_t>(p));
  }
  /// Global simulated time: the furthest any partition has executed.
  /// Equals engine().now() when running sequentially.
  sim::Time now() const {
    sim::Time t = engines_.front()->now();
    for (const auto& e : engines_) t = std::max(t, e->now());
    return t;
  }
  mpi::Mpi& mpi() { return *mpi_; }
  mpi::Comm& comm(int rank) { return *comms_.at(static_cast<std::size_t>(rank)); }
  int ranks() const { return static_cast<int>(comms_.size()); }
  const ClusterConfig& config() const { return cfg_; }

  prof::Recorder& recorder() { return mpi_->recorder(); }
  sim::Cpu& cpu(int rank) { return mpi_->proc(rank).cpu(); }

  /// MPI library memory footprint on a node (paper Fig. 13).
  std::uint64_t device_memory_bytes(int node) const {
    return mpi_->device().memory_bytes(node);
  }

  /// The constructed fabric (whichever of the three cfg.net selected);
  /// used by the chaos tests to read fault/recovery counters.
  model::NetFabric& fabric();

  /// The validated PDES partition plan for cfg.partitions (block layout;
  /// lookahead = this fabric's tx wire latency). Always populated — the
  /// default is the trivial single-partition plan.
  const PartitionPlan& partition_plan() const { return plan_; }

  /// Partitions actually executing in parallel: cfg.partitions, or 1
  /// when the configuration was demoted to sequential (see the
  /// ClusterConfig::partitions comment for the demotion rules).
  int effective_partitions() const { return effective_partitions_; }

 private:
  /// Spawns every rank and drives the engines to completion (one body for
  /// the sequential and partitioned layouts); run() wraps it with the
  /// livelock-diagnostic handler.
  void run_ranks(RankMain rank_main, sim::Time start);

  ClusterConfig cfg_;
  // engines_[p] owns partition p's share of the machine; engines_[0] is
  // the sequential engine when effective_partitions_ == 1.
  std::vector<std::unique_ptr<sim::Engine>> engines_;
  int effective_partitions_ = 1;
  std::unique_ptr<sim::pdes::FabricExecutor> exec_;
  // Coroutine frames outstanding in the thread's frame pool right after
  // construction (the persistent daemon loops). The finalize audit checks
  // the pool returns to exactly this level — any excess is a leaked frame.
  std::uint64_t frame_pool_baseline_ = 0;
  std::vector<std::unique_ptr<model::NodeHw>> nodes_;
  // Exactly one of these is built, per cfg_.net.
  std::unique_ptr<ib::IbFabric> ib_;
  std::unique_ptr<gm::GmFabric> gm_;
  std::unique_ptr<elan::ElanFabric> elan_;
  std::unique_ptr<mpi::Mpi> mpi_;
  std::vector<std::unique_ptr<mpi::Comm>> comms_;
  PartitionPlan plan_;
};

}  // namespace mns::cluster
