#include "cluster/partition.hpp"

#include <stdexcept>
#include <string>

namespace mns::cluster {

sim::pdes::Topology PartitionPlan::to_topology() const {
  sim::pdes::Topology t;
  t.nodes = nodes;
  t.partitions = partitions;
  t.part_of = part_of;
  t.lookahead = lookahead;
  return t;
}

PartitionPlan make_partition_plan(int nodes, int partitions,
                                  sim::Time min_link_latency) {
  if (nodes <= 0) {
    throw std::invalid_argument("partition plan needs at least one node");
  }
  if (partitions < 1 || partitions > nodes) {
    throw std::invalid_argument(
        "partitions must be in [1, nodes]; got " +
        std::to_string(partitions) + " for " + std::to_string(nodes) +
        " nodes");
  }
  if (min_link_latency <= sim::Time::zero()) {
    throw std::invalid_argument(
        "conservative lookahead requires a positive minimum link latency");
  }
  PartitionPlan plan;
  plan.nodes = nodes;
  plan.partitions = partitions;
  plan.lookahead = min_link_latency;
  plan.part_of.resize(static_cast<std::size_t>(nodes));
  plan.sizes.assign(static_cast<std::size_t>(partitions), 0);
  for (int i = 0; i < nodes; ++i) {
    // Same block rule as pdes::Topology::blocks: node i -> i*K/nodes.
    const int p = static_cast<int>(
        (static_cast<long long>(i) * partitions) / nodes);
    plan.part_of[static_cast<std::size_t>(i)] = p;
    ++plan.sizes[static_cast<std::size_t>(p)];
  }
  return plan;
}

}  // namespace mns::cluster
