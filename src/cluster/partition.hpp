// Node-graph partitioning for the conservative PDES core (src/sim/pdes).
//
// A Cluster's node graph is fully connected through one switch, so every
// cut edge of any partition carries the same latency floor: the fabric's
// tx wire latency, the time a packet spends on the cable before the
// destination can observe it. That minimum over all cut edges is the
// conservative lookahead — a partition may execute up to
// (peer horizon + lookahead) without waiting, and no layout choice can
// improve or damage it. The plan is therefore exact, not heuristic:
// contiguous blocks matching the cluster's block rank placement, with
// remainder nodes spread over the leading partitions.
#pragma once

#include <vector>

#include "sim/pdes/pdes.hpp"
#include "sim/time.hpp"

namespace mns::cluster {

/// A validated assignment of cluster nodes to PDES partitions plus the
/// lookahead bound derived from the fabric's physics.
struct PartitionPlan {
  int nodes = 0;
  int partitions = 1;
  std::vector<int> part_of;  // node -> partition (contiguous blocks)
  std::vector<int> sizes;    // partition -> owned-node count
  // Minimum latency over all cut edges == the fabric's tx wire latency
  // (uniform switch fan-out makes every edge the minimum).
  sim::Time lookahead;

  /// The same plan in the PDES core's vocabulary.
  sim::pdes::Topology to_topology() const;
};

/// Block-partition `nodes` cluster nodes into `partitions` groups with
/// conservative lookahead `min_link_latency`. Throws std::invalid_argument
/// when the request is structurally impossible (no nodes, partitions
/// outside [1, nodes], non-positive latency — a zero-latency link would
/// admit no conservative window at all).
PartitionPlan make_partition_plan(int nodes, int partitions,
                                  sim::Time min_link_latency);

}  // namespace mns::cluster
