#include "elan/elan_fabric.hpp"

#include <memory>
#include <string>

#include "audit/report.hpp"

namespace mns::elan {

ElanConfig default_elan_config(std::size_t nodes) {
  using sim::Time;
  return ElanConfig{
      .switch_cfg =
          {
              .ports = nodes,
              .port_bytes_per_second = 400e6,  // Elan3 link
              .forward_latency = Time::ns(150),  // Elite is fast
          },
      .nic =
          {
              // Link protocol efficiency caps sustained rate near 308 MB
              // (2^20)/s even though the raw link is 400 MB/s.
              .tx_rate = 324e6,
              .rx_rate = 324e6,
              .tx_wire_latency = Time::ns(250),
              .rx_fixed = Time::ns(100),
              // The Elan NIC processor is quick; most of the 4.6 us
              // latency is host overhead posting Tport descriptors.
              .per_msg_setup = Time::ns(400),
              .per_msg_rx_setup = Time::ns(300),
              // Wormhole routing: fine-grained cut-through.
              .mtu = 512,
              .shared_processor = true,
              .ack_processing = Time::usec(2.0),
              .ack_delay = Time::ns(400),
          },
      .mmu =
          {
              .page_bytes = 8192,
              .entries = 4096,
              .miss_cost = Time::ns(400),
              .miss_cost_base = Time::usec(3.0),
          },
      .dma_queue_depth = 16,
      .queue_overflow_penalty = Time::usec(2.5),
      .loopback_penalty = Time::usec(1.7),
      .memory_bytes = 7ULL << 20,
      .recovery =
          {
              // Hardware retry: tight first timeout (the NIC notices a
              // missing ack fast), backoff doubling to a 160 us ceiling.
              .protocol = model::RecoveryConfig::Protocol::kHwRetry,
              .rto = Time::us(10),
              .backoff_cap = Time::us(160),
              .retry_budget = 10,
          },
  };
}

ElanFabric::ElanFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
                       const ElanConfig& cfg,
                       const model::FabricPartitioning* parts)
    : NetFabric(eng, std::move(nodes), cfg.switch_cfg, cfg.nic, parts),
      cfg_(cfg) {
  set_recovery(cfg_.recovery);
  mmu_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    mmu_.emplace_back(cfg_.mmu);
  }
  outstanding_.assign(node_count(), 0);
}

std::uint64_t ElanFabric::memory_bytes(int) const { return cfg_.memory_bytes; }

sim::Time ElanFabric::tx_setup(const model::NetMsg& msg) {
  sim::Time t = nic_config().per_msg_setup;
  if (outstanding_[static_cast<std::size_t>(msg.src)] >
      cfg_.dma_queue_depth) {
    // Descriptor queue overflow: the NIC must spill/refetch descriptors.
    t += cfg_.queue_overflow_penalty;
  }
  if (msg.src == msg.dst) {
    // NIC loopback path: Quadrics MPI has no shared-memory shortcut.
    t += cfg_.loopback_penalty;
  }
  return t;
}

sim::Time ElanFabric::tx_stall(const model::NetMsg& msg) {
  return mmu_[static_cast<std::size_t>(msg.src)].access(msg.src_addr,
                                                        msg.bytes);
}

sim::Time ElanFabric::rx_stall(const model::NetMsg& msg) {
  if (msg.dst_addr == 0) return sim::Time::zero();  // NIC-buffer delivery
  return mmu_[static_cast<std::size_t>(msg.dst)].access(msg.dst_addr,
                                                        msg.bytes);
}

bool ElanFabric::express_rx_ok(const model::NetMsg& msg) const {
  // Host-addressed payloads walk the destination Elan MMU at delivery —
  // a stateful access (TLB fills) the express path may not pre-run.
  return msg.dst_addr == 0;
}

void ElanFabric::on_posted(const model::NetMsg& msg) {
  ++outstanding_[static_cast<std::size_t>(msg.src)];
}

void ElanFabric::on_delivered(const model::NetMsg& msg) {
  --outstanding_[static_cast<std::size_t>(msg.src)];
}

void ElanFabric::on_aborted(const model::NetMsg& msg) {
  --outstanding_[static_cast<std::size_t>(msg.src)];
}

sim::Time ElanFabric::degrade_delay(const model::NetMsg&, int round) const {
  // Escalation semantics: hardware retry is invisible to software until
  // the ladder tops out. The first degraded DMA pays the full capped
  // backoff before elanlib's error trap arms; after that the trap fires
  // on the first timeout and the error word surfaces immediately.
  return round == 1 ? cfg_.recovery.backoff_cap : cfg_.recovery.rto;
}

void ElanFabric::register_audits(audit::AuditReport& report) {
  NetFabric::register_audits(report);
  report.add_check("elan::ElanFabric", [this](audit::AuditReport::Scope& s) {
    for (std::size_t n = 0; n < node_count(); ++n) {
      s.require_eq(outstanding_[n], std::size_t{0},
                   "node " + std::to_string(n) +
                       ": QDMA descriptor(s) never retired");
      s.require_eq(memory_bytes(static_cast<int>(n)), cfg_.memory_bytes,
                   "node " + std::to_string(n) +
                       ": Elan memory footprint is not flat");
    }
  });
}

void ElanFabric::post_hw_broadcast(int src, std::uint64_t bytes,
                                   std::uint64_t src_addr,
                                   std::function<void()> on_delivered) {
  // Source MMU walk still applies before the hardware fan-out.
  const sim::Time stall =
      mmu_[static_cast<std::size_t>(src)].access(src_addr, bytes);
  post_switch_broadcast(src, bytes, stall, std::move(on_delivered));
}

}  // namespace mns::elan
