// Quadrics fabric model (Elan3 QM-400 NICs + Elite switch, Elan3lib/Tports).
//
// Quadrics is architecturally the odd one out:
//   - A global virtual address space: no registration is ever needed, but
//     the Elan3's on-board MMU must hold translations for the pages it
//     DMAs. First-touch of a new buffer stalls the NIC while system
//     software synchronizes the MMU tables — so Quadrics is *still*
//     sensitive to buffer reuse (paper Fig. 7) despite having no pin-down
//     cache.
//   - Tports: tag matching runs ON the NIC, so rendezvous-style transfers
//     progress without any host involvement. This is the mechanism behind
//     Quadrics' superior computation/communication overlap (Fig. 6).
//   - The QDMA engine tracks a bounded number of outstanding descriptors;
//     pushing more than ~16 concurrent sends degrades throughput (the
//     window-size droop in Fig. 2).
//   - Hardware broadcast in the Elite switch: one injection reaches every
//     node, used by the collective fast paths.
//   - The QM-400 sits on plain 66 MHz PCI: the host bus, not the 400 MB/s
//     link, bounds bandwidth.
//   - Its MPI has no shared-memory path worth the name: intra-node
//     messages loop through the NIC and come out *slower* than inter-node
//     (Fig. 9).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "model/netfabric.hpp"
#include "model/nic_tlb.hpp"

namespace mns::elan {

struct ElanConfig {
  model::SwitchConfig switch_cfg;
  model::NicConfig nic;
  model::NicTlbConfig mmu;
  std::size_t dma_queue_depth;     // outstanding sends before degradation
  sim::Time queue_overflow_penalty;  // extra per-message cost when over
  sim::Time loopback_penalty;      // intra-node NIC loopback extra cost
  std::uint64_t memory_bytes;      // flat MPI footprint (Fig. 13)

  /// Elan hardware DMA retry: the NIC re-walks a failed DMA with bounded
  /// exponential backoff, invisible to software until the retry budget is
  /// gone (set in default_elan_config).
  model::RecoveryConfig recovery;
};

/// Calibrated Elan3 QM-400 / Elite parameters.
ElanConfig default_elan_config(std::size_t nodes);

class ElanFabric final : public model::NetFabric {
 public:
  ElanFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
             const ElanConfig& cfg,
             const model::FabricPartitioning* parts = nullptr);

  std::uint64_t memory_bytes(int node) const;

  /// Elite hardware broadcast: one injection from `src`, replicated by the
  /// switch to every other node. `on_delivered` fires once all copies have
  /// landed. Used by the MPI collective fast paths (barrier/bcast).
  void post_hw_broadcast(int src, std::uint64_t bytes, std::uint64_t src_addr,
                         std::function<void()> on_delivered);

  model::NicTlb& mmu(int node) {
    return mmu_[static_cast<std::size_t>(node)];
  }

  /// Occupy node's NIC protocol processor (serializes with message
  /// processing); used by the MPI device for NIC-side tag-match scans.
  sim::Task<void> occupy_nic(int node, sim::Time d) {
    return nic_proc(node).occupy(d);
  }

  std::size_t outstanding(int node) const {
    return outstanding_[static_cast<std::size_t>(node)];
  }

  const ElanConfig& config() const { return cfg_; }

  /// Fail-stop degradation counter: hardware-retry ladders escalated to a
  /// surfaced software error after exhaustion against a dead link/NIC
  /// (one escalation per link learned dead).
  std::uint64_t retry_escalations() const { return links_failed(); }

  /// Adds Elan-specific invariants: no leaked QDMA descriptors (every
  /// posted send retired) and the flat Quadrics memory footprint.
  void register_audits(audit::AuditReport& report) override;

 protected:
  sim::Time tx_setup(const model::NetMsg& msg) override;
  sim::Time tx_stall(const model::NetMsg& msg) override;
  sim::Time rx_stall(const model::NetMsg& msg) override;
  /// The destination MMU walk mutates NIC translation state, so rx_stall
  /// is not a pure function for host-addressed payloads — those must stay
  /// on the packet path, where the walk runs at first-packet delivery.
  bool express_rx_ok(const model::NetMsg& msg) const override;
  void on_posted(const model::NetMsg& msg) override;
  void on_delivered(const model::NetMsg& msg) override;
  /// Retry exhaustion retires the QDMA descriptor like a delivery would.
  void on_aborted(const model::NetMsg& msg) override;
  /// First degraded DMA still spins the link-level retry ladder to its
  /// backoff cap before the error trap arms; later ones surface after a
  /// single hardware timeout.
  sim::Time degrade_delay(const model::NetMsg& msg, int round) const override;

 private:
  ElanConfig cfg_;
  std::vector<model::NicTlb> mmu_;
  std::vector<std::size_t> outstanding_;
};

}  // namespace mns::elan
