#include "fault/fault.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>

namespace mns::fault {

namespace {

void check_prob(const char* what, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(what) +
                                ": probability must be in [0, 1]");
  }
}

void check_node(const char* what, int node, bool allow_any) {
  if (node == kAnyNode && allow_any) return;
  if (node < 0) {
    throw std::invalid_argument(std::string(what) +
                                ": node index must be >= 0");
  }
}

[[noreturn]] void bad_clause(const std::string& clause, const char* why) {
  throw std::invalid_argument("--faults: bad clause '" + clause + "': " + why);
}

// Strict numeric parsers: the whole field must be consumed (no trailing
// garbage), mirroring the hardened util::Flags accessors.
std::uint64_t parse_u64(const std::string& clause, const std::string& s) {
  if (s.empty()) bad_clause(clause, "expected a non-negative integer");
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    bad_clause(clause, "expected a non-negative integer");
  }
  if (pos != s.size() || s[0] == '-') {
    bad_clause(clause, "expected a non-negative integer");
  }
  return v;
}

double parse_prob(const std::string& clause, const std::string& s) {
  if (s.empty()) bad_clause(clause, "expected a probability in [0, 1]");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    bad_clause(clause, "expected a probability in [0, 1]");
  }
  if (pos != s.size() || !(v >= 0.0 && v <= 1.0)) {
    bad_clause(clause, "expected a probability in [0, 1]");
  }
  return v;
}

// "SRC-DST", "*", or one-sided "SRC-*" / "*-DST" -> node pair (each
// wildcard side = kAnyNode).
std::pair<int, int> parse_link(const std::string& clause,
                               const std::string& s) {
  if (s == "*") return {kAnyNode, kAnyNode};
  const std::size_t dash = s.find('-');
  if (dash == std::string::npos) {
    bad_clause(clause, "expected SRC-DST or *");
  }
  const std::string lhs = s.substr(0, dash);
  const std::string rhs = s.substr(dash + 1);
  const int src =
      lhs == "*" ? kAnyNode : static_cast<int>(parse_u64(clause, lhs));
  const int dst =
      rhs == "*" ? kAnyNode : static_cast<int>(parse_u64(clause, rhs));
  return {src, dst};
}

// Specificity class of a link spec: exact endpoints beat one-sided
// wildcards beat the full wildcard, regardless of clause order. Folding
// applies lower classes first so higher classes overwrite them.
int specificity(int src, int dst) {
  return (src != kAnyNode ? 1 : 0) + (dst != kAnyNode ? 1 : 0);
}

int parse_node(const std::string& clause, const std::string& s) {
  if (s == "*") return kAnyNode;
  return static_cast<int>(parse_u64(clause, s));
}

std::vector<std::string> split(const std::string& s, const char* seps) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find_first_of(seps, start);
    const std::size_t stop = end == std::string::npos ? s.size() : end;
    if (stop > start) out.push_back(s.substr(start, stop - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

}  // namespace

FaultPlan& FaultPlan::drop(int src, int dst, double prob) {
  check_prob("FaultPlan::drop", prob);
  check_node("FaultPlan::drop", src, /*allow_any=*/true);
  check_node("FaultPlan::drop", dst, /*allow_any=*/true);
  links_.push_back({src, dst, prob, kUnsetProb});
  return *this;
}

FaultPlan& FaultPlan::corrupt(int src, int dst, double prob) {
  check_prob("FaultPlan::corrupt", prob);
  check_node("FaultPlan::corrupt", src, /*allow_any=*/true);
  check_node("FaultPlan::corrupt", dst, /*allow_any=*/true);
  links_.push_back({src, dst, kUnsetProb, prob});
  return *this;
}

FaultPlan& FaultPlan::flap(int src, int dst, sim::Time from, sim::Time to) {
  check_node("FaultPlan::flap", src, /*allow_any=*/true);
  check_node("FaultPlan::flap", dst, /*allow_any=*/true);
  if (!(from < to)) {
    throw std::invalid_argument("FaultPlan::flap: window must satisfy from < to");
  }
  flaps_.push_back({src, dst, from, to});
  return *this;
}

FaultPlan& FaultPlan::nic_stall(int node, sim::Time at, sim::Time duration) {
  check_node("FaultPlan::nic_stall", node, /*allow_any=*/false);
  if (duration <= sim::Time::zero()) {
    throw std::invalid_argument("FaultPlan::nic_stall: duration must be > 0");
  }
  stalls_.push_back({node, at, duration});
  return *this;
}

FaultPlan& FaultPlan::reg_fail(int node, double prob) {
  check_prob("FaultPlan::reg_fail", prob);
  check_node("FaultPlan::reg_fail", node, /*allow_any=*/true);
  reg_fails_.push_back({node, prob});
  return *this;
}

FaultPlan& FaultPlan::link_down(int src, int dst, sim::Time at) {
  check_node("FaultPlan::link_down", src, /*allow_any=*/true);
  check_node("FaultPlan::link_down", dst, /*allow_any=*/true);
  if (at < sim::Time::zero()) {
    throw std::invalid_argument("FaultPlan::link_down: at must be >= 0");
  }
  link_downs_.push_back({src, dst, at});
  return *this;
}

FaultPlan& FaultPlan::nic_down(int node, sim::Time at) {
  check_node("FaultPlan::nic_down", node, /*allow_any=*/false);
  if (at < sim::Time::zero()) {
    throw std::invalid_argument("FaultPlan::nic_down: at must be >= 0");
  }
  nic_downs_.push_back({node, at});
  return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  bool any = false;
  for (const std::string& clause : split(spec, ";,")) {
    const std::vector<std::string> f = split(clause, ":");
    if (f.empty()) continue;
    const std::string& kind = f[0];
    if (kind == "seed") {
      if (f.size() != 2) bad_clause(clause, "expected seed:N");
      plan.set_seed(parse_u64(clause, f[1]));
    } else if (kind == "drop" || kind == "corrupt") {
      if (f.size() != 3) {
        bad_clause(clause, "expected drop|corrupt:SRC-DST:PROB");
      }
      const auto [src, dst] = parse_link(clause, f[1]);
      const double p = parse_prob(clause, f[2]);
      if (kind == "drop") {
        plan.drop(src, dst, p);
      } else {
        plan.corrupt(src, dst, p);
      }
      any = true;
    } else if (kind == "flap") {
      if (f.size() != 4) bad_clause(clause, "expected flap:SRC-DST:FROM_US:TO_US");
      const auto [src, dst] = parse_link(clause, f[1]);
      const auto from = parse_u64(clause, f[2]);
      const auto to = parse_u64(clause, f[3]);
      if (!(from < to)) bad_clause(clause, "flap window must satisfy FROM < TO");
      plan.flap(src, dst, sim::Time::us(static_cast<std::int64_t>(from)),
                sim::Time::us(static_cast<std::int64_t>(to)));
      any = true;
    } else if (kind == "stall") {
      if (f.size() != 4) bad_clause(clause, "expected stall:NODE:AT_US:DUR_US");
      const int node = parse_node(clause, f[1]);
      if (node == kAnyNode) bad_clause(clause, "stall needs a concrete node");
      const auto at = parse_u64(clause, f[2]);
      const auto dur = parse_u64(clause, f[3]);
      if (dur == 0) bad_clause(clause, "stall duration must be > 0");
      plan.nic_stall(node, sim::Time::us(static_cast<std::int64_t>(at)),
                     sim::Time::us(static_cast<std::int64_t>(dur)));
      any = true;
    } else if (kind == "regfail") {
      if (f.size() != 3) bad_clause(clause, "expected regfail:NODE:PROB");
      plan.reg_fail(parse_node(clause, f[1]), parse_prob(clause, f[2]));
      any = true;
    } else if (kind == "linkdown") {
      if (f.size() != 3) bad_clause(clause, "expected linkdown:SRC-DST:AT_US");
      const auto [src, dst] = parse_link(clause, f[1]);
      const auto at = parse_u64(clause, f[2]);
      plan.link_down(src, dst, sim::Time::us(static_cast<std::int64_t>(at)));
      any = true;
    } else if (kind == "nicdown") {
      if (f.size() != 3) bad_clause(clause, "expected nicdown:NODE:AT_US");
      const int node = parse_node(clause, f[1]);
      if (node == kAnyNode) bad_clause(clause, "nicdown needs a concrete node");
      const auto at = parse_u64(clause, f[2]);
      plan.nic_down(node, sim::Time::us(static_cast<std::int64_t>(at)));
      any = true;
    } else {
      bad_clause(clause,
                 "unknown fault kind (want seed, drop, corrupt, flap, "
                 "stall, regfail, linkdown, nicdown)");
    }
  }
  if (!any && !spec.empty()) {
    // A spec that only sets a seed injects nothing; flag the likely typo.
    if (plan.empty()) {
      throw std::invalid_argument(
          "--faults: spec '" + spec + "' configures no faults");
    }
  }
  return plan;
}

Injector::Injector(const FaultPlan& plan, std::size_t nodes)
    : nodes_(nodes), stalls_(plan.stalls()) {
  // Independent per-link / per-node streams: each is seeded from the plan
  // seed and its own coordinates via SplitMix64, so stream contents never
  // depend on which other links are exercised or in what order.
  links_.resize(nodes * nodes);
  reg_.resize(nodes);
  for (std::size_t s = 0; s < nodes; ++s) {
    for (std::size_t d = 0; d < nodes; ++d) {
      Link& l = links_[s * nodes + d];
      util::SplitMix64 sm(plan.seed() ^ (0x9e37'79b9'0000'0000ULL +
                                         (s << 20) + (d << 4) + 1));
      l.rng = util::Rng(sm.next());
    }
  }
  for (std::size_t n = 0; n < nodes; ++n) {
    util::SplitMix64 sm(plan.seed() ^ (0x517c'c1b7'0000'0000ULL + (n << 4)));
    reg_[n].rng = util::Rng(sm.next());
  }
  // Fold specs into the dense table. A wildcard applies to every matching
  // link; precedence is by specificity, not clause order: exact SRC-DST
  // beats one-sided wildcards beats the full wildcard. Folding walks the
  // spec list once per specificity class in ascending order, so a more
  // specific spec always writes last. Within one class, later clauses
  // overwrite earlier ones (documented last-wins tie-break).
  auto each_link = [&](int src, int dst, auto&& fn) {
    for (std::size_t s = 0; s < nodes; ++s) {
      for (std::size_t d = 0; d < nodes; ++d) {
        if (s == d) continue;
        if (src != kAnyNode && static_cast<std::size_t>(src) != s) continue;
        if (dst != kAnyNode && static_cast<std::size_t>(dst) != d) continue;
        fn(links_[s * nodes + d]);
      }
    }
  };
  for (int klass = 0; klass <= 2; ++klass) {
    for (const LinkFaultSpec& f : plan.links()) {
      if (specificity(f.src, f.dst) != klass) continue;
      each_link(f.src, f.dst, [&](Link& l) {
        // kUnsetProb = the clause doesn't touch this field; an explicit
        // 0.0 DOES fold, so a specific clause can carve a clean link out
        // of a wildcard.
        if (f.drop_prob >= 0.0) l.drop = f.drop_prob;
        if (f.corrupt_prob >= 0.0) l.corrupt = f.corrupt_prob;
      });
    }
    for (const FlapSpec& f : plan.flaps()) {
      if (specificity(f.src, f.dst) != klass) continue;
      each_link(f.src, f.dst, [&](Link& l) {
        l.flap_from = f.from;
        l.flap_to = f.to;
      });
    }
  }
  // Same rule for regfail: a concrete node beats the wildcard.
  for (int klass = 0; klass <= 1; ++klass) {
    for (const RegFailSpec& f : plan.reg_fails()) {
      if ((f.node != kAnyNode ? 1 : 0) != klass) continue;
      for (std::size_t n = 0; n < nodes; ++n) {
        if (f.node != kAnyNode && static_cast<std::size_t>(f.node) != n) {
          continue;
        }
        reg_[n].prob = f.prob;
      }
    }
  }
  // Fail-stop clauses: overlapping downs take the EARLIEST instant (a link
  // cannot die twice), so specificity ordering is irrelevant here. A
  // nicdown folds into every link touching the node, both directions.
  for (const LinkDownSpec& f : plan.link_downs()) {
    each_link(f.src, f.dst, [&](Link& l) {
      if (f.at < l.down_at) l.down_at = f.at;
    });
  }
  for (const NicDownSpec& f : plan.nic_downs()) {
    each_link(f.node, kAnyNode, [&](Link& l) {
      if (f.at < l.down_at) l.down_at = f.at;
    });
    each_link(kAnyNode, f.node, [&](Link& l) {
      if (f.at < l.down_at) l.down_at = f.at;
    });
  }
}

}  // namespace mns::fault
