// Deterministic fault injection for the simulated interconnects.
//
// A FaultPlan is a pure value: a seed plus a list of fault specs (packet
// drop/corrupt probabilities on a named link, link flap windows, NIC stall
// intervals, registration-failure probabilities). It contains no mutable
// state and can be copied between sweep points freely.
//
// An Injector is the per-simulation instantiation of a plan: it owns one
// seeded RNG stream per link (and per node for registration failures), so
// the verdict sequence drawn on a link is a pure function of (plan seed,
// link, draw index) — independent of how draws on *other* links interleave.
// That is what makes a faulted simulation deterministic across reruns and
// across --jobs settings: each simulation builds its own Injector, nothing
// is shared, and within one single-threaded simulation the draw order per
// link is the event order, which is itself deterministic.
//
// Hot-path discipline (enforced by tools/simlint.py): packet_verdict and
// reg_should_fail allocate nothing and consult only the pre-sized dense
// per-link table built at construction time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mns::fault {

/// Outcome of one packet's traversal of a faulted link.
enum class Verdict : std::uint8_t {
  kDeliver = 0,
  kDrop = 1,     // packet vanishes at the sender NIC (never enters the switch)
  kCorrupt = 2,  // packet traverses the wire but fails its CRC at the receiver
};

/// Any node / any link wildcard for the spec setters below.
inline constexpr int kAnyNode = -1;

struct LinkFaultSpec {
  int src = kAnyNode;  // kAnyNode = every source
  int dst = kAnyNode;  // kAnyNode = every destination
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
};

/// During [from, to) every packet on the link is dropped (a hard outage,
/// drawn without randomness).
struct FlapSpec {
  int src = kAnyNode;
  int dst = kAnyNode;
  sim::Time from;
  sim::Time to;
};

/// At `at`, the node's NIC stops moving data for `duration` (both tx and
/// rx DMA engines stall). Modelled as pipe occupancy, so it also breaks
/// express-path claims and forces demotion of in-flight express flows.
struct NicStallSpec {
  int node = 0;
  sim::Time at;
  sim::Time duration;
};

struct RegFailSpec {
  int node = kAnyNode;
  double prob = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan& set_seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  /// Packet-loss probability on link src->dst (kAnyNode wildcards).
  FaultPlan& drop(int src, int dst, double prob);
  /// CRC-corruption probability on link src->dst; corrupt packets consume
  /// wire and receiver bandwidth before being discarded.
  FaultPlan& corrupt(int src, int dst, double prob);
  /// Hard outage window on link src->dst.
  FaultPlan& flap(int src, int dst, sim::Time from, sim::Time to);
  /// NIC DMA stall: node's tx+rx pipes busy for [at, at+duration).
  FaultPlan& nic_stall(int node, sim::Time at, sim::Time duration);
  /// Memory-registration failure probability on a node's regcache.
  FaultPlan& reg_fail(int node, double prob);

  bool empty() const {
    return links_.empty() && flaps_.empty() && stalls_.empty() &&
           reg_fails_.empty();
  }
  std::uint64_t seed() const { return seed_; }

  const std::vector<LinkFaultSpec>& links() const { return links_; }
  const std::vector<FlapSpec>& flaps() const { return flaps_; }
  const std::vector<NicStallSpec>& stalls() const { return stalls_; }
  const std::vector<RegFailSpec>& reg_fails() const { return reg_fails_; }

  /// Parse a --faults= spec. Grammar (clauses separated by ';' or ','):
  ///   seed:N
  ///   drop:SRC-DST:PROB        drop:*:PROB
  ///   corrupt:SRC-DST:PROB     corrupt:*:PROB
  ///   flap:SRC-DST:FROM_US:TO_US
  ///   stall:NODE:AT_US:DUR_US
  ///   regfail:NODE:PROB        regfail:*:PROB
  /// Example: "seed:42;drop:*:0.01;flap:0-1:100:250;stall:2:50:20".
  /// Throws std::invalid_argument with a message naming the bad clause.
  static FaultPlan parse(const std::string& spec);

 private:
  std::uint64_t seed_ = 1;
  std::vector<LinkFaultSpec> links_;
  std::vector<FlapSpec> flaps_;
  std::vector<NicStallSpec> stalls_;
  std::vector<RegFailSpec> reg_fails_;
};

/// Per-simulation instantiation of a FaultPlan over `nodes` nodes: dense
/// per-link fault table plus one independent RNG stream per link/node.
class Injector {
 public:
  Injector(const FaultPlan& plan, std::size_t nodes);

  /// True if any fault (drop, corrupt or flap) is configured on the link,
  /// at any time. Pure — used by the fabric to veto the express path for
  /// the flow up front, keeping the decision time-independent.
  bool link_armed(int src, int dst) const {
    if (src == dst) return false;  // loopback bypasses the wire
    const Link& l = link(src, dst);
    return l.drop > 0.0 || l.corrupt > 0.0 || l.flap_from < l.flap_to;
  }

  /// Draw the fate of one packet crossing src->dst at time `now`. Flap
  /// windows are checked first (no randomness consumed); probabilistic
  /// drop/corrupt share a single uniform draw per packet.
  Verdict packet_verdict(int src, int dst, sim::Time now) {
    Link& l = link(src, dst);
    if (l.flap_from < l.flap_to && now >= l.flap_from && now < l.flap_to) {
      return Verdict::kDrop;
    }
    if (l.drop <= 0.0 && l.corrupt <= 0.0) return Verdict::kDeliver;
    const double u = l.rng.uniform();
    if (u < l.drop) return Verdict::kDrop;
    if (u < l.drop + l.corrupt) return Verdict::kCorrupt;
    return Verdict::kDeliver;
  }

  bool reg_armed(int node) const { return reg_[idx(node)].prob > 0.0; }
  bool reg_should_fail(int node) {
    Reg& r = reg_[idx(node)];
    return r.prob > 0.0 && r.rng.uniform() < r.prob;
  }

  const std::vector<NicStallSpec>& nic_stalls() const { return stalls_; }
  std::size_t nodes() const { return nodes_; }

 private:
  struct Link {
    double drop = 0.0;
    double corrupt = 0.0;
    sim::Time flap_from;
    sim::Time flap_to;
    util::Rng rng{0};  // reseeded per link in the constructor
  };
  struct Reg {
    double prob = 0.0;
    util::Rng rng{0};
  };

  std::size_t idx(int node) const { return static_cast<std::size_t>(node); }
  Link& link(int src, int dst) { return links_[idx(src) * nodes_ + idx(dst)]; }
  const Link& link(int src, int dst) const {
    return links_[idx(src) * nodes_ + idx(dst)];
  }

  std::size_t nodes_;
  std::vector<Link> links_;
  std::vector<Reg> reg_;
  std::vector<NicStallSpec> stalls_;
};

}  // namespace mns::fault
