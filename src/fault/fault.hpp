// Deterministic fault injection for the simulated interconnects.
//
// A FaultPlan is a pure value: a seed plus a list of fault specs (packet
// drop/corrupt probabilities on a named link, link flap windows, NIC stall
// intervals, registration-failure probabilities). It contains no mutable
// state and can be copied between sweep points freely.
//
// An Injector is the per-simulation instantiation of a plan: it owns one
// seeded RNG stream per link (and per node for registration failures), so
// the verdict sequence drawn on a link is a pure function of (plan seed,
// link, draw index) — independent of how draws on *other* links interleave.
// That is what makes a faulted simulation deterministic across reruns and
// across --jobs settings: each simulation builds its own Injector, nothing
// is shared, and within one single-threaded simulation the draw order per
// link is the event order, which is itself deterministic.
//
// Hot-path discipline (enforced by tools/simlint.py): packet_verdict and
// reg_should_fail allocate nothing and consult only the pre-sized dense
// per-link table built at construction time.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace mns::fault {

/// Sentinel for "this permanent failure never happens".
inline constexpr sim::Time kNever =
    sim::Time::ps(std::numeric_limits<std::int64_t>::max());

/// Outcome of one packet's traversal of a faulted link.
enum class Verdict : std::uint8_t {
  kDeliver = 0,
  kDrop = 1,     // packet vanishes at the sender NIC (never enters the switch)
  kCorrupt = 2,  // packet traverses the wire but fails its CRC at the receiver
};

/// Any node / any link wildcard for the spec setters below.
inline constexpr int kAnyNode = -1;

/// "This clause does not set the field" sentinel for LinkFaultSpec. An
/// EXPLICIT 0.0 is different: it participates in precedence, so a
/// specific `drop:0-1:0` carves a clean link out of a wildcard
/// `drop:*:P`.
inline constexpr double kUnsetProb = -1.0;

struct LinkFaultSpec {
  int src = kAnyNode;  // kAnyNode = every source
  int dst = kAnyNode;  // kAnyNode = every destination
  double drop_prob = kUnsetProb;
  double corrupt_prob = kUnsetProb;
};

/// During [from, to) every packet on the link is dropped (a hard outage,
/// drawn without randomness).
struct FlapSpec {
  int src = kAnyNode;
  int dst = kAnyNode;
  sim::Time from;
  sim::Time to;
};

/// At `at`, the node's NIC stops moving data for `duration` (both tx and
/// rx DMA engines stall). Modelled as pipe occupancy, so it also breaks
/// express-path claims and forces demotion of in-flight express flows.
struct NicStallSpec {
  int node = 0;
  sim::Time at;
  sim::Time duration;
};

struct RegFailSpec {
  int node = kAnyNode;
  double prob = 0.0;
};

/// Fail-stop link failure: from `at` on, every packet on src->dst vanishes
/// permanently (the link never heals). Unlike flaps there is no recovery
/// window, so recovery protocols eventually exhaust their budgets and the
/// fabric learns the link is dead. Drawn without randomness — a dead-link
/// verdict consumes no RNG draws, so arming a linkdown clause leaves every
/// transient stream (drop/corrupt/regfail) bit-identical.
struct LinkDownSpec {
  int src = kAnyNode;
  int dst = kAnyNode;
  sim::Time at;
};

/// Fail-stop NIC failure: from `at` on, every link touching `node` (both
/// directions) is permanently dead. The node's processes keep running —
/// only its fabric connectivity is gone — which is exactly the scenario
/// that stalls a collective tree on a dead rank.
struct NicDownSpec {
  int node = 0;
  sim::Time at;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan& set_seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  /// Packet-loss probability on link src->dst (kAnyNode wildcards).
  FaultPlan& drop(int src, int dst, double prob);
  /// CRC-corruption probability on link src->dst; corrupt packets consume
  /// wire and receiver bandwidth before being discarded.
  FaultPlan& corrupt(int src, int dst, double prob);
  /// Hard outage window on link src->dst.
  FaultPlan& flap(int src, int dst, sim::Time from, sim::Time to);
  /// NIC DMA stall: node's tx+rx pipes busy for [at, at+duration).
  FaultPlan& nic_stall(int node, sim::Time at, sim::Time duration);
  /// Memory-registration failure probability on a node's regcache.
  FaultPlan& reg_fail(int node, double prob);
  /// Permanent fail-stop link failure from `at` on (kAnyNode wildcards).
  FaultPlan& link_down(int src, int dst, sim::Time at);
  /// Permanent fail-stop NIC failure: all links touching `node` die at `at`.
  FaultPlan& nic_down(int node, sim::Time at);

  bool empty() const {
    return links_.empty() && flaps_.empty() && stalls_.empty() &&
           reg_fails_.empty() && link_downs_.empty() && nic_downs_.empty();
  }
  /// True if the plan contains any permanent (fail-stop) failure clause.
  /// A static property of the plan — used to gate the collective
  /// error-agreement epilogue so transient-only plans stay bit-identical.
  bool has_fail_stop() const {
    return !link_downs_.empty() || !nic_downs_.empty();
  }
  std::uint64_t seed() const { return seed_; }

  const std::vector<LinkFaultSpec>& links() const { return links_; }
  const std::vector<FlapSpec>& flaps() const { return flaps_; }
  const std::vector<NicStallSpec>& stalls() const { return stalls_; }
  const std::vector<RegFailSpec>& reg_fails() const { return reg_fails_; }
  const std::vector<LinkDownSpec>& link_downs() const { return link_downs_; }
  const std::vector<NicDownSpec>& nic_downs() const { return nic_downs_; }

  /// Parse a --faults= spec. Grammar (clauses separated by ';' or ','):
  ///   seed:N
  ///   drop:SRC-DST:PROB        drop:*:PROB      drop:SRC-*:PROB  drop:*-DST:PROB
  ///   corrupt:SRC-DST:PROB     corrupt:*:PROB   (same per-side wildcards)
  ///   flap:SRC-DST:FROM_US:TO_US
  ///   stall:NODE:AT_US:DUR_US
  ///   regfail:NODE:PROB        regfail:*:PROB
  ///   linkdown:SRC-DST:AT_US   linkdown:*:AT_US (permanent, fail-stop)
  ///   nicdown:NODE:AT_US       (permanent, all links touching NODE)
  /// Example: "seed:42;drop:*:0.01;flap:0-1:100:250;linkdown:2-5:80".
  ///
  /// Precedence for overlapping clauses: a more specific clause beats a
  /// less specific one regardless of order — exact SRC-DST beats one-sided
  /// wildcards (SRC-* / *-DST), which beat the full wildcard (*). Among
  /// clauses of equal specificity the last one written wins. Fail-stop
  /// clauses compose differently: overlapping linkdown/nicdown take the
  /// EARLIEST down time (a link cannot die twice).
  /// Throws std::invalid_argument with a message naming the bad clause.
  static FaultPlan parse(const std::string& spec);

 private:
  std::uint64_t seed_ = 1;
  std::vector<LinkFaultSpec> links_;
  std::vector<FlapSpec> flaps_;
  std::vector<NicStallSpec> stalls_;
  std::vector<RegFailSpec> reg_fails_;
  std::vector<LinkDownSpec> link_downs_;
  std::vector<NicDownSpec> nic_downs_;
};

/// Per-simulation instantiation of a FaultPlan over `nodes` nodes: dense
/// per-link fault table plus one independent RNG stream per link/node.
class Injector {
 public:
  Injector(const FaultPlan& plan, std::size_t nodes);

  /// True if any fault (drop, corrupt, flap or permanent down) is
  /// configured on the link, at any time. Pure — used by the fabric to
  /// veto the express path for the flow up front, keeping the decision
  /// time-independent.
  bool link_armed(int src, int dst) const {
    if (src == dst) return false;  // loopback bypasses the wire
    const Link& l = link(src, dst);
    return l.drop > 0.0 || l.corrupt > 0.0 || l.flap_from < l.flap_to ||
           l.down_at != kNever;
  }

  /// Draw the fate of one packet crossing src->dst at time `now`.
  /// Permanent downs and flap windows are checked first (no randomness
  /// consumed, so arming them perturbs no transient stream); probabilistic
  /// drop/corrupt share a single uniform draw per packet.
  Verdict packet_verdict(int src, int dst, sim::Time now) {
    Link& l = link(src, dst);
    if (now >= l.down_at) return Verdict::kDrop;  // fail-stop: dead link
    if (l.flap_from < l.flap_to && now >= l.flap_from && now < l.flap_to) {
      return Verdict::kDrop;
    }
    if (l.drop <= 0.0 && l.corrupt <= 0.0) return Verdict::kDeliver;
    const double u = l.rng.uniform();
    if (u < l.drop) return Verdict::kDrop;
    if (u < l.drop + l.corrupt) return Verdict::kCorrupt;
    return Verdict::kDeliver;
  }

  /// The instant link src->dst dies permanently (kNever if it doesn't).
  /// Pure — the fabric consults this when a retry budget exhausts, to
  /// distinguish "transient storm lost the race" from "the component is
  /// dead" and trigger its degradation protocol only for the latter.
  sim::Time link_down_at(int src, int dst) const {
    if (src == dst) return kNever;
    return link(src, dst).down_at;
  }

  /// True once the link is permanently dead at `now`.
  bool link_dead(int src, int dst, sim::Time now) const {
    return now >= link_down_at(src, dst);
  }

  bool reg_armed(int node) const { return reg_[idx(node)].prob > 0.0; }
  bool reg_should_fail(int node) {
    Reg& r = reg_[idx(node)];
    return r.prob > 0.0 && r.rng.uniform() < r.prob;
  }

  const std::vector<NicStallSpec>& nic_stalls() const { return stalls_; }
  std::size_t nodes() const { return nodes_; }

 private:
  struct Link {
    double drop = 0.0;
    double corrupt = 0.0;
    sim::Time flap_from;
    sim::Time flap_to;
    sim::Time down_at = kNever;  // fail-stop instant (kNever = healthy)
    util::Rng rng{0};  // reseeded per link in the constructor
  };
  struct Reg {
    double prob = 0.0;
    util::Rng rng{0};
  };

  std::size_t idx(int node) const { return static_cast<std::size_t>(node); }
  Link& link(int src, int dst) { return links_[idx(src) * nodes_ + idx(dst)]; }
  const Link& link(int src, int dst) const {
    return links_[idx(src) * nodes_ + idx(dst)];
  }

  std::size_t nodes_;
  std::vector<Link> links_;
  std::vector<Reg> reg_;
  std::vector<NicStallSpec> stalls_;
};

}  // namespace mns::fault
