#include "gm/gm_fabric.hpp"

#include <string>

#include "audit/report.hpp"

namespace mns::gm {

GmConfig default_gm_config(std::size_t nodes) {
  using sim::Time;
  return GmConfig{
      .switch_cfg =
          {
              .ports = nodes,
              .port_bytes_per_second = 250e6,  // 2 Gbps links
              .forward_latency = Time::ns(300),
          },
      .nic =
          {
              .tx_rate = 248e6,
              .rx_rate = 248e6,
              .tx_wire_latency = Time::ns(400),
              .rx_fixed = Time::ns(150),
              // LANai firmware runs the protocol: per-message work is the
              // bulk of the 6.7 us latency, with tiny host overhead.
              .per_msg_setup = Time::usec(2.0),
              .per_msg_rx_setup = Time::usec(1.8),
              // Pipelining granularity: the LANai streams packets through
              // SRAM in ~1 KB chunks (cut-through behaviour).
              .mtu = 1024,
              .shared_processor = true,
              // GM is reliable: the LANai retires each send token on ack.
              .ack_processing = Time::usec(2.0),
              .ack_delay = Time::ns(200),
          },
      .regcache =
          {
              .register_base = Time::us(20),
              .register_per_page = Time::usec(1.2),
              .deregister_cost = Time::us(15),
              .page_bytes = 4096,
              .capacity_bytes = 256ULL << 20,
          },
      .sram_rate = 356e6,            // ~340 MB (2^20) /s aggregate staging
      .sram_free_bytes = 256 << 10,  // beyond this, staging contends
      .memory_bytes = 11ULL << 20,
      .recovery =
          {
              // LANai firmware Go-Back-N: a generous resend budget (the
              // firmware keeps trying far longer than an RC QP), fixed
              // timeout tuned to the 2 Gbps wire.
              .protocol = model::RecoveryConfig::Protocol::kGoBackN,
              .rto = Time::us(50),
              .backoff_cap = Time::zero(),
              .retry_budget = 15,
          },
  };
}

GmFabric::GmFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
                   const GmConfig& cfg,
                   const model::FabricPartitioning* parts)
    : NetFabric(eng, std::move(nodes), cfg.switch_cfg, cfg.nic, parts),
      cfg_(cfg) {
  set_recovery(cfg_.recovery);
  regcache_.reserve(node_count());
  sram_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    regcache_.emplace_back(cfg_.regcache);
    // Staging is per node: src-side staging runs on the sender's
    // partition, dst-side on the receiver's (split-flow rx half).
    sram_.push_back(std::make_unique<model::Pipe>(
        node_engine(static_cast<int>(i)), cfg_.sram_rate));
  }
}

void GmFabric::set_fault_plan(const fault::FaultPlan& plan) {
  NetFabric::set_fault_plan(plan);
  fault::Injector* inj = injector();
  if (inj == nullptr) return;
  regfail_ctx_.reserve(node_count());  // pointer stability for the hooks
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (!inj->reg_armed(static_cast<int>(n))) continue;
    regfail_ctx_.push_back({inj, static_cast<int>(n)});
    regcache_[n].set_fail_hook(&model::RegFailCtx::hook,
                               &regfail_ctx_.back());
  }
}

std::uint64_t GmFabric::memory_bytes(int) const { return cfg_.memory_bytes; }

void GmFabric::register_audits(audit::AuditReport& report) {
  NetFabric::register_audits(report);
  report.add_check("gm::GmFabric", [this](audit::AuditReport::Scope& s) {
    for (std::size_t n = 0; n < node_count(); ++n) {
      // GM ports are connectionless: the footprint never grows (Fig. 13).
      s.require_eq(memory_bytes(static_cast<int>(n)), cfg_.memory_bytes,
                   "node " + std::to_string(n) +
                       ": GM memory footprint is not flat");
      s.require(sram_[n]->idle(), "node " + std::to_string(n) +
                                      ": SRAM staging busy at finalize");
    }
  });
  for (std::size_t n = 0; n < node_count(); ++n) {
    regcache_[n].register_audits(
        report, "gm::regcache[node " + std::to_string(n) + "]");
  }
}

void GmFabric::collect_pipes(std::vector<model::Pipe*>& out) {
  NetFabric::collect_pipes(out);
  for (auto& p : sram_) out.push_back(p.get());
}

sim::Time GmFabric::degrade_delay(const model::NetMsg&, int round) const {
  // Round 1: the LANai firmware re-walks its route table looking for an
  // alternate path (one Go-Back-N timeout's worth of probing). The
  // single-crossbar topology offers none, so every later send on the
  // dead route fails fast after a fraction of the timeout.
  return round == 1 ? cfg_.recovery.rto : cfg_.recovery.rto / 8;
}

model::Pipe* GmFabric::staging_pipe(int node_id, const model::NetMsg& msg) {
  // Small messages fit comfortably in SRAM buffers; only bulk transfers
  // contend for staging bandwidth.
  if (msg.bytes <= cfg_.sram_free_bytes) return nullptr;
  return sram_[static_cast<std::size_t>(node_id)].get();
}

}  // namespace mns::gm
