// Myrinet fabric model (M3F-PCIXD-2 NICs + Myrinet-2000 switch, GM 2.x).
//
// GM semantics as used by MPICH-GM's channel device:
//   - Connectionless ports: no per-peer state, flat memory footprint.
//   - send/receive for small messages (staged through pre-registered GM
//     buffers) and *directed send* (remote put) for large zero-copy
//     transfers, which requires registered user buffers -> pin-down cache.
//   - The LANai-XP is a 225 MHz programmable processor: per-message
//     processing is cheap to overlap but slow in absolute terms, and every
//     byte is staged through the 2 MB on-board SRAM. Under simultaneous
//     large send+receive traffic the staging memory becomes the shared
//     bottleneck — the paper's Fig. 5 bi-directional droop past 256 KB.
//
// Links run 2 Gbps = 250 MB/s per direction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/netfabric.hpp"
#include "model/regcache.hpp"

namespace mns::gm {

struct GmConfig {
  model::SwitchConfig switch_cfg;
  model::NicConfig nic;
  model::RegCacheConfig regcache;
  double sram_rate;                  // staging throughput when it binds
  std::uint64_t sram_free_bytes;     // per-message size above which staging
                                     // contends (buffers no longer fit)
  std::uint64_t memory_bytes;        // flat MPI footprint (Fig. 13)

  /// LANai firmware reliability: Go-Back-N with cumulative acks — the
  /// receiver discards everything after a sequence gap, the sender
  /// resends the window (set in default_gm_config).
  model::RecoveryConfig recovery;
};

/// Calibrated LANai-XP / Myrinet-2000 parameters.
GmConfig default_gm_config(std::size_t nodes);

class GmFabric final : public model::NetFabric {
 public:
  GmFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
           const GmConfig& cfg,
           const model::FabricPartitioning* parts = nullptr);

  std::uint64_t memory_bytes(int node) const;

  model::RegistrationCache& regcache(int node) {
    return regcache_[static_cast<std::size_t>(node)];
  }

  const GmConfig& config() const { return cfg_; }

  /// Fail-stop degradation counter: alternate-route probes run after a
  /// Go-Back-N give-up was attributed to a dead link/NIC. GM is
  /// source-routed, so the firmware can fail over when the topology
  /// offers another path; the modeled cluster hangs every node off one
  /// Myrinet-2000 crossbar, so each probe enumerates the single route,
  /// finds it dead, and the error surfaces instead.
  std::uint64_t route_probes() const { return links_failed(); }

  /// Adds GM-specific invariants: flat per-node memory (connectionless
  /// ports), idle SRAM staging, and pin-down cache conservation laws.
  void register_audits(audit::AuditReport& report) override;

  /// Base pipes plus the SRAM staging stages.
  void collect_pipes(std::vector<model::Pipe*>& out) override;

  /// Installs the chaos plan, then wires registration-failure injection
  /// into every armed node's pin-down cache.
  void set_fault_plan(const fault::FaultPlan& plan) override;

 protected:
  model::Pipe* staging_pipe(int node_id, const model::NetMsg& msg) override;
  /// First degraded send pays the firmware route-table walk; later sends
  /// fail fast at the send-queue head.
  sim::Time degrade_delay(const model::NetMsg& msg, int round) const override;

 private:
  GmConfig cfg_;
  std::vector<model::RegistrationCache> regcache_;
  std::vector<std::unique_ptr<model::Pipe>> sram_;
  std::vector<model::RegFailCtx> regfail_ctx_;  // stable hook contexts
};

}  // namespace mns::gm
