#include "ib/ib_fabric.hpp"

#include <algorithm>
#include <string>

#include "audit/report.hpp"

namespace mns::ib {

IbConfig default_ib_config(std::size_t nodes) {
  using sim::Time;
  return IbConfig{
      .switch_cfg =
          {
              .ports = nodes,
              .port_bytes_per_second = 1.0e9,  // 8 Gbps data per 4x link
              .forward_latency = Time::ns(200),
          },
      .nic =
          {
              // HCA DMA engines sustain less than the wire: this is the
              // 841 MB/s uni-directional ceiling (Fig. 2).
              .tx_rate = 884e6,
              .rx_rate = 884e6,
              .tx_wire_latency = Time::ns(600),
              .rx_fixed = Time::ns(150),
              // InfiniHost WQE fetch + processing: the dominant share of
              // the 6.8 us small-message latency.
              .per_msg_setup = Time::ns(1900),
              .per_msg_rx_setup = Time::ns(1620),
              .mtu = 2048,
          },
      .regcache =
          {
              // VAPI registration is a kernel call plus per-page pinning.
              .register_base = Time::us(25),
              .register_per_page = Time::usec(1.5),
              .deregister_cost = Time::us(20),
              .page_bytes = 4096,
              .capacity_bytes = 256ULL << 20,
          },
      .base_memory_bytes = 20ULL << 20,
      .per_qp_memory_bytes = 5ULL << 20,
      .recovery =
          {
              // RC QP: transport timeout ~4x the fabric RTT, retry counter
              // 7 (the VAPI maximum) before the QP enters error state.
              .protocol = model::RecoveryConfig::Protocol::kIbRc,
              .rto = Time::us(40),
              .backoff_cap = Time::zero(),
              .retry_budget = 7,
          },
  };
}

IbFabric::IbFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
                   const IbConfig& cfg,
                   const model::FabricPartitioning* parts)
    : NetFabric(eng, std::move(nodes), cfg.switch_cfg, cfg.nic, parts),
      cfg_(cfg) {
  set_recovery(cfg_.recovery);
  regcache_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) {
    regcache_.emplace_back(cfg_.regcache);
  }
  connected_.resize(node_count());
}

void IbFabric::set_fault_plan(const fault::FaultPlan& plan) {
  NetFabric::set_fault_plan(plan);
  fault::Injector* inj = injector();
  if (inj == nullptr) return;
  regfail_ctx_.reserve(node_count());  // pointer stability for the hooks
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (!inj->reg_armed(static_cast<int>(n))) continue;
    regfail_ctx_.push_back({inj, static_cast<int>(n)});
    regcache_[n].set_fail_hook(&model::RegFailCtx::hook,
                               &regfail_ctx_.back());
  }
}

std::uint64_t IbFabric::memory_bytes(int node) const {
  const std::uint64_t peers =
      cfg_.on_demand_connections
          ? connected_[static_cast<std::size_t>(node)].size()
          : (node_count() > 0 ? node_count() - 1 : 0);
  return cfg_.base_memory_bytes + peers * cfg_.per_qp_memory_bytes;
}

void IbFabric::register_audits(audit::AuditReport& report) {
  NetFabric::register_audits(report);
  report.add_check("ib::IbFabric", [this](audit::AuditReport::Scope& s) {
    s.require(qp_teardowns() > 0 || reconnect_attempts() == 0,
              "RC reconnect attempts priced with no QP ever torn down");
    for (std::size_t n = 0; n < node_count(); ++n) {
      const std::string node = "node " + std::to_string(n);
      s.require(connected_[n].size() <= node_count() - 1,
                node + ": more RC connections than peers");
      for (const int peer : connected_[n]) {
        s.require(peer != static_cast<int>(n),
                  node + ": RC connection to itself");
        const bool symmetric =
            connected_[static_cast<std::size_t>(peer)].count(
                static_cast<int>(n)) > 0;
        s.require(symmetric, node + ": RC connection to node " +
                                 std::to_string(peer) +
                                 " is not symmetric");
      }
      // Fig. 13: memory = base + per-QP * connections (all-to-all when
      // connections are eager, contacted peers when on-demand).
      const std::uint64_t peers =
          cfg_.on_demand_connections ? connected_[n].size()
                                     : node_count() - 1;
      s.require_eq(memory_bytes(static_cast<int>(n)),
                   cfg_.base_memory_bytes +
                       peers * cfg_.per_qp_memory_bytes,
                   node + ": memory footprint off the Fig. 13 formula");
    }
  });
  for (std::size_t n = 0; n < node_count(); ++n) {
    regcache_[n].register_audits(
        report, "ib::regcache[node " + std::to_string(n) + "]");
  }
}

sim::Time IbFabric::degrade_delay(const model::NetMsg&, int round) const {
  // Re-establishment attempt against the dead peer: QP transition +
  // address exchange, which times out. Backoff doubles per attempt and
  // caps at 8x the base setup cost so a long stream of sends to a dead
  // peer drains in bounded time instead of retrying seven RTOs each.
  const int shift = std::min(round - 1, 3);
  return cfg_.connection_setup * (std::int64_t{1} << shift);
}

sim::Time IbFabric::tx_setup(const model::NetMsg& msg) {
  sim::Time t = nic_config().per_msg_setup;
  if (cfg_.on_demand_connections && msg.src != msg.dst) {
    auto& peers = connected_[static_cast<std::size_t>(msg.src)];
    if (peers.insert(msg.dst).second) {
      // First contact: RC connection establishment (QP transition +
      // address exchange) stalls this message.
      connected_[static_cast<std::size_t>(msg.dst)].insert(msg.src);
      t += cfg_.connection_setup;
    }
  }
  return t;
}

}  // namespace mns::ib
