// InfiniBand fabric model (Mellanox InfiniHost HCAs + InfiniScale switch).
//
// VAPI semantics as used by MVAPICH's ch_ib device:
//   - Reliable Connection (RC) service: a queue pair per node pair, set up
//     at init time. Each QP reserves WQE rings and eager RDMA buffers at
//     BOTH ends — this is what makes MPI-over-IB memory consumption grow
//     linearly with the node count (paper Fig. 13).
//   - Communication buffers must be registered; a pin-down cache makes the
//     cost depend on application buffer reuse (Figs. 7/8).
//   - RDMA write is used for everything: small/control messages go into a
//     remote ring buffer, large messages zero-copy to the receiver's
//     registered buffer.
//
// 4x links carry 10 Gbps signalling = 1 GB/s of data after 8b/10b coding;
// the HCA's DMA engines sustain ~880 MB/s per direction, and the PCI-X
// host bus (shared half-duplex) is the bi-directional bottleneck.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "model/netfabric.hpp"
#include "model/regcache.hpp"

namespace mns::ib {

struct IbConfig {
  model::SwitchConfig switch_cfg;
  model::NicConfig nic;
  model::RegCacheConfig regcache;
  std::uint64_t base_memory_bytes;    // HCA driver + library footprint
  std::uint64_t per_qp_memory_bytes;  // WQEs + eager ring per RC connection

  /// Extension (the paper's Section 3.8 remedy, after Wu et al.): create
  /// RC connections lazily on first use instead of all-to-all at init.
  /// Memory then grows with the peers a node actually talks to, at the
  /// price of a connection-setup stall on the first message.
  bool on_demand_connections = false;
  sim::Time connection_setup = sim::Time::us(130);

  /// RC transport reliability: per-QP ack/timeout with a fixed RTO and a
  /// bounded retry count; exhausting it puts the QP in error state and the
  /// completion surfaces to the MPI layer (set in default_ib_config).
  model::RecoveryConfig recovery;
};

/// Calibrated Mellanox InfiniHost MT23108 + InfiniScale parameters.
IbConfig default_ib_config(std::size_t nodes);

class IbFabric final : public model::NetFabric {
 public:
  IbFabric(sim::Engine& eng, std::vector<model::NodeHw*> nodes,
           const IbConfig& cfg,
           const model::FabricPartitioning* parts = nullptr);

  /// MPI-visible memory footprint on `node` (paper Fig. 13): eager
  /// all-to-all RC connections by default; with on-demand connections
  /// only the peers actually contacted count.
  std::uint64_t memory_bytes(int node) const;

  model::RegistrationCache& regcache(int node) {
    return regcache_[static_cast<std::size_t>(node)];
  }

  std::size_t connections(int node) const {
    return connected_[static_cast<std::size_t>(node)].size();
  }

  const IbConfig& config() const { return cfg_; }

  /// Fail-stop degradation counters: RC QPs moved to the error state and
  /// torn down after retry exhaustion on a dead link/NIC, and the
  /// re-establishment attempts priced (and failed) against the dead peer.
  /// Both are views over the base fabric's per-shard degradation state
  /// (a simulation is single-threaded per partition by contract, so no
  /// shared mutable counter exists to race on).
  std::uint64_t qp_teardowns() const { return links_failed(); }
  std::uint64_t reconnect_attempts() const { return degrade_rounds(); }

  /// Adds IB-specific invariants to the fabric checks: RC connection
  /// symmetry, per-QP memory matching the Fig. 13 formula, and the
  /// per-node pin-down cache conservation laws.
  void register_audits(audit::AuditReport& report) override;

  /// Installs the chaos plan, then wires registration-failure injection
  /// into every armed node's pin-down cache.
  void set_fault_plan(const fault::FaultPlan& plan) override;

 protected:
  sim::Time tx_setup(const model::NetMsg& msg) override;
  /// RC degradation: retry exhaustion puts the QP in the error state. The
  /// teardown is modeled in counters + time only — `connected_` is left
  /// alone because it records which QPs were ever established (the
  /// Fig. 13 footprint survives a dead peer) and both endpoints'
  /// partitions write it, so mutating it here would race under PDES.
  /// On-demand re-establishment against the dead peer: each degraded
  /// message pays a connection-setup attempt with capped doubling backoff
  /// before the failure surfaces.
  sim::Time degrade_delay(const model::NetMsg& msg, int round) const override;

 private:
  IbConfig cfg_;
  std::vector<model::RegistrationCache> regcache_;
  // Per node: the set of peers an RC connection exists to (on-demand).
  std::vector<std::set<int>> connected_;
  // Stable contexts for the C-style regcache fail hooks (one per node,
  // fully reserved before any pointer is handed out).
  std::vector<model::RegFailCtx> regfail_ctx_;
};

}  // namespace mns::ib
