#include "microbench/logp.hpp"

#include "microbench/microbench.hpp"

namespace mns::microbench {

using cluster::Cluster;
using cluster::ClusterConfig;
using mpi::Comm;
using mpi::Request;
using mpi::View;
using sim::Task;
using sim::Time;

LogGPParams extract_loggp(cluster::Net net, cluster::Bus bus) {
  LogGPParams out{};

  // --- o_s, o_r and L from an instrumented ping-pong ------------------
  {
    ClusterConfig cfg{.nodes = 2, .ppn = 1, .net = net, .bus = bus};
    Cluster c(cfg);
    const int iters = 100;
    double rtt_us = 0;
    Time o0_before, o1_before;
    c.run([&](Comm& comm) -> Task<> {
      const View buf = View::synth(0x1000 + comm.rank(), 8);
      co_await comm.barrier();
      for (int i = 0; i < 5; ++i) {  // warm-up
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
      (comm.rank() == 0 ? o0_before : o1_before) =
          comm.cpu().overhead_time();
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, 0);
          co_await comm.recv(buf, 1, 0);
        } else {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
      if (comm.rank() == 0) rtt_us = (comm.wtime() - t0) / iters * 1e6;
    });
    // Each iteration holds 2 messages; attribute overhead per message.
    // Sender-side overhead is charged to whoever calls send.
    const double total_ovh_us =
        ((c.cpu(0).overhead_time() - o0_before) +
         (c.cpu(1).overhead_time() - o1_before))
            .to_us() /
        (2.0 * iters);
    // Split: measure the send call's cost directly on rank 0.
    // Approximation: o_s = time spent inside send() on the critical path.
    out.os_us = total_ovh_us * 0.55;  // split per the device o_send share
    out.or_us = total_ovh_us * 0.45;
    out.L_us = rtt_us / 2.0 - total_ovh_us;
  }

  // --- g from back-to-back small-message streaming --------------------
  {
    Options opt;
    opt.window = 64;
    opt.reps = 8;
    const auto bw = bandwidth(net, {8}, opt);
    // bytes/sec of 8-byte messages => message rate => gap.
    const double rate = bw[0].value * 1024.0 * 1024.0 / 8.0;
    out.g_us = 1e6 / rate;
  }

  // --- G from asymptotic bandwidth -------------------------------------
  {
    const auto bw = bandwidth(net, {1 << 20});
    out.G_ns_per_byte = 1e9 / (bw[0].value * 1024.0 * 1024.0);
  }

  return out;
}

}  // namespace mns::microbench
