// LogGP parameter extraction.
//
// The paper's related work (Bell et al., IPDPS'03) characterized these
// same interconnects with the LogP/LogGP model; this module extracts the
// model parameters from our simulated fabrics the same way one would on
// hardware:
//
//   o_s, o_r : send/receive host overheads (CPU-busy accounting)
//   L        : wire latency = one-way small-message time - o_s - o_r
//   g        : gap, the reciprocal of the small-message issue rate
//   G        : Gap per byte, the reciprocal of the asymptotic bandwidth
#pragma once

#include "cluster/cluster.hpp"

namespace mns::microbench {

struct LogGPParams {
  double os_us;  // send overhead
  double or_us;  // receive overhead
  double L_us;   // latency
  double g_us;   // inter-message gap (small messages)
  double G_ns_per_byte;  // gap per byte (large messages)
};

/// Measure the LogGP parameters of `net` (2 nodes, default bus).
LogGPParams extract_loggp(cluster::Net net,
                          cluster::Bus bus = cluster::Bus::kDefault);

}  // namespace mns::microbench
