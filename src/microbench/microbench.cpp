#include "microbench/microbench.hpp"

#include <algorithm>
#include <cmath>

namespace mns::microbench {

using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::Request;
using mpi::View;
using sim::Task;
using sim::Time;

namespace {

constexpr double kMiB = 1024.0 * 1024.0;  // the paper's "MB"

// Stable synthetic buffer identities per rank/role. Distinct enough that
// send/recv buffers never collide across ranks.
std::uint64_t send_addr(int rank) {
  return 0x1000'0000ULL + static_cast<std::uint64_t>(rank) * 0x100'0000ULL;
}
std::uint64_t recv_addr(int rank) {
  return 0x9000'0000ULL + static_cast<std::uint64_t>(rank) * 0x100'0000ULL;
}

ClusterConfig pair_config(Net net, const Options& opt) {
  return ClusterConfig{.nodes = 2, .ppn = 1, .net = net, .bus = opt.bus};
}

/// Deterministic R%-reuse pattern: iteration i reuses the base buffer iff
/// the cumulative reuse count stays at R per 100 iterations.
bool reuse_this_iter(int i, int reuse_percent) {
  const auto upto = [reuse_percent](int k) {
    return (static_cast<long>(k) * reuse_percent) / 100;
  };
  return upto(i + 1) > upto(i);
}

}  // namespace

// --------------------------------------------------------------------------
// Fig. 1: latency
// --------------------------------------------------------------------------

std::vector<Point> latency(Net net, std::vector<std::uint64_t> sizes,
                           Options opt) {
  Cluster c(pair_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double us = 0;
    c.run([&](Comm& comm) -> Task<> {
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      co_await comm.barrier();
      // Warm-up (registration caches, NIC translations).
      for (int i = 0; i < 5; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      const double t0 = comm.wtime();
      for (int i = 0; i < opt.iters; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      if (comm.rank() == 0) {
        us = (comm.wtime() - t0) / (2.0 * opt.iters) * 1e6;
      }
    });
    out.push_back({size, us});
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 2: uni-directional bandwidth with window W
// --------------------------------------------------------------------------

std::vector<Point> bandwidth(Net net, std::vector<std::uint64_t> sizes,
                             Options opt) {
  Cluster c(pair_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double mbps = 0;
    c.run([&](Comm& comm) -> Task<> {
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      View ack = View::synth(recv_addr(comm.rank()) + 0x800000, 4);
      co_await comm.barrier();
      if (comm.rank() == 0) {
        // Warm-up window.
        {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.isend(sbuf, 1, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        const double t0 = comm.wtime();
        for (int rep = 0; rep < opt.reps; ++rep) {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.isend(sbuf, 1, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        co_await comm.recv(ack, 1, 1);  // all delivered
        const double dt = comm.wtime() - t0;
        mbps = static_cast<double>(opt.reps) * opt.window *
               static_cast<double>(size) / dt / kMiB;
      } else {
        {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.irecv(rbuf, 0, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        for (int rep = 0; rep < opt.reps; ++rep) {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.irecv(rbuf, 0, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        co_await comm.send(ack, 0, 1);
      }
    });
    out.push_back({size, mbps});
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 3: host overhead
// --------------------------------------------------------------------------

std::vector<Point> host_overhead(Net net, std::vector<std::uint64_t> sizes,
                                 Options opt) {
  Cluster c(pair_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    Time before0, before1;
    c.run([&](Comm& comm) -> Task<> {
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      co_await comm.barrier();
      for (int i = 0; i < 5; ++i) {  // warm-up
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      (comm.rank() == 0 ? before0 : before1) = comm.cpu().overhead_time();
      for (int i = 0; i < opt.iters; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
    });
    const Time total = (c.cpu(0).overhead_time() - before0) +
                       (c.cpu(1).overhead_time() - before1);
    // 2*iters messages; each message's overhead spans sender + receiver.
    out.push_back({size, total.to_us() / (2.0 * opt.iters)});
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 4: bi-directional latency
// --------------------------------------------------------------------------

std::vector<Point> bidir_latency(Net net, std::vector<std::uint64_t> sizes,
                                 Options opt) {
  Cluster c(pair_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double us = 0;
    c.run([&](Comm& comm) -> Task<> {
      const int peer = 1 - comm.rank();
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      co_await comm.barrier();
      for (int i = 0; i < 5 + opt.iters; ++i) {
        if (i == 5) {
          co_await comm.barrier();
          if (comm.rank() == 0) us = comm.wtime();
        }
        Request rreq = co_await comm.irecv(rbuf, peer, 0);
        Request sreq = co_await comm.isend(sbuf, peer, 0);
        co_await comm.wait(sreq);
        co_await comm.wait(rreq);
      }
      if (comm.rank() == 0) {
        us = (comm.wtime() - us) / opt.iters * 1e6;
      }
    });
    out.push_back({size, us});
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 5: bi-directional bandwidth (aggregate)
// --------------------------------------------------------------------------

std::vector<Point> bidir_bandwidth(Net net, std::vector<std::uint64_t> sizes,
                                   Options opt) {
  Cluster c(pair_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double mbps = 0;
    c.run([&](Comm& comm) -> Task<> {
      const int peer = 1 - comm.rank();
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      co_await comm.barrier();
      double t0 = 0;
      for (int rep = 0; rep < 1 + opt.reps; ++rep) {
        if (rep == 1) {
          co_await comm.barrier();
          t0 = comm.wtime();
        }
        std::vector<Request> reqs;
        for (int w = 0; w < opt.window; ++w) {
          reqs.push_back(co_await comm.irecv(rbuf, peer, 0));
        }
        for (int w = 0; w < opt.window; ++w) {
          reqs.push_back(co_await comm.isend(sbuf, peer, 0));
        }
        co_await comm.wait_all(std::move(reqs));
      }
      co_await comm.barrier();
      if (comm.rank() == 0) {
        const double dt = comm.wtime() - t0;
        mbps = 2.0 * opt.reps * opt.window * static_cast<double>(size) / dt /
               kMiB;
      }
    });
    out.push_back({size, mbps});
  }
  return out;
}

// --------------------------------------------------------------------------
// Fig. 6: overlap potential
// --------------------------------------------------------------------------

namespace {

/// One timed exchange phase with computation `comp_us` between post and
/// wait; returns the mean round time in us.
double overlap_round(Cluster& c, std::uint64_t size, double comp_us,
                     int iters) {
  double us = 0;
  c.run([&](Comm& comm) -> Task<> {
    const int peer = 1 - comm.rank();
    const View sbuf = View::synth(send_addr(comm.rank()), size);
    const View rbuf = View::synth(recv_addr(comm.rank()), size);
    co_await comm.barrier();
    const double t0 = comm.wtime();
    for (int i = 0; i < iters; ++i) {
      Request rreq = co_await comm.irecv(rbuf, peer, 0);
      Request sreq = co_await comm.isend(sbuf, peer, 0);
      if (comp_us > 0) co_await comm.compute(comp_us * 1e-6);
      co_await comm.wait(sreq);
      co_await comm.wait(rreq);
    }
    co_await comm.barrier();
    if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
  });
  return us;
}

}  // namespace

std::vector<Point> overlap_potential(Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt) {
  Cluster c(pair_config(net, opt));
  const int iters = std::max(4, opt.iters / 8);
  std::vector<Point> out;
  for (const auto size : sizes) {
    overlap_round(c, size, 0.0, 2);  // warm-up
    const double base = overlap_round(c, size, 0.0, iters);
    const double budget = base * 1.01 + 0.3;  // "does not increase latency"
    double lo = 0.0, hi = 2.0 * base + 600.0;
    if (overlap_round(c, size, hi, iters) <= budget) {
      lo = hi;  // fully overlappable within the probe range
    } else {
      for (int step = 0; step < 22; ++step) {
        const double mid = 0.5 * (lo + hi);
        if (overlap_round(c, size, mid, iters) <= budget) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    out.push_back({size, lo});
  }
  return out;
}

// --------------------------------------------------------------------------
// Figs. 7/8: buffer reuse
// --------------------------------------------------------------------------

std::vector<Point> buffer_reuse_latency(Net net,
                                        std::vector<std::uint64_t> sizes,
                                        int reuse_percent, Options opt) {
  std::vector<Point> out;
  for (const auto size : sizes) {
    // Fresh cluster per size: cold caches are the point of this test.
    Cluster c(pair_config(net, opt));
    double us = 0;
    c.run([&](Comm& comm) -> Task<> {
      // Fresh-buffer identities march through a large arena.
      std::uint64_t fresh_s = send_addr(comm.rank()) + 0x4000'0000ULL;
      std::uint64_t fresh_r = recv_addr(comm.rank()) + 0x4000'0000ULL;
      const std::uint64_t stride = (size + 4096) & ~4095ULL;
      co_await comm.barrier();
      const double t0 = comm.wtime();
      for (int i = 0; i < opt.iters; ++i) {
        View sbuf, rbuf;
        if (reuse_this_iter(i, reuse_percent)) {
          sbuf = View::synth(send_addr(comm.rank()), size);
          rbuf = View::synth(recv_addr(comm.rank()), size);
        } else {
          sbuf = View::synth(fresh_s, size);
          rbuf = View::synth(fresh_r, size);
          fresh_s += stride;
          fresh_r += stride;
        }
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      if (comm.rank() == 0) {
        us = (comm.wtime() - t0) / (2.0 * opt.iters) * 1e6;
      }
    });
    out.push_back({size, us});
  }
  return out;
}

std::vector<Point> buffer_reuse_bandwidth(Net net,
                                          std::vector<std::uint64_t> sizes,
                                          int reuse_percent, Options opt) {
  std::vector<Point> out;
  for (const auto size : sizes) {
    Cluster c(pair_config(net, opt));
    double mbps = 0;
    c.run([&](Comm& comm) -> Task<> {
      std::uint64_t fresh_s = send_addr(comm.rank()) + 0x4000'0000ULL;
      std::uint64_t fresh_r = recv_addr(comm.rank()) + 0x4000'0000ULL;
      const std::uint64_t stride = (size + 4096) & ~4095ULL;
      View ack = View::synth(recv_addr(comm.rank()) + 0x800000, 4);
      co_await comm.barrier();
      const double t0 = comm.wtime();
      int iter = 0;
      for (int rep = 0; rep < opt.reps; ++rep) {
        std::vector<Request> reqs;
        for (int w = 0; w < opt.window; ++w, ++iter) {
          const bool reuse = reuse_this_iter(iter, reuse_percent);
          if (comm.rank() == 0) {
            View sbuf = reuse ? View::synth(send_addr(0), size)
                              : View::synth(fresh_s, size);
            if (!reuse) fresh_s += stride;
            reqs.push_back(co_await comm.isend(sbuf, 1, 0));
          } else {
            View rbuf = reuse ? View::synth(recv_addr(1), size)
                              : View::synth(fresh_r, size);
            if (!reuse) fresh_r += stride;
            reqs.push_back(co_await comm.irecv(rbuf, 0, 0));
          }
        }
        co_await comm.wait_all(std::move(reqs));
      }
      if (comm.rank() == 0) {
        co_await comm.recv(ack, 1, 1);
        const double dt = comm.wtime() - t0;
        mbps = static_cast<double>(opt.reps) * opt.window *
               static_cast<double>(size) / dt / kMiB;
      } else {
        co_await comm.send(ack, 0, 1);
      }
    });
    out.push_back({size, mbps});
  }
  return out;
}

// --------------------------------------------------------------------------
// Figs. 9/10: intra-node
// --------------------------------------------------------------------------

namespace {
ClusterConfig smp_config(Net net, const Options& opt) {
  return ClusterConfig{.nodes = 1, .ppn = 2, .net = net, .bus = opt.bus};
}
}  // namespace

std::vector<Point> intranode_latency(Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt) {
  Cluster c(smp_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double us = 0;
    c.run([&](Comm& comm) -> Task<> {
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      co_await comm.barrier();
      for (int i = 0; i < 5; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      const double t0 = comm.wtime();
      for (int i = 0; i < opt.iters; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(sbuf, 1, 0);
          co_await comm.recv(rbuf, 1, 0);
        } else {
          co_await comm.recv(rbuf, 0, 0);
          co_await comm.send(sbuf, 0, 0);
        }
      }
      if (comm.rank() == 0) {
        us = (comm.wtime() - t0) / (2.0 * opt.iters) * 1e6;
      }
    });
    out.push_back({size, us});
  }
  return out;
}

std::vector<Point> intranode_bandwidth(Net net,
                                       std::vector<std::uint64_t> sizes,
                                       Options opt) {
  Cluster c(smp_config(net, opt));
  std::vector<Point> out;
  for (const auto size : sizes) {
    double mbps = 0;
    c.run([&](Comm& comm) -> Task<> {
      const View sbuf = View::synth(send_addr(comm.rank()), size);
      const View rbuf = View::synth(recv_addr(comm.rank()), size);
      View ack = View::synth(recv_addr(comm.rank()) + 0x800000, 4);
      co_await comm.barrier();
      if (comm.rank() == 0) {
        const double t0 = comm.wtime();
        for (int rep = 0; rep < opt.reps; ++rep) {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.isend(sbuf, 1, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        co_await comm.recv(ack, 1, 1);
        const double dt = comm.wtime() - t0;
        mbps = static_cast<double>(opt.reps) * opt.window *
               static_cast<double>(size) / dt / kMiB;
      } else {
        for (int rep = 0; rep < opt.reps; ++rep) {
          std::vector<Request> reqs;
          for (int w = 0; w < opt.window; ++w) {
            reqs.push_back(co_await comm.irecv(rbuf, 0, 0));
          }
          co_await comm.wait_all(std::move(reqs));
        }
        co_await comm.send(ack, 0, 1);
      }
    });
    out.push_back({size, mbps});
  }
  return out;
}

// --------------------------------------------------------------------------
// Figs. 11/12: collectives (PMB-style)
// --------------------------------------------------------------------------

namespace {

template <class CollFn>
std::vector<Point> collective_latency(Net net,
                                      const std::vector<std::uint64_t>& sizes,
                                      const Options& opt, CollFn&& fn) {
  ClusterConfig cfg{.nodes = opt.nodes, .ppn = 1, .net = net, .bus = opt.bus};
  Cluster c(cfg);
  std::vector<Point> out;
  for (const auto size : sizes) {
    double us = 0;
    c.run([&](Comm& comm) -> Task<> {
      co_await comm.barrier();
      for (int i = 0; i < 3; ++i) co_await fn(comm, size);  // warm-up
      co_await comm.barrier();
      const double t0 = comm.wtime();
      for (int i = 0; i < opt.iters; ++i) co_await fn(comm, size);
      co_await comm.barrier();
      if (comm.rank() == 0) us = (comm.wtime() - t0) / opt.iters * 1e6;
    });
    out.push_back({size, us});
  }
  return out;
}

}  // namespace

std::vector<Point> alltoall_latency(Net net, std::vector<std::uint64_t> sizes,
                                    Options opt) {
  return collective_latency(
      net, sizes, opt, [](Comm& comm, std::uint64_t size) {
        const auto p = static_cast<std::uint64_t>(comm.size());
        return comm.alltoall(View::synth(send_addr(comm.rank()), p * size),
                             View::synth(recv_addr(comm.rank()), p * size),
                             size);
      });
}

std::vector<Point> allreduce_latency(Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt) {
  return collective_latency(
      net, sizes, opt, [](Comm& comm, std::uint64_t size) {
        return comm.allreduce(View::synth(send_addr(comm.rank()), size),
                              size / 8 + 1, mpi::Dtype::kDouble,
                              mpi::ROp::kSum);
      });
}

// --------------------------------------------------------------------------
// Fig. 13: memory usage
// --------------------------------------------------------------------------

std::vector<Point> memory_usage(Net net, std::size_t max_nodes) {
  std::vector<Point> out;
  for (std::size_t n = 2; n <= max_nodes; ++n) {
    ClusterConfig cfg{.nodes = n, .ppn = 1, .net = net};
    Cluster c(cfg);
    c.run([](Comm& comm) -> Task<> { co_await comm.barrier(); });
    out.push_back(
        {n, static_cast<double>(c.device_memory_bytes(0)) / kMiB});
  }
  return out;
}

}  // namespace mns::microbench
