// The paper's extended MPI micro-benchmark suite (Section 3), as reusable
// measurement kernels. Each function builds the requested cluster, runs
// the benchmark in simulated time, and returns paper-style series. The
// bench binaries print them per figure; the calibration tests assert they
// stay inside tolerance bands of the published values.
//
// Units follow the paper: latencies/overheads in microseconds, bandwidth
// in MB/s with MB = 2^20 bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"

namespace mns::microbench {

struct Point {
  std::uint64_t size;
  double value;
};

struct Options {
  int iters = 50;       // ping-pong iterations per size
  int window = 16;      // bandwidth window W
  int reps = 12;        // windows per bandwidth measurement
  std::size_t nodes = 8;
  cluster::Bus bus = cluster::Bus::kDefault;
};

/// Fig. 1 / Fig. 26: ping-pong latency (one-way, us).
std::vector<Point> latency(cluster::Net net, std::vector<std::uint64_t> sizes,
                           Options opt = {});

/// Fig. 2 / Fig. 27: uni-directional bandwidth (MB/s) with window W.
std::vector<Point> bandwidth(cluster::Net net,
                             std::vector<std::uint64_t> sizes,
                             Options opt = {});

/// Fig. 3: host overhead in the latency test (us, sender+receiver).
std::vector<Point> host_overhead(cluster::Net net,
                                 std::vector<std::uint64_t> sizes,
                                 Options opt = {});

/// Fig. 4: bi-directional latency (us per simultaneous exchange).
std::vector<Point> bidir_latency(cluster::Net net,
                                 std::vector<std::uint64_t> sizes,
                                 Options opt = {});

/// Fig. 5: bi-directional aggregate bandwidth (MB/s), window W.
std::vector<Point> bidir_bandwidth(cluster::Net net,
                                   std::vector<std::uint64_t> sizes,
                                   Options opt = {});

/// Fig. 6: communication/computation overlap potential (us): the largest
/// computation that does not lengthen a simultaneous exchange.
std::vector<Point> overlap_potential(cluster::Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt = {});

/// Figs. 7/8: latency / bandwidth at a buffer-reuse percentage (0..100).
std::vector<Point> buffer_reuse_latency(cluster::Net net,
                                        std::vector<std::uint64_t> sizes,
                                        int reuse_percent, Options opt = {});
std::vector<Point> buffer_reuse_bandwidth(cluster::Net net,
                                          std::vector<std::uint64_t> sizes,
                                          int reuse_percent,
                                          Options opt = {});

/// Figs. 9/10: intra-node (SMP) latency / bandwidth, 2 ranks on 1 node.
std::vector<Point> intranode_latency(cluster::Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt = {});
std::vector<Point> intranode_bandwidth(cluster::Net net,
                                       std::vector<std::uint64_t> sizes,
                                       Options opt = {});

/// Figs. 11/12: collective latency (us) on `opt.nodes` nodes (PMB-style).
std::vector<Point> alltoall_latency(cluster::Net net,
                                    std::vector<std::uint64_t> sizes,
                                    Options opt = {});
std::vector<Point> allreduce_latency(cluster::Net net,
                                     std::vector<std::uint64_t> sizes,
                                     Options opt = {});

/// Fig. 13: MPI memory usage (MB) of a barrier program vs node count.
std::vector<Point> memory_usage(cluster::Net net, std::size_t max_nodes);

}  // namespace mns::microbench
