#include "model/bus.hpp"

namespace mns::model {

BusConfig pcix_133() noexcept {
  // 64-bit * 133 MHz = 1064 MB/s theoretical; sustained DMA efficiency on
  // the ServerWorks GC chipset lands near 85%.
  return BusConfig{
      .name = "PCI-X 133",
      .effective_bytes_per_second = 950e6,
      .per_dma_setup = sim::Time::ns(120),
  };
}

BusConfig pci_66() noexcept {
  // 64-bit * 66 MHz = 532 MB/s theoretical; PCI's shorter bursts and
  // higher arbitration overhead give distinctly worse efficiency.
  return BusConfig{
      .name = "PCI 66",
      .effective_bytes_per_second = 400e6,
      .per_dma_setup = sim::Time::ns(180),
  };
}

}  // namespace mns::model
