// Host I/O bus model (PCI / PCI-X).
//
// PCI and PCI-X are shared half-duplex buses: NIC-to-memory and
// memory-to-NIC DMA compete for the same wires. This single shared Pipe is
// exactly what caps InfiniBand's bi-directional bandwidth at ~900 MB/s on
// PCI-X (paper Fig. 5) and uni-directional bandwidth at 378 MB/s on PCI
// (Fig. 27): the fabric is faster than the bus.
#pragma once

#include <cstdint>
#include <string>

#include "model/pipe.hpp"

namespace mns::model {

struct BusConfig {
  std::string name;
  double effective_bytes_per_second;  // after protocol/arbitration overheads
  sim::Time per_dma_setup;            // DMA transaction setup cost
};

/// The paper's two bus generations. Effective rates are calibrated so the
/// measured MPI numbers (841 MB/s uni / 900 MB/s bi on PCI-X, 378 MB/s on
/// PCI for InfiniBand) fall out of the end-to-end model.
BusConfig pcix_133() noexcept;  // 64-bit/133 MHz, 1064 MB/s theoretical
BusConfig pci_66() noexcept;    // 64-bit/66 MHz,   532 MB/s theoretical

class HostBus {
 public:
  HostBus(sim::Engine& eng, const BusConfig& cfg)
      : pipe_(eng, cfg.effective_bytes_per_second, cfg.per_dma_setup),
        cfg_(cfg) {}

  /// One DMA transaction crossing the bus (either direction).
  sim::Task<void> dma(std::uint64_t bytes) { return pipe_.transfer(bytes); }

  const BusConfig& config() const { return cfg_; }
  const Pipe& pipe() const { return pipe_; }
  /// Mutable pipe access for the fabric's reservation-driven data path.
  Pipe& pipe() { return pipe_; }

 private:
  Pipe pipe_;
  BusConfig cfg_;
};

}  // namespace mns::model
