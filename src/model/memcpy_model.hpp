// Host memory copy cost model.
//
// Shared-memory MPI paths and eager-protocol staging pay memcpy costs on
// the host. On the testbed's 2.4 GHz Xeons, copies that fit in L2 run at
// cache speed; larger copies stream from DRAM, and ping-ponging a large
// buffer between two processes thrashes the cache (the paper's Fig. 10
// shows exactly this droop for Myrinet's and Quadrics' SMP paths).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mns::model {

struct MemcpyConfig {
  sim::Time per_call;         // call + loop setup overhead
  double cached_rate;         // bytes/s while source+dest fit in cache
  double dram_rate;           // bytes/s once streaming from memory
  std::uint64_t cache_bytes;  // effective cache capacity for a copy
};

/// Circa-2003 dual-Xeon (512 KB L2) defaults.
constexpr MemcpyConfig xeon_2003_memcpy() {
  return MemcpyConfig{
      .per_call = sim::Time::ns(60),
      .cached_rate = 1.6e9,
      .dram_rate = 0.75e9,
      .cache_bytes = 256 * 1024,  // half of L2: source and destination
  };
}

class MemcpyModel {
 public:
  explicit constexpr MemcpyModel(const MemcpyConfig& cfg) : cfg_(cfg) {}

  /// Time for one copy of `bytes`.
  constexpr sim::Time copy_time(std::uint64_t bytes) const {
    const std::uint64_t cached =
        bytes < cfg_.cache_bytes ? bytes : cfg_.cache_bytes;
    const std::uint64_t streamed = bytes - cached;
    return cfg_.per_call + sim::transfer_time(cached, cfg_.cached_rate) +
           sim::transfer_time(streamed, cfg_.dram_rate);
  }

  const MemcpyConfig& config() const { return cfg_; }

 private:
  MemcpyConfig cfg_;
};

}  // namespace mns::model
