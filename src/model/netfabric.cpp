#include "model/netfabric.hpp"

#include <algorithm>
#include <bit>
#include <coroutine>
#include <stdexcept>
#include <string>
#include <utility>

#include "audit/report.hpp"
#include "sim/pdes/fabric_exec.hpp"
#include "util/annotations.hpp"

namespace mns::model {

// ---------------------------------------------------------------------------
// Split-flow wire protocol (cross-partition flows under PDES execution).
//
// A flow whose src and dst live in different partitions is split at the
// switch entry: the tx half (host-bus fetch, NIC injection, source
// staging, the recovery machine) runs on the source partition; the rx
// half (switch port, destination staging, rx pipe, host bus, delivery)
// runs on the destination partition. The halves talk exclusively through
// timestamped FabricExecutor messages:
//
//   OPEN   src->dst  flow descriptor (boxed), sent at packet 0's launch
//                    with when = packet 0's NIC-tx completion; sorts
//                    before the first ENTER via its lower send index.
//   ENTER  src->dst  one packet crossing into the switch. when = the
//                    exact instant the sequential machine would reserve
//                    the switch port: the NIC-tx completion (sent at
//                    launch, slack >= tx wire latency), or the source
//                    staging completion for staged fabrics (sent at the
//                    kTx event, because staging is shared with this
//                    node's receive side; slack >= the packet's staging
//                    serialization, which floors the lookahead).
//                    Dropped packets still send a flagged ENTER — they
//                    never enter the switch, but the receiver's
//                    Go-Back-N sequence check needs to see the gap.
//   LOSS   dst->src  a packet the receiver discarded (CRC failure or
//                    Go-Back-N rejection). when = the exact rx-pipe
//                    completion instant the sequential machine detects
//                    the loss at, sent one stage early (at the rx
//                    reservation), which is what gives it >= rx_fixed of
//                    lookahead slack.
//   LAND   dst->src  a packet that reached the destination host bus.
//                    when = the host-bus DMA completion, sent at the
//                    reservation (slack >= the bus's per-DMA setup).
//   CLOSE  src->dst  recovery gave up (retry budget exhausted); tears
//                    down the rx half one lookahead in the future.
//   CALL   any->any  boxed closure for NetFabric::run_on_node.
//
// Word packing: a = kind | packet << 8 | attempt << 16 | flags;
// b = flow key (src node << 48 | per-source sequence number, never 0).
//
// Equivalence argument (each piece is asserted by the partition-
// invariance chaos suite): every message's `when` equals the sequential
// event instant of the stage it stands in for, and the executor delivers
// merged batches in (when, src node, send idx) order, which matches the
// sequential engine's same-instant order for same-source events (send
// order) and for the symmetric cross-source ties that structured
// workloads produce (ascending node, inherited from rank spawn order).
// Fault verdicts move from tx completion to launch, passing the explicit
// tx-completion timestamp — per-link draw order is preserved because the
// tx pipe is FIFO (launch order == tx-completion order) and a given
// (src, dst) pair is always consistently split or consistently local.
// Receiver-side fates (CRC discard, Go-Back-N gap) are decided at the rx
// reservation, one stage before the sequential machine applies them —
// legal because both inputs (the corrupt flag and the lost-set prefix)
// are stable by reservation time: drop gaps arrive with their flagged
// ENTER before any later packet's switch entry, and FIFO pipes decide
// earlier packets' discards at earlier reservations.
// ---------------------------------------------------------------------------

namespace {

enum WireKind : std::uint64_t {
  kWireOpen = 1,
  kWireEnter,
  kWireLoss,
  kWireLand,
  kWireClose,
  kWireCall,
};
constexpr std::uint64_t kWireFlagDropped = std::uint64_t{1} << 32;
constexpr std::uint64_t kWireFlagCorrupt = std::uint64_t{1} << 33;

std::uint64_t wire_word(WireKind kind, std::uint64_t packet, int attempt) {
  return kind | (packet << 8) | (static_cast<std::uint64_t>(attempt) << 16);
}
std::uint64_t wire_packet(std::uint64_t a) { return (a >> 8) & 0xffu; }
int wire_attempt(std::uint64_t a) {
  return static_cast<int>((a >> 16) & 0xffffu);
}

/// Base of every boxed WireMsg payload; the executor's box deleter
/// destroys through this on abort paths.
struct WireBox {
  virtual ~WireBox() = default;
};

/// OPEN payload: everything the destination partition needs to build the
/// rx half. The NetMsg keeps src/dst/bytes/addresses and the
/// receiver-side callback (remote_arrival); the sender-side closures
/// (local_complete, on_failed) stay with the tx half and are nulled here.
struct OpenBox final : WireBox {
  NetMsg msg;
  std::uint64_t chunk = 0;
  std::uint64_t packets = 0;
  bool faulted = false;
};

/// CALL payload (run_on_node).
struct CallBox final : WireBox {
  std::function<void()> fn;  // simlint-allow: model-alloc (error path only)
};

}  // namespace

// ---------------------------------------------------------------------------
// MsgFlow: the pooled per-message packet state machine.
//
// One MsgFlow drives one message through the historical packet event
// sequence — fetch (host bus) -> launch -> tx -> [staging] -> switch hops
// -> [staging] -> rx (first packet: stall/setup) -> host bus -> deliver —
// using raw EventFn continuations instead of per-packet coroutine frames.
// Each event word packs (stage kind, packet index); the flow object holds
// everything a packet_tail coroutine used to capture, and is recycled
// through a freelist once delivered (audited empty-at-finalize).
//
// Express mode: the whole trajectory is applied to the pipes in one
// closed-form replay at launch (replay_flow(materialize=false)); only the
// three terminal events (kExFetch / kExLocal / kExDeliver) are scheduled,
// and every touched pipe carries a claim. A competing reservation inside
// the claimed window demotes the flow: pipes are rolled back to their
// pre-claim snapshots and replay_flow(materialize=true) re-applies history
// up to now() and schedules real packet-machine events for the remainder —
// bit-identical timing to having run at packet granularity all along.
// ---------------------------------------------------------------------------
struct NetFabric::MsgFlow final : Pipe::ClaimOwner {
  explicit MsgFlow(NetFabric& fab) : fab_(&fab) {}

  NetFabric* fab_;
  NetMsg msg;
  std::uint64_t chunk = 0;
  std::uint64_t packets = 0;

  // Partition placement (split-flow protocol; see the file comment).
  sim::Engine* eng = nullptr;  // engine owning this half's events
  Shard* shard = nullptr;      // shard owning this half's pool + counters
  bool in_use = false;         // acquired from the slab, not on the free list
  bool boundary = false;       // tx half of a cross-partition flow
  bool rx_half = false;        // rx half, living on the dst partition
  std::uint64_t flow_key = 0;  // never 0 for split halves
  std::uint64_t drop_mask = 0;   // tx half: launch-drawn drop verdicts
  std::uint64_t rx_discard = 0;  // rx half: fates decided at reservation
  std::uint32_t wire_unresolved = 0;  // tx half: packets awaiting LOSS/LAND

  // Packet-machine counters (mirroring the former MsgState).
  std::uint64_t packets_left_tx = 0;
  std::uint64_t packets_left = 0;
  bool first_packet = true;

  // Recovery-machine state (all dormant unless `faulted`). The chunk plan
  // caps messages at 64 packets, so one word of bits identifies the lost /
  // corrupt-marked packets of the current attempt exactly.
  bool faulted = false;       // fault plan arms this flow's link
  bool fetching = false;      // sender_loop's closed fetch loop still running
  bool rto_armed = false;     // retransmit timer pending
  std::uint64_t lost = 0;     // packets lost this attempt (bit per packet)
  std::uint64_t corrupt_mask = 0;  // marked at tx, detected+lost at rx
  std::uint64_t resend_mask = 0;   // packets a scheduled kResendBatch owes
  std::uint32_t pending = 0;  // packet-machine events currently scheduled
  int attempts = 0;           // resend rounds consumed
  sim::EventId rto_id{};      // cancellable retransmit timer

  // Path, resolved once at launch (hooks are pure per message).
  Pipe* src_bus = nullptr;
  Pipe* tx = nullptr;
  Pipe* stage_src = nullptr;
  Pipe* hops[SwitchTopology::kMaxHops] = {};
  int nhops = 0;
  Pipe* stage_dst = nullptr;
  Pipe* nic_rx_proc = nullptr;  // shared protocol processor, rx side
  Pipe* rx = nullptr;
  Pipe* dst_bus = nullptr;

  // Express-path state.
  bool express = false;
  bool demoted = false;
  bool local_fired = false;      // eager local_complete already delivered
  bool delivered_done = false;
  bool ex_fetch_fired = false;
  bool ex_local_scheduled = false;
  bool ex_local_fired = false;
  bool ex_arm_fired = false;
  bool replay_deferred = false;  // demoted before the arm; arm restarts
  int stale_events = 0;          // scheduled express events now obsolete
  sim::Time launch_time;
  std::coroutine_handle<> sender;  // sender_loop parked on the fetch gate

  struct ClaimRec {
    Pipe* pipe;
    Pipe::State snap;     // pre-claim state, restored on demotion
    std::uint64_t epoch;  // pipe epoch right after the bulk apply
  };
  std::vector<ClaimRec> claims;  // capacity persists across recycles
  sim::Time ex_deliver;  // express delivery instant (claim expiry)

  MsgFlow* next_free = nullptr;

  // Completion-event kinds; the event word is kind | (packet << 8).
  enum Kind : std::uint8_t {
    kFetch,     // host-bus fetch done (post-demotion closed loop only)
    kLaunch,    // zero-delay launch after fetch (mirrors the old spawn)
    kTx,        // sender NIC injection done
    kSrcStage,  // source staging done
    kHop0,      // switching stage hops
    kHop1,
    kHop2,
    kDstStage,  // destination staging done
    kRxProc,    // shared-processor rx setup done
    kRx,        // receiver NIC delivery done
    kBus,       // destination host-bus DMA done
    kExFetch,   // express: last fetch done -> wake sender
    kExLocal,   // express: last byte left sender NIC -> eager completion
    kExDeliver, // express: last byte in remote memory
    kExArm,     // express: packet-0 fetch instant (demotion re-entry point)
    kRto,       // recovery: retransmission timeout fired
    // One fused relaunch for a whole resend round (resend_mask holds the
    // packets). Replaces the contiguous block of same-instant kLaunch
    // events a round used to schedule: the block occupied consecutive
    // now-queue slots with nothing interleaved, so collapsing it into a
    // single event that launches in the same ascending-packet order
    // preserves the relative order of every event in the run.
    kResendBatch
  };

  static void* word(std::uint8_t kind, std::uint64_t p) {
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(kind) |
                                   (p << 8));
  }
  static void thunk(void* a, void* b) {
    auto* f = static_cast<MsgFlow*>(a);
    f->fab_->flow_step(*f, reinterpret_cast<std::uintptr_t>(b));
  }

  void claim_broken() override { fab_->demote(*this); }

  std::uint64_t pkt_bytes(std::uint64_t p) const {
    if (msg.bytes == 0) return 0;
    return p + 1 < packets ? chunk : msg.bytes - chunk * (packets - 1);
  }

  /// Awaited by sender_loop while an express flow owns the fetch chain;
  /// resumed inside the last fetch-completion event, exactly where the
  /// closed-loop `co_await bus.dma(...)` used to resume it.
  struct FetchGate {
    MsgFlow& f;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { f.sender = h; }
    void await_resume() const noexcept {}
  };
};

NetFabric::NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
                     const SwitchConfig& sw, const NicConfig& nic,
                     const FabricPartitioning* parts)
    : eng_(&eng), nodes_(std::move(nodes)), nic_(nic) {
  const std::size_t n = nodes_.size();
  if (parts != nullptr && parts->engines.size() > 1) {
    if (parts->part_of.size() != n) {
      throw std::invalid_argument(
          "FabricPartitioning: part_of does not cover every node");
    }
    part_of_ = parts->part_of;
    partitions_ = static_cast<int>(parts->engines.size());
    node_eng_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      node_eng_.push_back(
          parts->engines[static_cast<std::size_t>(part_of_[i])]);
    }
  } else {
    part_of_.assign(n, 0);
    partitions_ = 1;
    node_eng_.assign(n, eng_);
  }
  shards_.reserve(static_cast<std::size_t>(partitions_));
  for (int p = 0; p < partitions_; ++p) {
    shards_.push_back(std::make_unique<Shard>());
  }
  flow_seq_.assign(n, 0);

  if (sw.fat_tree_radix > 0 && sw.fat_tree_radix < n) {
    // The fat tree's shared uplink/spine pipes have no single owning
    // node, so partitioned plans demote to sequential before reaching
    // this constructor (Cluster's demotion rules).
    if (partitions_ > 1) {
      throw std::invalid_argument(
          "fat-tree topology cannot run partitioned: shared uplink/spine "
          "pipes have no owning partition (demote to --partitions=1)");
    }
    topo_ = std::make_unique<FatTree>(eng, sw, n, sw.fat_tree_radix);
  } else if (partitions_ > 1) {
    // Crossbar output port i is only ever reserved by traffic to node i,
    // so each port pipe lives on its node's owning engine.
    topo_ = std::make_unique<SingleCrossbar>(eng, node_eng_, sw);
  } else {
    topo_ = std::make_unique<SingleCrossbar>(eng, sw);
  }
  tx_.reserve(n);
  rx_.reserve(n);
  sendq_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim::Engine& ne = *node_eng_[i];
    tx_.push_back(
        std::make_unique<Pipe>(ne, nic_.tx_rate, nic_.tx_wire_latency));
    rx_.push_back(std::make_unique<Pipe>(ne, nic_.rx_rate, nic_.rx_fixed));
    // Rate is irrelevant for the protocol processor: it only serializes
    // per-message occupancies.
    nic_proc_.push_back(std::make_unique<Pipe>(ne, 1e12));
    sendq_.push_back(std::make_unique<sim::Mailbox<NetMsg>>(ne));
  }
  for (std::size_t i = 0; i < n; ++i) {
    node_eng_[i]->spawn(sender_loop(static_cast<int>(i)), /*daemon=*/true);
  }
}

NetFabric::~NetFabric() = default;

NetFabric::Shard& NetFabric::shard_of(const MsgFlow& f) { return *f.shard; }

void NetFabric::bind_executor(sim::pdes::FabricExecutor& exec) {
  if (partitions_ <= 1) {
    throw std::logic_error("bind_executor on a sequential fabric");
  }
  if (exec_ != nullptr) throw std::logic_error("executor already bound");
  exec_ = &exec;
  exec.set_box_deleter([](void* b) { delete static_cast<WireBox*>(b); });
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const int node = static_cast<int>(i);
    exec.set_handler(node, [this, node](const sim::pdes::WireMsg& m) {
      wire_handle(node, m);
    });
  }
}

void NetFabric::run_on_node(int src_node, int dst_node,
                            // simlint-allow: model-alloc (error path only)
                            std::function<void()> fn) {
  if (fail_stop_armed_ && src_node != dst_node &&
      error_notify_delay_ > sim::Time::zero()) {
    // Uniform cross-node error-notification latency (see the header):
    // charge the same wire delay whether or not the nodes share a
    // partition, so degraded runs are bit-identical across partition
    // counts. Same-node calls stay inline — nothing crosses a wire.
    const sim::Time when =
        node_engine(src_node).now() + error_notify_delay_;
    if (is_boundary(src_node, dst_node)) {
      auto box = std::make_unique<CallBox>();  // simlint-allow: model-alloc
      box->fn = std::move(fn);
      exec_->send(src_node, dst_node, when, wire_word(kWireCall, 0, 0), 0, 0,
                  box.release());
    } else {
      node_engine(dst_node).at(when, sim::EventFn::make(std::move(fn)));
    }
    return;
  }
  if (!is_boundary(src_node, dst_node)) {
    fn();
    return;
  }
  // Cross-partition: a timestamped CALL one lookahead in the future (the
  // +lookahead shift is the price of crossing the boundary; callers on
  // this path are error-teardown flows whose timing the chaos suite
  // already treats as fabric-internal).
  auto box = std::make_unique<CallBox>();  // simlint-allow: model-alloc
  box->fn = std::move(fn);
  exec_->send(src_node, dst_node,
              node_engine(src_node).now() + exec_->topology().lookahead,
              wire_word(kWireCall, 0, 0), 0, 0, box.release());
}

void NetFabric::post(NetMsg msg) {
  ++shard_of_node(msg.src).posted;
  on_posted(msg);
  sendq_[static_cast<std::size_t>(msg.src)]->send(std::move(msg));
}

sim::Time NetFabric::tx_setup(const NetMsg&) { return nic_.per_msg_setup; }
sim::Time NetFabric::tx_stall(const NetMsg&) { return sim::Time::zero(); }
sim::Time NetFabric::rx_stall(const NetMsg&) { return sim::Time::zero(); }
Pipe* NetFabric::staging_pipe(int, const NetMsg&) { return nullptr; }
void NetFabric::on_posted(const NetMsg&) {}
void NetFabric::on_delivered(const NetMsg&) {}
void NetFabric::on_aborted(const NetMsg&) {}
bool NetFabric::express_rx_ok(const NetMsg&) const { return true; }
void NetFabric::on_link_failed(int, int) {}
sim::Time NetFabric::degrade_delay(const NetMsg&, int) const {
  return sim::Time::zero();
}

void NetFabric::learn_link_dead(Shard& sh, int src, int dst) {
  // The registry was pre-sized by set_fault_plan (fail-stop plans only),
  // so this path never allocates. Only the shard that owns `src` ever
  // touches row `src`, so partitions never share rows and the registry
  // stays deterministic across partition counts.
  const std::size_t li = link_index(src, dst);
  if (sh.dead[li] != 0) return;  // already attributed by an earlier flow
  sh.dead[li] = 1;
  on_link_failed(src, dst);
}

// MNS_HOT: degraded-path terminator — counter bumps and callbacks only,
// no allocation, no flow slab traffic.
MNS_HOT void NetFabric::abort_degraded(NetMsg msg) {
  ++shard_of_node(msg.src).aborted;
  on_aborted(msg);
  if (msg.on_failed) msg.on_failed();
}

bool NetFabric::link_known_dead(int src, int dst) const {
  const Shard& sh = const_cast<NetFabric*>(this)->shard_of_node(src);
  if (sh.dead.empty()) return false;
  return sh.dead[link_index(src, dst)] != 0;
}

std::uint64_t NetFabric::links_failed() const {
  std::uint64_t n = 0;
  for (const auto& shp : shards_) {
    for (const std::uint8_t b : shp->dead) n += b;
  }
  return n;
}

std::uint64_t NetFabric::degrade_rounds() const {
  std::uint64_t n = 0;
  for (const auto& shp : shards_) {
    for (const std::uint32_t r : shp->degrade_round) n += r;
  }
  return n;
}

std::string NetFabric::progress_report() const {
  // Watchdog diagnostic: enough state to see *where* forward progress
  // stopped — per-shard message counters, flows still holding slab
  // entries (with their stage bits), and send-queue depths.
  std::string r = "netfabric progress report\n";
  std::uint64_t posted = 0, delivered = 0, errored = 0, aborted = 0;
  for (const auto& shp : shards_) {
    posted += shp->posted;
    delivered += shp->delivered;
    errored += shp->errored;
    aborted += shp->aborted;
  }
  r += "  posted=" + std::to_string(posted) +
       " delivered=" + std::to_string(delivered) +
       " errored=" + std::to_string(errored) +
       " aborted=" + std::to_string(aborted) + "\n";
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const Shard& sh = *shards_[si];
    if (sh.flows_active == 0) continue;
    r += "  shard " + std::to_string(si) + ": flows_active=" +
         std::to_string(sh.flows_active) + "\n";
    for (const auto& fp : sh.slab) {
      const MsgFlow& f = *fp;
      // Every acquired flow is a flow that has not terminated — exactly
      // the set the watchdog wants on record (a flow mid-RTO-handler has
      // no pending events and no armed timer, but it still holds its
      // slab entry).
      if (!f.in_use) continue;
      r += "    flow " + std::to_string(f.msg.src) + "->" +
           std::to_string(f.msg.dst) + " bytes=" +
           std::to_string(f.msg.bytes) + " attempts=" +
           std::to_string(f.attempts) + " pending=" +
           std::to_string(f.pending) + (f.rto_armed ? " rto" : "") +
           (f.fetching ? " fetching" : "") +
           (f.wire_unresolved > 0 ? " wire" : "") + "\n";
    }
  }
  return r;
}

NetFabric::ChunkPlan NetFabric::chunk_plan(std::uint64_t bytes,
                                           std::uint32_t mtu) {
  const std::uint64_t chunk = std::max<std::uint64_t>(mtu, (bytes + 63) / 64);
  return {chunk, bytes == 0 ? 1 : (bytes + chunk - 1) / chunk};
}

// MNS_HOT: slab push_back is pool warm-up only — a released flow goes on
// the free list and steady state never allocates.
MNS_HOT NetFabric::MsgFlow* NetFabric::acquire_flow(Shard& sh) {
  ++sh.flows_active;
  if (sh.free_list != nullptr) {
    MsgFlow* f = sh.free_list;
    sh.free_list = f->next_free;
    f->next_free = nullptr;
    f->in_use = true;
    return f;
  }
  sh.slab.push_back(std::make_unique<MsgFlow>(*this));
  sh.slab.back()->in_use = true;
  return sh.slab.back().get();
}

void NetFabric::release_flow(MsgFlow& f) {
  Shard& sh = *f.shard;
  MNS_AUDIT(sh.flows_active > 0, "flow released with none active");
  MNS_AUDIT(f.pending == 0 && !f.rto_armed,
            "flow released with packet events or a retransmit timer live");
  MNS_AUDIT(f.wire_unresolved == 0,
            "flow released with packets still unresolved on the wire");
  --sh.flows_active;
  f.in_use = false;
  if (f.flow_key != 0) sh.wire_flows.erase(f.flow_key);
  f.flow_key = 0;
  f.msg = NetMsg{};  // drop per-message closures eagerly
  f.claims.clear();
  f.sender = {};
  f.next_free = sh.free_list;
  sh.free_list = &f;
}

void NetFabric::maybe_release(MsgFlow& f) {
  if (f.delivered_done && f.stale_events == 0) release_flow(f);
}

void NetFabric::init_flow(MsgFlow& f, NetMsg msg) {
  f.msg = std::move(msg);
  const ChunkPlan plan = chunk_plan(f.msg.bytes, nic_.mtu);
  f.chunk = plan.chunk;
  f.packets = plan.packets;
  f.packets_left_tx = plan.packets;
  f.packets_left = plan.packets;
  f.first_packet = true;
  f.express = false;
  f.demoted = false;
  f.local_fired = false;
  f.delivered_done = false;
  f.ex_fetch_fired = false;
  f.ex_local_scheduled = false;
  f.ex_local_fired = false;
  f.ex_arm_fired = false;
  f.replay_deferred = false;
  f.stale_events = 0;
  f.sender = {};
  f.fetching = false;
  f.rto_armed = false;
  f.lost = 0;
  f.corrupt_mask = 0;
  f.resend_mask = 0;
  f.pending = 0;
  f.attempts = 0;

  const int src = f.msg.src;
  const int dst = f.msg.dst;
  f.eng = node_eng_[static_cast<std::size_t>(src)];
  f.shard = &shard_of_node(src);
  f.rx_half = false;
  f.boundary = is_boundary(src, dst);
  f.drop_mask = 0;
  f.rx_discard = 0;
  f.wire_unresolved = 0;
  if (f.boundary) {
    // Key = src << 48 | per-source sequence (pre-incremented: never 0).
    f.flow_key = (static_cast<std::uint64_t>(src) << 48) |
                 ++flow_seq_[static_cast<std::size_t>(src)];
    f.shard->wire_flows.emplace(f.flow_key, &f);
  } else {
    f.flow_key = 0;
  }
  f.faulted = injector_ != nullptr && injector_->link_armed(src, dst);
  f.src_bus = &nodes_[static_cast<std::size_t>(src)]->bus().pipe();
  f.tx = tx_[static_cast<std::size_t>(src)].get();
  f.stage_src = staging_pipe(src, f.msg);
  f.nhops = src != dst ? topo_->hops(src, dst, f.hops) : 0;
  f.stage_dst = staging_pipe(dst, f.msg);
  f.nic_rx_proc =
      nic_.shared_processor ? nic_proc_[static_cast<std::size_t>(dst)].get()
                            : nullptr;
  f.rx = rx_[static_cast<std::size_t>(dst)].get();
  f.dst_bus = &nodes_[static_cast<std::size_t>(dst)]->bus().pipe();

  f.claims.clear();
  auto add = [&f](Pipe* p) {
    if (p == nullptr) return;
    for (const auto& rec : f.claims) {
      if (rec.pipe == p) return;
    }
    f.claims.push_back({p, {}, 0});
  };
  add(f.src_bus);
  add(f.tx);
  add(f.stage_src);
  for (int h = 0; h < f.nhops; ++h) add(f.hops[h]);
  add(f.stage_dst);
  add(f.nic_rx_proc);
  add(f.rx);
  add(f.dst_bus);
}

bool NetFabric::can_express(const MsgFlow& f) {
  if (!express_enabled_) return false;
  // A faulted packet must run the packet machine (per-packet verdicts and
  // retransmissions have no closed form), so flows on an armed link are
  // vetoed up front — link_armed is pure, keeping the decision
  // time-independent and deterministic.
  if (f.faulted) return false;
  // Loopback skips the switch and may hit the same pipes twice in one
  // chain; not worth proving exclusivity for.
  if (f.msg.src == f.msg.dst) return false;
  // A boundary flow's claim window would span pipes owned by another
  // partition: exclusivity is not provable from one partition's view
  // (and even reading the remote pipes' claim state here would race).
  // The demotion-replay contract makes the express path timing-invisible,
  // so refusing it up front costs nothing but the fast path. Counted so
  // the finalize report can surface a partition plan that cuts hot links.
  if (f.boundary) {
    ++f.shard->boundary_demotions;
    return false;
  }
  // The fabric's rx-side stall must be computable at launch.
  if (!express_rx_ok(f.msg)) return false;
  for (const auto& rec : f.claims) {
    if (rec.pipe->claim_active()) return false;
  }
  return true;
}

sim::Task<void> NetFabric::sender_loop(int node_id) {
  auto& queue = *sendq_[static_cast<std::size_t>(node_id)];
  auto& bus = nodes_[static_cast<std::size_t>(node_id)]->bus();
  sim::Engine& eng = *node_eng_[static_cast<std::size_t>(node_id)];
  for (;;) {
    NetMsg msg = co_await queue.receive();
    if (fail_stop_armed_) {
      // Degradation fast path: once a retry exhaustion has been
      // attributed to a permanent failure (learn_link_dead), subsequent
      // messages on the dead link do not re-run the whole retry cycle.
      // They pay the fabric's bounded degradation cost (IB reconnect
      // backoff, GM route probe, Elan escalation) and terminate as
      // `aborted` — delivered-or-errored holds for every flow, and the
      // sender NIC is freed for healthy traffic instead of burning its
      // protocol processor on a dead peer.
      Shard& sh = shard_of_node(node_id);
      const std::size_t li = link_index(msg.src, msg.dst);
      if (!sh.dead.empty() && sh.dead[li] != 0) {
        const std::uint32_t round = ++sh.degrade_round[li];
        const sim::Time d = degrade_delay(msg, static_cast<int>(round));
        if (d > sim::Time::zero()) co_await eng.delay(d);
        abort_degraded(std::move(msg));
        continue;
      }
    }
    if (nic_.shared_processor) {
      // One protocol processor handles send and receive events: the
      // per-message send work competes with incoming-message work.
      co_await nic_proc_[static_cast<std::size_t>(node_id)]->occupy(
          tx_setup(msg));
    } else {
      co_await eng.delay(tx_setup(msg));
    }
    const sim::Time stall = tx_stall(msg);
    if (stall > sim::Time::zero()) {
      co_await tx_pipe(node_id).occupy(stall);
    }

    MsgFlow* flow = acquire_flow(shard_of_node(node_id));
    init_flow(*flow, std::move(msg));
    if (can_express(*flow) && express_launch(*flow)) {
      // The express replay owns the fetch chain; park until the last
      // fetch completes (kExFetch, or the post-demotion kFetch chain).
      co_await MsgFlow::FetchGate{*flow};
    } else {
      // Closed-loop injection: each packet is fetched across the host bus
      // before the next, so concurrent senders on this node interleave at
      // packet granularity and per-pair ordering is preserved.
      MsgFlow& f = *flow;
      f.fetching = true;  // retransmit timers wait for the fetch chain
      for (std::uint64_t p = 0; p < f.packets; ++p) {
        co_await bus.dma(f.pkt_bytes(p));
        // Launch through the event queue at now, exactly where the old
        // per-packet coroutine spawn started.
        ++f.pending;
        eng.at(eng.now(), sim::EventFn(&MsgFlow::thunk, &f,
                                       MsgFlow::word(MsgFlow::kLaunch, p)));
      }
      f.fetching = false;
    }
    // `flow` may already be recycled past this point; never touch it here.
  }
}

void NetFabric::flow_step(MsgFlow& f, std::uintptr_t w) {
  const auto kind = static_cast<std::uint8_t>(w & 0xffu);
  const std::uint64_t p = w >> 8;
  const std::uint64_t pkt = f.pkt_bytes(p);

  if (kind <= MsgFlow::kBus) {
    // Packet-machine event landed; the retransmit timer counts these to
    // know when a resend round has fully drained.
    MNS_AUDIT(f.pending > 0, "packet event fired with zero pending");
    --f.pending;
  }

  auto sched = [&](std::uint8_t k, std::uint64_t pp, sim::Time t) {
    if (k <= MsgFlow::kBus) ++f.pending;
    f.eng->at(t, sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(k, pp)));
  };

  // Stage chaining shared by several completion events below; each helper
  // performs the next reservation and schedules its completion event. An
  // rx half routes its rx reservations through rx_half_reserve_rx, which
  // additionally decides the packet's fate and reports losses.
  auto enter_rx = [&] {
    if (f.first_packet) {
      f.first_packet = false;
      const sim::Time stall = rx_stall(f.msg) + nic_.per_msg_rx_setup;
      if (f.nic_rx_proc != nullptr) {
        // Receive-side per-message work runs on the shared protocol
        // processor (contending with sends), then the data crosses rx.
        sched(MsgFlow::kRxProc, p, f.nic_rx_proc->reserve_after(stall, 0));
      } else {
        // Stall + first-packet data as one atomic reservation, so packets
        // of other messages cannot be reordered into the gap.
        const sim::Time done = f.rx->reserve_after(stall, pkt);
        if (f.rx_half) {
          rx_half_reserve_rx(f, p, done);
        } else {
          sched(MsgFlow::kRx, p, done);
        }
      }
    } else {
      const sim::Time done = f.rx->reserve(pkt);
      if (f.rx_half) {
        rx_half_reserve_rx(f, p, done);
      } else {
        sched(MsgFlow::kRx, p, done);
      }
    }
  };
  auto enter_dst = [&] {
    if (f.stage_dst != nullptr) {
      sched(MsgFlow::kDstStage, p, f.stage_dst->reserve(pkt));
    } else {
      enter_rx();
    }
  };
  auto enter_switch = [&] {
    if (f.nhops > 0) {
      sched(MsgFlow::kHop0, p, f.hops[0]->reserve(pkt));
    } else {
      enter_dst();
    }
  };

  switch (kind) {
    case MsgFlow::kFetch: {
      // Post-demotion closed loop: launch this packet, fetch the next.
      // f.eng, not eng_: under partitioned execution the flow's engine is
      // the clock this event fired on; the construction engine may lag.
      sched(MsgFlow::kLaunch, p, f.eng->now());
      if (p + 1 < f.packets) {
        sched(MsgFlow::kFetch, p + 1, f.src_bus->reserve(f.pkt_bytes(p + 1)));
      } else {
        // Sender resumes inside the last fetch-completion event, like the
        // coroutine fetch loop it replaces.
        auto h = std::exchange(f.sender, std::coroutine_handle<>{});
        if (h) h.resume();
      }
      break;
    }
    case MsgFlow::kLaunch: {
      const sim::Time t_tx = f.tx->reserve(pkt);
      sched(MsgFlow::kTx, p, t_tx);
      // Boundary flows draw their fault verdict and announce the switch
      // entry here, where the tx completion instant is already known
      // (the wire message needs lookahead slack the kTx event lacks).
      if (f.boundary) launch_boundary_packet(f, p, t_tx);
      break;
    }
    case MsgFlow::kTx:
      if (--f.packets_left_tx == 0) {
        // Last byte has left the sender NIC: eager sends complete here.
        // (Fabric-level retransmissions below are invisible to the host,
        // like a real NIC's reliability engine.)
        if (!f.msg.complete_on_delivery && f.msg.local_complete &&
            !f.local_fired) {
          f.local_fired = true;
          f.msg.local_complete();
        }
      }
      if (f.boundary) {
        // Tx half of a split flow: the verdict was drawn at launch.
        if (f.drop_mask & (std::uint64_t{1} << p)) {
          f.drop_mask &= ~(std::uint64_t{1} << p);
          // Vanishes at the sender NIC, at exactly the sequential
          // machine's drop instant; the flagged ENTER already told the
          // receiver about the gap.
          lose_packet(f, p);
          break;
        }
        if (f.stage_src != nullptr) {
          // Deferred ENTER (see launch_boundary_packet): reserve source
          // staging here — where the shared send/receive queue is final
          // up to t_tx and the sequential machine's own reserve sits —
          // and announce the staging completion as the switch entry.
          const std::uint64_t bit = std::uint64_t{1} << p;
          std::uint64_t flags = 0;
          if (f.corrupt_mask & bit) {
            flags = kWireFlagCorrupt;
            f.corrupt_mask &= ~bit;  // flag travels on the wire
          }
          ++f.wire_unresolved;
          exec_->send(f.msg.src, f.msg.dst, f.stage_src->reserve(pkt),
                      wire_word(kWireEnter, p, f.attempts) | flags,
                      f.flow_key);
        }
        break;  // the rx half takes over at the switch entry
                // (the ENTER left at launch or just above)
      }
      if (f.faulted) {
        // The packet has consumed injection bandwidth; now the fault plan
        // decides its fate on the wire.
        const fault::Verdict v =
            injector_->packet_verdict(f.msg.src, f.msg.dst, f.eng->now());
        if (v == fault::Verdict::kDrop) {
          ++f.shard->faults_drop;
          lose_packet(f, p);
          break;  // vanishes at the sender NIC: nothing enters the switch
        }
        if (v == fault::Verdict::kCorrupt) {
          // Corrupt packets travel the full path (burning switch and rx
          // bandwidth) and fail their CRC at the receiver (kRx below).
          ++f.shard->faults_corrupt;
          f.corrupt_mask |= std::uint64_t{1} << p;
        }
      }
      if (f.stage_src != nullptr) {
        sched(MsgFlow::kSrcStage, p, f.stage_src->reserve(pkt));
      } else {
        enter_switch();
      }
      break;
    case MsgFlow::kSrcStage:
      enter_switch();
      break;
    case MsgFlow::kHop0:
    case MsgFlow::kHop1:
    case MsgFlow::kHop2: {
      const int h = kind - MsgFlow::kHop0 + 1;
      if (h < f.nhops) {
        sched(static_cast<std::uint8_t>(MsgFlow::kHop0 + h), p,
              f.hops[h]->reserve(pkt));
      } else {
        enter_dst();
      }
      break;
    }
    case MsgFlow::kDstStage:
      enter_rx();
      break;
    case MsgFlow::kRxProc: {
      const sim::Time done = f.rx->reserve(pkt);
      if (f.rx_half) {
        rx_half_reserve_rx(f, p, done);
      } else {
        sched(MsgFlow::kRx, p, done);
      }
      break;
    }
    case MsgFlow::kRx:
      if (f.rx_half) {
        // Fate was decided (and any loss reported) at the reservation;
        // this event applies it at the sequential detection instant.
        if (f.rx_discard & (std::uint64_t{1} << p)) {
          f.rx_discard &= ~(std::uint64_t{1} << p);
          f.corrupt_mask &= ~(std::uint64_t{1} << p);
          break;  // discarded; recovery runs on the tx half
        }
        // Survivor: report the landing with its host-bus completion
        // instant (the per-DMA setup is the lookahead slack).
        const sim::Time done = f.dst_bus->reserve(pkt);
        exec_->send(f.msg.dst, f.msg.src, done,
                    wire_word(kWireLand, p, f.attempts), f.flow_key);
        sched(MsgFlow::kBus, p, done);
        break;
      }
      if (f.faulted) {
        if (f.corrupt_mask & (std::uint64_t{1} << p)) {
          // CRC failure detected at the receiver NIC: discard.
          f.corrupt_mask &= ~(std::uint64_t{1} << p);
          lose_packet(f, p);
          break;
        }
        if (recovery_.protocol == RecoveryConfig::Protocol::kGoBackN &&
            p > 0 && (f.lost & ((std::uint64_t{1} << p) - 1)) != 0) {
          // Go-Back-N: an earlier packet of this message is missing, so
          // the firmware's sequence check rejects this one — only the
          // cumulative prefix is ever acknowledged. The sender will
          // resend the whole window from the gap.
          ++f.shard->gbn_discards;
          lose_packet(f, p);
          break;
        }
      }
      sched(MsgFlow::kBus, p, f.dst_bus->reserve(pkt));
      break;
    case MsgFlow::kBus:
      if (--f.packets_left == 0) {
        if (f.rx_half) {
          finish_boundary_delivery(f);
        } else {
          deliver(f);
        }
      }
      break;

    case MsgFlow::kRto:
      f.rto_armed = false;
      if (f.pending > 0 || f.fetching || f.wire_unresolved > 0) {
        // Packets of the current round are still moving (or still being
        // fetched); check again after another timeout.
        arm_rto(f);
        break;
      }
      MNS_AUDIT(f.lost != 0, "retransmit timer fired with nothing lost");
      ++f.attempts;
      if (f.attempts > watchdog_rounds_) {
        // Progress watchdog: a flow burned through more retransmit
        // rounds than any sane retry budget allows (misconfigured
        // budget meeting a dead component = RTO storm). Fail cleanly
        // with a diagnostic instead of spinning forever.
        throw sim::LivelockError(progress_report());
      }
      if (f.attempts > recovery_.retry_budget) {
        fail_flow(f);
        break;
      }
      resend_lost(f);
      arm_rto(f);
      break;

    case MsgFlow::kResendBatch: {
      // Fused resend round: launch every owed packet in ascending order,
      // exactly the sequence the per-packet kLaunch events produced. The
      // --pending stands in for each replaced launch event's own firing.
      std::uint64_t m = std::exchange(f.resend_mask, 0);
      MNS_AUDIT(m != 0, "resend batch fired with an empty mask");
      while (m != 0) {
        const auto q = static_cast<std::uint64_t>(std::countr_zero(m));
        m &= m - 1;
        MNS_AUDIT(f.pending > 0, "resend batch with zero pending");
        --f.pending;
        const sim::Time t_tx = f.tx->reserve(f.pkt_bytes(q));
        sched(MsgFlow::kTx, q, t_tx);
        // Resent boundary packets re-announce themselves with the bumped
        // attempt number; the rx half resets its loss mirror on seeing it.
        if (f.boundary) launch_boundary_packet(f, q, t_tx);
      }
      break;
    }

    case MsgFlow::kExFetch:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      f.ex_fetch_fired = true;
      {
        auto h = std::exchange(f.sender, std::coroutine_handle<>{});
        if (h) h.resume();
      }
      break;
    case MsgFlow::kExLocal:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      f.ex_local_fired = true;
      if (!f.local_fired && f.msg.local_complete) {
        f.local_fired = true;
        f.msg.local_complete();
      }
      break;
    case MsgFlow::kExDeliver:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      for (auto& rec : f.claims) rec.pipe->clear_claim(&f);
      deliver(f);
      break;

    case MsgFlow::kExArm:
      f.ex_arm_fired = true;
      if (f.demoted) {
        // Launch-window demotion re-entry: this event occupies the exact
        // slot of the packet machine's packet-0 fetch completion, so
        // restarting the closed fetch loop here reproduces the packet
        // path's event order bit for bit (see demote()).
        MNS_AUDIT(f.replay_deferred, "armed re-entry without deferral");
        f.replay_deferred = false;
        sched(MsgFlow::kLaunch, 0, f.eng->now());
        if (f.packets > 1) {
          sched(MsgFlow::kFetch, 1, f.src_bus->reserve(f.pkt_bytes(1)));
        } else {
          auto h = std::exchange(f.sender, std::coroutine_handle<>{});
          if (h) h.resume();
        }
      }
      break;
  }
}

void NetFabric::deliver(MsgFlow& f) {
  if (f.rto_armed) {
    // The happy-path cancel: the whole message made it, retire the
    // retransmit timer (frees its boxed-closure-free payload in place).
    f.eng->cancel(f.rto_id);
    f.rto_armed = false;
  }
  MNS_AUDIT(f.lost == 0 && f.corrupt_mask == 0,
            "message delivered with packets still marked lost");
  ++f.shard->delivered;
  if (nic_.ack_processing > sim::Time::zero() && f.msg.src != f.msg.dst) {
    // Delivery ack returns to the source NIC and occupies its protocol
    // processor while the send token is retired.
    f.eng->spawn([](NetFabric& self, sim::Engine& eng,
                    int src) -> sim::Task<void> {
      co_await eng.delay(self.nic_.ack_delay);
      co_await self.nic_proc(src).occupy(self.nic_.ack_processing);
    }(*this, *f.eng, f.msg.src), /*daemon=*/true);
  }
  on_delivered(f.msg);
  if (f.msg.complete_on_delivery && f.msg.local_complete) {
    f.msg.local_complete();
  }
  if (f.msg.remote_arrival) f.msg.remote_arrival();
  f.delivered_done = true;
  maybe_release(f);
}

void NetFabric::finish_boundary_delivery(MsgFlow& f) {
  // Rx half: the last packet reached destination memory. The tx half
  // hears about it through this packet's LAND message and runs the
  // sender-side delivery duties (timer cancel, ack, completion
  // callbacks) at the same instant in wire_land.
  MNS_AUDIT(f.lost == 0 && f.corrupt_mask == 0 && f.rx_discard == 0,
            "rx half delivered with packets still marked lost");
  if (f.msg.remote_arrival) f.msg.remote_arrival();
  f.delivered_done = true;
  maybe_release(f);
}

// ---------------------------------------------------------------------------
// Recovery machine. A lost packet (drop verdict, CRC failure, or Go-Back-N
// sequence rejection) sets its bit in f.lost and arms a per-flow
// retransmit timer at the source NIC. When the timer fires with no packet
// of the flow still in flight, the lost set is resent (one more attempt);
// when the retry budget is exhausted the flow surfaces an error to the
// device instead and is retired. Conservation (audited):
//   faults_drop_ + faults_corrupt_ + gbn_discards_
//     == packets_retransmitted_ + packets_abandoned_
// ---------------------------------------------------------------------------

void NetFabric::lose_packet(MsgFlow& f, std::uint64_t p) {
  f.lost |= std::uint64_t{1} << p;
  arm_rto(f);
}

void NetFabric::arm_rto(MsgFlow& f) {
  if (f.rto_armed) return;
  f.rto_id = f.eng->at_cancellable(
      f.eng->now() + rto_delay(f),
      sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(MsgFlow::kRto, 0)));
  f.rto_armed = true;
}

sim::Time NetFabric::rto_delay(const MsgFlow& f) const {
  sim::Time d = recovery_.rto;
  if (recovery_.backoff_cap > sim::Time::zero()) {
    // Bounded exponential backoff (Elan hardware retry): rto, 2*rto, ...
    // capped. The other protocols keep a fixed timeout.
    for (int i = 0; i < f.attempts && d < recovery_.backoff_cap; ++i) {
      d = d * 2;
    }
    if (d > recovery_.backoff_cap) d = recovery_.backoff_cap;
  }
  return d;
}

void NetFabric::resend_lost(MsgFlow& f) {
  MNS_AUDIT(f.lost != 0, "resend round with an empty lost set");
  MNS_AUDIT(f.resend_mask == 0, "overlapping resend rounds");
  // IB RC / Elan resend exactly the lost packets; GM's Go-Back-N window —
  // everything from the first gap onward — is already what the lost set
  // holds, because the receiver rejected the whole post-gap tail.
  const auto n = static_cast<std::uint64_t>(std::popcount(f.lost));
  f.resend_mask = f.lost;
  f.lost = 0;
  f.shard->retransmitted += n;
  // The retransmitted copies re-cross the tx stage, so the tx-drain
  // counter must see them (already decremented on the lost pass). The
  // pending count carries the batch event standing in for the launches.
  f.packets_left_tx += n;
  f.pending += static_cast<std::uint32_t>(n);
  // One event relaunches the whole round (see Kind::kResendBatch); a
  // 64-packet Go-Back-N storm schedules 1 now-queue entry instead of 64.
  f.eng->at(f.eng->now(), sim::EventFn(&MsgFlow::thunk, &f,
                                       MsgFlow::word(MsgFlow::kResendBatch,
                                                     0)));
}

void NetFabric::fail_flow(MsgFlow& f) {
  // Retry budget exhausted: surface the transport error (IB QP error / GM
  // give-up / Elan retry exhaustion) to the device and retire the flow.
  const auto abandoned = static_cast<std::uint64_t>(std::popcount(f.lost));
  MNS_AUDIT(abandoned == f.packets_left,
            "abandoned flow with undelivered packets not in the lost set");
  f.shard->abandoned += abandoned;
  f.lost = 0;
  ++f.shard->errored;
  if (fail_stop_armed_ && injector_ &&
      injector_->link_dead(f.msg.src, f.msg.dst, f.eng->now())) {
    // Attribution: the budget ran out against a permanently dead
    // link/NIC, not a lossy one. Teach this sender's shard so later
    // messages on the link take the bounded degradation fast path
    // instead of re-running the whole retry cycle.
    learn_link_dead(*f.shard, f.msg.src, f.msg.dst);
  }
  if (f.boundary) {
    // Tear down the rx half one lookahead out (every wire packet is
    // already resolved — the timer never fires with packets in flight).
    exec_->send(f.msg.src, f.msg.dst,
                f.eng->now() + exec_->topology().lookahead,
                wire_word(kWireClose, 0, 0), f.flow_key);
  }
  on_aborted(f.msg);
  if (f.msg.on_failed) f.msg.on_failed();
  f.delivered_done = true;  // reuse the release machinery
  maybe_release(f);
}

// ---------------------------------------------------------------------------
// Split-flow protocol implementation (see the file comment for the
// message contract and the equivalence argument).
// ---------------------------------------------------------------------------

void NetFabric::launch_boundary_packet(MsgFlow& f, std::uint64_t p,
                                       sim::Time t_tx) {
  const std::uint64_t bit = std::uint64_t{1} << p;
  std::uint64_t flags = 0;
  if (f.faulted) {
    // Verdict relocated from tx completion to launch, passing the
    // explicit tx-completion timestamp: same per-link draw order (the
    // FIFO tx pipe makes launch order equal completion order) and the
    // same draw instants as the sequential kTx-time draw.
    const fault::Verdict v =
        injector_->packet_verdict(f.msg.src, f.msg.dst, t_tx);
    if (v == fault::Verdict::kDrop) {
      ++f.shard->faults_drop;
      f.drop_mask |= bit;
      flags |= kWireFlagDropped;
    } else if (v == fault::Verdict::kCorrupt) {
      ++f.shard->faults_corrupt;
      f.corrupt_mask |= bit;
      flags |= kWireFlagCorrupt;
    }
  }
  if (p == 0 && f.attempts == 0) {
    // First packet of the first attempt: ship the flow descriptor. Same
    // timestamp as the first ENTER; the earlier send index makes it sort
    // first in the delivery batch.
    // One descriptor per boundary message (not per packet); crosses to
    // the rx half and is freed there.
    // simlint-allow: model-alloc
    auto box = std::make_unique<OpenBox>();  // simcheck-allow: hot-alloc
    box->msg.src = f.msg.src;
    box->msg.dst = f.msg.dst;
    box->msg.bytes = f.msg.bytes;
    box->msg.src_addr = f.msg.src_addr;
    box->msg.dst_addr = f.msg.dst_addr;
    box->msg.complete_on_delivery = f.msg.complete_on_delivery;
    // The receiver-side callback crosses with the descriptor; the
    // sender-side closures stay with the tx half.
    box->msg.remote_arrival = std::move(f.msg.remote_arrival);
    box->chunk = f.chunk;
    box->packets = f.packets;
    box->faulted = f.faulted;
    exec_->send(f.msg.src, f.msg.dst, t_tx, wire_word(kWireOpen, 0, 0),
                f.flow_key, 0, static_cast<WireBox*>(box.release()));
  }
  if (flags & kWireFlagDropped) {
    // The gap announcement: the packet never enters the switch, but the
    // receiver's Go-Back-N sequence check must see it missing.
    exec_->send(f.msg.src, f.msg.dst, t_tx,
                wire_word(kWireEnter, p, f.attempts) | flags, f.flow_key);
    return;
  }
  if (f.stage_src != nullptr) {
    // Staged fabrics: the switch-entry instant is the source-staging
    // completion, and the staging pipe is shared with this node's
    // receive side (the Fig. 5 bi-directional bottleneck), whose
    // reservations land at their own event instants. Reserving staging
    // here at launch would jump the queue ahead of any receive staged
    // between launch and t_tx, reordering the shared FIFO against the
    // sequential machine. The reservation and the ENTER are therefore
    // deferred to this packet's kTx event, where the queue is final up
    // to t_tx and the sequential machine's own reserve sits. A corrupt
    // verdict stays in corrupt_mask until that send. The cost: the
    // deferred ENTER departs with only the packet's staging
    // serialization of slack, so the executor lookahead is floored at
    // one byte's staging time for staged fabrics (see Cluster).
    return;
  }
  ++f.wire_unresolved;
  if (flags != 0) f.corrupt_mask &= ~bit;  // flag travels on the wire
  // Switch entry instant: the tx completion. The ENTER departs with
  // >= tx_wire_latency of lookahead slack (t_tx >= now + wire latency),
  // which a kTx-time send could not guarantee.
  exec_->send(f.msg.src, f.msg.dst, t_tx,
              wire_word(kWireEnter, p, f.attempts) | flags, f.flow_key);
}

void NetFabric::rx_half_reserve_rx(MsgFlow& f, std::uint64_t p,
                                   sim::Time done) {
  // The packet's fate is a pure function of state stable by reservation
  // time (see the file comment), so it is decided here — one stage ahead
  // of the sequential machine — and any loss is reported with the exact
  // detection instant while there is still >= rx_fixed of slack.
  const std::uint64_t bit = std::uint64_t{1} << p;
  if (f.faulted) {
    bool discard = false;
    if (f.corrupt_mask & bit) {
      discard = true;  // CRC failure, applied at kRx
    } else if (recovery_.protocol == RecoveryConfig::Protocol::kGoBackN &&
               p > 0 && (f.lost & (bit - 1)) != 0) {
      discard = true;
      ++f.shard->gbn_discards;
    }
    if (discard) {
      f.rx_discard |= bit;
      f.lost |= bit;  // later packets' sequence checks see this gap
      exec_->send(f.msg.dst, f.msg.src, done,
                  wire_word(kWireLoss, p, f.attempts), f.flow_key);
    }
  }
  ++f.pending;
  f.eng->at(done,
            sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(MsgFlow::kRx, p)));
}

void NetFabric::wire_handle(int node, const sim::pdes::WireMsg& m) {
  switch (m.a & 0xffu) {
    case kWireOpen:
      wire_open(node, m);
      break;
    case kWireEnter:
      wire_enter(node, m);
      break;
    case kWireLoss:
      wire_loss(m);
      break;
    case kWireLand:
      wire_land(m);
      break;
    case kWireClose:
      wire_close(m);
      break;
    case kWireCall: {
      std::unique_ptr<CallBox> box(
          static_cast<CallBox*>(static_cast<WireBox*>(m.box)));
      box->fn();
      break;
    }
    default:
      throw std::logic_error("NetFabric: unknown wire message kind");
  }
}

void NetFabric::wire_open(int dst, const sim::pdes::WireMsg& m) {
  std::unique_ptr<OpenBox> box(
      static_cast<OpenBox*>(static_cast<WireBox*>(m.box)));
  Shard& sh = shard_of_node(dst);
  MsgFlow& f = *acquire_flow(sh);
  f.msg = std::move(box->msg);
  f.chunk = box->chunk;
  f.packets = box->packets;
  f.faulted = box->faulted;
  f.eng = node_eng_[static_cast<std::size_t>(dst)];
  f.shard = &sh;
  f.boundary = false;
  f.rx_half = true;
  f.flow_key = m.b;
  f.drop_mask = 0;
  f.rx_discard = 0;
  f.wire_unresolved = 0;
  f.packets_left_tx = 0;
  f.packets_left = f.packets;
  f.first_packet = true;
  f.express = false;
  f.demoted = false;
  f.local_fired = false;
  f.delivered_done = false;
  f.ex_fetch_fired = false;
  f.ex_local_scheduled = false;
  f.ex_local_fired = false;
  f.ex_arm_fired = false;
  f.replay_deferred = false;
  f.stale_events = 0;
  f.sender = {};
  f.fetching = false;
  f.rto_armed = false;
  f.lost = 0;
  f.corrupt_mask = 0;
  f.resend_mask = 0;
  f.pending = 0;
  f.attempts = 0;  // reused as the attempt the mirror state describes
  // Destination-owned stages only; the tx half keeps the rest.
  f.src_bus = nullptr;
  f.tx = nullptr;
  f.stage_src = nullptr;
  f.nhops = topo_->hops(f.msg.src, dst, f.hops);
  f.stage_dst = staging_pipe(dst, f.msg);
  f.nic_rx_proc =
      nic_.shared_processor ? nic_proc_[static_cast<std::size_t>(dst)].get()
                            : nullptr;
  f.rx = rx_[static_cast<std::size_t>(dst)].get();
  f.dst_bus = &nodes_[static_cast<std::size_t>(dst)]->bus().pipe();
  f.claims.clear();
  sh.wire_flows.emplace(f.flow_key, &f);
}

void NetFabric::wire_enter(int dst, const sim::pdes::WireMsg& m) {
  MsgFlow& f = *shard_of_node(dst).wire_flows.at(m.b);
  const std::uint64_t p = wire_packet(m.a);
  const std::uint64_t bit = std::uint64_t{1} << p;
  const int attempt = wire_attempt(m.a);
  if (attempt > f.attempts) {
    // First packet of a resend round: the sender cleared its lost set
    // when it queued the round, so the mirror starts the attempt clean.
    f.attempts = attempt;
    f.lost = 0;
  }
  if (m.a & kWireFlagDropped) {
    // Dropped at the sender NIC: nothing enters the switch, but the gap
    // gates later packets' Go-Back-N fates.
    f.lost |= bit;
    return;
  }
  if (m.a & kWireFlagCorrupt) f.corrupt_mask |= bit;
  // This handler runs at the exact instant the sequential machine would
  // reserve the switch port (the dst-owned pipe), so the reservation and
  // everything downstream replays identically.
  ++f.pending;
  f.eng->at(
      f.hops[0]->reserve(f.pkt_bytes(p)),
      sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(MsgFlow::kHop0, p)));
}

void NetFabric::wire_loss(const sim::pdes::WireMsg& m) {
  // Back on the tx half's partition, at the exact sequential detection
  // instant: account the packet as lost and arm the retransmit timer.
  MsgFlow& f = *shard_of_node(m.dst_node).wire_flows.at(m.b);
  MNS_AUDIT(f.wire_unresolved > 0, "LOSS for a flow with nothing on wire");
  --f.wire_unresolved;
  lose_packet(f, wire_packet(m.a));
}

void NetFabric::wire_land(const sim::pdes::WireMsg& m) {
  MsgFlow& f = *shard_of_node(m.dst_node).wire_flows.at(m.b);
  MNS_AUDIT(f.wire_unresolved > 0, "LAND for a flow with nothing on wire");
  --f.wire_unresolved;
  MNS_AUDIT(f.packets_left > 0, "LAND after the last packet");
  if (--f.packets_left != 0) return;
  // Last packet reached destination memory: this instant is the
  // sequential deliver(), minus the receiver-side duties the rx half
  // performed in finish_boundary_delivery at the same timestamp.
  if (f.rto_armed) {
    f.eng->cancel(f.rto_id);
    f.rto_armed = false;
  }
  MNS_AUDIT(f.lost == 0 && f.corrupt_mask == 0,
            "message delivered with packets still marked lost");
  ++f.shard->delivered;
  if (nic_.ack_processing > sim::Time::zero()) {
    // Delivery ack returns to the source NIC and occupies its protocol
    // processor while the send token is retired (boundary flows are
    // never loopback, so the ack always exists when configured).
    f.eng->spawn([](NetFabric& self, sim::Engine& eng,
                    int src) -> sim::Task<void> {
      co_await eng.delay(self.nic_.ack_delay);
      co_await self.nic_proc(src).occupy(self.nic_.ack_processing);
    }(*this, *f.eng, f.msg.src), /*daemon=*/true);
  }
  on_delivered(f.msg);
  if (f.msg.complete_on_delivery && f.msg.local_complete) {
    f.msg.local_complete();
  }
  f.delivered_done = true;
  maybe_release(f);
}

void NetFabric::wire_close(const sim::pdes::WireMsg& m) {
  // The tx half's recovery gave up; dissolve the rx half. Its event
  // pipeline is already drained: the sender's timer only exhausts the
  // budget with every wire packet resolved, and every resolution message
  // postdates the rx half's last event for that packet.
  MsgFlow& f = *shard_of_node(m.dst_node).wire_flows.at(m.b);
  f.lost = 0;
  f.corrupt_mask = 0;
  f.rx_discard = 0;
  f.packets_left = 0;
  f.delivered_done = true;
  maybe_release(f);
}

void NetFabric::set_fault_plan(const fault::FaultPlan& plan) {
  if (plan.empty()) return;  // keeps the data path bit-identical
  injector_ = std::make_unique<fault::Injector>(plan, nodes_.size());
  // Fail-stop clauses arm the degradation machinery. Transient-only
  // plans leave fail_stop_armed_ false, so the sender_loop fast path
  // and the collectives' agreement epilogue stay compiled-out at run
  // time and the existing chaos matrices remain bit-identical.
  fail_stop_armed_ = plan.has_fail_stop();
  if (fail_stop_armed_) {
    // Pre-size every shard's dead-link registry here (construction time,
    // cold) so learn_link_dead and the sender-loop fast path never
    // allocate on the simulation's hot path.
    const std::size_t n2 = nodes_.size() * nodes_.size();
    for (auto& shp : shards_) {
      shp->dead.assign(n2, 0);
      shp->degrade_round.assign(n2, 0);
    }
  }
  for (const fault::LinkDownSpec& ld : plan.link_downs()) {
    auto bad = [&](int n) {
      return n != fault::kAnyNode &&
             (n < 0 || static_cast<std::size_t>(n) >= nodes_.size());
    };
    if (bad(ld.src) || bad(ld.dst)) {
      throw std::invalid_argument(
          "FaultPlan: linkdown " + std::to_string(ld.src) + "-" +
          std::to_string(ld.dst) + " but the fabric has " +
          std::to_string(nodes_.size()) + " nodes");
    }
  }
  for (const fault::NicDownSpec& nd : plan.nic_downs()) {
    if (nd.node < 0 || static_cast<std::size_t>(nd.node) >= nodes_.size()) {
      throw std::invalid_argument(
          "FaultPlan: nicdown on node " + std::to_string(nd.node) +
          " but the fabric has " + std::to_string(nodes_.size()) + " nodes");
    }
  }
  for (const fault::NicStallSpec& st : injector_->nic_stalls()) {
    if (st.node < 0 || static_cast<std::size_t>(st.node) >= nodes_.size()) {
      throw std::invalid_argument(
          "FaultPlan: NIC stall on node " + std::to_string(st.node) +
          " but the fabric has " + std::to_string(nodes_.size()) + " nodes");
    }
    Pipe* tx = tx_[static_cast<std::size_t>(st.node)].get();
    Pipe* rx = rx_[static_cast<std::size_t>(st.node)].get();
    const sim::Time dur = st.duration;
    // Scheduled on the stalled node's owning engine: its NIC pipes are
    // that partition's state.
    sim::Engine& ne = *node_eng_[static_cast<std::size_t>(st.node)];
    // The stall is pure occupancy on both DMA engines. reserve_after
    // breaks claims, so an express flow holding the pipe demotes — a
    // faulted window always runs at packet granularity.
    ne.at(st.at, [tx, rx, dur] {
      tx->reserve_after(dur, 0);
      rx->reserve_after(dur, 0);
    });
    // Keep the engine running past the stall window so the finalize
    // "pipes idle" audit sees the occupancy expire.
    ne.at(st.at + dur, [] {});
  }
}

bool NetFabric::express_launch(MsgFlow& f) {
  f.express = true;
  f.launch_time = f.eng->now();
  for (auto& rec : f.claims) rec.snap = rec.pipe->state();
  if (!replay_flow(f, /*materialize=*/false)) {
    // The closed form can't reproduce the packet interleaving; undo the
    // partial bulk apply (nothing else has run — this is synchronous) and
    // let the packet machine drive the message.
    for (auto& rec : f.claims) rec.pipe->restore(rec.snap);
    f.express = false;
    f.first_packet = true;  // the aborted walk consumed it
    return false;
  }
  ++f.shard->express_msgs;
  // Claim every path pipe until the flow's final delivery instant — not
  // just until our last reservation on that pipe. A shorter claim could
  // lapse while the flow is still in flight; a foreign reservation could
  // then legally land on the lapsed pipe, and a later demotion's rollback
  // would wipe it. With the uniform expiry, nothing foreign can touch any
  // path pipe between the bulk apply and delivery without demoting us
  // first, so the snapshots always restore cleanly (the epoch audit).
  for (auto& rec : f.claims) {
    rec.pipe->claim(&f, f.ex_deliver);
    rec.epoch = rec.pipe->epoch();
  }
  return true;
}

void NetFabric::demote(MsgFlow& f) {
  MNS_AUDIT(f.express && !f.demoted, "demotion of a non-express flow");
  ++f.shard->express_demotions;
  f.demoted = true;
  for (auto& rec : f.claims) {
    rec.pipe->clear_claim(&f);
    MNS_AUDIT(rec.pipe->epoch() == rec.epoch,
              "foreign reservation slipped into a claimed express window");
    rec.pipe->restore(rec.snap);
  }
  f.stale_events = (f.ex_fetch_fired ? 0 : 1) +
                   ((f.ex_local_scheduled && !f.ex_local_fired) ? 1 : 0) +
                   1;  // kExDeliver is always still pending here
  // Reset the packet-machine counters; the materializing replay re-applies
  // every virtual event whose time has already passed.
  f.packets_left_tx = f.packets;
  f.packets_left = f.packets;
  f.first_packet = true;
  if (!f.ex_arm_fired) {
    // Demoted inside the launch window, before any packet event would have
    // fired. The packet machine's only pending event here is the packet-0
    // fetch completion — exactly where the arm sits, carrying the seq it
    // was given in the flow's own launch handler. Re-apply just that fetch
    // occupancy (the rollback erased it; the packet world holds it) and
    // let the arm restart the closed fetch loop in its own event, so every
    // subsequent event is scheduled from the same handler position the
    // packet machine would use. Materializing right here instead would
    // stamp the replacement events inside the DEMOTER's handler, flipping
    // same-instant event order against the packet path.
    f.replay_deferred = true;
    f.src_bus->reserve_at(f.launch_time, f.pkt_bytes(0));
    return;
  }
  replay_flow(f, /*materialize=*/true);
}

bool NetFabric::replay_flow(MsgFlow& f, bool mat) {
  const sim::Time now = f.eng->now();

  // Reservations with explicit (virtual) arrival instants.
  auto resv = [&](Pipe* pipe, sim::Time arrive,
                  std::uint64_t bytes) -> sim::Time {
    return pipe->reserve_at(arrive, bytes);
  };
  auto resv_after = [&](Pipe* pipe, sim::Time arrive, sim::Time lead,
                        std::uint64_t bytes) -> sim::Time {
    return pipe->reserve_after_at(arrive, lead, bytes);
  };
  auto sched = [&](std::uint8_t kind, std::uint64_t p, sim::Time t) {
    // Materialized events re-enter the packet machine, whose entry
    // decrements the pending count (express flows are never faulted, but
    // the drain counter must stay balanced for the flow-release audit).
    if (kind <= MsgFlow::kBus) ++f.pending;
    f.eng->at(t, sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(kind, p)));
  };

  sim::Time t_local{};
  sim::Time t_deliver{};
  sim::Time c_last{};
  // With a shared protocol processor, the first packet's rx reservation is
  // made only once its processor detour completes (`rx_gate`); a later
  // packet reaching rx before that instant would reserve rx *first* in the
  // real event order. The sequential walk can't express that interleaving,
  // so the apply pass aborts on it (`walk` returns false).
  sim::Time rx_gate{};
  bool rx_gated = false;

  // Walk one packet's stage chain from its launch instant. In materialize
  // mode, a stage whose completion lies in the future becomes a real
  // packet-machine event and the walk stops — every earlier stage has
  // "already happened" and is re-applied with its side effects.
  auto walk = [&](std::uint64_t p, std::uint64_t pkt,
                  sim::Time launch_at) -> bool {
    sim::Time t = resv(f.tx, launch_at, pkt);
    if (p + 1 == f.packets) t_local = t;
    if (mat && t > now) {
      sched(MsgFlow::kTx, p, t);
      return true;
    }
    if (mat) {
      if (--f.packets_left_tx == 0 && !f.msg.complete_on_delivery &&
          f.msg.local_complete && !f.local_fired) {
        // Only reachable when the virtual tx-done instant is exactly now:
        // anything strictly earlier already fired the real kExLocal.
        f.local_fired = true;
        f.msg.local_complete();
      }
    }
    if (f.stage_src != nullptr) {
      t = resv(f.stage_src, t, pkt);
      if (mat && t > now) {
        sched(MsgFlow::kSrcStage, p, t);
        return true;
      }
    }
    for (int h = 0; h < f.nhops; ++h) {
      t = resv(f.hops[h], t, pkt);
      if (mat && t > now) {
        sched(static_cast<std::uint8_t>(MsgFlow::kHop0 + h), p, t);
        return true;
      }
    }
    if (f.stage_dst != nullptr) {
      t = resv(f.stage_dst, t, pkt);
      if (mat && t > now) {
        sched(MsgFlow::kDstStage, p, t);
        return true;
      }
    }
    if (f.first_packet) {
      f.first_packet = false;
      // Express eligibility guarantees rx_stall is pure for this message,
      // so evaluating it here (launch or demotion) matches the packet
      // path evaluating it at first-packet delivery.
      const sim::Time stall = rx_stall(f.msg) + nic_.per_msg_rx_setup;
      if (f.nic_rx_proc != nullptr) {
        t = resv_after(f.nic_rx_proc, t, stall, 0);
        if (mat && t > now) {
          sched(MsgFlow::kRxProc, p, t);
          return true;
        }
        rx_gate = t;
        rx_gated = true;
        t = resv(f.rx, t, pkt);
      } else {
        t = resv_after(f.rx, t, stall, pkt);
      }
    } else {
      // Abort (apply pass only) if this packet reaches rx at or before the
      // gated first-packet rx reservation: ties and overtakes resolve by
      // event order, which the closed form cannot reproduce. A demotion
      // replay re-derives the exact launch-time trajectory, so the apply
      // pass having passed this check means materialize cannot trip it.
      if (!mat && rx_gated && t <= rx_gate) return false;
      t = resv(f.rx, t, pkt);
    }
    if (mat && t > now) {
      sched(MsgFlow::kRx, p, t);
      return true;
    }
    t = resv(f.dst_bus, t, pkt);
    if (p + 1 == f.packets) t_deliver = t;
    if (mat && t > now) {
      sched(MsgFlow::kBus, p, t);
      return true;
    }
    if (mat) {
      if (p + 1 == f.packets) {
        // Boundary demotion (now == the express delivery instant): the
        // competitor's reservation ties with our final completion, and the
        // packet machine would run its delivery event after the
        // competitor's. Hand delivery through the now-queue.
        MNS_AUDIT(t == now, "demotion after the express delivery instant");
        sched(MsgFlow::kBus, p, now);
        return true;
      }
      --f.packets_left;
    }
    return true;
  };

  // The closed-loop fetch chain: fetch p+1 is reserved inside fetch p's
  // completion event; each completion also launches its packet.
  sim::Time c_prev = f.launch_time;
  sim::Time c_first{};
  for (std::uint64_t p = 0; p < f.packets; ++p) {
    const std::uint64_t pkt = f.pkt_bytes(p);
    const sim::Time c = resv(f.src_bus, c_prev, pkt);
    if (p == 0) c_first = c;
    if (mat && c > now) {
      // The pending fetch-completion event re-enters the closed loop: it
      // launches packet p and keeps fetching.
      sched(MsgFlow::kFetch, p, c);
      return true;
    }
    if (p + 1 == f.packets) c_last = c;
    if (!walk(p, pkt, c)) return false;
    c_prev = c;
  }

  if (mat) {
    if (!f.ex_fetch_fired) {
      // Only reachable when the last fetch lands exactly at now (anything
      // earlier already fired the real kExFetch). The packet path would
      // resume the sender inside that event; hand the resume through the
      // now-queue so it runs after the demoting reservation completes.
      f.ex_fetch_fired = true;
      auto h = std::exchange(f.sender, std::coroutine_handle<>{});
      if (h) f.eng->at(now, sim::EventFn::resume(h));
    }
    return true;
  }

  // Apply mode: only the terminal events materialize — plus the arm, the
  // demotion re-entry anchor sitting at the packet-0 fetch instant. Until
  // it fires, the packet machine would have exactly one pending event (the
  // packet-0 fetch completion, scheduled from this very handler), so a
  // demotion in that window can hand the restart to the arm and keep
  // same-instant event order bit-identical to the packet path.
  f.ex_deliver = t_deliver;
  f.ex_local_scheduled =
      !f.msg.complete_on_delivery && static_cast<bool>(f.msg.local_complete);
  sched(MsgFlow::kExArm, 0, c_first);
  sched(MsgFlow::kExFetch, 0, c_last);
  if (f.ex_local_scheduled) sched(MsgFlow::kExLocal, 0, t_local);
  sched(MsgFlow::kExDeliver, 0, t_deliver);
  return true;
}

void NetFabric::post_switch_broadcast(int src, std::uint64_t bytes,
                                      sim::Time extra_setup,
                                      // simlint-allow: model-alloc (per-broadcast)
                                      std::function<void()> on_delivered) {
  if (partitions_ > 1) {
    // Devices with hardware broadcast demote the partition plan before
    // the fabric is built (the replication legs fan out across every
    // node's pipes in one coroutine — there is no owning partition).
    throw std::logic_error(
        "switch broadcast requires sequential execution; hardware-"
        "broadcast devices must demote the partition plan");
  }
  ++shard_of_node(src).bcasts_posted;
  auto task = [](NetFabric& self, int src, std::uint64_t bytes,
                 sim::Time extra_setup,
                 // simlint-allow: model-alloc (per-broadcast callback)
                 std::function<void()> on_delivered) -> sim::Task<void> {
    co_await self.eng_->delay(self.nic_.per_msg_setup + extra_setup);

    // Legs replicate per chunk at the same pipelining granularity as
    // unicast messages (they used to move the full payload as one
    // un-chunked transfer, bypassing the 64-chunk cap).
    const ChunkPlan plan = chunk_plan(bytes, self.nic_.mtu);
    const std::size_t peers = self.node_count() - 1;

    struct Fanout {
      std::size_t remaining;
      sim::Trigger done;
      Fanout(sim::Engine& e, std::size_t n) : remaining(n), done(e) {}
    };
    auto fan = std::make_shared<Fanout>(  // simlint-allow: model-alloc
        *self.eng_, plan.packets * std::max<std::size_t>(peers, 1));

    auto leg = [](NetFabric& self, int src, int dst, std::uint64_t pkt,
                  std::shared_ptr<Fanout> fan) -> sim::Task<void> {
      co_await self.topo_->route(src, dst, pkt);
      co_await self.rx_pipe(dst).transfer(pkt);
      co_await self.node(dst).bus().dma(pkt);
      if (--fan->remaining == 0) fan->done.fire();
    };
    auto chunk_tail = [](NetFabric& self, int src, std::uint64_t pkt,
                         std::size_t peers, std::shared_ptr<Fanout> fan,
                         auto leg) -> sim::Task<void> {
      co_await self.tx_pipe(src).transfer(pkt);
      if (peers == 0) {
        // Single-node fabric: the broadcast "lands" once injected.
        if (--fan->remaining == 0) fan->done.fire();
        co_return;
      }
      for (std::size_t d = 0; d < self.node_count(); ++d) {
        if (static_cast<int>(d) == src) continue;
        self.eng_->spawn(leg(self, src, static_cast<int>(d), pkt, fan),
                         /*daemon=*/true);
      }
    };

    // Closed-loop chunk injection, mirroring the unicast sender.
    std::uint64_t left = bytes;
    for (std::uint64_t p = 0; p < plan.packets; ++p) {
      const std::uint64_t pkt = left < plan.chunk ? left : plan.chunk;
      left -= pkt;
      co_await self.node(src).bus().dma(pkt);
      self.eng_->spawn(chunk_tail(self, src, pkt, peers, fan, leg),
                       /*daemon=*/true);
    }
    co_await fan->done.wait();
    ++self.shard_of_node(src).bcasts_delivered;
    if (on_delivered) on_delivered();
  };
  eng_->spawn(task(*this, src, bytes, extra_setup, std::move(on_delivered)),
              /*daemon=*/true);
}

void NetFabric::collect_pipes(std::vector<Pipe*>& out) {
  for (auto& p : tx_) out.push_back(p.get());
  for (auto& p : rx_) out.push_back(p.get());
  for (auto& p : nic_proc_) out.push_back(p.get());
  for (auto* n : nodes_) out.push_back(&n->bus().pipe());
  topo_->collect_pipes(out);
}

void NetFabric::register_audits(audit::AuditReport& report) {
  report.add_check("model::NetFabric", [this](audit::AuditReport::Scope& s) {
    s.require_eq(messages_posted(),
                 messages_delivered() + messages_errored() +
                     messages_aborted(),
                 "message(s) posted but neither delivered, surfaced as a "
                 "transport error, nor aborted by degradation");
    s.require_eq(packets_dropped() + packets_corrupted() +
                     packets_gbn_discarded(),
                 packets_retransmitted() + packets_abandoned(),
                 "packet-loss conservation broken: every lost packet must "
                 "be retransmitted or abandoned with its flow");
    s.require_eq(sum(&Shard::bcasts_posted), sum(&Shard::bcasts_delivered),
                 "switch broadcast(s) posted but never completed");
    std::size_t active = 0;
    std::size_t wired = 0;
    for (const auto& sh : shards_) {
      active += sh->flows_active;
      wired += sh->wire_flows.size();
    }
    s.require_eq(active, std::size_t{0},
                 "message flow(s) not recycled at finalize");
    s.require_eq(wired, std::size_t{0},
                 "split-flow half(s) still registered at finalize");
    std::vector<Pipe*> pipes;
    collect_pipes(pipes);
    for (Pipe* p : pipes) {
      s.require(!p->claimed(), "pipe claim not cleared at finalize");
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::string node = "node " + std::to_string(i);
      s.require(tx_[i]->idle(), node + ": tx pipe busy at finalize");
      s.require(rx_[i]->idle(), node + ": rx pipe busy at finalize");
      s.require(nic_proc_[i]->idle(),
                node + ": NIC protocol processor busy at finalize");
      s.require(sendq_[i]->empty(),
                node + ": send queue not drained at finalize");
    }
  });
}

}  // namespace mns::model
