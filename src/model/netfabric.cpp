#include "model/netfabric.hpp"

#include <algorithm>
#include <bit>
#include <coroutine>
#include <stdexcept>
#include <string>
#include <utility>

#include "audit/report.hpp"

namespace mns::model {

// ---------------------------------------------------------------------------
// MsgFlow: the pooled per-message packet state machine.
//
// One MsgFlow drives one message through the historical packet event
// sequence — fetch (host bus) -> launch -> tx -> [staging] -> switch hops
// -> [staging] -> rx (first packet: stall/setup) -> host bus -> deliver —
// using raw EventFn continuations instead of per-packet coroutine frames.
// Each event word packs (stage kind, packet index); the flow object holds
// everything a packet_tail coroutine used to capture, and is recycled
// through a freelist once delivered (audited empty-at-finalize).
//
// Express mode: the whole trajectory is applied to the pipes in one
// closed-form replay at launch (replay_flow(materialize=false)); only the
// three terminal events (kExFetch / kExLocal / kExDeliver) are scheduled,
// and every touched pipe carries a claim. A competing reservation inside
// the claimed window demotes the flow: pipes are rolled back to their
// pre-claim snapshots and replay_flow(materialize=true) re-applies history
// up to now() and schedules real packet-machine events for the remainder —
// bit-identical timing to having run at packet granularity all along.
// ---------------------------------------------------------------------------
struct NetFabric::MsgFlow final : Pipe::ClaimOwner {
  explicit MsgFlow(NetFabric& fab) : fab_(&fab) {}

  NetFabric* fab_;
  NetMsg msg;
  std::uint64_t chunk = 0;
  std::uint64_t packets = 0;

  // Packet-machine counters (mirroring the former MsgState).
  std::uint64_t packets_left_tx = 0;
  std::uint64_t packets_left = 0;
  bool first_packet = true;

  // Recovery-machine state (all dormant unless `faulted`). The chunk plan
  // caps messages at 64 packets, so one word of bits identifies the lost /
  // corrupt-marked packets of the current attempt exactly.
  bool faulted = false;       // fault plan arms this flow's link
  bool fetching = false;      // sender_loop's closed fetch loop still running
  bool rto_armed = false;     // retransmit timer pending
  std::uint64_t lost = 0;     // packets lost this attempt (bit per packet)
  std::uint64_t corrupt_mask = 0;  // marked at tx, detected+lost at rx
  std::uint64_t resend_mask = 0;   // packets a scheduled kResendBatch owes
  std::uint32_t pending = 0;  // packet-machine events currently scheduled
  int attempts = 0;           // resend rounds consumed
  sim::EventId rto_id{};      // cancellable retransmit timer

  // Path, resolved once at launch (hooks are pure per message).
  Pipe* src_bus = nullptr;
  Pipe* tx = nullptr;
  Pipe* stage_src = nullptr;
  Pipe* hops[SwitchTopology::kMaxHops] = {};
  int nhops = 0;
  Pipe* stage_dst = nullptr;
  Pipe* nic_rx_proc = nullptr;  // shared protocol processor, rx side
  Pipe* rx = nullptr;
  Pipe* dst_bus = nullptr;

  // Express-path state.
  bool express = false;
  bool demoted = false;
  bool local_fired = false;      // eager local_complete already delivered
  bool delivered_done = false;
  bool ex_fetch_fired = false;
  bool ex_local_scheduled = false;
  bool ex_local_fired = false;
  bool ex_arm_fired = false;
  bool replay_deferred = false;  // demoted before the arm; arm restarts
  int stale_events = 0;          // scheduled express events now obsolete
  sim::Time launch_time;
  std::coroutine_handle<> sender;  // sender_loop parked on the fetch gate

  struct ClaimRec {
    Pipe* pipe;
    Pipe::State snap;     // pre-claim state, restored on demotion
    std::uint64_t epoch;  // pipe epoch right after the bulk apply
  };
  std::vector<ClaimRec> claims;  // capacity persists across recycles
  sim::Time ex_deliver;  // express delivery instant (claim expiry)

  MsgFlow* next_free = nullptr;

  // Completion-event kinds; the event word is kind | (packet << 8).
  enum Kind : std::uint8_t {
    kFetch,     // host-bus fetch done (post-demotion closed loop only)
    kLaunch,    // zero-delay launch after fetch (mirrors the old spawn)
    kTx,        // sender NIC injection done
    kSrcStage,  // source staging done
    kHop0,      // switching stage hops
    kHop1,
    kHop2,
    kDstStage,  // destination staging done
    kRxProc,    // shared-processor rx setup done
    kRx,        // receiver NIC delivery done
    kBus,       // destination host-bus DMA done
    kExFetch,   // express: last fetch done -> wake sender
    kExLocal,   // express: last byte left sender NIC -> eager completion
    kExDeliver, // express: last byte in remote memory
    kExArm,     // express: packet-0 fetch instant (demotion re-entry point)
    kRto,       // recovery: retransmission timeout fired
    // One fused relaunch for a whole resend round (resend_mask holds the
    // packets). Replaces the contiguous block of same-instant kLaunch
    // events a round used to schedule: the block occupied consecutive
    // now-queue slots with nothing interleaved, so collapsing it into a
    // single event that launches in the same ascending-packet order
    // preserves the relative order of every event in the run.
    kResendBatch
  };

  static void* word(std::uint8_t kind, std::uint64_t p) {
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(kind) |
                                   (p << 8));
  }
  static void thunk(void* a, void* b) {
    auto* f = static_cast<MsgFlow*>(a);
    f->fab_->flow_step(*f, reinterpret_cast<std::uintptr_t>(b));
  }

  void claim_broken() override { fab_->demote(*this); }

  std::uint64_t pkt_bytes(std::uint64_t p) const {
    if (msg.bytes == 0) return 0;
    return p + 1 < packets ? chunk : msg.bytes - chunk * (packets - 1);
  }

  /// Awaited by sender_loop while an express flow owns the fetch chain;
  /// resumed inside the last fetch-completion event, exactly where the
  /// closed-loop `co_await bus.dma(...)` used to resume it.
  struct FetchGate {
    MsgFlow& f;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { f.sender = h; }
    void await_resume() const noexcept {}
  };
};

NetFabric::NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
                     const SwitchConfig& sw, const NicConfig& nic)
    : eng_(&eng), nodes_(std::move(nodes)), nic_(nic) {
  if (sw.fat_tree_radix > 0 && sw.fat_tree_radix < nodes_.size()) {
    topo_ = std::make_unique<FatTree>(eng, sw, nodes_.size(),
                                      sw.fat_tree_radix);
  } else {
    topo_ = std::make_unique<SingleCrossbar>(eng, sw);
  }
  const std::size_t n = nodes_.size();
  tx_.reserve(n);
  rx_.reserve(n);
  sendq_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tx_.push_back(
        std::make_unique<Pipe>(eng, nic_.tx_rate, nic_.tx_wire_latency));
    rx_.push_back(std::make_unique<Pipe>(eng, nic_.rx_rate, nic_.rx_fixed));
    // Rate is irrelevant for the protocol processor: it only serializes
    // per-message occupancies.
    nic_proc_.push_back(std::make_unique<Pipe>(eng, 1e12));
    sendq_.push_back(std::make_unique<sim::Mailbox<NetMsg>>(eng));
  }
  for (std::size_t i = 0; i < n; ++i) {
    eng_->spawn(sender_loop(static_cast<int>(i)), /*daemon=*/true);
  }
}

NetFabric::~NetFabric() = default;

void NetFabric::post(NetMsg msg) {
  ++posted_;
  on_posted(msg);
  sendq_[static_cast<std::size_t>(msg.src)]->send(std::move(msg));
}

sim::Time NetFabric::tx_setup(const NetMsg&) { return nic_.per_msg_setup; }
sim::Time NetFabric::tx_stall(const NetMsg&) { return sim::Time::zero(); }
sim::Time NetFabric::rx_stall(const NetMsg&) { return sim::Time::zero(); }
Pipe* NetFabric::staging_pipe(int, const NetMsg&) { return nullptr; }
void NetFabric::on_posted(const NetMsg&) {}
void NetFabric::on_delivered(const NetMsg&) {}
void NetFabric::on_aborted(const NetMsg&) {}
bool NetFabric::express_rx_ok(const NetMsg&) const { return true; }

NetFabric::ChunkPlan NetFabric::chunk_plan(std::uint64_t bytes,
                                           std::uint32_t mtu) {
  const std::uint64_t chunk = std::max<std::uint64_t>(mtu, (bytes + 63) / 64);
  return {chunk, bytes == 0 ? 1 : (bytes + chunk - 1) / chunk};
}

NetFabric::MsgFlow* NetFabric::acquire_flow() {
  ++flows_active_;
  if (flow_free_ != nullptr) {
    MsgFlow* f = flow_free_;
    flow_free_ = f->next_free;
    f->next_free = nullptr;
    return f;
  }
  flow_slab_.push_back(std::make_unique<MsgFlow>(*this));
  return flow_slab_.back().get();
}

void NetFabric::release_flow(MsgFlow& f) {
  MNS_AUDIT(flows_active_ > 0, "flow released with none active");
  MNS_AUDIT(f.pending == 0 && !f.rto_armed,
            "flow released with packet events or a retransmit timer live");
  --flows_active_;
  f.msg = NetMsg{};  // drop per-message closures eagerly
  f.claims.clear();
  f.sender = {};
  f.next_free = flow_free_;
  flow_free_ = &f;
}

void NetFabric::maybe_release(MsgFlow& f) {
  if (f.delivered_done && f.stale_events == 0) release_flow(f);
}

void NetFabric::init_flow(MsgFlow& f, NetMsg msg) {
  f.msg = std::move(msg);
  const ChunkPlan plan = chunk_plan(f.msg.bytes, nic_.mtu);
  f.chunk = plan.chunk;
  f.packets = plan.packets;
  f.packets_left_tx = plan.packets;
  f.packets_left = plan.packets;
  f.first_packet = true;
  f.express = false;
  f.demoted = false;
  f.local_fired = false;
  f.delivered_done = false;
  f.ex_fetch_fired = false;
  f.ex_local_scheduled = false;
  f.ex_local_fired = false;
  f.ex_arm_fired = false;
  f.replay_deferred = false;
  f.stale_events = 0;
  f.sender = {};
  f.fetching = false;
  f.rto_armed = false;
  f.lost = 0;
  f.corrupt_mask = 0;
  f.resend_mask = 0;
  f.pending = 0;
  f.attempts = 0;

  const int src = f.msg.src;
  const int dst = f.msg.dst;
  f.faulted = injector_ != nullptr && injector_->link_armed(src, dst);
  f.src_bus = &nodes_[static_cast<std::size_t>(src)]->bus().pipe();
  f.tx = tx_[static_cast<std::size_t>(src)].get();
  f.stage_src = staging_pipe(src, f.msg);
  f.nhops = src != dst ? topo_->hops(src, dst, f.hops) : 0;
  f.stage_dst = staging_pipe(dst, f.msg);
  f.nic_rx_proc =
      nic_.shared_processor ? nic_proc_[static_cast<std::size_t>(dst)].get()
                            : nullptr;
  f.rx = rx_[static_cast<std::size_t>(dst)].get();
  f.dst_bus = &nodes_[static_cast<std::size_t>(dst)]->bus().pipe();

  f.claims.clear();
  auto add = [&f](Pipe* p) {
    if (p == nullptr) return;
    for (const auto& rec : f.claims) {
      if (rec.pipe == p) return;
    }
    f.claims.push_back({p, {}, 0});
  };
  add(f.src_bus);
  add(f.tx);
  add(f.stage_src);
  for (int h = 0; h < f.nhops; ++h) add(f.hops[h]);
  add(f.stage_dst);
  add(f.nic_rx_proc);
  add(f.rx);
  add(f.dst_bus);
}

bool NetFabric::can_express(const MsgFlow& f) const {
  if (!express_enabled_) return false;
  // A faulted packet must run the packet machine (per-packet verdicts and
  // retransmissions have no closed form), so flows on an armed link are
  // vetoed up front — link_armed is pure, keeping the decision
  // time-independent and deterministic.
  if (f.faulted) return false;
  // Loopback skips the switch and may hit the same pipes twice in one
  // chain; not worth proving exclusivity for.
  if (f.msg.src == f.msg.dst) return false;
  // The fabric's rx-side stall must be computable at launch.
  if (!express_rx_ok(f.msg)) return false;
  for (const auto& rec : f.claims) {
    if (rec.pipe->claim_active()) return false;
  }
  return true;
}

sim::Task<void> NetFabric::sender_loop(int node_id) {
  auto& queue = *sendq_[static_cast<std::size_t>(node_id)];
  auto& bus = nodes_[static_cast<std::size_t>(node_id)]->bus();
  for (;;) {
    NetMsg msg = co_await queue.receive();
    if (nic_.shared_processor) {
      // One protocol processor handles send and receive events: the
      // per-message send work competes with incoming-message work.
      co_await nic_proc_[static_cast<std::size_t>(node_id)]->occupy(
          tx_setup(msg));
    } else {
      co_await eng_->delay(tx_setup(msg));
    }
    const sim::Time stall = tx_stall(msg);
    if (stall > sim::Time::zero()) {
      co_await tx_pipe(node_id).occupy(stall);
    }

    MsgFlow* flow = acquire_flow();
    init_flow(*flow, std::move(msg));
    if (can_express(*flow) && express_launch(*flow)) {
      // The express replay owns the fetch chain; park until the last
      // fetch completes (kExFetch, or the post-demotion kFetch chain).
      co_await MsgFlow::FetchGate{*flow};
    } else {
      // Closed-loop injection: each packet is fetched across the host bus
      // before the next, so concurrent senders on this node interleave at
      // packet granularity and per-pair ordering is preserved.
      MsgFlow& f = *flow;
      f.fetching = true;  // retransmit timers wait for the fetch chain
      for (std::uint64_t p = 0; p < f.packets; ++p) {
        co_await bus.dma(f.pkt_bytes(p));
        // Launch through the event queue at now, exactly where the old
        // per-packet coroutine spawn started.
        ++f.pending;
        eng_->at(eng_->now(), sim::EventFn(&MsgFlow::thunk, &f,
                                           MsgFlow::word(MsgFlow::kLaunch,
                                                         p)));
      }
      f.fetching = false;
    }
    // `flow` may already be recycled past this point; never touch it here.
  }
}

void NetFabric::flow_step(MsgFlow& f, std::uintptr_t w) {
  const auto kind = static_cast<std::uint8_t>(w & 0xffu);
  const std::uint64_t p = w >> 8;
  const std::uint64_t pkt = f.pkt_bytes(p);

  if (kind <= MsgFlow::kBus) {
    // Packet-machine event landed; the retransmit timer counts these to
    // know when a resend round has fully drained.
    MNS_AUDIT(f.pending > 0, "packet event fired with zero pending");
    --f.pending;
  }

  auto sched = [&](std::uint8_t k, std::uint64_t pp, sim::Time t) {
    if (k <= MsgFlow::kBus) ++f.pending;
    eng_->at(t, sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(k, pp)));
  };

  // Stage chaining shared by several completion events below; each helper
  // performs the next reservation and schedules its completion event.
  auto enter_rx = [&] {
    if (f.first_packet) {
      f.first_packet = false;
      const sim::Time stall = rx_stall(f.msg) + nic_.per_msg_rx_setup;
      if (f.nic_rx_proc != nullptr) {
        // Receive-side per-message work runs on the shared protocol
        // processor (contending with sends), then the data crosses rx.
        sched(MsgFlow::kRxProc, p, f.nic_rx_proc->reserve_after(stall, 0));
      } else {
        // Stall + first-packet data as one atomic reservation, so packets
        // of other messages cannot be reordered into the gap.
        sched(MsgFlow::kRx, p, f.rx->reserve_after(stall, pkt));
      }
    } else {
      sched(MsgFlow::kRx, p, f.rx->reserve(pkt));
    }
  };
  auto enter_dst = [&] {
    if (f.stage_dst != nullptr) {
      sched(MsgFlow::kDstStage, p, f.stage_dst->reserve(pkt));
    } else {
      enter_rx();
    }
  };
  auto enter_switch = [&] {
    if (f.nhops > 0) {
      sched(MsgFlow::kHop0, p, f.hops[0]->reserve(pkt));
    } else {
      enter_dst();
    }
  };

  switch (kind) {
    case MsgFlow::kFetch: {
      // Post-demotion closed loop: launch this packet, fetch the next.
      sched(MsgFlow::kLaunch, p, eng_->now());
      if (p + 1 < f.packets) {
        sched(MsgFlow::kFetch, p + 1, f.src_bus->reserve(f.pkt_bytes(p + 1)));
      } else {
        // Sender resumes inside the last fetch-completion event, like the
        // coroutine fetch loop it replaces.
        auto h = std::exchange(f.sender, std::coroutine_handle<>{});
        if (h) h.resume();
      }
      break;
    }
    case MsgFlow::kLaunch:
      sched(MsgFlow::kTx, p, f.tx->reserve(pkt));
      break;
    case MsgFlow::kTx:
      if (--f.packets_left_tx == 0) {
        // Last byte has left the sender NIC: eager sends complete here.
        // (Fabric-level retransmissions below are invisible to the host,
        // like a real NIC's reliability engine.)
        if (!f.msg.complete_on_delivery && f.msg.local_complete &&
            !f.local_fired) {
          f.local_fired = true;
          f.msg.local_complete();
        }
      }
      if (f.faulted) {
        // The packet has consumed injection bandwidth; now the fault plan
        // decides its fate on the wire.
        const fault::Verdict v =
            injector_->packet_verdict(f.msg.src, f.msg.dst, eng_->now());
        if (v == fault::Verdict::kDrop) {
          ++faults_drop_;
          lose_packet(f, p);
          break;  // vanishes at the sender NIC: nothing enters the switch
        }
        if (v == fault::Verdict::kCorrupt) {
          // Corrupt packets travel the full path (burning switch and rx
          // bandwidth) and fail their CRC at the receiver (kRx below).
          ++faults_corrupt_;
          f.corrupt_mask |= std::uint64_t{1} << p;
        }
      }
      if (f.stage_src != nullptr) {
        sched(MsgFlow::kSrcStage, p, f.stage_src->reserve(pkt));
      } else {
        enter_switch();
      }
      break;
    case MsgFlow::kSrcStage:
      enter_switch();
      break;
    case MsgFlow::kHop0:
    case MsgFlow::kHop1:
    case MsgFlow::kHop2: {
      const int h = kind - MsgFlow::kHop0 + 1;
      if (h < f.nhops) {
        sched(static_cast<std::uint8_t>(MsgFlow::kHop0 + h), p,
              f.hops[h]->reserve(pkt));
      } else {
        enter_dst();
      }
      break;
    }
    case MsgFlow::kDstStage:
      enter_rx();
      break;
    case MsgFlow::kRxProc:
      sched(MsgFlow::kRx, p, f.rx->reserve(pkt));
      break;
    case MsgFlow::kRx:
      if (f.faulted) {
        if (f.corrupt_mask & (std::uint64_t{1} << p)) {
          // CRC failure detected at the receiver NIC: discard.
          f.corrupt_mask &= ~(std::uint64_t{1} << p);
          lose_packet(f, p);
          break;
        }
        if (recovery_.protocol == RecoveryConfig::Protocol::kGoBackN &&
            p > 0 && (f.lost & ((std::uint64_t{1} << p) - 1)) != 0) {
          // Go-Back-N: an earlier packet of this message is missing, so
          // the firmware's sequence check rejects this one — only the
          // cumulative prefix is ever acknowledged. The sender will
          // resend the whole window from the gap.
          ++gbn_discards_;
          lose_packet(f, p);
          break;
        }
      }
      sched(MsgFlow::kBus, p, f.dst_bus->reserve(pkt));
      break;
    case MsgFlow::kBus:
      if (--f.packets_left == 0) deliver(f);
      break;

    case MsgFlow::kRto:
      f.rto_armed = false;
      if (f.pending > 0 || f.fetching) {
        // Packets of the current round are still moving (or still being
        // fetched); check again after another timeout.
        arm_rto(f);
        break;
      }
      MNS_AUDIT(f.lost != 0, "retransmit timer fired with nothing lost");
      ++f.attempts;
      if (f.attempts > recovery_.retry_budget) {
        fail_flow(f);
        break;
      }
      resend_lost(f);
      arm_rto(f);
      break;

    case MsgFlow::kResendBatch: {
      // Fused resend round: launch every owed packet in ascending order,
      // exactly the sequence the per-packet kLaunch events produced. The
      // --pending stands in for each replaced launch event's own firing.
      std::uint64_t m = std::exchange(f.resend_mask, 0);
      MNS_AUDIT(m != 0, "resend batch fired with an empty mask");
      while (m != 0) {
        const auto q = static_cast<std::uint64_t>(std::countr_zero(m));
        m &= m - 1;
        MNS_AUDIT(f.pending > 0, "resend batch with zero pending");
        --f.pending;
        sched(MsgFlow::kTx, q, f.tx->reserve(f.pkt_bytes(q)));
      }
      break;
    }

    case MsgFlow::kExFetch:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      f.ex_fetch_fired = true;
      {
        auto h = std::exchange(f.sender, std::coroutine_handle<>{});
        if (h) h.resume();
      }
      break;
    case MsgFlow::kExLocal:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      f.ex_local_fired = true;
      if (!f.local_fired && f.msg.local_complete) {
        f.local_fired = true;
        f.msg.local_complete();
      }
      break;
    case MsgFlow::kExDeliver:
      if (f.demoted) {
        if (--f.stale_events == 0) maybe_release(f);
        break;
      }
      for (auto& rec : f.claims) rec.pipe->clear_claim(&f);
      deliver(f);
      break;

    case MsgFlow::kExArm:
      f.ex_arm_fired = true;
      if (f.demoted) {
        // Launch-window demotion re-entry: this event occupies the exact
        // slot of the packet machine's packet-0 fetch completion, so
        // restarting the closed fetch loop here reproduces the packet
        // path's event order bit for bit (see demote()).
        MNS_AUDIT(f.replay_deferred, "armed re-entry without deferral");
        f.replay_deferred = false;
        sched(MsgFlow::kLaunch, 0, eng_->now());
        if (f.packets > 1) {
          sched(MsgFlow::kFetch, 1, f.src_bus->reserve(f.pkt_bytes(1)));
        } else {
          auto h = std::exchange(f.sender, std::coroutine_handle<>{});
          if (h) h.resume();
        }
      }
      break;
  }
}

void NetFabric::deliver(MsgFlow& f) {
  if (f.rto_armed) {
    // The happy-path cancel: the whole message made it, retire the
    // retransmit timer (frees its boxed-closure-free payload in place).
    eng_->cancel(f.rto_id);
    f.rto_armed = false;
  }
  MNS_AUDIT(f.lost == 0 && f.corrupt_mask == 0,
            "message delivered with packets still marked lost");
  ++delivered_;
  if (nic_.ack_processing > sim::Time::zero() && f.msg.src != f.msg.dst) {
    // Delivery ack returns to the source NIC and occupies its protocol
    // processor while the send token is retired.
    eng_->spawn([](NetFabric& self, int src) -> sim::Task<void> {
      co_await self.eng_->delay(self.nic_.ack_delay);
      co_await self.nic_proc(src).occupy(self.nic_.ack_processing);
    }(*this, f.msg.src), /*daemon=*/true);
  }
  on_delivered(f.msg);
  if (f.msg.complete_on_delivery && f.msg.local_complete) {
    f.msg.local_complete();
  }
  if (f.msg.remote_arrival) f.msg.remote_arrival();
  f.delivered_done = true;
  maybe_release(f);
}

// ---------------------------------------------------------------------------
// Recovery machine. A lost packet (drop verdict, CRC failure, or Go-Back-N
// sequence rejection) sets its bit in f.lost and arms a per-flow
// retransmit timer at the source NIC. When the timer fires with no packet
// of the flow still in flight, the lost set is resent (one more attempt);
// when the retry budget is exhausted the flow surfaces an error to the
// device instead and is retired. Conservation (audited):
//   faults_drop_ + faults_corrupt_ + gbn_discards_
//     == packets_retransmitted_ + packets_abandoned_
// ---------------------------------------------------------------------------

void NetFabric::lose_packet(MsgFlow& f, std::uint64_t p) {
  f.lost |= std::uint64_t{1} << p;
  arm_rto(f);
}

void NetFabric::arm_rto(MsgFlow& f) {
  if (f.rto_armed) return;
  f.rto_id = eng_->at_cancellable(
      eng_->now() + rto_delay(f),
      sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(MsgFlow::kRto, 0)));
  f.rto_armed = true;
}

sim::Time NetFabric::rto_delay(const MsgFlow& f) const {
  sim::Time d = recovery_.rto;
  if (recovery_.backoff_cap > sim::Time::zero()) {
    // Bounded exponential backoff (Elan hardware retry): rto, 2*rto, ...
    // capped. The other protocols keep a fixed timeout.
    for (int i = 0; i < f.attempts && d < recovery_.backoff_cap; ++i) {
      d = d * 2;
    }
    if (d > recovery_.backoff_cap) d = recovery_.backoff_cap;
  }
  return d;
}

void NetFabric::resend_lost(MsgFlow& f) {
  MNS_AUDIT(f.lost != 0, "resend round with an empty lost set");
  MNS_AUDIT(f.resend_mask == 0, "overlapping resend rounds");
  // IB RC / Elan resend exactly the lost packets; GM's Go-Back-N window —
  // everything from the first gap onward — is already what the lost set
  // holds, because the receiver rejected the whole post-gap tail.
  const auto n = static_cast<std::uint64_t>(std::popcount(f.lost));
  f.resend_mask = f.lost;
  f.lost = 0;
  packets_retransmitted_ += n;
  // The retransmitted copies re-cross the tx stage, so the tx-drain
  // counter must see them (already decremented on the lost pass). The
  // pending count carries the batch event standing in for the launches.
  f.packets_left_tx += n;
  f.pending += static_cast<std::uint32_t>(n);
  // One event relaunches the whole round (see Kind::kResendBatch); a
  // 64-packet Go-Back-N storm schedules 1 now-queue entry instead of 64.
  eng_->at(eng_->now(), sim::EventFn(&MsgFlow::thunk, &f,
                                     MsgFlow::word(MsgFlow::kResendBatch, 0)));
}

void NetFabric::fail_flow(MsgFlow& f) {
  // Retry budget exhausted: surface the transport error (IB QP error / GM
  // give-up / Elan retry exhaustion) to the device and retire the flow.
  const auto abandoned = static_cast<std::uint64_t>(std::popcount(f.lost));
  MNS_AUDIT(abandoned == f.packets_left,
            "abandoned flow with undelivered packets not in the lost set");
  packets_abandoned_ += abandoned;
  f.lost = 0;
  ++errored_;
  on_aborted(f.msg);
  if (f.msg.on_failed) f.msg.on_failed();
  f.delivered_done = true;  // reuse the release machinery
  maybe_release(f);
}

void NetFabric::set_fault_plan(const fault::FaultPlan& plan) {
  if (plan.empty()) return;  // keeps the data path bit-identical
  injector_ = std::make_unique<fault::Injector>(plan, nodes_.size());
  for (const fault::NicStallSpec& st : injector_->nic_stalls()) {
    if (st.node < 0 || static_cast<std::size_t>(st.node) >= nodes_.size()) {
      throw std::invalid_argument(
          "FaultPlan: NIC stall on node " + std::to_string(st.node) +
          " but the fabric has " + std::to_string(nodes_.size()) + " nodes");
    }
    Pipe* tx = tx_[static_cast<std::size_t>(st.node)].get();
    Pipe* rx = rx_[static_cast<std::size_t>(st.node)].get();
    const sim::Time dur = st.duration;
    // The stall is pure occupancy on both DMA engines. reserve_after
    // breaks claims, so an express flow holding the pipe demotes — a
    // faulted window always runs at packet granularity.
    eng_->at(st.at, [tx, rx, dur] {
      tx->reserve_after(dur, 0);
      rx->reserve_after(dur, 0);
    });
    // Keep the engine running past the stall window so the finalize
    // "pipes idle" audit sees the occupancy expire.
    eng_->at(st.at + dur, [] {});
  }
}

bool NetFabric::express_launch(MsgFlow& f) {
  f.express = true;
  f.launch_time = eng_->now();
  for (auto& rec : f.claims) rec.snap = rec.pipe->state();
  if (!replay_flow(f, /*materialize=*/false)) {
    // The closed form can't reproduce the packet interleaving; undo the
    // partial bulk apply (nothing else has run — this is synchronous) and
    // let the packet machine drive the message.
    for (auto& rec : f.claims) rec.pipe->restore(rec.snap);
    f.express = false;
    f.first_packet = true;  // the aborted walk consumed it
    return false;
  }
  ++express_msgs_;
  // Claim every path pipe until the flow's final delivery instant — not
  // just until our last reservation on that pipe. A shorter claim could
  // lapse while the flow is still in flight; a foreign reservation could
  // then legally land on the lapsed pipe, and a later demotion's rollback
  // would wipe it. With the uniform expiry, nothing foreign can touch any
  // path pipe between the bulk apply and delivery without demoting us
  // first, so the snapshots always restore cleanly (the epoch audit).
  for (auto& rec : f.claims) {
    rec.pipe->claim(&f, f.ex_deliver);
    rec.epoch = rec.pipe->epoch();
  }
  return true;
}

void NetFabric::demote(MsgFlow& f) {
  MNS_AUDIT(f.express && !f.demoted, "demotion of a non-express flow");
  ++express_demotions_;
  f.demoted = true;
  for (auto& rec : f.claims) {
    rec.pipe->clear_claim(&f);
    MNS_AUDIT(rec.pipe->epoch() == rec.epoch,
              "foreign reservation slipped into a claimed express window");
    rec.pipe->restore(rec.snap);
  }
  f.stale_events = (f.ex_fetch_fired ? 0 : 1) +
                   ((f.ex_local_scheduled && !f.ex_local_fired) ? 1 : 0) +
                   1;  // kExDeliver is always still pending here
  // Reset the packet-machine counters; the materializing replay re-applies
  // every virtual event whose time has already passed.
  f.packets_left_tx = f.packets;
  f.packets_left = f.packets;
  f.first_packet = true;
  if (!f.ex_arm_fired) {
    // Demoted inside the launch window, before any packet event would have
    // fired. The packet machine's only pending event here is the packet-0
    // fetch completion — exactly where the arm sits, carrying the seq it
    // was given in the flow's own launch handler. Re-apply just that fetch
    // occupancy (the rollback erased it; the packet world holds it) and
    // let the arm restart the closed fetch loop in its own event, so every
    // subsequent event is scheduled from the same handler position the
    // packet machine would use. Materializing right here instead would
    // stamp the replacement events inside the DEMOTER's handler, flipping
    // same-instant event order against the packet path.
    f.replay_deferred = true;
    f.src_bus->reserve_at(f.launch_time, f.pkt_bytes(0));
    return;
  }
  replay_flow(f, /*materialize=*/true);
}

bool NetFabric::replay_flow(MsgFlow& f, bool mat) {
  const sim::Time now = eng_->now();

  // Reservations with explicit (virtual) arrival instants.
  auto resv = [&](Pipe* pipe, sim::Time arrive,
                  std::uint64_t bytes) -> sim::Time {
    return pipe->reserve_at(arrive, bytes);
  };
  auto resv_after = [&](Pipe* pipe, sim::Time arrive, sim::Time lead,
                        std::uint64_t bytes) -> sim::Time {
    return pipe->reserve_after_at(arrive, lead, bytes);
  };
  auto sched = [&](std::uint8_t kind, std::uint64_t p, sim::Time t) {
    // Materialized events re-enter the packet machine, whose entry
    // decrements the pending count (express flows are never faulted, but
    // the drain counter must stay balanced for the flow-release audit).
    if (kind <= MsgFlow::kBus) ++f.pending;
    eng_->at(t, sim::EventFn(&MsgFlow::thunk, &f, MsgFlow::word(kind, p)));
  };

  sim::Time t_local{};
  sim::Time t_deliver{};
  sim::Time c_last{};
  // With a shared protocol processor, the first packet's rx reservation is
  // made only once its processor detour completes (`rx_gate`); a later
  // packet reaching rx before that instant would reserve rx *first* in the
  // real event order. The sequential walk can't express that interleaving,
  // so the apply pass aborts on it (`walk` returns false).
  sim::Time rx_gate{};
  bool rx_gated = false;

  // Walk one packet's stage chain from its launch instant. In materialize
  // mode, a stage whose completion lies in the future becomes a real
  // packet-machine event and the walk stops — every earlier stage has
  // "already happened" and is re-applied with its side effects.
  auto walk = [&](std::uint64_t p, std::uint64_t pkt,
                  sim::Time launch_at) -> bool {
    sim::Time t = resv(f.tx, launch_at, pkt);
    if (p + 1 == f.packets) t_local = t;
    if (mat && t > now) {
      sched(MsgFlow::kTx, p, t);
      return true;
    }
    if (mat) {
      if (--f.packets_left_tx == 0 && !f.msg.complete_on_delivery &&
          f.msg.local_complete && !f.local_fired) {
        // Only reachable when the virtual tx-done instant is exactly now:
        // anything strictly earlier already fired the real kExLocal.
        f.local_fired = true;
        f.msg.local_complete();
      }
    }
    if (f.stage_src != nullptr) {
      t = resv(f.stage_src, t, pkt);
      if (mat && t > now) {
        sched(MsgFlow::kSrcStage, p, t);
        return true;
      }
    }
    for (int h = 0; h < f.nhops; ++h) {
      t = resv(f.hops[h], t, pkt);
      if (mat && t > now) {
        sched(static_cast<std::uint8_t>(MsgFlow::kHop0 + h), p, t);
        return true;
      }
    }
    if (f.stage_dst != nullptr) {
      t = resv(f.stage_dst, t, pkt);
      if (mat && t > now) {
        sched(MsgFlow::kDstStage, p, t);
        return true;
      }
    }
    if (f.first_packet) {
      f.first_packet = false;
      // Express eligibility guarantees rx_stall is pure for this message,
      // so evaluating it here (launch or demotion) matches the packet
      // path evaluating it at first-packet delivery.
      const sim::Time stall = rx_stall(f.msg) + nic_.per_msg_rx_setup;
      if (f.nic_rx_proc != nullptr) {
        t = resv_after(f.nic_rx_proc, t, stall, 0);
        if (mat && t > now) {
          sched(MsgFlow::kRxProc, p, t);
          return true;
        }
        rx_gate = t;
        rx_gated = true;
        t = resv(f.rx, t, pkt);
      } else {
        t = resv_after(f.rx, t, stall, pkt);
      }
    } else {
      // Abort (apply pass only) if this packet reaches rx at or before the
      // gated first-packet rx reservation: ties and overtakes resolve by
      // event order, which the closed form cannot reproduce. A demotion
      // replay re-derives the exact launch-time trajectory, so the apply
      // pass having passed this check means materialize cannot trip it.
      if (!mat && rx_gated && t <= rx_gate) return false;
      t = resv(f.rx, t, pkt);
    }
    if (mat && t > now) {
      sched(MsgFlow::kRx, p, t);
      return true;
    }
    t = resv(f.dst_bus, t, pkt);
    if (p + 1 == f.packets) t_deliver = t;
    if (mat && t > now) {
      sched(MsgFlow::kBus, p, t);
      return true;
    }
    if (mat) {
      if (p + 1 == f.packets) {
        // Boundary demotion (now == the express delivery instant): the
        // competitor's reservation ties with our final completion, and the
        // packet machine would run its delivery event after the
        // competitor's. Hand delivery through the now-queue.
        MNS_AUDIT(t == now, "demotion after the express delivery instant");
        sched(MsgFlow::kBus, p, now);
        return true;
      }
      --f.packets_left;
    }
    return true;
  };

  // The closed-loop fetch chain: fetch p+1 is reserved inside fetch p's
  // completion event; each completion also launches its packet.
  sim::Time c_prev = f.launch_time;
  sim::Time c_first{};
  for (std::uint64_t p = 0; p < f.packets; ++p) {
    const std::uint64_t pkt = f.pkt_bytes(p);
    const sim::Time c = resv(f.src_bus, c_prev, pkt);
    if (p == 0) c_first = c;
    if (mat && c > now) {
      // The pending fetch-completion event re-enters the closed loop: it
      // launches packet p and keeps fetching.
      sched(MsgFlow::kFetch, p, c);
      return true;
    }
    if (p + 1 == f.packets) c_last = c;
    if (!walk(p, pkt, c)) return false;
    c_prev = c;
  }

  if (mat) {
    if (!f.ex_fetch_fired) {
      // Only reachable when the last fetch lands exactly at now (anything
      // earlier already fired the real kExFetch). The packet path would
      // resume the sender inside that event; hand the resume through the
      // now-queue so it runs after the demoting reservation completes.
      f.ex_fetch_fired = true;
      auto h = std::exchange(f.sender, std::coroutine_handle<>{});
      if (h) eng_->at(now, sim::EventFn::resume(h));
    }
    return true;
  }

  // Apply mode: only the terminal events materialize — plus the arm, the
  // demotion re-entry anchor sitting at the packet-0 fetch instant. Until
  // it fires, the packet machine would have exactly one pending event (the
  // packet-0 fetch completion, scheduled from this very handler), so a
  // demotion in that window can hand the restart to the arm and keep
  // same-instant event order bit-identical to the packet path.
  f.ex_deliver = t_deliver;
  f.ex_local_scheduled =
      !f.msg.complete_on_delivery && static_cast<bool>(f.msg.local_complete);
  sched(MsgFlow::kExArm, 0, c_first);
  sched(MsgFlow::kExFetch, 0, c_last);
  if (f.ex_local_scheduled) sched(MsgFlow::kExLocal, 0, t_local);
  sched(MsgFlow::kExDeliver, 0, t_deliver);
  return true;
}

void NetFabric::post_switch_broadcast(int src, std::uint64_t bytes,
                                      sim::Time extra_setup,
                                      // simlint-allow: model-alloc (per-broadcast)
                                      std::function<void()> on_delivered) {
  ++bcasts_posted_;
  auto task = [](NetFabric& self, int src, std::uint64_t bytes,
                 sim::Time extra_setup,
                 // simlint-allow: model-alloc (per-broadcast callback)
                 std::function<void()> on_delivered) -> sim::Task<void> {
    co_await self.eng_->delay(self.nic_.per_msg_setup + extra_setup);

    // Legs replicate per chunk at the same pipelining granularity as
    // unicast messages (they used to move the full payload as one
    // un-chunked transfer, bypassing the 64-chunk cap).
    const ChunkPlan plan = chunk_plan(bytes, self.nic_.mtu);
    const std::size_t peers = self.node_count() - 1;

    struct Fanout {
      std::size_t remaining;
      sim::Trigger done;
      Fanout(sim::Engine& e, std::size_t n) : remaining(n), done(e) {}
    };
    auto fan = std::make_shared<Fanout>(  // simlint-allow: model-alloc
        *self.eng_, plan.packets * std::max<std::size_t>(peers, 1));

    auto leg = [](NetFabric& self, int src, int dst, std::uint64_t pkt,
                  std::shared_ptr<Fanout> fan) -> sim::Task<void> {
      co_await self.topo_->route(src, dst, pkt);
      co_await self.rx_pipe(dst).transfer(pkt);
      co_await self.node(dst).bus().dma(pkt);
      if (--fan->remaining == 0) fan->done.fire();
    };
    auto chunk_tail = [](NetFabric& self, int src, std::uint64_t pkt,
                         std::size_t peers, std::shared_ptr<Fanout> fan,
                         auto leg) -> sim::Task<void> {
      co_await self.tx_pipe(src).transfer(pkt);
      if (peers == 0) {
        // Single-node fabric: the broadcast "lands" once injected.
        if (--fan->remaining == 0) fan->done.fire();
        co_return;
      }
      for (std::size_t d = 0; d < self.node_count(); ++d) {
        if (static_cast<int>(d) == src) continue;
        self.eng_->spawn(leg(self, src, static_cast<int>(d), pkt, fan),
                         /*daemon=*/true);
      }
    };

    // Closed-loop chunk injection, mirroring the unicast sender.
    std::uint64_t left = bytes;
    for (std::uint64_t p = 0; p < plan.packets; ++p) {
      const std::uint64_t pkt = left < plan.chunk ? left : plan.chunk;
      left -= pkt;
      co_await self.node(src).bus().dma(pkt);
      self.eng_->spawn(chunk_tail(self, src, pkt, peers, fan, leg),
                       /*daemon=*/true);
    }
    co_await fan->done.wait();
    ++self.bcasts_delivered_;
    if (on_delivered) on_delivered();
  };
  eng_->spawn(task(*this, src, bytes, extra_setup, std::move(on_delivered)),
              /*daemon=*/true);
}

void NetFabric::collect_pipes(std::vector<Pipe*>& out) {
  for (auto& p : tx_) out.push_back(p.get());
  for (auto& p : rx_) out.push_back(p.get());
  for (auto& p : nic_proc_) out.push_back(p.get());
  for (auto* n : nodes_) out.push_back(&n->bus().pipe());
  topo_->collect_pipes(out);
}

void NetFabric::register_audits(audit::AuditReport& report) {
  report.add_check("model::NetFabric", [this](audit::AuditReport::Scope& s) {
    s.require_eq(posted_, delivered_ + errored_,
                 "message(s) posted but neither delivered nor surfaced as "
                 "a transport error");
    s.require_eq(faults_drop_ + faults_corrupt_ + gbn_discards_,
                 packets_retransmitted_ + packets_abandoned_,
                 "packet-loss conservation broken: every lost packet must "
                 "be retransmitted or abandoned with its flow");
    s.require_eq(bcasts_posted_, bcasts_delivered_,
                 "switch broadcast(s) posted but never completed");
    s.require_eq(flows_active_, std::size_t{0},
                 "message flow(s) not recycled at finalize");
    std::vector<Pipe*> pipes;
    collect_pipes(pipes);
    for (Pipe* p : pipes) {
      s.require(!p->claimed(), "pipe claim not cleared at finalize");
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::string node = "node " + std::to_string(i);
      s.require(tx_[i]->idle(), node + ": tx pipe busy at finalize");
      s.require(rx_[i]->idle(), node + ": rx pipe busy at finalize");
      s.require(nic_proc_[i]->idle(),
                node + ": NIC protocol processor busy at finalize");
      s.require(sendq_[i]->empty(),
                node + ": send queue not drained at finalize");
    }
  });
}

}  // namespace mns::model
