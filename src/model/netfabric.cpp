#include "model/netfabric.hpp"

#include <algorithm>

#include "audit/report.hpp"

namespace mns::model {

NetFabric::NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
                     const SwitchConfig& sw, const NicConfig& nic)
    : eng_(&eng), nodes_(std::move(nodes)), nic_(nic) {
  if (sw.fat_tree_radix > 0 && sw.fat_tree_radix < nodes_.size()) {
    topo_ = std::make_unique<FatTree>(eng, sw, nodes_.size(),
                                      sw.fat_tree_radix);
  } else {
    topo_ = std::make_unique<SingleCrossbar>(eng, sw);
  }
  const std::size_t n = nodes_.size();
  tx_.reserve(n);
  rx_.reserve(n);
  sendq_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tx_.push_back(
        std::make_unique<Pipe>(eng, nic_.tx_rate, nic_.tx_wire_latency));
    rx_.push_back(std::make_unique<Pipe>(eng, nic_.rx_rate, nic_.rx_fixed));
    // Rate is irrelevant for the protocol processor: it only serializes
    // per-message occupancies.
    nic_proc_.push_back(std::make_unique<Pipe>(eng, 1e12));
    sendq_.push_back(std::make_unique<sim::Mailbox<NetMsg>>(eng));
  }
  for (std::size_t i = 0; i < n; ++i) {
    eng_->spawn(sender_loop(static_cast<int>(i)), /*daemon=*/true);
  }
}

void NetFabric::post(NetMsg msg) {
  ++posted_;
  on_posted(msg);
  sendq_[static_cast<std::size_t>(msg.src)]->send(std::move(msg));
}

sim::Time NetFabric::tx_setup(const NetMsg&) { return nic_.per_msg_setup; }
sim::Time NetFabric::tx_stall(const NetMsg&) { return sim::Time::zero(); }
sim::Time NetFabric::rx_stall(const NetMsg&) { return sim::Time::zero(); }
Pipe* NetFabric::staging_pipe(int, const NetMsg&) { return nullptr; }
void NetFabric::on_posted(const NetMsg&) {}
void NetFabric::on_delivered(const NetMsg&) {}

sim::Task<void> NetFabric::sender_loop(int node_id) {
  auto& queue = *sendq_[static_cast<std::size_t>(node_id)];
  auto& bus = nodes_[static_cast<std::size_t>(node_id)]->bus();
  for (;;) {
    NetMsg msg = co_await queue.receive();
    if (nic_.shared_processor) {
      // One protocol processor handles send and receive events: the
      // per-message send work competes with incoming-message work.
      co_await nic_proc_[static_cast<std::size_t>(node_id)]->occupy(
          tx_setup(msg));
    } else {
      co_await eng_->delay(tx_setup(msg));
    }
    const sim::Time stall = tx_stall(msg);
    if (stall > sim::Time::zero()) {
      co_await tx_pipe(node_id).occupy(stall);
    }

    // Pipelining granularity: MTU-sized packets, but capped at 64 chunks
    // per message so huge transfers stay cheap to simulate (the pipeline
    // fill/drain error of coarser chunking is under 2%).
    const std::uint64_t chunk =
        std::max<std::uint64_t>(nic_.mtu, (msg.bytes + 63) / 64);
    const std::uint64_t packets =
        msg.bytes == 0 ? 1 : (msg.bytes + chunk - 1) / chunk;
    auto state = std::make_shared<MsgState>(
        MsgState{std::move(msg), packets, packets});

    // Closed-loop injection: each packet is fetched across the host bus
    // before the next, so concurrent senders on this node interleave at
    // packet granularity and per-pair ordering is preserved.
    std::uint64_t left = state->msg.bytes;
    for (std::uint64_t p = 0; p < packets; ++p) {
      const std::uint64_t pkt = left < chunk ? left : chunk;
      left -= pkt;
      co_await bus.dma(pkt);
      eng_->spawn(packet_tail(pkt, state), /*daemon=*/true);
    }
  }
}

sim::Task<void> NetFabric::packet_tail(std::uint64_t pkt,
                                       std::shared_ptr<MsgState> state) {
  const int src = state->msg.src;
  const int dst = state->msg.dst;

  co_await tx_pipe(src).transfer(pkt);
  if (--state->packets_left_tx == 0) {
    // Last byte has left the sender NIC: eager sends complete here.
    if (!state->msg.complete_on_delivery && state->msg.local_complete) {
      state->msg.local_complete();
    }
  }

  if (Pipe* stage = staging_pipe(src, state->msg)) {
    co_await stage->transfer(pkt);
  }

  if (src != dst) {
    co_await topo_->route(src, dst, pkt);
  }

  if (Pipe* stage = staging_pipe(dst, state->msg)) {
    co_await stage->transfer(pkt);
  }

  if (state->first_packet) {
    state->first_packet = false;
    const sim::Time stall = rx_stall(state->msg) + nic_.per_msg_rx_setup;
    if (nic_.shared_processor) {
      // Receive-side per-message work runs on the shared protocol
      // processor (contending with sends), then the data crosses rx.
      co_await nic_proc_[static_cast<std::size_t>(dst)]->occupy(stall);
      co_await rx_pipe(dst).transfer(pkt);
    } else {
      // Stall + first-packet data as one atomic reservation, so packets
      // of other messages cannot be reordered into the gap.
      co_await rx_pipe(dst).transfer_after(stall, pkt);
    }
  } else {
    co_await rx_pipe(dst).transfer(pkt);
  }
  co_await nodes_[static_cast<std::size_t>(dst)]->bus().dma(pkt);

  if (--state->packets_left == 0) {
    ++delivered_;
    if (nic_.ack_processing > sim::Time::zero() && src != dst) {
      // Delivery ack returns to the source NIC and occupies its
      // protocol processor while the send token is retired.
      eng_->spawn([](NetFabric& self, int src) -> sim::Task<void> {
        co_await self.eng_->delay(self.nic_.ack_delay);
        co_await self.nic_proc(src).occupy(self.nic_.ack_processing);
      }(*this, src), /*daemon=*/true);
    }
    on_delivered(state->msg);
    if (state->msg.complete_on_delivery && state->msg.local_complete) {
      state->msg.local_complete();
    }
    if (state->msg.remote_arrival) state->msg.remote_arrival();
  }
}

void NetFabric::post_switch_broadcast(int src, std::uint64_t bytes,
                                      sim::Time extra_setup,
                                      std::function<void()> on_delivered) {
  ++bcasts_posted_;
  auto task = [](NetFabric& self, int src, std::uint64_t bytes,
                 sim::Time extra_setup,
                 std::function<void()> on_delivered) -> sim::Task<void> {
    co_await self.eng_->delay(self.nic_.per_msg_setup + extra_setup);
    co_await self.node(src).bus().dma(bytes);
    co_await self.tx_pipe(src).transfer(bytes);

    struct Fanout {
      std::size_t remaining;
      sim::Trigger done;
      Fanout(sim::Engine& e, std::size_t n) : remaining(n), done(e) {}
    };
    const std::size_t peers = self.node_count() - 1;
    if (peers == 0) {
      ++self.bcasts_delivered_;
      if (on_delivered) on_delivered();
      co_return;
    }
    auto fan = std::make_shared<Fanout>(*self.eng_, peers);
    auto leg = [](NetFabric& self, int src, int dst, std::uint64_t bytes,
                  std::shared_ptr<Fanout> fan) -> sim::Task<void> {
      co_await self.topo_->route(src, dst, bytes);
      co_await self.rx_pipe(dst).transfer(bytes);
      co_await self.node(dst).bus().dma(bytes);
      if (--fan->remaining == 0) fan->done.fire();
    };
    for (std::size_t d = 0; d < self.node_count(); ++d) {
      if (static_cast<int>(d) == src) continue;
      self.eng_->spawn(leg(self, src, static_cast<int>(d), bytes, fan),
                       /*daemon=*/true);
    }
    co_await fan->done.wait();
    ++self.bcasts_delivered_;
    if (on_delivered) on_delivered();
  };
  eng_->spawn(task(*this, src, bytes, extra_setup, std::move(on_delivered)),
              /*daemon=*/true);
}

void NetFabric::register_audits(audit::AuditReport& report) {
  report.add_check("model::NetFabric", [this](audit::AuditReport::Scope& s) {
    s.require_eq(posted_, delivered_,
                 "message(s) posted but never delivered");
    s.require_eq(bcasts_posted_, bcasts_delivered_,
                 "switch broadcast(s) posted but never completed");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::string node = "node " + std::to_string(i);
      s.require(tx_[i]->idle(), node + ": tx pipe busy at finalize");
      s.require(rx_[i]->idle(), node + ": rx pipe busy at finalize");
      s.require(nic_proc_[i]->idle(),
                node + ": NIC protocol processor busy at finalize");
      s.require(sendq_[i]->empty(),
                node + ": send queue not drained at finalize");
    }
  });
}

}  // namespace mns::model
