// NetFabric: the shared skeleton of a cluster interconnect.
//
// One NIC per node, one central crossbar switch, per-node host buses. A
// message posted by the host is handled by the sender NIC's (simulated)
// injection engine: per-message setup, then MTU packets DMA'd from host
// memory (closed loop on the bus) and pushed through
//
//   [host bus] -> [NIC tx] -> [switch port(dst)] -> [NIC rx] -> [host bus]
//
// with every stage a FIFO Pipe, so per-(src,dst) delivery order equals
// post order — the property the MPI devices rely on. Intra-node messages
// (src == dst, the "NIC loopback" path some MPI devices use) skip the
// switch.
//
// Data-path implementation (see DESIGN.md "message data path"): each
// message is driven by a slab-pooled MsgFlow state machine stepping the
// packet event sequence through raw EventFn continuations — no coroutine
// frames, no shared_ptr, no allocation after warm-up. When a message can
// prove exclusive occupancy of its full bus/tx/switch/rx window it takes
// the express path: the whole per-packet trajectory is applied to the
// pipes in one closed-form replay and only terminal events are scheduled,
// with claims on every pipe so a competing reservation demotes the flow
// back to packet granularity with bit-identical timing.
//
// The three interconnects subclass this and add their quirks through the
// protected hooks: Myrinet's shared SRAM staging, Quadrics' NIC MMU walks
// and DMA-queue-overflow penalty, InfiniBand's per-connection resources.
#pragma once

#include <cstdint>
#include <functional>  // simlint-allow: model-alloc
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "model/node_hw.hpp"
#include "model/pipe.hpp"
#include "model/switch.hpp"
#include "model/topology.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::sim::pdes {
class FabricExecutor;
struct WireMsg;
}  // namespace mns::sim::pdes

namespace mns::model {

/// One message travelling the fabric. Callbacks are how the MPI device
/// layers react; the fabric itself never touches payload bytes. The
/// callbacks are per-message (never per-packet), so type-erased closures
/// are acceptable here.
struct NetMsg {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t src_addr = 0;  // buffer identities for MMU/TLB models
  std::uint64_t dst_addr = 0;
  /// Zero-copy sends complete at the sender only once delivered (the RC /
  /// directed-send acknowledgement); eager sends complete when the last
  /// byte has left the sender NIC.
  bool complete_on_delivery = false;
  std::function<void()> local_complete;  // simlint-allow: model-alloc
  std::function<void()> remote_arrival;  // simlint-allow: model-alloc
  /// Fired (instead of the callbacks above that have not yet fired) when
  /// the fabric's recovery protocol exhausts its retry budget for this
  /// message — the QP-error / give-up surface the MPI device turns into an
  /// error Status. Null means the device cannot handle transport errors;
  /// the message is then silently dropped on exhaustion (audited as
  /// errored either way).
  std::function<void()> on_failed;  // simlint-allow: model-alloc
};

/// Per-fabric recovery protocol parameters (see DESIGN.md "fault &
/// recovery model"). All three interconnects recover transparently below
/// the MPI layer; they differ in who retransmits, what is retransmitted,
/// and how the timeout grows:
///   kIbRc    — IB RC per-QP timeout/retry: selective retransmit of the
///              lost packets, fixed RTO, retry_budget mirrors the QP's
///              retry counter; exhaustion raises a QP error.
///   kGoBackN — GM firmware Go-Back-N: the receiver discards every packet
///              after a sequence gap (cumulative-ack semantics), the
///              sender resends the whole window from the gap.
///   kHwRetry — Elan hardware DMA retry: selective retransmit with
///              bounded exponential backoff (rto, 2*rto, ... capped).
struct RecoveryConfig {
  enum class Protocol : std::uint8_t { kIbRc, kGoBackN, kHwRetry };
  Protocol protocol = Protocol::kIbRc;
  sim::Time rto = sim::Time::us(40);
  sim::Time backoff_cap = sim::Time::zero();  // >0 enables backoff growth
  int retry_budget = 7;  // resend rounds before surfacing an error
};

/// Context for wiring a fault::Injector's per-node registration-failure
/// stream into a RegistrationCache fail hook (plain function pointer +
/// ctx — see RegistrationCache::set_fail_hook). The owning fabric keeps
/// one per armed node in a fully-reserved vector so the pointers stay
/// stable.
struct RegFailCtx {
  fault::Injector* injector = nullptr;
  int node = 0;
  static bool hook(void* ctx) {
    auto* c = static_cast<RegFailCtx*>(ctx);
    return c->injector->reg_should_fail(c->node);
  }
};

struct NicConfig {
  double tx_rate;         // NIC injection rate (bytes/s), <= link rate
  double rx_rate;         // NIC delivery rate
  sim::Time tx_wire_latency;   // propagation + serial link latency, tx side
  sim::Time rx_fixed;          // per-packet receive processing
  sim::Time per_msg_setup;     // per-message work on the sending NIC
  sim::Time per_msg_rx_setup;  // per-message work on the receiving NIC
  std::uint32_t mtu;
  /// NIC with one protocol processor (LANai, Elan3): per-message send and
  /// receive processing serialize on it, so simultaneous bi-directional
  /// traffic pays extra latency (paper Fig. 4). The InfiniHost has
  /// independent hardware engines per direction and sets this false.
  bool shared_processor = false;
  /// Reliable-delivery acknowledgement: after delivery, the *source* NIC
  /// processes an ack to retire the send token, occupying its protocol
  /// processor. Zero disables.
  sim::Time ack_processing = sim::Time::zero();
  sim::Time ack_delay = sim::Time::zero();  // wire time for the ack
};

/// Partition layout for PDES execution of the fabric: which partition
/// owns each node, and each partition's private Engine. Null/absent means
/// sequential execution on the constructor's engine (partition count 1).
struct FabricPartitioning {
  std::vector<int> part_of;           // node -> partition
  std::vector<sim::Engine*> engines;  // partition -> engine
};

class NetFabric {
 public:
  NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
            const SwitchConfig& sw, const NicConfig& nic,
            const FabricPartitioning* parts = nullptr);
  virtual ~NetFabric();
  NetFabric(const NetFabric&) = delete;
  NetFabric& operator=(const NetFabric&) = delete;

  /// Hand a message to the source NIC. Returns immediately; progress is
  /// autonomous (hardware), completion is reported via the callbacks.
  void post(NetMsg msg);

  sim::Engine& engine() const { return *eng_; }
  std::size_t node_count() const { return nodes_.size(); }
  NodeHw& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  SwitchTopology& topology() { return *topo_; }
  const NicConfig& nic_config() const { return nic_; }

  /// Partition ownership (all zero / the constructor engine when built
  /// without a FabricPartitioning).
  int partition_of(int node) const {
    return part_of_[static_cast<std::size_t>(node)];
  }
  sim::Engine& node_engine(int node) const {
    return *node_eng_[static_cast<std::size_t>(node)];
  }
  int partitions() const { return partitions_; }

  /// Attach the PDES executor carrying the split-flow wire protocol:
  /// registers one message handler per node and the box deleter. Must be
  /// called once, before any traffic, when constructed partitioned.
  void bind_executor(sim::pdes::FabricExecutor& exec);

  /// Run `fn` on the partition owning `dst_node`, as if scheduled from
  /// `src_node`: immediately (inline) when both nodes share a partition —
  /// the sequential behaviour — otherwise as a timestamped channel call
  /// one lookahead in the future. Cross-partition MPI error paths
  /// (recv-side teardown on a sender-side transport error) route through
  /// this instead of touching remote state directly.
  ///
  /// Under a fail-stop plan the cross-NODE delay is uniform instead:
  /// every src != dst call pays error_notify_delay() whether or not the
  /// nodes share a partition. The error indication is a wire-borne event
  /// (a NACK / teardown crossing the link), so it cannot be observed
  /// faster than the fabric's tightest protocol slack — and charging the
  /// same delay in sequential runs is what makes fail-stop outcomes
  /// bit-identical across partition counts.
  void run_on_node(int src_node, int dst_node,
                   // simlint-allow: model-alloc (error path only)
                   std::function<void()> fn);

  /// Wire latency charged to cross-node error notifications under a
  /// fail-stop plan (see run_on_node). The cluster sets it to the PDES
  /// executor's conservative slack so sequential and partitioned runs
  /// charge the same figure.
  void set_error_notify_delay(sim::Time d) { error_notify_delay_ = d; }
  sim::Time error_notify_delay() const { return error_notify_delay_; }

  std::uint64_t messages_posted() const { return sum(&Shard::posted); }
  std::uint64_t messages_delivered() const { return sum(&Shard::delivered); }
  /// Messages whose recovery protocol ran and exhausted its retry budget
  /// (surfaced via NetMsg::on_failed).
  std::uint64_t messages_errored() const { return sum(&Shard::errored); }
  /// Messages fast-failed by the degradation protocol because the fabric
  /// had already learned the target link is permanently dead — surfaced
  /// via NetMsg::on_failed without re-running the packet-level retry
  /// cycle. Always zero without a fail-stop fault plan. Finalize law:
  ///   posted == delivered + errored + aborted.
  std::uint64_t messages_aborted() const { return sum(&Shard::aborted); }

  /// Install a fault plan (chaos harness). Must be called before the
  /// simulation runs; an empty plan is a no-op, keeping the data path
  /// bit-identical to a fabric without any plan installed. Subclasses
  /// extend this to arm their own components (regcache failure hooks).
  virtual void set_fault_plan(const fault::FaultPlan& plan);
  bool fault_active() const { return injector_ != nullptr; }
  /// True when the installed plan contains permanent (fail-stop)
  /// failures. A static plan property: transient-only plans keep every
  /// downstream consumer (collective error agreement, degradation
  /// bookkeeping) on the exact pre-fail-stop code path.
  bool fail_stop_armed() const { return fail_stop_armed_; }
  /// True once this fabric has learned (by exhausting a retry budget)
  /// that link src->dst is permanently dead and degraded it.
  bool link_known_dead(int src, int dst) const;
  /// Links whose permanent death has been learned, and messages degraded
  /// on them since. Derived from per-shard state on demand — the fabrics
  /// rename these into their own vocabulary (QP teardowns, route probes,
  /// retry escalations) without keeping shared mutable counters.
  std::uint64_t links_failed() const;
  std::uint64_t degrade_rounds() const;
  const RecoveryConfig& recovery_config() const { return recovery_; }

  /// Progress watchdog: a flow whose retransmit rounds exceed this
  /// ceiling aborts the run with sim::LivelockError + diagnostic (the
  /// quiescence DeadlockError cannot catch an RTO storm — it schedules
  /// events forever). The default sits far above any sane retry budget,
  /// so it only trips on genuinely unbounded protocols.
  void set_watchdog_rounds(int rounds) { watchdog_rounds_ = rounds; }
  int watchdog_rounds() const { return watchdog_rounds_; }
  /// Diagnostic snapshot for the livelock report: per-shard counters,
  /// live flow stages (src, dst, kind of wait, attempts, pending
  /// packets), and per-node send-queue depths.
  std::string progress_report() const;

  // Fault/recovery conservation counters. Law (audited at finalize):
  //   dropped + corrupted + gbn_discarded == retransmitted + abandoned.
  std::uint64_t packets_dropped() const { return sum(&Shard::faults_drop); }
  std::uint64_t packets_corrupted() const {
    return sum(&Shard::faults_corrupt);
  }
  std::uint64_t packets_gbn_discarded() const {
    return sum(&Shard::gbn_discards);
  }
  std::uint64_t packets_retransmitted() const {
    return sum(&Shard::retransmitted);
  }
  std::uint64_t packets_abandoned() const { return sum(&Shard::abandoned); }

  /// Enable/disable the uncontended express path (default on). Timing is
  /// bit-identical either way — the toggle exists for the equivalence
  /// property tests and for benchmarking the packet machine itself.
  void set_express(bool on) { express_enabled_ = on; }
  bool express_enabled() const { return express_enabled_; }
  /// Messages whose whole window ran express (no demotion).
  std::uint64_t express_messages() const { return sum(&Shard::express_msgs); }
  /// Express launches demoted back to packet granularity by a competing
  /// reservation landing inside the claimed window.
  std::uint64_t express_demotions() const {
    return sum(&Shard::express_demotions);
  }
  /// Express claims refused up front because the flow's reservation window
  /// would span a partition boundary (a boundary flow is not provably
  /// uncontended from one partition's view). Always zero sequentially.
  std::uint64_t express_boundary_demotions() const {
    return sum(&Shard::boundary_demotions);
  }

  /// Finalize-time conservation checks: every posted message delivered,
  /// every broadcast completed, all NIC/switch stages idle, no live
  /// message flows and no dangling pipe claims. Subclasses extend with
  /// their own invariants (per-QP memory, DMA descriptors).
  virtual void register_audits(audit::AuditReport& report);

  /// Append every pipe of the fabric data path (tx/rx/NIC processors,
  /// switching stages, host buses) to `out` — stats and equivalence-test
  /// use. Subclasses append extra stages (GM SRAM staging).
  virtual void collect_pipes(std::vector<Pipe*>& out);

  /// Switch-level multicast: one injection from `src`'s NIC, replicated by
  /// the crossbar to every other node (Elite hardware broadcast; IB
  /// multicast groups). `extra_setup` models the protocol envelope;
  /// `on_delivered` fires when every copy has landed. Legs are chunked
  /// with the same pipelining granularity as unicast messages.
  void post_switch_broadcast(int src, std::uint64_t bytes,
                             sim::Time extra_setup,
                             // simlint-allow: model-alloc (per-broadcast callback)
                             std::function<void()> on_delivered);

 protected:
  /// Per-message setup on the sending NIC (serialized per node).
  virtual sim::Time tx_setup(const NetMsg& msg);
  /// Stall before injection, occupying the tx pipe (e.g. source MMU walk).
  virtual sim::Time tx_stall(const NetMsg& msg);
  /// Stall before delivery, occupying the rx pipe (e.g. dest MMU walk).
  /// Called once per message, at first-packet delivery time — except for
  /// express-eligible messages (see express_rx_ok), whose value is
  /// evaluated at launch; such messages must make this a pure function.
  virtual sim::Time rx_stall(const NetMsg& msg);
  /// Optional extra shared stage for this message on `node`'s NIC
  /// (Myrinet SRAM staging). Return nullptr for none. Must be a pure
  /// function of (node, msg): the data path resolves it once per message.
  virtual Pipe* staging_pipe(int node_id, const NetMsg& msg);
  /// Book-keeping hooks (outstanding-message tracking).
  virtual void on_posted(const NetMsg& msg);
  virtual void on_delivered(const NetMsg& msg);
  /// Recovery gave up on the message (counterpart of on_delivered for the
  /// error path): subclasses release whatever on_posted acquired.
  virtual void on_aborted(const NetMsg& msg);
  /// Fail-stop degradation hooks. on_link_failed fires once per (src,
  /// dst) link, on the src node's owning partition, at the moment a
  /// retry-budget exhaustion is attributed to a permanent failure;
  /// subclasses tear down per-connection state (IB) or record the
  /// escalation (Elan). degrade_delay prices the bounded degradation
  /// work a *subsequent* message on the dead link pays before its
  /// fast-fail surfaces: `round` counts prior degraded messages on that
  /// link (1 for the first), so IB can model capped reconnect backoff
  /// and GM a one-time alternate-route probe. Must be pure functions of
  /// their arguments (no RNG) so partitioned runs stay bit-identical.
  virtual void on_link_failed(int src, int dst);
  virtual sim::Time degrade_delay(const NetMsg& msg, int round) const;
  /// Recovery protocol parameters; subclasses set these in their
  /// constructor from their config.
  void set_recovery(const RecoveryConfig& rc) { recovery_ = rc; }
  /// Installed injector (null without a fault plan); subclasses use it to
  /// wire fabric-specific fault surfaces (registration failures).
  fault::Injector* injector() { return injector_.get(); }
  /// Express-path veto: return true only when rx_stall(msg) is a pure
  /// function (no hidden NIC state mutation), so the express path may
  /// evaluate it at launch instead of at first-packet delivery. Quadrics
  /// overrides this: its destination MMU walk is stateful for
  /// host-addressed payloads.
  virtual bool express_rx_ok(const NetMsg& msg) const;

  Pipe& tx_pipe(int node_id) { return *tx_[static_cast<std::size_t>(node_id)]; }
  Pipe& rx_pipe(int node_id) { return *rx_[static_cast<std::size_t>(node_id)]; }
  Pipe& nic_proc(int node_id) {
    return *nic_proc_[static_cast<std::size_t>(node_id)];
  }

 private:
  struct MsgFlow;   // pooled per-message state machine (netfabric.cpp)
  friend struct MsgFlowAccess;  // test backdoor (equivalence property test)

  /// Pipelining granularity: MTU-sized packets, but capped at 64 chunks
  /// per message so huge transfers stay cheap to simulate (the pipeline
  /// fill/drain error of coarser chunking is under 2%). Shared by the
  /// unicast data path and the switch-broadcast legs.
  struct ChunkPlan {
    std::uint64_t chunk;
    std::uint64_t packets;
  };
  static ChunkPlan chunk_plan(std::uint64_t bytes, std::uint32_t mtu);

  /// Per-partition slice of the fabric's mutable bookkeeping. Every
  /// counter and the MsgFlow pool are sharded by owning partition so
  /// partitioned execution never shares a cache line across workers;
  /// accessors sum at finalize. Sequential fabrics have exactly one
  /// shard, making the sharding a pure rename of the old members.
  struct Shard {
    // Pooled MsgFlow slab (tx halves launched here + rx halves of
    // boundary flows terminating here).
    std::vector<std::unique_ptr<MsgFlow>> slab;
    MsgFlow* free_list = nullptr;
    std::size_t flows_active = 0;
    // Live halves of split flows owned by this partition (tx halves of
    // outbound boundary flows, rx halves of inbound ones), keyed by the
    // globally-unique flow key.
    std::unordered_map<std::uint64_t, MsgFlow*> wire_flows;
    std::uint64_t posted = 0;
    std::uint64_t delivered = 0;
    std::uint64_t errored = 0;
    std::uint64_t aborted = 0;
    // Fail-stop degradation state, sized nodes*nodes lazily (only when a
    // fail-stop plan is armed; empty otherwise). Only src nodes owned by
    // this shard write/read their rows, so partitions never share it.
    // dead[src*n+dst] != 0 once the link's death was learned;
    // degrade_round counts degraded messages per dead link (the backoff
    // input for degrade_delay).
    std::vector<std::uint8_t> dead;
    std::vector<std::uint32_t> degrade_round;
    std::uint64_t bcasts_posted = 0;
    std::uint64_t bcasts_delivered = 0;
    std::uint64_t express_msgs = 0;
    std::uint64_t express_demotions = 0;
    std::uint64_t boundary_demotions = 0;
    std::uint64_t faults_drop = 0;
    std::uint64_t faults_corrupt = 0;
    std::uint64_t gbn_discards = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t abandoned = 0;
  };

  std::uint64_t sum(std::uint64_t Shard::*m) const {
    std::uint64_t s = 0;
    for (const auto& sh : shards_) s += (*sh).*m;
    return s;
  }
  Shard& shard_of_node(int node) {
    return *shards_[static_cast<std::size_t>(
        part_of_[static_cast<std::size_t>(node)])];
  }
  Shard& shard_of(const MsgFlow& f);
  bool is_boundary(int src, int dst) const {
    return part_of_[static_cast<std::size_t>(src)] !=
           part_of_[static_cast<std::size_t>(dst)];
  }

  sim::Task<void> sender_loop(int node_id);

  MsgFlow* acquire_flow(Shard& sh);
  void release_flow(MsgFlow& f);
  void maybe_release(MsgFlow& f);

  void init_flow(MsgFlow& f, NetMsg msg);

  // ---- Split-flow wire protocol (boundary flows under PDES execution).
  // The tx half ends at NIC-tx completion; everything beyond the switch
  // entry runs as an rx half on the destination partition, started and
  // fed by timestamped executor messages (netfabric.cpp, "split-flow
  // protocol").
  void wire_handle(int node, const sim::pdes::WireMsg& m);
  void wire_open(int dst, const sim::pdes::WireMsg& m);
  void wire_enter(int dst, const sim::pdes::WireMsg& m);
  void wire_loss(const sim::pdes::WireMsg& m);
  void wire_land(const sim::pdes::WireMsg& m);
  void wire_close(const sim::pdes::WireMsg& m);
  /// Draw this packet's launch-time fault verdict (boundary flows only:
  /// same stream, same order, same verdict instants as the sequential
  /// kTx-time draw) and send the forward ENTER message where the switch
  /// entry time is already known.
  void launch_boundary_packet(MsgFlow& f, std::uint64_t p, sim::Time t_tx);
  /// Reserve the destination rx stage for an rx-half packet and decide
  /// its predetermined fate (CRC discard / Go-Back-N gap) — computable
  /// one stage early, which is what gives the reverse LOSS message its
  /// lookahead slack while reporting the exact sequential detection time.
  void rx_half_reserve_rx(MsgFlow& f, std::uint64_t p, sim::Time done);
  void finish_boundary_delivery(MsgFlow& f);

  bool can_express(const MsgFlow& f);
  /// Bulk-apply the flow and claim its window; false when the closed form
  /// cannot represent the packet path faithfully (rx-overtake, see
  /// replay_flow) — pipes are rolled back and the caller must run the
  /// packet machine.
  bool express_launch(MsgFlow& f);
  void demote(MsgFlow& f);
  /// Closed-form replay of the packet trajectory. `materialize == false`:
  /// express launch — apply every reservation and schedule the terminal
  /// events; returns false (abort, no events scheduled) if a later
  /// packet's rx arrival would overtake the first packet's processor-gated
  /// rx reservation, because that interleaving is event-order-dependent.
  /// `materialize == true`: demotion — re-apply reservations whose
  /// (virtual) event time has passed, re-run their counter/callback side
  /// effects, and schedule real packet-machine events for everything still
  /// in flight; always returns true.
  bool replay_flow(MsgFlow& f, bool materialize);
  void flow_step(MsgFlow& f, std::uintptr_t word);
  void deliver(MsgFlow& f);

  // Recovery machine (all no-ops unless a fault plan is installed).
  void lose_packet(MsgFlow& f, std::uint64_t p);
  void arm_rto(MsgFlow& f);
  void resend_lost(MsgFlow& f);
  void fail_flow(MsgFlow& f);
  sim::Time rto_delay(const MsgFlow& f) const;

  // Fail-stop degradation (no-ops unless the plan has fail-stop clauses).
  std::size_t link_index(int src, int dst) const {
    return static_cast<std::size_t>(src) * nodes_.size() +
           static_cast<std::size_t>(dst);
  }
  /// Record that (src, dst) is permanently dead in src's shard and fire
  /// on_link_failed exactly once per link.
  void learn_link_dead(Shard& sh, int src, int dst);
  /// Terminal accounting for a message fast-failed by degradation: counts
  /// `aborted`, releases subclass resources and surfaces on_failed.
  void abort_degraded(NetMsg msg);

  sim::Engine* eng_;
  std::vector<NodeHw*> nodes_;
  std::unique_ptr<SwitchTopology> topo_;
  NicConfig nic_;
  std::vector<std::unique_ptr<Pipe>> tx_;
  std::vector<std::unique_ptr<Pipe>> rx_;
  std::vector<std::unique_ptr<Pipe>> nic_proc_;  // shared protocol processor
  std::vector<std::unique_ptr<sim::Mailbox<NetMsg>>> sendq_;
  // One Shard per partition (heap-allocated so MsgFlow needs only the
  // forward declaration here). Sequentially there is exactly one.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Partition layout: node -> owning partition / owning engine. All
  // zeros / all eng_ when constructed without a FabricPartitioning.
  std::vector<int> part_of_;
  std::vector<sim::Engine*> node_eng_;
  int partitions_ = 1;
  sim::pdes::FabricExecutor* exec_ = nullptr;
  // Per-source-node sequence numbers for boundary flow keys (only the
  // owning partition touches its nodes' counters).
  std::vector<std::uint64_t> flow_seq_;
  bool express_enabled_ = true;
  // Fault injection + recovery (null injector = lossless fabric).
  std::unique_ptr<fault::Injector> injector_;
  RecoveryConfig recovery_;
  // Fail-stop degradation + progress watchdog.
  bool fail_stop_armed_ = false;
  int watchdog_rounds_ = 1024;
  sim::Time error_notify_delay_{};  // uniform cross-node notify latency
};

}  // namespace mns::model
