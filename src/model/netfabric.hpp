// NetFabric: the shared skeleton of a cluster interconnect.
//
// One NIC per node, one central crossbar switch, per-node host buses. A
// message posted by the host is handled by the sender NIC's (simulated)
// injection engine: per-message setup, then MTU packets DMA'd from host
// memory (closed loop on the bus) and pushed through
//
//   [host bus] -> [NIC tx] -> [switch port(dst)] -> [NIC rx] -> [host bus]
//
// with every stage a FIFO Pipe, so per-(src,dst) delivery order equals
// post order — the property the MPI devices rely on. Intra-node messages
// (src == dst, the "NIC loopback" path some MPI devices use) skip the
// switch.
//
// Data-path implementation (see DESIGN.md "message data path"): each
// message is driven by a slab-pooled MsgFlow state machine stepping the
// packet event sequence through raw EventFn continuations — no coroutine
// frames, no shared_ptr, no allocation after warm-up. When a message can
// prove exclusive occupancy of its full bus/tx/switch/rx window it takes
// the express path: the whole per-packet trajectory is applied to the
// pipes in one closed-form replay and only terminal events are scheduled,
// with claims on every pipe so a competing reservation demotes the flow
// back to packet granularity with bit-identical timing.
//
// The three interconnects subclass this and add their quirks through the
// protected hooks: Myrinet's shared SRAM staging, Quadrics' NIC MMU walks
// and DMA-queue-overflow penalty, InfiniBand's per-connection resources.
#pragma once

#include <cstdint>
#include <functional>  // simlint-allow: model-alloc
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "model/node_hw.hpp"
#include "model/pipe.hpp"
#include "model/switch.hpp"
#include "model/topology.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::model {

/// One message travelling the fabric. Callbacks are how the MPI device
/// layers react; the fabric itself never touches payload bytes. The
/// callbacks are per-message (never per-packet), so type-erased closures
/// are acceptable here.
struct NetMsg {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t src_addr = 0;  // buffer identities for MMU/TLB models
  std::uint64_t dst_addr = 0;
  /// Zero-copy sends complete at the sender only once delivered (the RC /
  /// directed-send acknowledgement); eager sends complete when the last
  /// byte has left the sender NIC.
  bool complete_on_delivery = false;
  std::function<void()> local_complete;  // simlint-allow: model-alloc
  std::function<void()> remote_arrival;  // simlint-allow: model-alloc
  /// Fired (instead of the callbacks above that have not yet fired) when
  /// the fabric's recovery protocol exhausts its retry budget for this
  /// message — the QP-error / give-up surface the MPI device turns into an
  /// error Status. Null means the device cannot handle transport errors;
  /// the message is then silently dropped on exhaustion (audited as
  /// errored either way).
  std::function<void()> on_failed;  // simlint-allow: model-alloc
};

/// Per-fabric recovery protocol parameters (see DESIGN.md "fault &
/// recovery model"). All three interconnects recover transparently below
/// the MPI layer; they differ in who retransmits, what is retransmitted,
/// and how the timeout grows:
///   kIbRc    — IB RC per-QP timeout/retry: selective retransmit of the
///              lost packets, fixed RTO, retry_budget mirrors the QP's
///              retry counter; exhaustion raises a QP error.
///   kGoBackN — GM firmware Go-Back-N: the receiver discards every packet
///              after a sequence gap (cumulative-ack semantics), the
///              sender resends the whole window from the gap.
///   kHwRetry — Elan hardware DMA retry: selective retransmit with
///              bounded exponential backoff (rto, 2*rto, ... capped).
struct RecoveryConfig {
  enum class Protocol : std::uint8_t { kIbRc, kGoBackN, kHwRetry };
  Protocol protocol = Protocol::kIbRc;
  sim::Time rto = sim::Time::us(40);
  sim::Time backoff_cap = sim::Time::zero();  // >0 enables backoff growth
  int retry_budget = 7;  // resend rounds before surfacing an error
};

/// Context for wiring a fault::Injector's per-node registration-failure
/// stream into a RegistrationCache fail hook (plain function pointer +
/// ctx — see RegistrationCache::set_fail_hook). The owning fabric keeps
/// one per armed node in a fully-reserved vector so the pointers stay
/// stable.
struct RegFailCtx {
  fault::Injector* injector = nullptr;
  int node = 0;
  static bool hook(void* ctx) {
    auto* c = static_cast<RegFailCtx*>(ctx);
    return c->injector->reg_should_fail(c->node);
  }
};

struct NicConfig {
  double tx_rate;         // NIC injection rate (bytes/s), <= link rate
  double rx_rate;         // NIC delivery rate
  sim::Time tx_wire_latency;   // propagation + serial link latency, tx side
  sim::Time rx_fixed;          // per-packet receive processing
  sim::Time per_msg_setup;     // per-message work on the sending NIC
  sim::Time per_msg_rx_setup;  // per-message work on the receiving NIC
  std::uint32_t mtu;
  /// NIC with one protocol processor (LANai, Elan3): per-message send and
  /// receive processing serialize on it, so simultaneous bi-directional
  /// traffic pays extra latency (paper Fig. 4). The InfiniHost has
  /// independent hardware engines per direction and sets this false.
  bool shared_processor = false;
  /// Reliable-delivery acknowledgement: after delivery, the *source* NIC
  /// processes an ack to retire the send token, occupying its protocol
  /// processor. Zero disables.
  sim::Time ack_processing = sim::Time::zero();
  sim::Time ack_delay = sim::Time::zero();  // wire time for the ack
};

class NetFabric {
 public:
  NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
            const SwitchConfig& sw, const NicConfig& nic);
  virtual ~NetFabric();
  NetFabric(const NetFabric&) = delete;
  NetFabric& operator=(const NetFabric&) = delete;

  /// Hand a message to the source NIC. Returns immediately; progress is
  /// autonomous (hardware), completion is reported via the callbacks.
  void post(NetMsg msg);

  sim::Engine& engine() const { return *eng_; }
  std::size_t node_count() const { return nodes_.size(); }
  NodeHw& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  SwitchTopology& topology() { return *topo_; }
  const NicConfig& nic_config() const { return nic_; }

  std::uint64_t messages_posted() const { return posted_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Messages whose recovery budget was exhausted (surfaced via
  /// NetMsg::on_failed). posted == delivered + errored at finalize.
  std::uint64_t messages_errored() const { return errored_; }

  /// Install a fault plan (chaos harness). Must be called before the
  /// simulation runs; an empty plan is a no-op, keeping the data path
  /// bit-identical to a fabric without any plan installed. Subclasses
  /// extend this to arm their own components (regcache failure hooks).
  virtual void set_fault_plan(const fault::FaultPlan& plan);
  bool fault_active() const { return injector_ != nullptr; }
  const RecoveryConfig& recovery_config() const { return recovery_; }

  // Fault/recovery conservation counters. Law (audited at finalize):
  //   dropped + corrupted + gbn_discarded == retransmitted + abandoned.
  std::uint64_t packets_dropped() const { return faults_drop_; }
  std::uint64_t packets_corrupted() const { return faults_corrupt_; }
  std::uint64_t packets_gbn_discarded() const { return gbn_discards_; }
  std::uint64_t packets_retransmitted() const { return packets_retransmitted_; }
  std::uint64_t packets_abandoned() const { return packets_abandoned_; }

  /// Enable/disable the uncontended express path (default on). Timing is
  /// bit-identical either way — the toggle exists for the equivalence
  /// property tests and for benchmarking the packet machine itself.
  void set_express(bool on) { express_enabled_ = on; }
  bool express_enabled() const { return express_enabled_; }
  /// Messages whose whole window ran express (no demotion).
  std::uint64_t express_messages() const { return express_msgs_; }
  /// Express launches demoted back to packet granularity by a competing
  /// reservation landing inside the claimed window.
  std::uint64_t express_demotions() const { return express_demotions_; }

  /// Finalize-time conservation checks: every posted message delivered,
  /// every broadcast completed, all NIC/switch stages idle, no live
  /// message flows and no dangling pipe claims. Subclasses extend with
  /// their own invariants (per-QP memory, DMA descriptors).
  virtual void register_audits(audit::AuditReport& report);

  /// Append every pipe of the fabric data path (tx/rx/NIC processors,
  /// switching stages, host buses) to `out` — stats and equivalence-test
  /// use. Subclasses append extra stages (GM SRAM staging).
  virtual void collect_pipes(std::vector<Pipe*>& out);

  /// Switch-level multicast: one injection from `src`'s NIC, replicated by
  /// the crossbar to every other node (Elite hardware broadcast; IB
  /// multicast groups). `extra_setup` models the protocol envelope;
  /// `on_delivered` fires when every copy has landed. Legs are chunked
  /// with the same pipelining granularity as unicast messages.
  void post_switch_broadcast(int src, std::uint64_t bytes,
                             sim::Time extra_setup,
                             // simlint-allow: model-alloc (per-broadcast callback)
                             std::function<void()> on_delivered);

 protected:
  /// Per-message setup on the sending NIC (serialized per node).
  virtual sim::Time tx_setup(const NetMsg& msg);
  /// Stall before injection, occupying the tx pipe (e.g. source MMU walk).
  virtual sim::Time tx_stall(const NetMsg& msg);
  /// Stall before delivery, occupying the rx pipe (e.g. dest MMU walk).
  /// Called once per message, at first-packet delivery time — except for
  /// express-eligible messages (see express_rx_ok), whose value is
  /// evaluated at launch; such messages must make this a pure function.
  virtual sim::Time rx_stall(const NetMsg& msg);
  /// Optional extra shared stage for this message on `node`'s NIC
  /// (Myrinet SRAM staging). Return nullptr for none. Must be a pure
  /// function of (node, msg): the data path resolves it once per message.
  virtual Pipe* staging_pipe(int node_id, const NetMsg& msg);
  /// Book-keeping hooks (outstanding-message tracking).
  virtual void on_posted(const NetMsg& msg);
  virtual void on_delivered(const NetMsg& msg);
  /// Recovery gave up on the message (counterpart of on_delivered for the
  /// error path): subclasses release whatever on_posted acquired.
  virtual void on_aborted(const NetMsg& msg);
  /// Recovery protocol parameters; subclasses set these in their
  /// constructor from their config.
  void set_recovery(const RecoveryConfig& rc) { recovery_ = rc; }
  /// Installed injector (null without a fault plan); subclasses use it to
  /// wire fabric-specific fault surfaces (registration failures).
  fault::Injector* injector() { return injector_.get(); }
  /// Express-path veto: return true only when rx_stall(msg) is a pure
  /// function (no hidden NIC state mutation), so the express path may
  /// evaluate it at launch instead of at first-packet delivery. Quadrics
  /// overrides this: its destination MMU walk is stateful for
  /// host-addressed payloads.
  virtual bool express_rx_ok(const NetMsg& msg) const;

  Pipe& tx_pipe(int node_id) { return *tx_[static_cast<std::size_t>(node_id)]; }
  Pipe& rx_pipe(int node_id) { return *rx_[static_cast<std::size_t>(node_id)]; }
  Pipe& nic_proc(int node_id) {
    return *nic_proc_[static_cast<std::size_t>(node_id)];
  }

 private:
  struct MsgFlow;   // pooled per-message state machine (netfabric.cpp)
  friend struct MsgFlowAccess;  // test backdoor (equivalence property test)

  /// Pipelining granularity: MTU-sized packets, but capped at 64 chunks
  /// per message so huge transfers stay cheap to simulate (the pipeline
  /// fill/drain error of coarser chunking is under 2%). Shared by the
  /// unicast data path and the switch-broadcast legs.
  struct ChunkPlan {
    std::uint64_t chunk;
    std::uint64_t packets;
  };
  static ChunkPlan chunk_plan(std::uint64_t bytes, std::uint32_t mtu);

  sim::Task<void> sender_loop(int node_id);

  MsgFlow* acquire_flow();
  void release_flow(MsgFlow& f);
  void maybe_release(MsgFlow& f);

  void init_flow(MsgFlow& f, NetMsg msg);
  bool can_express(const MsgFlow& f) const;
  /// Bulk-apply the flow and claim its window; false when the closed form
  /// cannot represent the packet path faithfully (rx-overtake, see
  /// replay_flow) — pipes are rolled back and the caller must run the
  /// packet machine.
  bool express_launch(MsgFlow& f);
  void demote(MsgFlow& f);
  /// Closed-form replay of the packet trajectory. `materialize == false`:
  /// express launch — apply every reservation and schedule the terminal
  /// events; returns false (abort, no events scheduled) if a later
  /// packet's rx arrival would overtake the first packet's processor-gated
  /// rx reservation, because that interleaving is event-order-dependent.
  /// `materialize == true`: demotion — re-apply reservations whose
  /// (virtual) event time has passed, re-run their counter/callback side
  /// effects, and schedule real packet-machine events for everything still
  /// in flight; always returns true.
  bool replay_flow(MsgFlow& f, bool materialize);
  void flow_step(MsgFlow& f, std::uintptr_t word);
  void deliver(MsgFlow& f);

  // Recovery machine (all no-ops unless a fault plan is installed).
  void lose_packet(MsgFlow& f, std::uint64_t p);
  void arm_rto(MsgFlow& f);
  void resend_lost(MsgFlow& f);
  void fail_flow(MsgFlow& f);
  sim::Time rto_delay(const MsgFlow& f) const;

  sim::Engine* eng_;
  std::vector<NodeHw*> nodes_;
  std::unique_ptr<SwitchTopology> topo_;
  NicConfig nic_;
  std::vector<std::unique_ptr<Pipe>> tx_;
  std::vector<std::unique_ptr<Pipe>> rx_;
  std::vector<std::unique_ptr<Pipe>> nic_proc_;  // shared protocol processor
  std::vector<std::unique_ptr<sim::Mailbox<NetMsg>>> sendq_;
  // Frame-pool-style slab of recycled MsgFlow objects: `flow_slab_` owns,
  // `flow_free_` threads the idle ones, `flows_active_` is audited back to
  // zero at finalize.
  std::vector<std::unique_ptr<MsgFlow>> flow_slab_;
  MsgFlow* flow_free_ = nullptr;
  std::size_t flows_active_ = 0;
  bool express_enabled_ = true;
  std::uint64_t express_msgs_ = 0;
  std::uint64_t express_demotions_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bcasts_posted_ = 0;
  std::uint64_t bcasts_delivered_ = 0;
  // Fault injection + recovery (null injector = lossless fabric).
  std::unique_ptr<fault::Injector> injector_;
  RecoveryConfig recovery_;
  std::uint64_t errored_ = 0;
  std::uint64_t faults_drop_ = 0;
  std::uint64_t faults_corrupt_ = 0;
  std::uint64_t gbn_discards_ = 0;
  std::uint64_t packets_retransmitted_ = 0;
  std::uint64_t packets_abandoned_ = 0;
};

}  // namespace mns::model
