// NetFabric: the shared skeleton of a cluster interconnect.
//
// One NIC per node, one central crossbar switch, per-node host buses. A
// message posted by the host is handled by the sender NIC's (simulated)
// injection engine: per-message setup, then MTU packets DMA'd from host
// memory (closed loop on the bus) and pushed through
//
//   [host bus] -> [NIC tx] -> [switch port(dst)] -> [NIC rx] -> [host bus]
//
// with every stage a FIFO Pipe, so per-(src,dst) delivery order equals
// post order — the property the MPI devices rely on. Intra-node messages
// (src == dst, the "NIC loopback" path some MPI devices use) skip the
// switch.
//
// The three interconnects subclass this and add their quirks through the
// protected hooks: Myrinet's shared SRAM staging, Quadrics' NIC MMU walks
// and DMA-queue-overflow penalty, InfiniBand's per-connection resources.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/node_hw.hpp"
#include "model/pipe.hpp"
#include "model/switch.hpp"
#include "model/topology.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::model {

/// One message travelling the fabric. Callbacks are how the MPI device
/// layers react; the fabric itself never touches payload bytes.
struct NetMsg {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
  std::uint64_t src_addr = 0;  // buffer identities for MMU/TLB models
  std::uint64_t dst_addr = 0;
  /// Zero-copy sends complete at the sender only once delivered (the RC /
  /// directed-send acknowledgement); eager sends complete when the last
  /// byte has left the sender NIC.
  bool complete_on_delivery = false;
  std::function<void()> local_complete;  // sender buffer reusable
  std::function<void()> remote_arrival;  // last byte in remote memory
};

struct NicConfig {
  double tx_rate;         // NIC injection rate (bytes/s), <= link rate
  double rx_rate;         // NIC delivery rate
  sim::Time tx_wire_latency;   // propagation + serial link latency, tx side
  sim::Time rx_fixed;          // per-packet receive processing
  sim::Time per_msg_setup;     // per-message work on the sending NIC
  sim::Time per_msg_rx_setup;  // per-message work on the receiving NIC
  std::uint32_t mtu;
  /// NIC with one protocol processor (LANai, Elan3): per-message send and
  /// receive processing serialize on it, so simultaneous bi-directional
  /// traffic pays extra latency (paper Fig. 4). The InfiniHost has
  /// independent hardware engines per direction and sets this false.
  bool shared_processor = false;
  /// Reliable-delivery acknowledgement: after delivery, the *source* NIC
  /// processes an ack to retire the send token, occupying its protocol
  /// processor. Zero disables.
  sim::Time ack_processing = sim::Time::zero();
  sim::Time ack_delay = sim::Time::zero();  // wire time for the ack
};

class NetFabric {
 public:
  NetFabric(sim::Engine& eng, std::vector<NodeHw*> nodes,
            const SwitchConfig& sw, const NicConfig& nic);
  virtual ~NetFabric() = default;
  NetFabric(const NetFabric&) = delete;
  NetFabric& operator=(const NetFabric&) = delete;

  /// Hand a message to the source NIC. Returns immediately; progress is
  /// autonomous (hardware), completion is reported via the callbacks.
  void post(NetMsg msg);

  sim::Engine& engine() const { return *eng_; }
  std::size_t node_count() const { return nodes_.size(); }
  NodeHw& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  SwitchTopology& topology() { return *topo_; }
  const NicConfig& nic_config() const { return nic_; }

  std::uint64_t messages_posted() const { return posted_; }
  std::uint64_t messages_delivered() const { return delivered_; }

  /// Finalize-time conservation checks: every posted message delivered,
  /// every broadcast completed, all NIC/switch stages idle. Subclasses
  /// extend with their own invariants (per-QP memory, DMA descriptors).
  virtual void register_audits(audit::AuditReport& report);

  /// Switch-level multicast: one injection from `src`'s NIC, replicated by
  /// the crossbar to every other node (Elite hardware broadcast; IB
  /// multicast groups). `extra_setup` models the protocol envelope;
  /// `on_delivered` fires when every copy has landed.
  void post_switch_broadcast(int src, std::uint64_t bytes,
                             sim::Time extra_setup,
                             std::function<void()> on_delivered);

 protected:
  /// Per-message setup on the sending NIC (serialized per node).
  virtual sim::Time tx_setup(const NetMsg& msg);
  /// Stall before injection, occupying the tx pipe (e.g. source MMU walk).
  virtual sim::Time tx_stall(const NetMsg& msg);
  /// Stall before delivery, occupying the rx pipe (e.g. dest MMU walk).
  virtual sim::Time rx_stall(const NetMsg& msg);
  /// Optional extra shared stage for this message on `node`'s NIC
  /// (Myrinet SRAM staging). Return nullptr for none.
  virtual Pipe* staging_pipe(int node_id, const NetMsg& msg);
  /// Book-keeping hooks (outstanding-message tracking).
  virtual void on_posted(const NetMsg& msg);
  virtual void on_delivered(const NetMsg& msg);

  Pipe& tx_pipe(int node_id) { return *tx_[static_cast<std::size_t>(node_id)]; }
  Pipe& rx_pipe(int node_id) { return *rx_[static_cast<std::size_t>(node_id)]; }
  Pipe& nic_proc(int node_id) {
    return *nic_proc_[static_cast<std::size_t>(node_id)];
  }

 private:
  struct MsgState {
    NetMsg msg;
    std::uint64_t packets_left_tx;  // through the sender NIC
    std::uint64_t packets_left;     // through the whole path
    bool first_packet = true;
  };

  sim::Task<void> sender_loop(int node_id);
  sim::Task<void> packet_tail(std::uint64_t pkt,
                              std::shared_ptr<MsgState> state);

  sim::Engine* eng_;
  std::vector<NodeHw*> nodes_;
  std::unique_ptr<SwitchTopology> topo_;
  NicConfig nic_;
  std::vector<std::unique_ptr<Pipe>> tx_;
  std::vector<std::unique_ptr<Pipe>> rx_;
  std::vector<std::unique_ptr<Pipe>> nic_proc_;  // shared protocol processor
  std::vector<std::unique_ptr<sim::Mailbox<NetMsg>>> sendq_;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t bcasts_posted_ = 0;
  std::uint64_t bcasts_delivered_ = 0;
};

}  // namespace mns::model
