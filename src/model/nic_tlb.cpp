#include "model/nic_tlb.hpp"

namespace mns::model {

void NicTlb::touch(std::uint64_t page, bool& missed) {
  const auto it = map_.find(page);
  if (it != map_.end()) {
    ++hits_;
    lru_.erase(it->second);
    lru_.push_front(page);
    it->second = lru_.begin();
    return;
  }
  ++misses_;
  missed = true;
  while (map_.size() >= cfg_.entries && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_.emplace(page, lru_.begin());
}

sim::Time NicTlb::access(std::uint64_t addr, std::uint64_t bytes) {
  const std::uint64_t first = addr / cfg_.page_bytes;
  const std::uint64_t last =
      bytes == 0 ? first : (addr + bytes - 1) / cfg_.page_bytes;
  sim::Time stall;
  bool any_missed = false;
  for (std::uint64_t page = first; page <= last; ++page) {
    bool missed = false;
    touch(page, missed);
    if (missed) stall += cfg_.miss_cost;
    any_missed = any_missed || missed;
  }
  if (any_missed) stall += cfg_.miss_cost_base;
  return stall;
}

void NicTlb::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace mns::model
