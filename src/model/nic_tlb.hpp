// NIC-side address translation model.
//
// The NIC's DMA engine works with bus addresses; translations for user
// pages are cached on the NIC (an I/O TLB on the LANai, the on-board MMU
// on Elan3). A message touching pages absent from the NIC table stalls
// while translations are fetched/synchronized. This is the second
// buffer-reuse effect (besides registration): it is why Quadrics — which
// needs no registration at all — still shows a steep buffer-reuse penalty
// in the paper's Fig. 7.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/time.hpp"

namespace mns::model {

struct NicTlbConfig {
  std::uint64_t page_bytes;
  std::size_t entries;        // capacity in pages
  sim::Time miss_cost;        // per-page fetch/sync cost
  sim::Time miss_cost_base;   // per-message cost when any page misses
};

class NicTlb {
 public:
  explicit NicTlb(const NicTlbConfig& cfg) : cfg_(cfg) {}

  /// Touch all pages of [addr, addr+bytes); returns the stall time for
  /// pages that were not cached (NIC-side, not host CPU time).
  sim::Time access(std::uint64_t addr, std::uint64_t bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void clear();

  const NicTlbConfig& config() const { return cfg_; }

 private:
  void touch(std::uint64_t page, bool& missed);

  NicTlbConfig cfg_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mns::model
