// Per-node host hardware: the I/O bus NICs DMA across and the host memory
// copy model. One NodeHw is shared by every interconnect attached to the
// node (in the paper's testbed all three NICs sit in the same machines).
#pragma once

#include "model/bus.hpp"
#include "model/memcpy_model.hpp"

namespace mns::model {

class NodeHw {
 public:
  NodeHw(sim::Engine& eng, const BusConfig& bus_cfg, const MemcpyConfig& mem_cfg)
      : bus_(eng, bus_cfg), mem_(mem_cfg) {}

  HostBus& bus() { return bus_; }
  const MemcpyModel& mem() const { return mem_; }

 private:
  HostBus bus_;
  MemcpyModel mem_;
};

}  // namespace mns::model
