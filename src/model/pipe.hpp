// Pipe: a FIFO serializing resource with a fixed byte rate.
//
// This is the basic building block for every bandwidth-limited stage in the
// machine model: a network link direction, a PCI/PCI-X bus, a NIC DMA
// engine, a switch output port. A transfer reserves the next free slot on
// the pipe (requests at the same timestamp are served in call order, so
// behaviour is deterministic) and completes when its last byte has passed.
//
// Two layers of API:
//
//   * Coroutine layer (`transfer`, `occupy`, `transfer_after`): reserve a
//     slot and co_await its completion — one event per stage.
//   * Reservation layer (`reserve`, `reserve_after`, and the `_at`
//     variants): the same slot arithmetic without the coroutine; callers
//     get back the absolute completion time and schedule their own
//     continuation.  This is what the pooled message state machines in
//     NetFabric drive, and what the express path uses to apply a whole
//     pipelined transfer's worth of reservations in one shot.
//
// Express-path support: a `ClaimOwner` (one message flow) may claim the
// pipe for a reservation window it has already applied in bulk.  Every
// real-time reservation first calls `break_claims()`; if a competing
// reservation lands while the claim window is still open (now < the
// owner's last virtual reservation instant on this pipe) the owner is
// demoted — it rolls the pipe back to its pre-claim `State` snapshot and
// replays at packet granularity.  `epoch()` is a monotone contender
// counter bumped by every reservation, letting owners audit that nobody
// slipped a reservation into a claimed window without a demotion.
#pragma once

#include <cstdint>

#include "audit/audit.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mns::model {

class Pipe {
 public:
  /// Implemented by express-path flows that applied future reservations in
  /// bulk.  `claim_broken()` fires when a competing reservation lands
  /// inside the claimed window; the owner must restore every pipe it
  /// claimed and re-materialize itself at packet granularity before the
  /// competitor's reservation proceeds.
  class ClaimOwner {
   public:
    virtual void claim_broken() = 0;

   protected:
    ~ClaimOwner() = default;
  };

  /// Snapshot of the externally visible reservation state; saved by a
  /// claim owner before bulk-applying and restored on demotion.
  struct State {
    sim::Time busy_until;
    sim::Time busy_time;
    std::uint64_t bytes_moved;
    std::uint64_t transfers;
  };

  /// `bytes_per_second`: effective data rate of this stage.
  /// `fixed_cost`: per-transfer latency added after serialization
  /// (propagation delay, arbitration, etc).
  Pipe(sim::Engine& eng, double bytes_per_second,
       sim::Time fixed_cost = sim::Time::zero())
      : eng_(&eng), rate_(bytes_per_second), fixed_cost_(fixed_cost) {}

  /// Move `bytes` through the pipe; resumes when the last byte (plus the
  /// fixed cost) has cleared. Zero-byte transfers still pay the fixed cost.
  sim::Task<void> transfer(std::uint64_t bytes) {
    co_await eng_->delay(reserve(bytes) - eng_->now());
  }

  /// Reserve the pipe for a fixed duration (models a processing stall that
  /// occupies the stage, e.g. a NIC MMU walk). Keeps FIFO order with
  /// transfers.
  sim::Task<void> occupy(sim::Time duration) {
    return transfer_after(duration, 0);
  }

  /// Stall for `lead`, then move `bytes` — reserved as one atomic slot so
  /// no competing transfer can slip between the stall and the data.
  sim::Task<void> transfer_after(sim::Time lead, std::uint64_t bytes) {
    co_await eng_->delay(reserve_after(lead, bytes) - eng_->now());
  }

  /// Reserve the next FIFO slot for `bytes` now; returns the absolute time
  /// the transfer completes (last byte plus fixed cost). Breaks any open
  /// claim first — this is the packet-granularity entry point.
  sim::Time reserve(std::uint64_t bytes) {
    break_claims();
    return reserve_at(eng_->now(), bytes);
  }

  /// `transfer_after` without the coroutine: stall + data as one slot.
  sim::Time reserve_after(sim::Time lead, std::uint64_t bytes) {
    break_claims();
    return reserve_after_at(eng_->now(), lead, bytes);
  }

  /// Reservation core with an explicit arrival instant, used by claim
  /// owners replaying a virtual packet trajectory (`arrive` is the virtual
  /// event time of the requesting stage, which may lie in the simulated
  /// future). Does NOT break claims — only the claim owner itself may call
  /// this between claim and expiry.
  sim::Time reserve_at(sim::Time arrive, std::uint64_t bytes) {
    const sim::Time start = busy_until_ > arrive ? busy_until_ : arrive;
    const sim::Time ser = sim::transfer_time(bytes, rate_);
    busy_until_ = start + ser;
    busy_time_ += ser;
    bytes_moved_ += bytes;
    ++transfers_;
    ++epoch_;
    return busy_until_ + fixed_cost_;
  }

  /// `reserve_after` core with an explicit arrival instant (see above).
  /// Pure occupancy (`bytes == 0`) pays no fixed cost and does not count
  /// as a transfer, matching `transfer_after` / `occupy`.
  sim::Time reserve_after_at(sim::Time arrive, sim::Time lead,
                             std::uint64_t bytes) {
    const sim::Time start = busy_until_ > arrive ? busy_until_ : arrive;
    const sim::Time ser = lead + sim::transfer_time(bytes, rate_);
    busy_until_ = start + ser;
    busy_time_ += ser;
    bytes_moved_ += bytes;
    if (bytes > 0) ++transfers_;
    ++epoch_;
    return busy_until_ +
           (bytes > 0 ? fixed_cost_ : sim::Time::zero());
  }

  /// The serialization time alone for `bytes` (no queueing, no fixed cost).
  sim::Time serialization_time(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, rate_);
  }

  /// Earliest time a new transfer could start.
  sim::Time free_at() const { return busy_until_; }
  bool idle() const { return busy_until_ <= eng_->now(); }

  double rate() const { return rate_; }
  sim::Time fixed_cost() const { return fixed_cost_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }
  sim::Time busy_time() const { return busy_time_; }

  /// Monotone contender counter: bumped by every reservation (real or
  /// virtual). A claim owner records it after bulk-applying; it changing
  /// before the claim expires without `claim_broken()` firing would mean a
  /// reservation bypassed the demotion protocol.
  std::uint64_t epoch() const { return epoch_; }

  // -- express-path claims ------------------------------------------------

  /// Claim the window up to `expiry` — the owner's final completion
  /// instant, after which it makes no further reservation anywhere. A real
  /// reservation at or before that instant demotes the owner; strictly
  /// after it, the bulk outcome is already final and the claim simply
  /// lapses. The owner must use one uniform expiry across every pipe it
  /// claims: per-pipe expiries would let a claim lapse mid-flight and a
  /// foreign reservation slip in, invalidating the owner's snapshots.
  void claim(ClaimOwner* owner, sim::Time expiry) {
    MNS_AUDIT(!claim_active(), "pipe claimed while already claimed");
    claim_owner_ = owner;
    claim_expiry_ = expiry;
  }

  /// Drop a claim without demotion (owner delivered, or is demoting).
  void clear_claim(ClaimOwner* owner) {
    if (claim_owner_ == owner) claim_owner_ = nullptr;
  }

  /// Matches break_claims(): the boundary instant still counts as claimed,
  /// so a would-be express launch at exactly the owner's completion falls
  /// back to the packet machine (whose real reservations demote the owner).
  bool claim_active() const {
    return claim_owner_ != nullptr && eng_->now() <= claim_expiry_;
  }

  /// A claim pointer is present (possibly lapsed). Audited back to null at
  /// finalize: flows clear their claims on delivery or demotion.
  bool claimed() const { return claim_owner_ != nullptr; }

  /// Demote the claim owner if a competing reservation lands inside its
  /// open window; lapse the claim silently once the window has passed.
  /// The boundary instant (now == expiry) demotes: a competitor arriving
  /// at exactly the owner's final completion would race it on event order,
  /// and the competitor's event was almost always scheduled before the
  /// owner's terminal events — demoting replays the tie in the packet
  /// machine's order (competitor first), matching the never-express world.
  void break_claims() {
    if (claim_owner_ == nullptr) return;
    ClaimOwner* owner = claim_owner_;
    claim_owner_ = nullptr;
    if (eng_->now() <= claim_expiry_) owner->claim_broken();
  }

  State state() const {
    return {busy_until_, busy_time_, bytes_moved_, transfers_};
  }

  /// Roll back to a pre-claim snapshot. Only valid for the claim owner on
  /// demotion: claims guarantee no foreign reservation occurred since the
  /// snapshot was taken.
  void restore(const State& s) {
    busy_until_ = s.busy_until;
    busy_time_ = s.busy_time;
    bytes_moved_ = s.bytes_moved;
    transfers_ = s.transfers;
    ++epoch_;
  }

 private:
  sim::Engine* eng_;
  double rate_;
  sim::Time fixed_cost_;
  sim::Time busy_until_;
  sim::Time busy_time_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t epoch_ = 0;
  ClaimOwner* claim_owner_ = nullptr;
  sim::Time claim_expiry_;
};

}  // namespace mns::model
