// Pipe: a FIFO serializing resource with a fixed byte rate.
//
// This is the basic building block for every bandwidth-limited stage in the
// machine model: a network link direction, a PCI/PCI-X bus, a NIC DMA
// engine, a switch output port. A transfer reserves the next free slot on
// the pipe (requests at the same timestamp are served in call order, so
// behaviour is deterministic) and completes when its last byte has passed.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mns::model {

class Pipe {
 public:
  /// `bytes_per_second`: effective data rate of this stage.
  /// `fixed_cost`: per-transfer latency added after serialization
  /// (propagation delay, arbitration, etc).
  Pipe(sim::Engine& eng, double bytes_per_second,
       sim::Time fixed_cost = sim::Time::zero())
      : eng_(&eng), rate_(bytes_per_second), fixed_cost_(fixed_cost) {}

  /// Move `bytes` through the pipe; resumes when the last byte (plus the
  /// fixed cost) has cleared. Zero-byte transfers still pay the fixed cost.
  sim::Task<void> transfer(std::uint64_t bytes) {
    const sim::Time start =
        busy_until_ > eng_->now() ? busy_until_ : eng_->now();
    const sim::Time ser = sim::transfer_time(bytes, rate_);
    busy_until_ = start + ser;
    busy_time_ += ser;
    bytes_moved_ += bytes;
    ++transfers_;
    co_await eng_->delay(busy_until_ - eng_->now() + fixed_cost_);
  }

  /// Reserve the pipe for a fixed duration (models a processing stall that
  /// occupies the stage, e.g. a NIC MMU walk). Keeps FIFO order with
  /// transfers.
  sim::Task<void> occupy(sim::Time duration) {
    return transfer_after(duration, 0);
  }

  /// Stall for `lead`, then move `bytes` — reserved as one atomic slot so
  /// no competing transfer can slip between the stall and the data.
  sim::Task<void> transfer_after(sim::Time lead, std::uint64_t bytes) {
    const sim::Time start =
        busy_until_ > eng_->now() ? busy_until_ : eng_->now();
    const sim::Time ser = lead + sim::transfer_time(bytes, rate_);
    busy_until_ = start + ser;
    busy_time_ += ser;
    bytes_moved_ += bytes;
    if (bytes > 0) ++transfers_;
    co_await eng_->delay(busy_until_ - eng_->now() +
                         (bytes > 0 ? fixed_cost_ : sim::Time::zero()));
  }

  /// The serialization time alone for `bytes` (no queueing, no fixed cost).
  sim::Time serialization_time(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, rate_);
  }

  /// Earliest time a new transfer could start.
  sim::Time free_at() const { return busy_until_; }
  bool idle() const { return busy_until_ <= eng_->now(); }

  double rate() const { return rate_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }
  sim::Time busy_time() const { return busy_time_; }

 private:
  sim::Engine* eng_;
  double rate_;
  sim::Time fixed_cost_;
  sim::Time busy_until_;
  sim::Time busy_time_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace mns::model
