// Pipelined multi-stage transfer.
//
// Moves a message through an ordered chain of Pipes (e.g. host bus -> NIC
// -> link -> switch port -> link -> remote bus) in MTU-sized packets, with
// each packet advancing stage-by-stage. Packet k+1 may occupy stage s
// while packet k occupies stage s+1, so sustained bandwidth is set by the
// slowest stage and latency by the sum of stages — the behaviour real
// cut-through fabrics show at packet granularity.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/pipe.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::model {

/// Complete when the last byte of `bytes` has cleared every stage.
/// Zero-byte messages traverse all stages once (header-only packet).
inline sim::Task<void> pipelined_transfer(sim::Engine& eng,
                                          std::vector<Pipe*> stages,
                                          std::uint64_t bytes,
                                          std::uint64_t mtu) {
  if (stages.empty()) co_return;
  const std::uint64_t packets = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;

  if (packets == 1) {
    for (Pipe* s : stages) co_await s->transfer(bytes);
    co_return;
  }

  struct Shared {
    std::uint64_t remaining;
    sim::Trigger done;
    Shared(sim::Engine& e, std::uint64_t n) : remaining(n), done(e) {}
  };
  // Didactic reference path, used by tests only; the production data
  // path is NetFabric's pooled MsgFlow. simlint-allow: model-alloc
  auto shared = std::make_shared<Shared>(eng, packets);

  // Injection is closed-loop: packet p+1 enters the first stage only after
  // packet p has cleared it (the NIC has one injection engine). Competing
  // flows therefore interleave at packet granularity instead of one flow
  // reserving the whole stage up front. Downstream stages are pipelined.
  auto tail_task = [](std::vector<Pipe*>& stages, std::uint64_t pkt_bytes,
                      std::shared_ptr<Shared> sh) -> sim::Task<void> {
    for (std::size_t s = 1; s < stages.size(); ++s) {
      co_await stages[s]->transfer(pkt_bytes);
    }
    if (--sh->remaining == 0) sh->done.fire();
  };

  std::uint64_t left = bytes;
  for (std::uint64_t p = 0; p < packets; ++p) {
    const std::uint64_t pkt = left < mtu ? left : mtu;
    left -= pkt;
    co_await stages[0]->transfer(pkt);
    if (stages.size() > 1) {
      eng.spawn(tail_task(stages, pkt, shared));
    } else if (--shared->remaining == 0) {
      shared->done.fire();
    }
  }
  co_await shared->done.wait();
}

}  // namespace mns::model
