#include "model/regcache.hpp"

namespace mns::model {

sim::Time RegistrationCache::register_cost(std::uint64_t bytes) const {
  const std::uint64_t pages =
      (bytes + cfg_.page_bytes - 1) / cfg_.page_bytes;
  return cfg_.register_base +
         cfg_.register_per_page * static_cast<std::int64_t>(pages);
}

sim::Time RegistrationCache::acquire(std::uint64_t addr, std::uint64_t bytes) {
  const auto it = regions_.find(addr);
  if (it != regions_.end() && it->second.bytes >= bytes) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(addr);
    it->second.lru_pos = lru_.begin();
    return sim::Time::zero();
  }

  ++misses_;
  sim::Time cost;
  if (it != regions_.end()) {
    // Same base address but longer extent: re-register the region.
    pinned_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    regions_.erase(it);
    cost += cfg_.deregister_cost;
  }

  // Evict least-recently-used regions until the new one fits.
  while (pinned_bytes_ + bytes > cfg_.capacity_bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto vit = regions_.find(victim);
    pinned_bytes_ -= vit->second.bytes;
    regions_.erase(vit);
    cost += cfg_.deregister_cost;
    ++evictions_;
  }

  cost += register_cost(bytes);
  lru_.push_front(addr);
  regions_.emplace(addr, Region{bytes, lru_.begin()});
  pinned_bytes_ += bytes;
  return cost;
}

void RegistrationCache::clear() {
  regions_.clear();
  lru_.clear();
  pinned_bytes_ = 0;
}

}  // namespace mns::model
