#include "model/regcache.hpp"

#include "audit/audit.hpp"
#include "audit/report.hpp"

namespace mns::model {

sim::Time RegistrationCache::register_cost(std::uint64_t bytes) const {
  const std::uint64_t pages =
      (bytes + cfg_.page_bytes - 1) / cfg_.page_bytes;
  return cfg_.register_base +
         cfg_.register_per_page * static_cast<std::int64_t>(pages);
}

sim::Time RegistrationCache::acquire(std::uint64_t addr, std::uint64_t bytes) {
  ++acquires_;
  const auto it = regions_.find(addr);
  if (it != regions_.end() && it->second.bytes >= bytes) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(addr);
    it->second.lru_pos = lru_.begin();
    return sim::Time::zero();
  }

  ++misses_;
  sim::Time cost;
  if (it != regions_.end()) {
    // Same base address but longer extent: re-register the region.
    MNS_AUDIT(pinned_bytes_ >= it->second.bytes,
              "regcache: pinned_bytes underflow on re-registration");
    pinned_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    regions_.erase(it);
    ++reregisters_;
    cost += cfg_.deregister_cost;
  }

  // Evict least-recently-used regions until the new one fits.
  while (pinned_bytes_ + bytes > cfg_.capacity_bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto vit = regions_.find(victim);
    MNS_AUDIT(vit != regions_.end(),
              "regcache: LRU victim has no region entry");
    pinned_bytes_ -= vit->second.bytes;
    regions_.erase(vit);
    cost += cfg_.deregister_cost;
    ++evictions_;
  }

  cost += register_cost(bytes);
  lru_.push_front(addr);
  regions_.emplace(addr, Region{bytes, lru_.begin()});
  pinned_bytes_ += bytes;
  return cost;
}

void RegistrationCache::clear() {
  cleared_regions_ += regions_.size();
  regions_.clear();
  lru_.clear();
  pinned_bytes_ = 0;
}

void RegistrationCache::register_audits(audit::AuditReport& report,
                                        std::string name) const {
  report.add_check(std::move(name), [this](audit::AuditReport::Scope& s) {
    std::uint64_t live_bytes = 0;
    for (const auto& [addr, region] : regions_) live_bytes += region.bytes;
    s.require_eq(live_bytes, pinned_bytes_,
                 "pinned_bytes out of sync with live regions");
    s.require_eq(lru_.size(), regions_.size(),
                 "LRU list and region map diverged");
    for (const std::uint64_t addr : lru_) {
      const auto it = regions_.find(addr);
      if (it == regions_.end()) {
        s.fail("LRU entry " + std::to_string(addr) + " has no region");
      } else {
        s.require(*it->second.lru_pos == addr,
                  "region's lru_pos does not point at its LRU entry");
      }
    }
    s.require_eq(hits_ + misses_ + failures_, acquires_,
                 "hits + misses + injected failures != acquires");
    s.require_eq(misses_,
                 regions_.size() + evictions_ + reregisters_ +
                     cleared_regions_,
                 "region conservation broken: every miss inserts one "
                 "region; inserts must equal live + evicted + "
                 "re-registered + cleared");
    s.require(pinned_bytes_ <= cfg_.capacity_bytes || regions_.size() == 1,
              "pinned_bytes " + std::to_string(pinned_bytes_) +
                  " exceeds capacity " +
                  std::to_string(cfg_.capacity_bytes) +
                  " with more than one region resident");
  });
}

}  // namespace mns::model
