// Memory registration with a pin-down cache.
//
// InfiniBand (VAPI) and Myrinet (GM) require communication buffers to be
// registered (pinned + translated) before the NIC may DMA them. Because
// registration is expensive, MPI implementations keep registrations alive
// and de-register lazily (Tezuka et al.'s pin-down cache). Whether an
// application reuses buffers therefore decides whether the zero-copy path
// pays the registration cost every time — the mechanism behind the paper's
// Figs. 7 and 8.
//
// Buffers are identified by their (virtual address, length); the simulator
// uses synthetic addresses, which is all the cache semantics need.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::model {

struct RegCacheConfig {
  sim::Time register_base;      // per-registration syscall/pin cost
  sim::Time register_per_page;  // per-page translate+pin cost
  sim::Time deregister_cost;    // eviction cost (lazy dereg)
  std::uint64_t page_bytes;
  std::uint64_t capacity_bytes;  // max pinned bytes kept in the cache
};

class RegistrationCache {
 public:
  explicit RegistrationCache(const RegCacheConfig& cfg) : cfg_(cfg) {}

  /// Ensure [addr, addr+bytes) is registered. Returns the host CPU time
  /// this costs (zero on a cache hit). The caller charges it to its Cpu.
  sim::Time acquire(std::uint64_t addr, std::uint64_t bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Drop everything (e.g. between benchmark repetitions).
  void clear();

  const RegCacheConfig& config() const { return cfg_; }

  /// Finalize-time conservation checks (see audit/report.hpp):
  /// pinned_bytes == sum of live regions, hits + misses == acquires,
  /// region count conserved across inserts/evictions/clears, and the
  /// pinned total respects capacity (one oversized region excepted).
  void register_audits(audit::AuditReport& report, std::string name) const;

#if defined(MNS_AUDIT_ENABLED)
  /// Fault injection for audit tests only: desynchronize the pinned-byte
  /// counter from the live regions, as a lost deregistration would.
  void debug_leak_pinned_for_test(std::uint64_t bytes) {
    pinned_bytes_ += bytes;
  }
#endif

 private:
  struct Region {
    std::uint64_t bytes;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  sim::Time register_cost(std::uint64_t bytes) const;

  RegCacheConfig cfg_;
  std::unordered_map<std::uint64_t, Region> regions_;  // keyed by base addr
  std::list<std::uint64_t> lru_;                       // front = most recent
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reregisters_ = 0;     // same-base re-registrations (extent grew)
  std::uint64_t cleared_regions_ = 0;  // regions dropped by clear()
};

}  // namespace mns::model
