// Memory registration with a pin-down cache.
//
// InfiniBand (VAPI) and Myrinet (GM) require communication buffers to be
// registered (pinned + translated) before the NIC may DMA them. Because
// registration is expensive, MPI implementations keep registrations alive
// and de-register lazily (Tezuka et al.'s pin-down cache). Whether an
// application reuses buffers therefore decides whether the zero-copy path
// pays the registration cost every time — the mechanism behind the paper's
// Figs. 7 and 8.
//
// Buffers are identified by their (virtual address, length); the simulator
// uses synthetic addresses, which is all the cache semantics need.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "sim/time.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::model {

struct RegCacheConfig {
  sim::Time register_base;      // per-registration syscall/pin cost
  sim::Time register_per_page;  // per-page translate+pin cost
  sim::Time deregister_cost;    // eviction cost (lazy dereg)
  std::uint64_t page_bytes;
  std::uint64_t capacity_bytes;  // max pinned bytes kept in the cache
};

class RegistrationCache {
 public:
  explicit RegistrationCache(const RegCacheConfig& cfg) : cfg_(cfg) {}

  /// Ensure [addr, addr+bytes) is registered. Returns the host CPU time
  /// this costs (zero on a cache hit). The caller charges it to its Cpu.
  /// Never fails — the fault hook is consulted only by try_acquire().
  sim::Time acquire(std::uint64_t addr, std::uint64_t bytes);

  /// Fallible acquire: consults the fault hook first. On an injected
  /// failure the registration syscall is charged (register_base) but the
  /// cache is left untouched and ok == false; the caller chooses its
  /// degradation path (eager fallback or retry via acquire()).
  struct Acquired {
    sim::Time cost;
    bool ok;
  };
  Acquired try_acquire(std::uint64_t addr, std::uint64_t bytes) {
    if (fail_hook_ != nullptr && fail_hook_(fail_ctx_)) {
      ++acquires_;
      ++failures_;
      return {cfg_.register_base, false};
    }
    return {acquire(addr, bytes), true};
  }

  /// Deterministic registration-failure injection (src/fault): `fn(ctx)`
  /// returning true fails the next try_acquire. Raw function pointer, not
  /// std::function — this sits on the rendezvous hot path.
  using FailHook = bool (*)(void*);
  void set_fail_hook(FailHook fn, void* ctx) {
    fail_hook_ = fn;
    fail_ctx_ = ctx;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Drop everything (e.g. between benchmark repetitions).
  void clear();

  const RegCacheConfig& config() const { return cfg_; }

  /// Finalize-time conservation checks (see audit/report.hpp):
  /// pinned_bytes == sum of live regions, hits + misses == acquires,
  /// region count conserved across inserts/evictions/clears, and the
  /// pinned total respects capacity (one oversized region excepted).
  void register_audits(audit::AuditReport& report, std::string name) const;

#if defined(MNS_AUDIT_ENABLED)
  /// Fault injection for audit tests only: desynchronize the pinned-byte
  /// counter from the live regions, as a lost deregistration would.
  void debug_leak_pinned_for_test(std::uint64_t bytes) {
    pinned_bytes_ += bytes;
  }
#endif

 private:
  struct Region {
    std::uint64_t bytes;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  sim::Time register_cost(std::uint64_t bytes) const;

  RegCacheConfig cfg_;
  std::unordered_map<std::uint64_t, Region> regions_;  // keyed by base addr
  std::list<std::uint64_t> lru_;                       // front = most recent
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reregisters_ = 0;     // same-base re-registrations (extent grew)
  std::uint64_t cleared_regions_ = 0;  // regions dropped by clear()
  std::uint64_t failures_ = 0;         // injected registration failures
  FailHook fail_hook_ = nullptr;
  void* fail_ctx_ = nullptr;
};

}  // namespace mns::model
