// Crossbar switch model.
//
// All three interconnects in the paper use single-stage crossbar switches
// (InfiniScale 8-port, Myrinet-2000 8-port, Elite 16-port). We model a
// full crossbar: every output port is an independent serializing Pipe at
// link rate, plus a fixed port-to-port forwarding latency. Contention
// therefore only arises on output ports — exactly the crossbar guarantee.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "model/pipe.hpp"

namespace mns::model {

struct SwitchConfig {
  std::size_t ports;
  double port_bytes_per_second;  // per-output-port forwarding rate
  sim::Time forward_latency;     // crossbar traversal (cut-through setup)
  /// 0: one full crossbar (the paper's testbed). >0: two-level fat tree
  /// with leaves of this radix (see model/topology.hpp).
  std::size_t fat_tree_radix = 0;
};

class CrossbarSwitch {
 public:
  CrossbarSwitch(sim::Engine& eng, const SwitchConfig& cfg) : cfg_(cfg) {
    out_.reserve(cfg.ports);
    for (std::size_t i = 0; i < cfg.ports; ++i) {
      out_.emplace_back(eng, cfg.port_bytes_per_second, cfg.forward_latency);
    }
  }

  /// Partitioned construction: output port i's pipe lives on
  /// `port_eng[i]` — the engine of the partition owning the destination
  /// node, since a crossbar output port is only ever reserved by traffic
  /// *to* that node (the PDES ownership rule for the switching stage).
  /// Ports beyond port_eng.size() fall back to `eng`.
  CrossbarSwitch(sim::Engine& eng, const std::vector<sim::Engine*>& port_eng,
                 const SwitchConfig& cfg)
      : cfg_(cfg) {
    out_.reserve(cfg.ports);
    for (std::size_t i = 0; i < cfg.ports; ++i) {
      sim::Engine& e =
          i < port_eng.size() && port_eng[i] != nullptr ? *port_eng[i] : eng;
      out_.emplace_back(e, cfg.port_bytes_per_second, cfg.forward_latency);
    }
  }

  /// Forward one packet to output port `dst`.
  sim::Task<void> forward(std::size_t dst, std::uint64_t bytes) {
    return port(dst).transfer(bytes);
  }

  Pipe& port(std::size_t dst) {
    if (dst >= out_.size()) throw std::out_of_range("switch port");
    return out_[dst];
  }

  std::size_t ports() const { return out_.size(); }

  const SwitchConfig& config() const { return cfg_; }

 private:
  SwitchConfig cfg_;
  std::vector<Pipe> out_;
};

}  // namespace mns::model
