// Switch topologies.
//
// The paper's testbeds fit behind single crossbars (8-port InfiniScale /
// Myrinet-2000 / 16-port Elite). To project beyond that — the scalability
// question the paper's conclusion raises — we also model a two-level
// fat tree: leaf crossbars of a given radix, fully connected to a spine
// stage. Inter-leaf traffic crosses a shared per-leaf uplink and the
// spine, so hot-spot and all-to-all patterns contend where a single
// crossbar would not.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/switch.hpp"

namespace mns::model {

class SwitchTopology {
 public:
  virtual ~SwitchTopology() = default;
  /// Move one packet from `src` node's link to `dst` node's link through
  /// the switching stage(s).
  virtual sim::Task<void> route(int src, int dst, std::uint64_t bytes) = 0;
  virtual const char* name() const = 0;
};

/// Every node on one full crossbar (the paper's configuration).
class SingleCrossbar final : public SwitchTopology {
 public:
  SingleCrossbar(sim::Engine& eng, const SwitchConfig& cfg)
      : sw_(eng, cfg) {}

  sim::Task<void> route(int /*src*/, int dst, std::uint64_t bytes) override {
    return sw_.forward(static_cast<std::size_t>(dst), bytes);
  }
  const char* name() const override { return "crossbar"; }

 private:
  CrossbarSwitch sw_;
};

/// Two-level fat tree: nodes in groups of `leaf_radix` behind leaf
/// crossbars; one aggregated uplink/downlink pipe per leaf to the spine
/// crossbar. Same-leaf traffic never leaves the leaf.
class FatTree final : public SwitchTopology {
 public:
  FatTree(sim::Engine& eng, const SwitchConfig& cfg, std::size_t nodes,
          std::size_t leaf_radix)
      : leaf_radix_(leaf_radix) {
    const std::size_t leaves = (nodes + leaf_radix - 1) / leaf_radix;
    for (std::size_t l = 0; l < leaves; ++l) {
      SwitchConfig leaf_cfg = cfg;
      leaf_cfg.ports = leaf_radix;
      leaves_.push_back(std::make_unique<CrossbarSwitch>(eng, leaf_cfg));
      // Uplinks run at link rate: an oversubscription factor of
      // leaf_radix : 1 for traffic leaving the leaf.
      up_.push_back(std::make_unique<Pipe>(eng, cfg.port_bytes_per_second,
                                           cfg.forward_latency));
    }
    SwitchConfig spine_cfg = cfg;
    spine_cfg.ports = leaves;
    spine_ = std::make_unique<CrossbarSwitch>(eng, spine_cfg);
  }

  sim::Task<void> route(int src, int dst, std::uint64_t bytes) override {
    const std::size_t src_leaf = static_cast<std::size_t>(src) / leaf_radix_;
    const std::size_t dst_leaf = static_cast<std::size_t>(dst) / leaf_radix_;
    const std::size_t dst_port = static_cast<std::size_t>(dst) % leaf_radix_;
    if (src_leaf != dst_leaf) {
      co_await up_[src_leaf]->transfer(bytes);          // leaf -> spine
      co_await spine_->forward(dst_leaf, bytes);        // spine crossbar
    }
    co_await leaves_[dst_leaf]->forward(dst_port, bytes);  // leaf -> node
  }
  const char* name() const override { return "fat-tree"; }

  std::size_t leaf_radix() const { return leaf_radix_; }

 private:
  std::size_t leaf_radix_;
  std::vector<std::unique_ptr<CrossbarSwitch>> leaves_;
  std::vector<std::unique_ptr<Pipe>> up_;
  std::unique_ptr<CrossbarSwitch> spine_;
};

}  // namespace mns::model
