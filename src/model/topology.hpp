// Switch topologies.
//
// The paper's testbeds fit behind single crossbars (8-port InfiniScale /
// Myrinet-2000 / 16-port Elite). To project beyond that — the scalability
// question the paper's conclusion raises — we also model a two-level
// fat tree: leaf crossbars of a given radix, fully connected to a spine
// stage. Inter-leaf traffic crosses a shared per-leaf uplink and the
// spine, so hot-spot and all-to-all patterns contend where a single
// crossbar would not.
//
// A topology exposes its path as an ordered list of hop pipes (`hops`) so
// the fabric's pooled message state machines can reserve each stage
// without a coroutine; `route` is the coroutine convenience over the same
// hop list, used by the broadcast path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/switch.hpp"

namespace mns::model {

class SwitchTopology {
 public:
  /// Upper bound on switching-stage hops in any topology (fat tree:
  /// uplink, spine port, leaf port).
  static constexpr int kMaxHops = 3;

  virtual ~SwitchTopology() = default;

  /// Fill `out` with the switching-stage pipes a packet from `src` to
  /// `dst` crosses, in traversal order; returns the hop count (<=
  /// kMaxHops). The list depends only on (src, dst) — topologies route
  /// deterministically — so callers may reserve the hops stage by stage.
  virtual int hops(int src, int dst, Pipe* out[kMaxHops]) = 0;

  virtual const char* name() const = 0;

  /// Move one packet from `src` node's link to `dst` node's link through
  /// the switching stage(s).
  sim::Task<void> route(int src, int dst, std::uint64_t bytes) {
    Pipe* hop[kMaxHops];
    const int n = hops(src, dst, hop);
    for (int i = 0; i < n; ++i) co_await hop[i]->transfer(bytes);
  }

  /// Append every pipe in the switching stage to `out` (stats/audit use).
  virtual void collect_pipes(std::vector<Pipe*>& out) = 0;
};

/// Every node on one full crossbar (the paper's configuration).
class SingleCrossbar final : public SwitchTopology {
 public:
  SingleCrossbar(sim::Engine& eng, const SwitchConfig& cfg)
      : sw_(eng, cfg) {}
  /// Partitioned: port i on node i's owning engine (see CrossbarSwitch).
  SingleCrossbar(sim::Engine& eng, const std::vector<sim::Engine*>& port_eng,
                 const SwitchConfig& cfg)
      : sw_(eng, port_eng, cfg) {}

  int hops(int /*src*/, int dst, Pipe* out[kMaxHops]) override {
    out[0] = &sw_.port(static_cast<std::size_t>(dst));
    return 1;
  }
  const char* name() const override { return "crossbar"; }

  void collect_pipes(std::vector<Pipe*>& out) override {
    for (std::size_t p = 0; p < sw_.ports(); ++p) out.push_back(&sw_.port(p));
  }

 private:
  CrossbarSwitch sw_;
};

/// Two-level fat tree: nodes in groups of `leaf_radix` behind leaf
/// crossbars; one aggregated uplink/downlink pipe per leaf to the spine
/// crossbar. Same-leaf traffic never leaves the leaf.
class FatTree final : public SwitchTopology {
 public:
  FatTree(sim::Engine& eng, const SwitchConfig& cfg, std::size_t nodes,
          std::size_t leaf_radix)
      : leaf_radix_(leaf_radix) {
    const std::size_t leaves = (nodes + leaf_radix - 1) / leaf_radix;
    for (std::size_t l = 0; l < leaves; ++l) {
      SwitchConfig leaf_cfg = cfg;
      leaf_cfg.ports = leaf_radix;
      leaves_.push_back(std::make_unique<CrossbarSwitch>(eng, leaf_cfg));
      // Uplinks run at link rate: an oversubscription factor of
      // leaf_radix : 1 for traffic leaving the leaf.
      up_.push_back(std::make_unique<Pipe>(eng, cfg.port_bytes_per_second,
                                           cfg.forward_latency));
    }
    SwitchConfig spine_cfg = cfg;
    spine_cfg.ports = leaves;
    spine_ = std::make_unique<CrossbarSwitch>(eng, spine_cfg);
  }

  int hops(int src, int dst, Pipe* out[kMaxHops]) override {
    const std::size_t src_leaf = static_cast<std::size_t>(src) / leaf_radix_;
    const std::size_t dst_leaf = static_cast<std::size_t>(dst) / leaf_radix_;
    const std::size_t dst_port = static_cast<std::size_t>(dst) % leaf_radix_;
    int n = 0;
    if (src_leaf != dst_leaf) {
      out[n++] = up_[src_leaf].get();        // leaf -> spine
      out[n++] = &spine_->port(dst_leaf);    // spine crossbar
    }
    out[n++] = &leaves_[dst_leaf]->port(dst_port);  // leaf -> node
    return n;
  }
  const char* name() const override { return "fat-tree"; }

  void collect_pipes(std::vector<Pipe*>& out) override {
    for (auto& u : up_) out.push_back(u.get());
    for (std::size_t p = 0; p < spine_->ports(); ++p)
      out.push_back(&spine_->port(p));
    for (auto& leaf : leaves_) {
      for (std::size_t p = 0; p < leaf->ports(); ++p)
        out.push_back(&leaf->port(p));
    }
  }

  std::size_t leaf_radix() const { return leaf_radix_; }

 private:
  std::size_t leaf_radix_;
  std::vector<std::unique_ptr<CrossbarSwitch>> leaves_;
  std::vector<std::unique_ptr<Pipe>> up_;
  std::unique_ptr<CrossbarSwitch> spine_;
};

}  // namespace mns::model
