#include "mpi/ch_elan.hpp"

#include <cstring>

namespace mns::mpi {

namespace {
Status status_of(const Envelope& env) {
  return Status{env.src, env.tag, env.bytes};
}
Status error_status(const Envelope& env) {
  return Status{env.src, env.tag, env.bytes, kErrFabric};
}
}  // namespace

ElanChannelConfig default_elan_channel_config() {
  return ElanChannelConfig{
      // Posting Tport descriptors is host-expensive: Quadrics' measured
      // overhead is ~3.3 us combined (Fig. 3) despite its lowest latency.
      .o_send = sim::Time::usec(1.7),
      .o_recv = sim::Time::usec(0.8),
      .o_unexpected = sim::Time::usec(0.8),
      .o_complete = sim::Time::usec(0.8),
      .nic_match_per_entry = sim::Time::usec(1.9),
      .hw_bcast_overhead = sim::Time::usec(8.0),
      .ctrl_bytes = 32,
      .buffered_max = 4096,
  };
}

ElanChannel::ElanChannel(Mpi& mpi, elan::ElanFabric& fabric,
                         ElanChannelConfig cfg)
    : mpi_(&mpi), fabric_(&fabric), cfg_(cfg) {}

std::uint64_t ElanChannel::memory_bytes(int node) const {
  return fabric_->memory_bytes(node);
}

sim::Task<void> ElanChannel::start_send(SendOp op) {
  auto& sp = mpi_->proc(op.env.src);
  co_await sp.cpu().busy(cfg_.o_send);

  const Envelope env = op.env;
  auto req = op.req;
  const bool buffered = !op.synchronous && env.bytes <= cfg_.buffered_max;
  const View src_view = op.buf;

  // Buffered (small) sends may complete before delivery, so the payload
  // must be captured up front; large sends are zero-copy and the payload
  // is read inside remote_arrival (before the sender resumes).
  auto payload_slot = std::make_shared<std::vector<std::byte>>();
  if (buffered && !src_view.synthetic() && env.bytes > 0) {
    payload_slot->assign(src_view.data(), src_view.data() + env.bytes);
  }

  // MPI_Ssend semantics: completion is tied to the receiver's match, not
  // to delivery into the Elan system buffer.
  const auto sync_req =
      op.synchronous ? req : std::shared_ptr<RequestState>{};

  model::NetMsg m;
  m.src = mpi_->node_of(env.src);
  m.dst = mpi_->node_of(env.dst);
  m.bytes = cfg_.ctrl_bytes + env.bytes;
  m.src_addr = src_view.addr();
  m.dst_addr = 0;  // final placement decided by NIC matching on arrival
  m.complete_on_delivery = !buffered;
  if (!sync_req) {
    m.local_complete = [req, env] { req->complete(status_of(env)); };
  }
  m.remote_arrival = [this, env, payload_slot, src_view, sync_req] {
    on_arrival(env, payload_slot, src_view, sync_req);
  };
  m.on_failed = [this, req, env] {
    // Elan hardware retry exhausted. Buffered sends already completed at
    // NIC-clear; zero-copy and synchronous ones complete with the error
    // here. The receiver learns of the failure through NIC matching (the
    // error envelope), exactly where the data would have matched.
    if (!req->done) req->complete(error_status(env));
    // Fires on the sender's partition; the receiver's matcher lives on
    // its own — route the error-envelope match there.
    fabric_->run_on_node(mpi_->node_of(env.src), mpi_->node_of(env.dst),
                         [this, env] { on_failed_arrival(env); });
  };
  fabric_->post(std::move(m));
}

void ElanChannel::on_arrival(
    Envelope env, std::shared_ptr<std::vector<std::byte>> payload_slot,
    View src_view, std::shared_ptr<RequestState> sync_req) {
  // NIC-side matching: runs NOW, regardless of what the host is doing.
  auto& rp = mpi_->proc(env.dst);
  const int dnode = mpi_->node_of(env.dst);

  // The Elan walks its posted-receive list in NIC memory: each extra
  // entry costs NIC time (heavy when many receives are outstanding, e.g.
  // during an alltoall).
  const std::size_t posted = rp.matcher().posted_count();
  const sim::Time scan =
      posted > 1
          ? cfg_.nic_match_per_entry * static_cast<std::int64_t>(posted - 1)
          : sim::Time::zero();

  if (auto pr = rp.matcher().match_arrival(env)) {
    // Matched a posted receive: the NIC DMAs straight into the user
    // buffer; the destination pages may stall the NIC MMU.
    const sim::Time stall =
        scan + fabric_->mmu(dnode).access(pr->buf.addr(), env.bytes);
    auto shared_pr = std::make_shared<PostedRecv>(std::move(*pr));
    // Payload: buffered small sends carry a captured copy; zero-copy large
    // sends read the source view, still intact at this instant.
    if (!shared_pr->buf.synthetic()) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(env.bytes, shared_pr->buf.bytes()));
      if (!payload_slot->empty()) {
        std::memcpy(shared_pr->buf.data(), payload_slot->data(), n);
      } else {
        copy_payload(src_view, shared_pr->buf, n);
      }
    }
    if (sync_req) sync_req->complete(status_of(env));  // matched: ssend done
    rp.cpu().accrue_overhead(cfg_.o_complete);
    // The scan + MMU work occupies the NIC processor, serializing with
    // other arrivals (this is what makes a many-receiver burst like
    // alltoall expensive on Quadrics, Fig. 11).
    mpi_->engine_of(env.dst).spawn(
        [](ElanChannel& self, int dnode, sim::Time stall,
           std::shared_ptr<PostedRecv> pr, Envelope env) -> sim::Task<void> {
          co_await self.fabric_->occupy_nic(dnode, stall);
          co_await self.mpi_->engine_of(env.dst).delay(self.cfg_.o_complete);
          pr->req->complete(status_of(env));
        }(*this, dnode, stall, shared_pr, env),
        /*daemon=*/true);
    return;
  }

  // Unexpected: lands in the Elan system buffer. Capture the payload now
  // (zero-copy source is still valid at this instant).
  if (payload_slot->empty() && !src_view.synthetic() && env.bytes > 0) {
    payload_slot->assign(src_view.data(), src_view.data() + env.bytes);
  }
  rp.matcher().add_unexpected(
      {env,
       [this, env, payload_slot, sync_req](PostedRecv pr) -> sim::Task<void> {
         if (sync_req) sync_req->complete(status_of(env));
         // Receiver claims from the system buffer: copy-out on the host.
         auto& rp2 = mpi_->proc(env.dst);
         const int dn = mpi_->node_of(env.dst);
         const sim::Time cost =
             cfg_.o_unexpected +
             fabric_->node(dn).mem().copy_time(env.bytes);
         co_await rp2.cpu().busy(cost);
         if (!pr.buf.synthetic() && !payload_slot->empty()) {
           std::memcpy(pr.buf.data(), payload_slot->data(),
                       static_cast<std::size_t>(std::min<std::uint64_t>(
                           env.bytes, pr.buf.bytes())));
         }
         pr.req->complete(status_of(env));
       }});
}

void ElanChannel::on_failed_arrival(const Envelope& env) {
  // NIC context (like on_arrival): the error envelope goes through the
  // same Tport matching the data would have, so the receive completes
  // with Status::error instead of hanging.
  auto& rp = mpi_->proc(env.dst);
  if (auto pr = rp.matcher().match_arrival(env)) {
    pr->req->complete(error_status(env));
    return;
  }
  rp.matcher().add_unexpected(
      {env, [env](PostedRecv pr) -> sim::Task<void> {
         pr.req->complete(error_status(env));
         co_return;
       }});
}

void ElanChannel::hw_broadcast(Rank root, std::uint64_t bytes,
                               std::uint64_t addr,
                               std::function<void()> done) {
  // The hardware does the fan-out; the software envelope (posting the
  // broadcast descriptor, completion notification to every rank) still
  // costs a fixed overhead at MPI level.
  auto* eng = &mpi_->engine();
  const sim::Time extra = cfg_.hw_bcast_overhead;
  fabric_->post_hw_broadcast(
      mpi_->node_of(root), bytes, addr,
      [eng, extra, done = std::move(done)] { eng->after(extra, done); });
}

}  // namespace mns::mpi
