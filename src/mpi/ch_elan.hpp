// MPI device over Quadrics Tports.
//
// Tag matching runs ON the Elan NIC, so — unlike ch_ib/ch_gm — arrival
// handlers never wait for the host: a message arriving while the
// application computes is matched and delivered immediately. Combined with
// the absence of a rendezvous handshake, this is what gives Quadrics its
// steadily-growing overlap potential (paper Fig. 6) at the price of higher
// host overhead per descriptor (Fig. 3).
//
// Intra-node traffic loops through the NIC (the fabric charges its
// loopback penalty): Quadrics' MPI has no effective shared-memory path,
// making intra-node latency *worse* than inter-node (Fig. 9).
#pragma once

#include <memory>
#include <vector>

#include "elan/elan_fabric.hpp"
#include "mpi/device.hpp"
#include "mpi/mpi.hpp"

namespace mns::mpi {

struct ElanChannelConfig {
  sim::Time o_send;            // host CPU posting a Tport send descriptor
  sim::Time o_recv;            // host CPU posting/completing a receive
  sim::Time o_unexpected;      // extra host cost claiming a buffered message
  sim::Time o_complete;        // host cost reaping a completed receive
  sim::Time nic_match_per_entry;  // Elan NIC scan cost per extra posted
                                  // receive it walks during tag matching
  sim::Time hw_bcast_overhead;  // software envelope around the hardware
                                // broadcast (descriptor + completion)
  bool use_hw_bcast = true;     // ablation: fall back to p2p collectives
  std::uint64_t ctrl_bytes;    // Tport header wire size
  std::uint64_t buffered_max;  // sends <= this complete at NIC-clear
};

ElanChannelConfig default_elan_channel_config();

class ElanChannel final : public Device {
 public:
  ElanChannel(Mpi& mpi, elan::ElanFabric& fabric, ElanChannelConfig cfg);

  sim::Task<void> start_send(SendOp op) override;
  sim::Time recv_post_cost() const override { return cfg_.o_recv; }
  bool has_hw_broadcast() const override { return cfg_.use_hw_bcast; }
  void hw_broadcast(Rank root, std::uint64_t bytes, std::uint64_t addr,
                    std::function<void()> done) override;
  std::uint64_t memory_bytes(int node) const override;
  const char* name() const override { return "ch_elan"; }

 private:
  void on_arrival(Envelope env,
                  std::shared_ptr<std::vector<std::byte>> payload_slot,
                  View src_view,
                  std::shared_ptr<RequestState> sync_req);
  /// Fabric retry exhaustion: surface the error envelope through NIC
  /// matching so the receive side completes with Status::error.
  void on_failed_arrival(const Envelope& env);

  Mpi* mpi_;
  elan::ElanFabric* fabric_;
  ElanChannelConfig cfg_;
};

}  // namespace mns::mpi
