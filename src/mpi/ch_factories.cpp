#include "mpi/ch_factories.hpp"

namespace mns::mpi {

namespace {

shm::ShmConfig ib_shm_config() {
  // ~1.6 us small-message intra-node latency (Fig. 9). Same cache
  // thrashing as the GM path, but MVAPICH only uses shm below 16 KB.
  auto copy = model::xeon_2003_memcpy();
  copy.dram_rate = 280e6;
  return shm::ShmConfig{
      .post_cost = sim::Time::ns(250),
      .poll_cost = sim::Time::ns(220),
      .visibility_delay = sim::Time::ns(200),
      .copy = copy,
  };
}

shm::ShmConfig gm_shm_config() {
  // ~1.3 us small-message intra-node latency; MPICH-GM's shm device is the
  // leanest of the three (Fig. 9). Large ping-ponged buffers thrash the
  // caches of BOTH CPUs (producer writes + consumer reads), so the
  // streaming rate is far below a single process's memcpy (Fig. 10 droop).
  auto copy = model::xeon_2003_memcpy();
  copy.dram_rate = 280e6;
  return shm::ShmConfig{
      .post_cost = sim::Time::ns(380),
      .poll_cost = sim::Time::ns(360),
      .visibility_delay = sim::Time::ns(200),
      .copy = copy,
  };
}

}  // namespace

RdvChannelConfig default_ch_ib_config() {
  return RdvChannelConfig{
      .name = "ch_ib",
      .eager_threshold = 2048,          // Fig. 2's bandwidth dip at 2 KB
      .smp_threshold = 16 << 10,        // shm below, NIC loopback above
      .o_send = sim::Time::ns(780),
      .o_recv = sim::Time::ns(700),
      .o_ctrl = sim::Time::ns(400),
      .o_match_entry = sim::Time::ns(900),
      .ctrl_bytes = 64,
      .use_regcache = true,
      .shm = ib_shm_config(),
  };
}

RdvChannelConfig default_ch_gm_config() {
  return RdvChannelConfig{
      .name = "ch_gm",
      .eager_threshold = 16 << 10,      // Fig. 7: reuse-insensitive < 16 KB
      .smp_threshold = UINT64_MAX,      // shm for every intra-node size
      .o_send = sim::Time::ns(250),
      .o_recv = sim::Time::ns(400),
      .o_ctrl = sim::Time::ns(200),
      .o_match_entry = sim::Time::ns(250),
      .allreduce_recursive_doubling = true,  // MPICH 1.2.5 base
      .ctrl_bytes = 64,
      .use_regcache = true,
      .shm = gm_shm_config(),
  };
}

std::unique_ptr<Device> make_ch_ib(Mpi& mpi, ib::IbFabric& fabric,
                                   const RdvChannelConfig& cfg) {
  return std::make_unique<RdvChannel>(
      mpi, fabric, cfg,
      [&fabric](int node) -> model::RegistrationCache& {
        return fabric.regcache(node);
      },
      [&fabric](int node) { return fabric.memory_bytes(node); });
}

std::unique_ptr<Device> make_ch_gm(Mpi& mpi, gm::GmFabric& fabric,
                                   const RdvChannelConfig& cfg) {
  return std::make_unique<RdvChannel>(
      mpi, fabric, cfg,
      [&fabric](int node) -> model::RegistrationCache& {
        return fabric.regcache(node);
      },
      [&fabric](int node) { return fabric.memory_bytes(node); });
}

std::unique_ptr<Device> make_ch_elan(Mpi& mpi, elan::ElanFabric& fabric,
                                     const ElanChannelConfig& cfg) {
  return std::make_unique<ElanChannel>(mpi, fabric, cfg);
}

}  // namespace mns::mpi
