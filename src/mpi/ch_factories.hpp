// Factories assembling the three MPI devices with their calibrated
// channel parameters (thresholds and host overheads from the paper's
// micro-benchmarks, Section 3).
#pragma once

#include <memory>

#include "elan/elan_fabric.hpp"
#include "gm/gm_fabric.hpp"
#include "ib/ib_fabric.hpp"
#include "mpi/ch_elan.hpp"
#include "mpi/ch_rdv.hpp"

namespace mns::mpi {

/// MVAPICH-style device: eager below 2 KB over the RDMA ring, rendezvous
/// with registration above; shared memory intra-node below 16 KB, NIC
/// loopback above.
RdvChannelConfig default_ch_ib_config();

/// MPICH-GM-style device: copy-eager below 16 KB, directed-send rendezvous
/// above; shared memory for all intra-node sizes.
RdvChannelConfig default_ch_gm_config();

std::unique_ptr<Device> make_ch_ib(Mpi& mpi, ib::IbFabric& fabric,
                                   const RdvChannelConfig& cfg);
std::unique_ptr<Device> make_ch_gm(Mpi& mpi, gm::GmFabric& fabric,
                                   const RdvChannelConfig& cfg);
std::unique_ptr<Device> make_ch_elan(Mpi& mpi, elan::ElanFabric& fabric,
                                     const ElanChannelConfig& cfg);

}  // namespace mns::mpi
