#include "mpi/ch_rdv.hpp"

#include <cstring>

namespace mns::mpi {

namespace {
Status status_of(const Envelope& env) {
  return Status{env.src, env.tag, env.bytes};
}
Status error_status(const Envelope& env) {
  return Status{env.src, env.tag, env.bytes, kErrFabric};
}
}  // namespace

std::function<void(std::function<void()>)> RdvChannel::host_gate(
    Proc& proc) const {
  if (cfg_.nic_progress) {
    return [](std::function<void()> fn) { fn(); };
  }
  return [&proc](std::function<void()> fn) {
    proc.host_action(std::move(fn));
  };
}

sim::Time RdvChannel::match_scan_cost(Proc& rp) const {
  // MPICH walks the posted queue linearly; entries beyond the first cost.
  const std::size_t posted = rp.matcher().posted_count();
  return posted > 1
             ? cfg_.o_match_entry * static_cast<std::int64_t>(posted - 1)
             : sim::Time::zero();
}

RdvChannel::RdvChannel(Mpi& mpi, model::NetFabric& fabric,
                       RdvChannelConfig cfg,
                       std::function<model::RegistrationCache&(int)> regcache,
                       std::function<std::uint64_t(int)> memory)
    : mpi_(&mpi),
      fabric_(&fabric),
      cfg_(std::move(cfg)),
      regcache_(std::move(regcache)),
      memory_(std::move(memory)) {
  shm_.reserve(fabric_->node_count());
  for (std::size_t n = 0; n < fabric_->node_count(); ++n) {
    // Intra-node traffic only ever touches the node's own domain, so each
    // domain lives on the engine owning that node's partition.
    shm_.push_back(std::make_unique<shm::ShmDomain>(
        fabric_->node_engine(static_cast<int>(n)), cfg_.shm));
  }
}

std::uint64_t RdvChannel::memory_bytes(int node) const {
  return memory_(node);
}

void RdvChannel::hw_broadcast(Rank root, std::uint64_t bytes,
                              std::uint64_t /*addr*/,
                              std::function<void()> done) {
  fabric_->post_switch_broadcast(mpi_->node_of(root), bytes,
                                 cfg_.hw_bcast_overhead, std::move(done));
}

std::shared_ptr<std::vector<std::byte>> RdvChannel::capture(
    const View& v) const {
  auto out = std::make_shared<std::vector<std::byte>>();
  if (!v.synthetic() && v.bytes() > 0) {
    out->assign(v.data(), v.data() + v.bytes());
  }
  return out;
}

sim::Task<void> RdvChannel::start_send(SendOp op) {
  auto& sp = mpi_->proc(op.env.src);
  co_await sp.cpu().busy(cfg_.o_send);
  const bool intra = mpi_->same_node(op.env.src, op.env.dst);
  if (op.synchronous) {
    // MPI_Ssend: the rendezvous handshake IS the synchronization.
    co_await send_rendezvous(std::move(op));
  } else if (intra && op.env.bytes < cfg_.smp_threshold) {
    co_await send_shm(std::move(op));
  } else if (op.env.bytes < cfg_.eager_threshold) {
    co_await send_eager(std::move(op));  // loopback when intra
  } else {
    co_await send_rendezvous(std::move(op));
  }
}

// --- shared memory path ---------------------------------------------------

sim::Task<void> RdvChannel::send_shm(SendOp op) {
  const int node = mpi_->node_of(op.env.src);
  auto payload = capture(op.buf);
  const Envelope env = op.env;
  auto req = op.req;

  shm::ShmMsg m;
  m.src_rank = env.src;
  m.dst_rank = env.dst;
  m.bytes = env.bytes;
  m.remote_arrival = [this, env, payload] { on_shm_arrival(env, payload); };
  co_await shm_[static_cast<std::size_t>(node)]->send_copy(std::move(m));
  req->complete(status_of(env));  // buffered: sender is done after copy-in
}

void RdvChannel::on_shm_arrival(
    Envelope env, std::shared_ptr<std::vector<std::byte>> payload) {
  auto& rp = mpi_->proc(env.dst);
  auto& dom = *shm_[static_cast<std::size_t>(mpi_->node_of(env.dst))];
  const sim::Time cost = dom.recv_cost(env.bytes) + match_scan_cost(rp);
  host_gate(rp)([this, env, payload, cost, &rp] {
    if (auto pr = rp.matcher().match_arrival(env)) {
      deliver_buffered(env, payload, std::move(*pr), cost);
    } else {
      rp.matcher().add_unexpected(
          {env, [this, env, payload, cost](PostedRecv pr) -> sim::Task<void> {
             auto& rp2 = mpi_->proc(env.dst);
             co_await rp2.cpu().busy(cost);
             if (!pr.buf.synthetic() && !payload->empty()) {
               std::memcpy(pr.buf.data(), payload->data(),
                           static_cast<std::size_t>(
                               std::min<std::uint64_t>(env.bytes,
                                                       pr.buf.bytes())));
             }
             pr.req->complete(status_of(env));
           }});
    }
  });
}

// --- fabric-error degradation ----------------------------------------------
//
// When a fabric's recovery protocol exhausts its retry budget the message's
// on_failed hook fires instead of the remaining completion callbacks. The
// device's job is to make sure no request hangs: the sender side completes
// with an error Status, and the receiver side learns about the failure
// through its matcher — the "error envelope" matches exactly like the data
// would have, so a posted (or future) receive completes with
// Status::error == kErrFabric instead of waiting forever.

void RdvChannel::fail_recv_side(const Envelope& env, int from_node) {
  // on_failed hooks fire on the engine owning the failed message's source
  // node; the receiver's matcher and CPU belong to its own partition, so
  // the teardown routes there (inline when they share a partition).
  fabric_->run_on_node(from_node, mpi_->node_of(env.dst), [this, env] {
    auto& rp = mpi_->proc(env.dst);
    host_gate(rp)([this, env, &rp] {
      rp.cpu().accrue_overhead(cfg_.o_recv);
      if (auto pr = rp.matcher().match_arrival(env)) {
        pr->req->complete(error_status(env));
      } else {
        rp.matcher().add_unexpected(
            {env, [env](PostedRecv pr) -> sim::Task<void> {
               pr.req->complete(error_status(env));
               co_return;
             }});
      }
    });
  });
}

void RdvChannel::fail_rendezvous(std::shared_ptr<RdvState> st,
                                 int from_node) {
  const Envelope env = st->send.env;
  // Each side's request completes on its own partition; the done flags
  // are checked inside the routed closures, where the owning engine's
  // view of them is current.
  fabric_->run_on_node(from_node, mpi_->node_of(env.src), [st, env] {
    if (!st->send.req->done) st->send.req->complete(error_status(env));
  });
  fabric_->run_on_node(from_node, mpi_->node_of(env.dst), [this, st, env] {
    if (st->recv_matched) {
      // The receiver already matched (RTS made it); complete its request
      // directly rather than re-running the matcher.
      if (!st->recv.req->done) st->recv.req->complete(error_status(env));
    } else {
      fail_recv_side(env, mpi_->node_of(env.dst));
    }
  });
}

// --- eager path -------------------------------------------------------------

sim::Task<void> RdvChannel::send_eager(SendOp op) {
  auto& sp = mpi_->proc(op.env.src);
  const int snode = mpi_->node_of(op.env.src);
  const int dnode = mpi_->node_of(op.env.dst);
  // Copy into pre-registered staging: sender CPU pays the memcpy.
  co_await sp.cpu().busy(
      fabric_->node(snode).mem().copy_time(op.env.bytes));
  auto payload = capture(op.buf);
  const Envelope env = op.env;
  auto req = op.req;

  model::NetMsg m;
  m.src = snode;
  m.dst = dnode;
  m.bytes = cfg_.ctrl_bytes + env.bytes;
  m.complete_on_delivery = false;
  m.local_complete = [req, env] { req->complete(status_of(env)); };
  m.remote_arrival = [this, env, payload] { on_eager_arrival(env, payload); };
  m.on_failed = [this, req, env] {
    // Eager sends complete when the data leaves the NIC, so the send
    // request is normally already done here; only the receiver still
    // waits on the lost payload. Fires on the sender's partition.
    if (!req->done) req->complete(error_status(env));
    fail_recv_side(env, mpi_->node_of(env.src));
  };
  fabric_->post(std::move(m));
}

void RdvChannel::on_eager_arrival(
    Envelope env, std::shared_ptr<std::vector<std::byte>> payload) {
  auto& rp = mpi_->proc(env.dst);
  const int dnode = mpi_->node_of(env.dst);
  const sim::Time cost = cfg_.o_recv +
                         fabric_->node(dnode).mem().copy_time(env.bytes) +
                         match_scan_cost(rp);
  host_gate(rp)([this, env, payload, cost, &rp] {
    if (auto pr = rp.matcher().match_arrival(env)) {
      deliver_buffered(env, payload, std::move(*pr), cost);
    } else {
      rp.matcher().add_unexpected(
          {env, [this, env, payload, cost](PostedRecv pr) -> sim::Task<void> {
             auto& rp2 = mpi_->proc(env.dst);
             co_await rp2.cpu().busy(cost);
             if (!pr.buf.synthetic() && !payload->empty()) {
               std::memcpy(pr.buf.data(), payload->data(),
                           static_cast<std::size_t>(
                               std::min<std::uint64_t>(env.bytes,
                                                       pr.buf.bytes())));
             }
             pr.req->complete(status_of(env));
           }});
    }
  });
}

void RdvChannel::deliver_buffered(
    const Envelope& env, std::shared_ptr<std::vector<std::byte>> payload,
    PostedRecv pr, sim::Time cost) {
  auto& rp = mpi_->proc(env.dst);
  rp.cpu().accrue_overhead(cost);
  auto shared_pr = std::make_shared<PostedRecv>(std::move(pr));
  // Completion processing runs on the receiving host CPU: concurrent
  // arrivals serialize through the rank's host-work queue.
  mpi_->engine_of(env.dst).spawn(
      [](Proc& rp, sim::Time cost, Envelope env,
         std::shared_ptr<std::vector<std::byte>> payload,
         std::shared_ptr<PostedRecv> pr) -> sim::Task<void> {
        co_await rp.host_work().occupy(cost);
        if (!pr->buf.synthetic() && !payload->empty()) {
          std::memcpy(pr->buf.data(), payload->data(),
                      static_cast<std::size_t>(std::min<std::uint64_t>(
                          env.bytes, pr->buf.bytes())));
        }
        pr->req->complete(status_of(env));
      }(rp, cost, env, payload, shared_pr),
      /*daemon=*/true);
}

// --- rendezvous path --------------------------------------------------------

sim::Task<void> RdvChannel::send_rendezvous(SendOp op) {
  auto& sp = mpi_->proc(op.env.src);
  const int snode = mpi_->node_of(op.env.src);
  if (cfg_.use_regcache) {
    const auto reg = regcache_(snode).try_acquire(op.buf.addr(),
                                                  op.env.bytes);
    if (reg.cost > sim::Time::zero()) co_await sp.cpu().busy(reg.cost);
    if (!reg.ok) {
      if (!op.synchronous) {
        // Pin-down failed: degrade to the copy-in eager path, which only
        // needs the pre-registered staging buffers. Slower (extra copy),
        // but the send makes progress.
        co_await send_eager(std::move(op));
        co_return;
      }
      // MPI_Ssend must keep the rendezvous handshake — model the driver
      // retrying the (transient) registration failure.
      const sim::Time retry =
          regcache_(snode).acquire(op.buf.addr(), op.env.bytes);
      if (retry > sim::Time::zero()) co_await sp.cpu().busy(retry);
    }
  }

  auto st = std::make_shared<RdvState>();
  st->send = std::move(op);

  model::NetMsg rts;
  rts.src = snode;
  rts.dst = mpi_->node_of(st->send.env.dst);
  rts.bytes = cfg_.ctrl_bytes;
  rts.remote_arrival = [this, st] { on_rts(st); };
  rts.on_failed = [this, st, snode] { fail_rendezvous(st, snode); };
  fabric_->post(std::move(rts));
}

void RdvChannel::on_rts(std::shared_ptr<RdvState> st) {
  auto& rp = mpi_->proc(st->send.env.dst);
  host_gate(rp)([this, st, &rp] {
    rp.cpu().accrue_overhead(match_scan_cost(rp));
    if (auto pr = rp.matcher().match_arrival(st->send.env)) {
      st->recv = std::move(*pr);
      st->recv_matched = true;
      issue_cts(st);
    } else {
      rp.matcher().add_unexpected(
          {st->send.env, [this, st](PostedRecv pr) -> sim::Task<void> {
             st->recv = std::move(pr);
             st->recv_matched = true;
             auto& rp2 = mpi_->proc(st->send.env.dst);
             const int dnode = mpi_->node_of(st->send.env.dst);
             sim::Time cost = cfg_.o_ctrl;
             if (cfg_.use_regcache) {
               const auto reg = regcache_(dnode).try_acquire(
                   st->recv.buf.addr(), st->send.env.bytes);
               cost += reg.cost;
               // The receive buffer must be pinned before the CTS can
               // advertise it; retry a transient failure.
               if (!reg.ok) {
                 cost += regcache_(dnode).acquire(st->recv.buf.addr(),
                                                  st->send.env.bytes);
               }
             }
             co_await rp2.cpu().busy(cost);
             // CTS back to the sender.
             model::NetMsg cts;
             cts.src = dnode;
             cts.dst = mpi_->node_of(st->send.env.src);
             cts.bytes = cfg_.ctrl_bytes;
             cts.remote_arrival = [this, st] { on_cts(st); };
             cts.on_failed = [this, st, dnode] {
               fail_rendezvous(st, dnode);
             };
             fabric_->post(std::move(cts));
           }});
    }
  });
}

void RdvChannel::issue_cts(std::shared_ptr<RdvState> st) {
  auto& rp = mpi_->proc(st->send.env.dst);
  const int dnode = mpi_->node_of(st->send.env.dst);
  sim::Time cost = cfg_.o_ctrl;
  if (cfg_.use_regcache) {
    const auto reg =
        regcache_(dnode).try_acquire(st->recv.buf.addr(),
                                     st->send.env.bytes);
    cost += reg.cost;
    // See on_rts: a failed receive-buffer pin is retried before the CTS.
    if (!reg.ok) {
      cost += regcache_(dnode).acquire(st->recv.buf.addr(),
                                       st->send.env.bytes);
    }
  }
  rp.cpu().accrue_overhead(cost);
  mpi_->engine_of(st->send.env.dst)
      .spawn(
          [](RdvChannel& self, Proc& rp, sim::Time cost,
             std::shared_ptr<RdvState> st, int dnode) -> sim::Task<void> {
            co_await rp.host_work().occupy(cost);
            model::NetMsg cts;
            cts.src = dnode;
            cts.dst = self.mpi_->node_of(st->send.env.src);
            cts.bytes = self.cfg_.ctrl_bytes;
            cts.remote_arrival = [&self, st] { self.on_cts(st); };
            cts.on_failed = [&self, st, dnode] {
              self.fail_rendezvous(st, dnode);
            };
            self.fabric_->post(std::move(cts));
          }(*this, rp, cost, st, dnode),
          /*daemon=*/true);
}

void RdvChannel::on_cts(std::shared_ptr<RdvState> st) {
  auto& sp = mpi_->proc(st->send.env.src);
  host_gate(sp)([this, st, &sp] {
    sp.cpu().accrue_overhead(cfg_.o_ctrl);
    // CTS processing occupies the sender host before the data goes out;
    // with many rendezvous sends in flight these serialize — part of why
    // the paper's Fig. 2 bandwidth dips at the eager->rendezvous switch.
    mpi_->engine_of(st->send.env.src)
        .spawn(
            [](RdvChannel& self, Proc& sp,
               std::shared_ptr<RdvState> st) -> sim::Task<void> {
              co_await sp.host_work().occupy(self.cfg_.o_ctrl);
              self.post_rendezvous_data(st);
            }(*this, sp, st),
            /*daemon=*/true);
  });
}

void RdvChannel::post_rendezvous_data(std::shared_ptr<RdvState> st) {
  const Envelope env = st->send.env;

  model::NetMsg data;
  data.src = mpi_->node_of(env.src);
  data.dst = mpi_->node_of(env.dst);
  data.bytes = cfg_.ctrl_bytes + env.bytes;
  data.src_addr = st->send.buf.addr();
  data.dst_addr = st->recv.buf.addr();
  data.complete_on_delivery = true;  // RDMA/directed-send ack semantics
  data.local_complete = [this, st, env] {
    // The RDMA write has completed at the sender: the send request is
    // done, and a FIN control message tells the receiver the data is in
    // place (RDMA writes deliver no receiver-side completion by
    // themselves). The FIN trails the data on the same FIFO path.
    st->send.req->complete(status_of(env));
    model::NetMsg fin;
    fin.src = mpi_->node_of(env.src);
    fin.dst = mpi_->node_of(env.dst);
    fin.bytes = cfg_.ctrl_bytes;
    fin.remote_arrival = [this, st, env] {
      auto& rp = mpi_->proc(env.dst);
      rp.cpu().accrue_overhead(cfg_.o_recv);
      mpi_->engine_of(env.dst).spawn(
          [](RdvChannel& self, Proc& rp,
             std::shared_ptr<RdvState> st, Envelope env) -> sim::Task<void> {
            co_await rp.host_work().occupy(self.cfg_.o_recv);
            st->recv.req->complete(status_of(env));
          }(*this, rp, st, env),
          /*daemon=*/true);
    };
    fin.on_failed = [this, st, env] {
      fail_rendezvous(st, mpi_->node_of(env.src));
    };
    fabric_->post(std::move(fin));
  };
  data.remote_arrival = [st, env] {
    // Zero-copy delivery: payload lands directly in the receive buffer
    // (the sender has not resumed yet, so its view is intact).
    copy_payload(st->send.buf, st->recv.buf,
                 std::min<std::uint64_t>(env.bytes, st->recv.buf.bytes()));
  };
  data.on_failed = [this, st, env] {
    fail_rendezvous(st, mpi_->node_of(env.src));
  };
  fabric_->post(std::move(data));
}

}  // namespace mns::mpi
