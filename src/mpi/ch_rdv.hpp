// The eager/rendezvous channel device used by MPI-over-InfiniBand
// (MVAPICH-style) and MPI-over-GM (MPICH-GM-style). The two differ only in
// parameters and fabric:
//
//   eager  (bytes < eager_threshold): payload is copied through
//          pre-registered staging at both ends; the send completes when
//          the data has left the sender NIC.
//   rendezvous (>= threshold): the user buffer is registered through the
//          pin-down cache, an RTS control message is sent, the receiver
//          matches + registers its buffer + returns a CTS, and the data
//          moves zero-copy (RDMA write / directed send). Send completes on
//          delivery (the transport-level ack).
//
// Crucially, the RTS and CTS handlers need the HOST: if the rank is
// computing outside MPI when they arrive, handling is deferred to its next
// MPI call (Proc::host_action). That single mechanism produces the paper's
// Fig. 6 overlap plateau for InfiniBand and Myrinet.
//
// Intra-node messages below `smp_threshold` ride the shared-memory domain;
// at or above it they use the fabric's NIC loopback path (what MVAPICH
// does; MPICH-GM sets the threshold to infinity and uses shm for
// everything).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/netfabric.hpp"
#include "model/regcache.hpp"
#include "mpi/device.hpp"
#include "mpi/mpi.hpp"
#include "shm/shm_domain.hpp"

namespace mns::mpi {

struct RdvChannelConfig {
  std::string name;
  std::uint64_t eager_threshold;  // below: eager; at/above: rendezvous
  std::uint64_t smp_threshold;    // intra-node: below -> shm, else loopback
  sim::Time o_send;               // host CPU per send
  sim::Time o_recv;               // host CPU per receive completion
  sim::Time o_ctrl;               // host CPU handling RTS/CTS
  sim::Time o_match_entry;        // host cost per extra posted-queue entry
                                  // scanned while matching an arrival
  bool allreduce_recursive_doubling = false;  // MPICH >= 1.2.5 algorithm
  /// Ablation: pretend the NIC (or a progress thread) runs the protocol
  /// handlers, i.e. never defer them while the host computes.
  bool nic_progress = false;
  std::uint64_t ctrl_bytes;       // RTS/CTS/header wire size
  bool use_regcache;              // registration required (IB and GM: yes)
  /// Extension (the paper's Section 3.7 direction, after Kini et al.):
  /// barrier/broadcast over InfiniBand hardware multicast instead of
  /// point-to-point trees. Needs a reliability envelope on top of the
  /// unreliable multicast, modelled as a fixed software overhead.
  bool hw_multicast = false;
  sim::Time hw_bcast_overhead = sim::Time::zero();
  shm::ShmConfig shm;
};

class RdvChannel final : public Device {
 public:
  RdvChannel(Mpi& mpi, model::NetFabric& fabric, RdvChannelConfig cfg,
             std::function<model::RegistrationCache&(int)> regcache,
             std::function<std::uint64_t(int)> memory);

  sim::Task<void> start_send(SendOp op) override;
  bool has_hw_broadcast() const override { return cfg_.hw_multicast; }
  void hw_broadcast(Rank root, std::uint64_t bytes, std::uint64_t addr,
                    std::function<void()> done) override;
  bool allreduce_recursive_doubling() const override {
    return cfg_.allreduce_recursive_doubling;
  }
  std::uint64_t memory_bytes(int node) const override;
  const char* name() const override { return cfg_.name.c_str(); }

  const RdvChannelConfig& config() const { return cfg_; }

 private:
  struct RdvState {
    SendOp send;
    PostedRecv recv;
    bool recv_matched = false;
  };

  sim::Task<void> send_shm(SendOp op);
  sim::Task<void> send_eager(SendOp op);
  sim::Task<void> send_rendezvous(SendOp op);

  // Receiver-side handlers (event context, host-gated).
  void on_eager_arrival(Envelope env,
                        std::shared_ptr<std::vector<std::byte>> payload);
  void on_shm_arrival(Envelope env,
                      std::shared_ptr<std::vector<std::byte>> payload);
  void on_rts(std::shared_ptr<RdvState> st);
  void on_cts(std::shared_ptr<RdvState> st);
  void post_rendezvous_data(std::shared_ptr<RdvState> st);

  // Graceful degradation under fabric faults (ISSUE: chaos harness).
  /// Route a transport-failure "error envelope" through the receiver's
  /// matcher so its (posted or future) receive completes with an error
  /// Status instead of hanging.
  void fail_recv_side(const Envelope& env, int from_node);
  /// A rendezvous leg (RTS/CTS/data/FIN) exhausted the fabric's retry
  /// budget: complete both sides with an error Status.
  void fail_rendezvous(std::shared_ptr<RdvState> st, int from_node);

  /// Receiver matched (event context): deliver buffered payload after the
  /// receive-side cost and complete the request.
  void deliver_buffered(const Envelope& env,
                        std::shared_ptr<std::vector<std::byte>> payload,
                        PostedRecv pr, sim::Time extra_cost);
  /// Send the CTS for a matched rendezvous (event context at receiver).
  void issue_cts(std::shared_ptr<RdvState> st);

  std::shared_ptr<std::vector<std::byte>> capture(const View& v) const;
  sim::Time match_scan_cost(Proc& rp) const;
  /// Runs protocol actions directly (nic_progress) or host-gated.
  std::function<void(std::function<void()>)> host_gate(Proc& proc) const;

  Mpi* mpi_;
  model::NetFabric* fabric_;
  RdvChannelConfig cfg_;
  std::function<model::RegistrationCache&(int)> regcache_;
  std::function<std::uint64_t(int)> memory_;
  std::vector<std::unique_ptr<shm::ShmDomain>> shm_;  // per node
};

}  // namespace mns::mpi
