// Collective algorithms, MPICH-1.2.x style: point-to-point compositions
// (binomial broadcast/reduce, allreduce = reduce + bcast, alltoall as a
// full non-blocking exchange, ring allgather), with a hardware fast path
// for barrier/bcast on devices that broadcast in the switch (Quadrics).
//
// Internal point-to-point traffic deliberately bypasses the profiler: the
// paper's MPICH logging counts MPI-level calls, so a collective is one
// logged call regardless of how many wire messages implement it.
#include <cstring>
#include <vector>

#include "mpi/comm.hpp"

namespace mns::mpi {

namespace {
/// Synthetic scratch identity for library-internal temporaries. These are
/// the same (reused) library buffers every time, so they hit warm in the
/// registration caches — like the real implementations' pre-registered
/// collective staging areas.
std::uint64_t scratch_addr(Rank r, int which) {
  return 0xF000'0000'0000ULL + (static_cast<std::uint64_t>(r) << 24) +
         (static_cast<std::uint64_t>(which) << 8);
}
}  // namespace

sim::Task<void> Comm::barrier_impl() {
  mpi_->recorder().on_collective(rank_, "Barrier", 0, 0);
  const std::uint64_t seq = coll_seq_;
  const Tag tag = next_coll_tag();
  const int p = size();
  if (p == 1) {
    last_error_ = kErrNone;
    co_return;
  }

  if (mpi_->device().has_hw_broadcast()) {
    // Binomial fan-in to rank 0, then one hardware broadcast releases
    // everyone (the Kini et al. structure: log-depth gather, O(1)
    // release).
    auto& slot = mpi_->collective_slot(seq);
    View tok = View::synth(scratch_addr(rank_, 6), 4);
    const int err = co_await reduce_p2p(tok, 1, Dtype::kByte, ROp::kMax, 0,
                                        tag);
    if (rank_ == 0) {
      mpi_->device().hw_broadcast(0, 4, scratch_addr(0, 0),
                                  [&slot] { slot.trig.fire(); });
    }
    co_await slot.trig.wait();
    if (++slot.arrived == p) mpi_->drop_collective_slot(seq);
    co_await finish_collective(tag, err);
    co_return;
  }

  // Dissemination barrier.
  int err = kErrNone;
  for (int k = 1; k < p; k <<= 1) {
    const Rank dst = (rank_ + k) % p;
    const Rank src = (rank_ - k + p) % p;
    View sv = View::synth(scratch_addr(rank_, 1), 4);
    View rv = View::synth(scratch_addr(rank_, 2), 4);
    Request rreq = co_await irecv_impl(rv, src, tag, false);
    Request sreq = co_await isend_impl(sv, dst, tag, false);
    const Status sst = co_await wait(sreq);
    const Status rst = co_await wait(rreq);
    if (sst.error != kErrNone || rst.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<int> Comm::bcast_p2p(View buf, Rank root, Tag tag) {
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  int err = kErrNone;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const Rank src = (rel - mask + root) % p;
      Request r = co_await irecv_impl(buf, src, tag, false);
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < p) {
      const Rank dst = (rel + mask + root) % p;
      Request r = co_await isend_impl(buf, dst, tag, false);
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
    mask >>= 1;
  }
  co_return err;
}

sim::Task<void> Comm::bcast_impl(View buf, Rank root) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_collective(rank_, "Bcast", buf.bytes(), buf.addr());
  const std::uint64_t seq = coll_seq_;
  const Tag tag = next_coll_tag();
  if (size() == 1) {
    last_error_ = kErrNone;
    co_return;
  }

  if (mpi_->device().has_hw_broadcast()) {
    auto& slot = mpi_->collective_slot(seq);
    if (rank_ == root) {
      slot.stage_payload(buf);
      mpi_->device().hw_broadcast(root, buf.bytes(), buf.addr(),
                                  [&slot] { slot.trig.fire(); });
    }
    co_await slot.trig.wait();
    if (rank_ != root) copy_payload(slot.payload, buf, buf.bytes());
    if (++slot.arrived == size()) mpi_->drop_collective_slot(seq);
    co_await finish_collective(tag, kErrNone);
    co_return;
  }
  const int err = co_await bcast_p2p(buf, root, tag);
  co_await finish_collective(tag, err);
}

sim::Task<int> Comm::reduce_p2p(View buf, std::size_t count, Dtype dtype,
                                ROp op, Rank root, Tag tag) {
  const int p = size();
  const int rel = (rank_ - root + p) % p;
  const std::uint64_t bytes = buf.bytes();
  int err = kErrNone;

  std::vector<std::byte> tmp_store;
  View tmp;
  if (buf.synthetic()) {
    tmp = View::synth(scratch_addr(rank_, 3), bytes);
  } else {
    tmp_store.resize(static_cast<std::size_t>(bytes));
    tmp = View::out(tmp_store.data(), bytes);
  }

  int mask = 1;
  while (mask < p) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < p) {
        const Rank src = (src_rel + root) % p;
        Request r = co_await irecv_impl(tmp, src, tag, false);
        const Status st = co_await wait(r);
        if (st.error != kErrNone) err = kErrFabric;
        reduce_payload(tmp, buf, count, dtype, op);
      }
    } else {
      const Rank dst = ((rel & ~mask) + root) % p;
      Request r = co_await isend_impl(buf, dst, tag, false);
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
      break;
    }
    mask <<= 1;
  }
  co_return err;
}

sim::Task<void> Comm::reduce_impl(View buf, std::size_t count, Dtype dtype,
                             ROp op, Rank root) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_collective(rank_, "Reduce", buf.bytes(), buf.addr());
  const Tag tag = next_coll_tag();
  if (size() == 1) {
    last_error_ = kErrNone;
    co_return;
  }
  const int err = co_await reduce_p2p(buf, count, dtype, op, root, tag);
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::allreduce_impl(View buf, std::size_t count, Dtype dtype,
                                ROp op) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_collective(rank_, "Allreduce", buf.bytes(),
                                 buf.addr());
  const std::uint64_t seq = coll_seq_;
  const Tag tag = next_coll_tag();
  if (size() == 1) {
    last_error_ = kErrNone;
    co_return;
  }

  const int p = size();
  int err = kErrNone;
  if (mpi_->device().allreduce_recursive_doubling() && (p & (p - 1)) == 0) {
    // MPICH >= 1.2.5 (MPICH-GM): recursive doubling, log2(p) exchanges.
    std::vector<std::byte> tmp_store;
    View tmp;
    if (buf.synthetic()) {
      tmp = View::synth(scratch_addr(rank_, 4), buf.bytes());
    } else {
      tmp_store.resize(static_cast<std::size_t>(buf.bytes()));
      tmp = View::out(tmp_store.data(), buf.bytes());
    }
    for (int mask = 1; mask < p; mask <<= 1) {
      const Rank partner = rank_ ^ mask;
      const Status st =
          co_await sendrecv_internal(buf, partner, tag, tmp, partner, tag);
      if (st.error != kErrNone) err = kErrFabric;
      reduce_payload(tmp, buf, count, dtype, op);
    }
    co_await finish_collective(tag, err);
    co_return;
  }

  // Older MPICH bases (MVAPICH's 1.2.2, Quadrics' 1.2.4): allreduce =
  // reduce to 0, then broadcast. On Quadrics the broadcast half rides the
  // hardware (paper Fig. 12's QSN advantage).
  err = co_await reduce_p2p(buf, count, dtype, op, 0, tag);
  if (mpi_->device().has_hw_broadcast()) {
    auto& slot = mpi_->collective_slot(seq);
    if (rank_ == 0) {
      slot.stage_payload(buf);
      mpi_->device().hw_broadcast(0, buf.bytes(), buf.addr(),
                                  [&slot] { slot.trig.fire(); });
    }
    co_await slot.trig.wait();
    if (rank_ != 0) copy_payload(slot.payload, buf, buf.bytes());
    if (++slot.arrived == size()) mpi_->drop_collective_slot(seq);
  } else {
    const int berr = co_await bcast_p2p(buf, 0, tag + 1);
    if (berr != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::alltoall_impl(View sendbuf, View recvbuf,
                               std::uint64_t per_rank) {
  sendbuf = mpi_->canon(rank_, sendbuf);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_collective(rank_, "Alltoall", sendbuf.bytes(),
                                 sendbuf.addr());
  const Tag tag = next_coll_tag();
  const int p = size();

  // Self-block.
  copy_payload(slice(sendbuf, static_cast<std::uint64_t>(rank_) * per_rank,
                     per_rank),
               slice(recvbuf, static_cast<std::uint64_t>(rank_) * per_rank,
                     per_rank),
               per_rank);

  // Full non-blocking exchange (MPICH's small/medium algorithm): post all
  // receives, then all sends, then wait.
  std::vector<Request> reqs;
  reqs.reserve(2 * static_cast<std::size_t>(p - 1));
  for (int i = 1; i < p; ++i) {
    const Rank src = (rank_ - i + p) % p;
    reqs.push_back(co_await irecv_impl(
        slice(recvbuf, static_cast<std::uint64_t>(src) * per_rank, per_rank),
        src, tag, false));
  }
  for (int i = 1; i < p; ++i) {
    const Rank dst = (rank_ + i) % p;
    reqs.push_back(co_await isend_impl(
        slice(sendbuf, static_cast<std::uint64_t>(dst) * per_rank, per_rank),
        dst, tag, false));
  }
  int err = kErrNone;
  for (auto& r : reqs) {
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::alltoallv_impl(
    View sendbuf, const std::vector<std::uint64_t>& send_counts,
    View recvbuf, const std::vector<std::uint64_t>& recv_counts) {
  sendbuf = mpi_->canon(rank_, sendbuf);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_collective(rank_, "Alltoallv", sendbuf.bytes(),
                                 sendbuf.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  if (send_counts.size() != static_cast<std::size_t>(p) ||
      recv_counts.size() != static_cast<std::size_t>(p)) {
    throw std::invalid_argument("alltoallv: counts must have one entry per rank");
  }
  std::vector<std::uint64_t> soff(static_cast<std::size_t>(p) + 1, 0);
  std::vector<std::uint64_t> roff(static_cast<std::size_t>(p) + 1, 0);
  for (int r = 0; r < p; ++r) {
    soff[r + 1] = soff[r] + send_counts[static_cast<std::size_t>(r)];
    roff[r + 1] = roff[r] + recv_counts[static_cast<std::size_t>(r)];
  }

  copy_payload(slice(sendbuf, soff[rank_], send_counts[static_cast<std::size_t>(rank_)]),
               slice(recvbuf, roff[rank_], recv_counts[static_cast<std::size_t>(rank_)]),
               send_counts[static_cast<std::size_t>(rank_)]);

  std::vector<Request> reqs;
  for (int i = 1; i < p; ++i) {
    const Rank src = (rank_ - i + p) % p;
    if (recv_counts[static_cast<std::size_t>(src)] == 0) continue;
    reqs.push_back(co_await irecv_impl(
        slice(recvbuf, roff[src], recv_counts[static_cast<std::size_t>(src)]),
        src, tag, false));
  }
  for (int i = 1; i < p; ++i) {
    const Rank dst = (rank_ + i) % p;
    if (send_counts[static_cast<std::size_t>(dst)] == 0) continue;
    reqs.push_back(co_await isend_impl(
        slice(sendbuf, soff[dst], send_counts[static_cast<std::size_t>(dst)]),
        dst, tag, false));
  }
  int err = kErrNone;
  for (auto& r : reqs) {
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::allgather_impl(View sendpart, View recvbuf,
                                std::uint64_t per_rank) {
  sendpart = mpi_->canon(rank_, sendpart);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_collective(rank_, "Allgather", sendpart.bytes(),
                                 sendpart.addr());
  const Tag tag = next_coll_tag();
  const int p = size();

  copy_payload(sendpart,
               slice(recvbuf, static_cast<std::uint64_t>(rank_) * per_rank,
                     per_rank),
               per_rank);
  // Ring: pass blocks around p-1 times.
  int err = kErrNone;
  for (int step = 0; step < p - 1; ++step) {
    const Rank dst = (rank_ + 1) % p;
    const Rank src = (rank_ - 1 + p) % p;
    const int send_block = (rank_ - step + p) % p;
    const int recv_block = (rank_ - step - 1 + p) % p;
    const Status st = co_await sendrecv_internal(
        slice(recvbuf, static_cast<std::uint64_t>(send_block) * per_rank,
              per_rank),
        dst, tag,
        slice(recvbuf, static_cast<std::uint64_t>(recv_block) * per_rank,
              per_rank),
        src, tag);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::gather_impl(View sendpart, View recvbuf,
                             std::uint64_t per_rank, Rank root) {
  sendpart = mpi_->canon(rank_, sendpart);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_collective(rank_, "Gather", sendpart.bytes(),
                                 sendpart.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  int err = kErrNone;
  if (rank_ == root) {
    copy_payload(sendpart,
                 slice(recvbuf, static_cast<std::uint64_t>(rank_) * per_rank,
                       per_rank),
                 per_rank);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(co_await irecv_impl(
          slice(recvbuf, static_cast<std::uint64_t>(r) * per_rank, per_rank),
          r, tag, false));
    }
    for (auto& r : reqs) {
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
  } else {
    Request r = co_await isend_impl(sendpart, root, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::scatter_impl(View sendbuf, View recvpart,
                              std::uint64_t per_rank, Rank root) {
  sendbuf = mpi_->canon(rank_, sendbuf);
  recvpart = mpi_->canon(rank_, recvpart);
  mpi_->recorder().on_collective(rank_, "Scatter", recvpart.bytes(),
                                 recvpart.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  int err = kErrNone;
  if (rank_ == root) {
    copy_payload(slice(sendbuf, static_cast<std::uint64_t>(rank_) * per_rank,
                       per_rank),
                 recvpart, per_rank);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(co_await isend_impl(
          slice(sendbuf, static_cast<std::uint64_t>(r) * per_rank, per_rank),
          r, tag, false));
    }
    for (auto& r : reqs) {
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
  } else {
    Request r = co_await irecv_impl(recvpart, root, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::reduce_scatter_block_impl(View buf,
                                           std::size_t count_per_rank,
                                           Dtype dtype, ROp op, View out) {
  buf = mpi_->canon(rank_, buf);
  out = mpi_->canon(rank_, out);
  mpi_->recorder().on_collective(rank_, "Reduce_scatter", buf.bytes(),
                                 buf.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  const std::uint64_t per_bytes = count_per_rank * dtype_size(dtype);
  // MPICH 1.x: reduce to root then scatter.
  int err = co_await reduce_p2p(buf,
                                count_per_rank * static_cast<std::size_t>(p),
                                dtype, op, 0, tag);
  if (rank_ == 0) {
    copy_payload(slice(buf, 0, per_bytes), out, per_bytes);
    std::vector<Request> reqs;
    for (int r = 1; r < p; ++r) {
      reqs.push_back(co_await isend_impl(
          slice(buf, static_cast<std::uint64_t>(r) * per_bytes, per_bytes),
          r, tag + 1, false));
    }
    for (auto& r : reqs) {
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
  } else {
    Request r = co_await irecv_impl(out, 0, tag + 1, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::scan_impl(View buf, std::size_t count, Dtype dtype,
                           ROp op) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_collective(rank_, "Scan", buf.bytes(), buf.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  if (p == 1) {
    last_error_ = kErrNone;
    co_return;
  }

  // Linear chain (MPICH 1.x): receive the running prefix from rank-1,
  // fold it in, pass the new prefix to rank+1.
  int err = kErrNone;
  std::vector<std::byte> tmp_store;
  View tmp;
  if (buf.synthetic()) {
    tmp = View::synth(scratch_addr(rank_, 5), buf.bytes());
  } else {
    tmp_store.resize(static_cast<std::size_t>(buf.bytes()));
    tmp = View::out(tmp_store.data(), buf.bytes());
  }
  if (rank_ > 0) {
    Request r = co_await irecv_impl(tmp, rank_ - 1, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
    reduce_payload(tmp, buf, count, dtype, op);
  }
  if (rank_ + 1 < p) {
    Request r = co_await isend_impl(buf, rank_ + 1, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::gatherv_impl(View sendpart, View recvbuf,
                              const std::vector<std::uint64_t>& counts,
                              Rank root) {
  sendpart = mpi_->canon(rank_, sendpart);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_collective(rank_, "Gatherv", sendpart.bytes(),
                                 sendpart.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  if (counts.size() != static_cast<std::size_t>(p)) {
    throw std::invalid_argument("gatherv: one count per rank");
  }
  int err = kErrNone;
  if (rank_ == root) {
    std::vector<std::uint64_t> off(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) off[r + 1] = off[r] + counts[r];
    copy_payload(sendpart, slice(recvbuf, off[root], counts[root]),
                 counts[root]);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == root || counts[r] == 0) continue;
      reqs.push_back(co_await irecv_impl(
          slice(recvbuf, off[r], counts[r]), r, tag, false));
    }
    for (auto& r : reqs) {
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
  } else if (counts[static_cast<std::size_t>(rank_)] > 0) {
    Request r = co_await isend_impl(sendpart, root, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<void> Comm::scatterv_impl(View sendbuf,
                               const std::vector<std::uint64_t>& counts,
                               View recvpart, Rank root) {
  sendbuf = mpi_->canon(rank_, sendbuf);
  recvpart = mpi_->canon(rank_, recvpart);
  mpi_->recorder().on_collective(rank_, "Scatterv", recvpart.bytes(),
                                 recvpart.addr());
  const Tag tag = next_coll_tag();
  const int p = size();
  if (counts.size() != static_cast<std::size_t>(p)) {
    throw std::invalid_argument("scatterv: one count per rank");
  }
  int err = kErrNone;
  if (rank_ == root) {
    std::vector<std::uint64_t> off(static_cast<std::size_t>(p) + 1, 0);
    for (int r = 0; r < p; ++r) off[r + 1] = off[r] + counts[r];
    copy_payload(slice(sendbuf, off[root], counts[root]), recvpart,
                 counts[root]);
    std::vector<Request> reqs;
    for (int r = 0; r < p; ++r) {
      if (r == root || counts[r] == 0) continue;
      reqs.push_back(co_await isend_impl(
          slice(sendbuf, off[r], counts[r]), r, tag, false));
    }
    for (auto& r : reqs) {
      const Status st = co_await wait(r);
      if (st.error != kErrNone) err = kErrFabric;
    }
  } else if (counts[static_cast<std::size_t>(rank_)] > 0) {
    Request r = co_await irecv_impl(recvpart, root, tag, false);
    const Status st = co_await wait(r);
    if (st.error != kErrNone) err = kErrFabric;
  }
  co_await finish_collective(tag, err);
}

sim::Task<Status> Comm::sendrecv_internal(View sendbuf, Rank dst, Tag stag,
                                          View recvbuf, Rank src, Tag rtag) {
  Request rreq = co_await irecv_impl(recvbuf, src, rtag, false);
  Request sreq = co_await isend_impl(sendbuf, dst, stag, false);
  const Status sst = co_await wait(sreq);
  Status rst = co_await wait(rreq);
  // The exchange is one logical operation: a failed send leg errors the
  // returned status even when the receive leg completed.
  if (sst.error != kErrNone) rst.error = sst.error;
  co_return rst;
}

sim::Task<int> Comm::agree_error(Tag tag, int err) {
  const int p = size();
  if (p == 1) co_return err;
  // Two sweeps of binomial fan-in to rank 0 + binomial fan-out, rooted at
  // 0 like reduce_p2p/bcast_p2p with root 0 (rel == rank_). The error bit
  // rides in the token SIZE: 1 byte = clean, 2 bytes = error. A receiver
  // infers "error" from either an oversized token or a failed delivery
  // (the transport completes the receive with kErrFabric when the
  // sender's path is dead), so the verdict crosses dead subtrees too.
  // Faults are permanent and there is one error class, so after sweep one
  // rank 0 holds the OR of every reachable rank's bit and sweep two
  // spreads a verdict that can no longer change.
  for (int sweep = 0; sweep < 2; ++sweep) {
    const Tag t = tag + sweep;
    // Fan-in (binomial reduce structure, root 0).
    int mask = 1;
    while (mask < p) {
      if ((rank_ & mask) == 0) {
        const int src = rank_ | mask;
        if (src < p) {
          View rv = View::synth(scratch_addr(rank_, 7), 2);
          Request r = co_await irecv_impl(rv, src, t, false);
          const Status st = co_await wait(r);
          if (st.error != kErrNone || st.bytes > 1) err = kErrFabric;
        }
      } else {
        const Rank dst = rank_ & ~mask;
        View sv =
            View::synth(scratch_addr(rank_, 8), err == kErrNone ? 1 : 2);
        Request r = co_await isend_impl(sv, dst, t, false);
        const Status st = co_await wait(r);
        if (st.error != kErrNone) err = kErrFabric;
        break;
      }
      mask <<= 1;
    }
    // Fan-out (binomial bcast structure, root 0).
    int rmask = 1;
    while (rmask < p) {
      if (rank_ & rmask) {
        const Rank src = rank_ - rmask;
        View rv = View::synth(scratch_addr(rank_, 9), 2);
        Request r = co_await irecv_impl(rv, src, t, false);
        const Status st = co_await wait(r);
        if (st.error != kErrNone || st.bytes > 1) err = kErrFabric;
        break;
      }
      rmask <<= 1;
    }
    rmask >>= 1;
    while (rmask > 0) {
      if (rank_ + rmask < p) {
        const Rank dst = rank_ + rmask;
        View sv =
            View::synth(scratch_addr(rank_, 10), err == kErrNone ? 1 : 2);
        Request r = co_await isend_impl(sv, dst, t, false);
        const Status st = co_await wait(r);
        if (st.error != kErrNone) err = kErrFabric;
      }
      rmask >>= 1;
    }
  }
  co_return err;
}

sim::Task<void> Comm::finish_collective(Tag tag, int err) {
  if (mpi_->fail_stop_armed()) {
    // Collectives reserve tag..tag+1 for their own phases (stride 4, see
    // next_coll_tag); the agreement sweeps use tag+2 and tag+3.
    err = co_await agree_error(tag + 2, err);
  }
  last_error_ = err;
}


// --- traced public wrappers -------------------------------------------------

sim::Task<void> Comm::barrier() {
  const double tt0 = wtime();
  co_await barrier_impl();
  trace(prof::EventKind::kCollective, "Barrier", kAnySource, 0, tt0);
}

sim::Task<void> Comm::bcast(View buf, Rank root) {
  const double tt0 = wtime();
  co_await bcast_impl(buf, root);
  trace(prof::EventKind::kCollective, "Bcast", kAnySource, buf.bytes(), tt0);
}

sim::Task<void> Comm::allreduce(View buf, std::size_t count, Dtype dtype, ROp op) {
  const double tt0 = wtime();
  co_await allreduce_impl(buf, count, dtype, op);
  trace(prof::EventKind::kCollective, "Allreduce", kAnySource, buf.bytes(), tt0);
}

sim::Task<void> Comm::reduce(View buf, std::size_t count, Dtype dtype, ROp op, Rank root) {
  const double tt0 = wtime();
  co_await reduce_impl(buf, count, dtype, op, root);
  trace(prof::EventKind::kCollective, "Reduce", kAnySource, buf.bytes(), tt0);
}

sim::Task<void> Comm::alltoall(View sendbuf, View recvbuf, std::uint64_t per_rank) {
  const double tt0 = wtime();
  co_await alltoall_impl(sendbuf, recvbuf, per_rank);
  trace(prof::EventKind::kCollective, "Alltoall", kAnySource, sendbuf.bytes(), tt0);
}

sim::Task<void> Comm::alltoallv(View sendbuf, const std::vector<std::uint64_t>& send_counts, View recvbuf, const std::vector<std::uint64_t>& recv_counts) {
  const double tt0 = wtime();
  co_await alltoallv_impl(sendbuf, send_counts, recvbuf, recv_counts);
  trace(prof::EventKind::kCollective, "Alltoallv", kAnySource, sendbuf.bytes(), tt0);
}

sim::Task<void> Comm::allgather(View sendpart, View recvbuf, std::uint64_t per_rank) {
  const double tt0 = wtime();
  co_await allgather_impl(sendpart, recvbuf, per_rank);
  trace(prof::EventKind::kCollective, "Allgather", kAnySource, sendpart.bytes(), tt0);
}

sim::Task<void> Comm::gather(View sendpart, View recvbuf, std::uint64_t per_rank, Rank root) {
  const double tt0 = wtime();
  co_await gather_impl(sendpart, recvbuf, per_rank, root);
  trace(prof::EventKind::kCollective, "Gather", kAnySource, sendpart.bytes(), tt0);
}

sim::Task<void> Comm::scatter(View sendbuf, View recvpart, std::uint64_t per_rank, Rank root) {
  const double tt0 = wtime();
  co_await scatter_impl(sendbuf, recvpart, per_rank, root);
  trace(prof::EventKind::kCollective, "Scatter", kAnySource, recvpart.bytes(), tt0);
}

sim::Task<void> Comm::reduce_scatter_block(View buf, std::size_t count_per_rank, Dtype dtype, ROp op, View out) {
  const double tt0 = wtime();
  co_await reduce_scatter_block_impl(buf, count_per_rank, dtype, op, out);
  trace(prof::EventKind::kCollective, "Reduce_scatter", kAnySource, buf.bytes(), tt0);
}

sim::Task<void> Comm::scan(View buf, std::size_t count, Dtype dtype, ROp op) {
  const double tt0 = wtime();
  co_await scan_impl(buf, count, dtype, op);
  trace(prof::EventKind::kCollective, "Scan", kAnySource, buf.bytes(), tt0);
}

sim::Task<void> Comm::gatherv(View sendpart, View recvbuf, const std::vector<std::uint64_t>& counts, Rank root) {
  const double tt0 = wtime();
  co_await gatherv_impl(sendpart, recvbuf, counts, root);
  trace(prof::EventKind::kCollective, "Gatherv", kAnySource, sendpart.bytes(), tt0);
}

sim::Task<void> Comm::scatterv(View sendbuf, const std::vector<std::uint64_t>& counts, View recvpart, Rank root) {
  const double tt0 = wtime();
  co_await scatterv_impl(sendbuf, counts, recvpart, root);
  trace(prof::EventKind::kCollective, "Scatterv", kAnySource, recvpart.bytes(), tt0);
}

}  // namespace mns::mpi
