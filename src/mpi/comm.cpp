#include "mpi/comm.hpp"

#include <cstring>
#include <stdexcept>

namespace mns::mpi {

namespace {

template <class T>
void combine(T* inout, const T* in, std::size_t count, ROp op) {
  switch (op) {
    case ROp::kSum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      break;
    case ROp::kMax:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = inout[i] > in[i] ? inout[i] : in[i];
      break;
    case ROp::kMin:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = inout[i] < in[i] ? inout[i] : in[i];
      break;
  }
}

}  // namespace

void reduce_payload(const View& in, const View& inout, std::size_t count,
                    Dtype dtype, ROp op) {
  if (in.synthetic() || inout.synthetic()) return;
  switch (dtype) {
    case Dtype::kByte:
      combine(reinterpret_cast<unsigned char*>(inout.data()),
              reinterpret_cast<const unsigned char*>(in.data()), count, op);
      break;
    case Dtype::kInt32:
      combine(reinterpret_cast<std::int32_t*>(inout.data()),
              reinterpret_cast<const std::int32_t*>(in.data()), count, op);
      break;
    case Dtype::kInt64:
      combine(reinterpret_cast<std::int64_t*>(inout.data()),
              reinterpret_cast<const std::int64_t*>(in.data()), count, op);
      break;
    case Dtype::kDouble:
      combine(reinterpret_cast<double*>(inout.data()),
              reinterpret_cast<const double*>(in.data()), count, op);
      break;
  }
}

void Comm::trace(prof::EventKind kind, const char* op, Rank peer,
                 std::uint64_t bytes, double t_start) const {
  prof::Tracer* tr = mpi_->tracer();
  if (!tr) return;
  prof::TraceEvent ev;
  ev.t_start = t_start;
  ev.t_end = wtime();
  ev.rank = rank_;
  ev.kind = kind;
  ev.peer = peer == kAnySource ? -1 : peer;
  ev.bytes = bytes;
  ev.op = op;
  tr->record(ev);
}

sim::Task<void> Comm::compute(double seconds) {
  const double tt0 = wtime();
  co_await cpu().compute(sim::Time::seconds(seconds));
  trace(prof::EventKind::kCompute, "compute", kAnySource, 0, tt0);
}

View Comm::slice(const View& v, std::uint64_t offset, std::uint64_t len) {
  if (offset + len > v.bytes()) {
    throw std::out_of_range("View slice out of range");
  }
  if (v.synthetic()) return View::synth(v.addr() + offset, len);
  return v.writable() ? View::out(v.data() + offset, len)
                      : View::in(v.data() + offset, len);
}

sim::Task<Request> Comm::isend_impl(View buf, Rank dst, Tag tag,
                                    bool nonblocking) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("bad dest rank");
  buf = mpi_->canon(rank_, buf);
  auto& p = mpi_->proc(rank_);
  sim::MpiScope scope(p.cpu());
  p.drain_deferred();

  auto req = std::make_shared<RequestState>(mpi_->engine_of(rank_),
                                            &mpi_->request_ledger());
  SendOp op;
  op.env = Envelope{rank_, dst, tag, buf.bytes()};
  op.buf = buf;
  op.nonblocking = nonblocking;
  op.req = req;
  co_await mpi_->device().start_send(std::move(op));
  co_return Request(req);
}

sim::Task<Request> Comm::irecv_impl(View buf, Rank src, Tag tag,
                                    bool nonblocking) {
  buf = mpi_->canon(rank_, buf);
  auto& p = mpi_->proc(rank_);
  sim::MpiScope scope(p.cpu());
  p.drain_deferred();

  const sim::Time post_cost = mpi_->device().recv_post_cost();
  if (post_cost > sim::Time::zero()) co_await p.cpu().busy(post_cost);

  auto req = std::make_shared<RequestState>(mpi_->engine_of(rank_),
                                            &mpi_->request_ledger());
  PostedRecv pr{src, tag, buf, req};
  if (auto u = p.matcher().match_posted(src, tag)) {
    co_await u->claim(std::move(pr));
  } else {
    p.matcher().post(std::move(pr));
  }
  co_return Request(req);
}

sim::Task<void> Comm::send(View buf, Rank dst, Tag tag) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("bad dest rank");
  buf = mpi_->canon(rank_, buf);
  const bool intra = mpi_->same_node(rank_, dst);
  mpi_->recorder().on_send(rank_, buf.bytes(), false, buf.addr(), intra);
  const double tt0 = wtime();
  Request req = co_await isend_impl(buf, dst, tag, false);
  co_await wait(std::move(req));
  trace(prof::EventKind::kSend, "Send", dst, buf.bytes(), tt0);
}

sim::Task<Status> Comm::recv(View buf, Rank src, Tag tag) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_recv(rank_, buf.bytes(), false, buf.addr());
  const double tt0 = wtime();
  Request req = co_await irecv_impl(buf, src, tag, false);
  const Status st = co_await wait(std::move(req));
  trace(prof::EventKind::kRecv, "Recv", st.source, st.bytes, tt0);
  co_return st;
}

sim::Task<Request> Comm::isend(View buf, Rank dst, Tag tag) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("bad dest rank");
  buf = mpi_->canon(rank_, buf);
  const bool intra = mpi_->same_node(rank_, dst);
  mpi_->recorder().on_send(rank_, buf.bytes(), true, buf.addr(), intra);
  return isend_impl(buf, dst, tag, true);
}

sim::Task<Request> Comm::irecv(View buf, Rank src, Tag tag) {
  buf = mpi_->canon(rank_, buf);
  mpi_->recorder().on_recv(rank_, buf.bytes(), true, buf.addr());
  return irecv_impl(buf, src, tag, true);
}

sim::Task<Status> Comm::wait(Request req) {
  auto& p = mpi_->proc(rank_);
  sim::MpiScope scope(p.cpu());
  p.drain_deferred();
  co_return co_await req.await_done();
}

sim::Task<void> Comm::wait_all(std::vector<Request> reqs) {
  for (auto& r : reqs) {
    co_await wait(r);
  }
}

sim::Task<Status> Comm::sendrecv(View sendbuf, Rank dst, Tag stag,
                                 View recvbuf, Rank src, Tag rtag) {
  sendbuf = mpi_->canon(rank_, sendbuf);
  recvbuf = mpi_->canon(rank_, recvbuf);
  mpi_->recorder().on_recv(rank_, recvbuf.bytes(), false, recvbuf.addr());
  const double tt0 = wtime();
  Request rreq = co_await irecv_impl(recvbuf, src, rtag, false);
  const bool intra = mpi_->same_node(rank_, dst);
  mpi_->recorder().on_send(rank_, sendbuf.bytes(), false, sendbuf.addr(),
                           intra);
  Request sreq = co_await isend_impl(sendbuf, dst, stag, false);
  co_await wait(sreq);
  const Status st = co_await wait(rreq);
  // One interval event for the exchange; the receive leg is recorded as a
  // zero-length marker so per-rank MPI time is not double counted.
  trace(prof::EventKind::kSend, "Sendrecv", dst, sendbuf.bytes(), tt0);
  trace(prof::EventKind::kRecv, "Sendrecv", st.source, st.bytes, wtime());
  co_return st;
}

bool Comm::iprobe(Rank src, Tag tag, Status* status) {
  auto& p = mpi_->proc(rank_);
  sim::MpiScope scope(p.cpu());
  p.drain_deferred();
  const Unexpected* u = p.matcher().peek_unexpected(src, tag);
  if (!u) return false;
  if (status) *status = Status{u->env.src, u->env.tag, u->env.bytes};
  return true;
}

sim::Task<Status> Comm::probe(Rank src, Tag tag) {
  // Real MPI_Probe spins in the progress engine; we poll at a fixed
  // cadence. A message that never arrives hangs here, exactly like the
  // real call (the engine reports it as a deadlock only if no other
  // event remains, since polling keeps the queue alive).
  auto& p = mpi_->proc(rank_);
  for (;;) {
    {
      sim::MpiScope scope(p.cpu());
      p.drain_deferred();
      if (const Unexpected* u = p.matcher().peek_unexpected(src, tag)) {
        co_return Status{u->env.src, u->env.tag, u->env.bytes};
      }
    }
    co_await p.cpu().busy(sim::Time::ns(200));  // poll cadence
  }
}

sim::Task<void> Comm::ssend(View buf, Rank dst, Tag tag) {
  if (dst < 0 || dst >= size()) throw std::invalid_argument("bad dest rank");
  buf = mpi_->canon(rank_, buf);
  const bool intra = mpi_->same_node(rank_, dst);
  mpi_->recorder().on_send(rank_, buf.bytes(), false, buf.addr(), intra);
  auto& p = mpi_->proc(rank_);
  Request ret;
  {
    sim::MpiScope scope(p.cpu());
    p.drain_deferred();
    auto req = std::make_shared<RequestState>(mpi_->engine_of(rank_),
                                            &mpi_->request_ledger());
    SendOp op;
    op.env = Envelope{rank_, dst, tag, buf.bytes()};
    op.buf = buf;
    op.synchronous = true;
    op.req = req;
    co_await mpi_->device().start_send(std::move(op));
    ret = Request(req);
  }
  co_await wait(std::move(ret));
}

Tag Comm::next_coll_tag() {
  // Stride 4: algorithms may use tag..tag+3 for internal phases without
  // colliding with the next collective.
  return kCollectiveTagBase + static_cast<Tag>((coll_seq_++ * 4) % (1 << 22));
}

}  // namespace mns::mpi
