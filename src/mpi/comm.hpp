// The public MPI-like API. One Comm object per rank, all sharing the Mpi
// job. Calls are coroutines awaited inside the rank's simulated process.
//
// Naming follows MPI-1 (send/recv/isend/irecv/wait/collectives); buffers
// are Views (real or synthetic; see mpi/types.hpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "prof/trace.hpp"
#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/task.hpp"

namespace mns::mpi {

/// Element-wise reduction of `in` into `inout` (both real Views of `count`
/// elements of `dtype`). No-op when either view is synthetic.
void reduce_payload(const View& in, const View& inout, std::size_t count,
                    Dtype dtype, ROp op);

class Comm {
 public:
  Comm(Mpi& mpi, Rank rank) : mpi_(&mpi), rank_(rank) {}

  Rank rank() const { return rank_; }
  int size() const { return static_cast<int>(mpi_->size()); }
  Mpi& job() const { return *mpi_; }
  sim::Cpu& cpu() const { return mpi_->proc(rank_).cpu(); }

  /// Simulated wall-clock in seconds (MPI_Wtime).
  double wtime() const { return mpi_->engine_of(rank_).now().to_seconds(); }
  /// Exact simulated time on this rank's engine. Unlike Cluster::now()
  /// (the max over partition engines, which can trail the last
  /// application event by PDES teardown bookkeeping) this is an
  /// application-level timestamp: bit-identical across partition counts.
  sim::Time now() const { return mpi_->engine_of(rank_).now(); }

  /// Application computation for `seconds` (outside MPI: devices without
  /// NIC-side protocol engines cannot make rendezvous progress meanwhile).
  sim::Task<void> compute(double seconds);

  // --- point-to-point ----------------------------------------------------

  sim::Task<void> send(View buf, Rank dst, Tag tag);
  sim::Task<Status> recv(View buf, Rank src = kAnySource, Tag tag = kAnyTag);
  sim::Task<Request> isend(View buf, Rank dst, Tag tag);
  sim::Task<Request> irecv(View buf, Rank src = kAnySource,
                           Tag tag = kAnyTag);
  sim::Task<Status> wait(Request req);
  sim::Task<void> wait_all(std::vector<Request> reqs);
  /// Non-blocking probe: peek the unexpected queue for a matching
  /// envelope without receiving it (MPI_Iprobe).
  bool iprobe(Rank src, Tag tag, Status* status = nullptr);
  /// Blocking probe: wait until a matching message has arrived
  /// (MPI_Probe). The message stays queued for a later recv.
  sim::Task<Status> probe(Rank src, Tag tag);
  /// Synchronous send (MPI_Ssend): completes only once the receiver has
  /// matched the message, regardless of size.
  sim::Task<void> ssend(View buf, Rank dst, Tag tag);
  /// Combined exchange (MPI_Sendrecv): both directions in flight at once.
  sim::Task<Status> sendrecv(View sendbuf, Rank dst, Tag stag, View recvbuf,
                             Rank src, Tag rtag);

  // --- collectives (COMM_WORLD) -------------------------------------------
  //
  // All ranks must call each collective in the same order. Algorithms are
  // MPICH-style point-to-point compositions; barrier/bcast use the Elan
  // hardware broadcast when the device provides one.

  sim::Task<void> barrier();
  sim::Task<void> bcast(View buf, Rank root);
  /// In-place allreduce over `count` elements held in `buf`.
  sim::Task<void> allreduce(View buf, std::size_t count, Dtype dtype,
                            ROp op);
  sim::Task<void> reduce(View buf, std::size_t count, Dtype dtype, ROp op,
                         Rank root);
  /// Each rank contributes `per_rank` bytes to every rank. `sendbuf` and
  /// `recvbuf` are the full size*per_rank regions.
  sim::Task<void> alltoall(View sendbuf, View recvbuf,
                           std::uint64_t per_rank);
  /// Variable alltoall: rank r receives send_counts[r] bytes of this
  /// rank's sendbuf (packed contiguously in rank order); recv_counts are
  /// this rank's incoming sizes in source-rank order.
  sim::Task<void> alltoallv(View sendbuf,
                            const std::vector<std::uint64_t>& send_counts,
                            View recvbuf,
                            const std::vector<std::uint64_t>& recv_counts);
  sim::Task<void> allgather(View sendpart, View recvbuf,
                            std::uint64_t per_rank);
  sim::Task<void> gather(View sendpart, View recvbuf, std::uint64_t per_rank,
                         Rank root);
  sim::Task<void> scatter(View sendbuf, View recvpart,
                          std::uint64_t per_rank, Rank root);
  sim::Task<void> reduce_scatter_block(View buf, std::size_t count_per_rank,
                                       Dtype dtype, ROp op, View out);
  /// Inclusive prefix reduction (MPI_Scan): rank r ends with the
  /// combination of ranks 0..r.
  sim::Task<void> scan(View buf, std::size_t count, Dtype dtype, ROp op);
  /// Variable-size gather/scatter (MPI_Gatherv / MPI_Scatterv); counts are
  /// per-rank byte sizes, significant at the root on every rank for
  /// offsets.
  sim::Task<void> gatherv(View sendpart, View recvbuf,
                          const std::vector<std::uint64_t>& counts,
                          Rank root);
  sim::Task<void> scatterv(View sendbuf,
                           const std::vector<std::uint64_t>& counts,
                           View recvpart, Rank root);

  /// Outcome of this rank's most recent collective. kErrNone, or
  /// kErrFabric when a transport error surfaced anywhere in the
  /// collective. Under an armed fail-stop fault plan every collective
  /// runs an error-agreement epilogue, so all live ranks observe the
  /// SAME value here after the same collective — no rank returns "ok"
  /// while a peer saw its subtree die.
  int last_error() const { return last_error_; }

 private:
  /// Record a trace event if the job has a tracer installed.
  void trace(prof::EventKind kind, const char* op, Rank peer,
             std::uint64_t bytes, double t_start) const;

  sim::Task<void> barrier_impl();
  sim::Task<void> bcast_impl(View buf, Rank root);
  sim::Task<void> allreduce_impl(View buf, std::size_t count, Dtype dtype, ROp op);
  sim::Task<void> reduce_impl(View buf, std::size_t count, Dtype dtype, ROp op, Rank root);
  sim::Task<void> alltoall_impl(View sendbuf, View recvbuf, std::uint64_t per_rank);
  sim::Task<void> alltoallv_impl(View sendbuf, const std::vector<std::uint64_t>& send_counts, View recvbuf, const std::vector<std::uint64_t>& recv_counts);
  sim::Task<void> allgather_impl(View sendpart, View recvbuf, std::uint64_t per_rank);
  sim::Task<void> gather_impl(View sendpart, View recvbuf, std::uint64_t per_rank, Rank root);
  sim::Task<void> scatter_impl(View sendbuf, View recvpart, std::uint64_t per_rank, Rank root);
  sim::Task<void> reduce_scatter_block_impl(View buf, std::size_t count_per_rank, Dtype dtype, ROp op, View out);
  sim::Task<void> scan_impl(View buf, std::size_t count, Dtype dtype, ROp op);
  sim::Task<void> gatherv_impl(View sendpart, View recvbuf, const std::vector<std::uint64_t>& counts, Rank root);
  sim::Task<void> scatterv_impl(View sendbuf, const std::vector<std::uint64_t>& counts, View recvpart, Rank root);

  sim::Task<Request> isend_impl(View buf, Rank dst, Tag tag,
                                bool nonblocking);
  sim::Task<Request> irecv_impl(View buf, Rank src, Tag tag,
                                bool nonblocking);
  /// Subview helper for collective algorithms on real/synthetic buffers.
  static View slice(const View& v, std::uint64_t offset, std::uint64_t len);
  /// Next collective tag/slot id (same sequence on every rank).
  Tag next_coll_tag();

  sim::Task<Status> sendrecv_internal(View sendbuf, Rank dst, Tag stag,
                                      View recvbuf, Rank src, Tag rtag);
  /// Internal collective building blocks. Both return the error envelope
  /// accumulated over their point-to-point legs (kErrNone or kErrFabric)
  /// instead of hiding it: a dead link errors the affected wait rather
  /// than hanging it, and the collective threads the verdict through to
  /// the agreement epilogue.
  sim::Task<int> bcast_p2p(View buf, Rank root, Tag tag);
  sim::Task<int> reduce_p2p(View buf, std::size_t count, Dtype dtype, ROp op,
                            Rank root, Tag tag);
  /// Two-sweep deterministic error agreement (fail-stop plans only).
  /// Each sweep is a binomial fan-in to rank 0 followed by a binomial
  /// fan-out; the error bit travels in the token SIZE (1 byte = clean,
  /// 2 bytes = error), so a rank that cannot hear the verdict because
  /// its own path died observes the error anyway — the failed delivery
  /// completes its receive with kErrFabric. With permanent (fail-stop)
  /// faults and a single error class, two sweeps make every live rank
  /// leave with the same value even when the fault first manifests
  /// during sweep one.
  sim::Task<int> agree_error(Tag tag, int err);
  /// Collective epilogue: runs agree_error under an armed fail-stop
  /// plan (transient-only runs skip it and stay bit-identical), then
  /// publishes the outcome to last_error().
  sim::Task<void> finish_collective(Tag tag, int err);

  Mpi* mpi_;
  Rank rank_;
  std::uint64_t coll_seq_ = 0;
  int last_error_ = kErrNone;
};

}  // namespace mns::mpi
