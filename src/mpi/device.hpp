// ADI-style device interface.
//
// Mirrors MPICH's layering: the public MPI API (Comm) sits on an abstract
// device; each interconnect provides one. All host-side initiation work is
// coroutine-shaped so it charges the calling rank's simulated CPU;
// completion flows back through RequestState.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/task.hpp"

namespace mns::mpi {

struct SendOp {
  Envelope env;
  View buf;
  bool nonblocking = false;
  /// MPI_Ssend semantics: complete only after the receiver matched.
  bool synchronous = false;
  std::shared_ptr<RequestState> req;
};

class Device {
 public:
  virtual ~Device() = default;

  /// Initiate a send from the sender rank's coroutine. Returns once the
  /// send is locally initiated (eager handed to the NIC / rendezvous RTS
  /// posted); op.req completes when MPI semantics allow buffer reuse.
  virtual sim::Task<void> start_send(SendOp op) = 0;

  /// Host cost of posting a receive (beyond matching).
  virtual sim::Time recv_post_cost() const { return sim::Time::zero(); }

  /// Which small-message allreduce the era's MPICH base used: recursive
  /// doubling arrived with MPICH 1.2.5 (MPICH-GM); older bases (MVAPICH's
  /// 1.2.2) composed reduce + bcast — the reason the paper's Fig. 12 shows
  /// InfiniBand losing allreduce despite winning raw latency.
  virtual bool allreduce_recursive_doubling() const { return false; }

  /// Elan-style hardware collective support.
  virtual bool has_hw_broadcast() const { return false; }
  /// Fire-and-callback hardware broadcast of `bytes` from `root`'s node to
  /// every node; devices without support must not be asked.
  virtual void hw_broadcast(Rank /*root*/, std::uint64_t /*bytes*/,
                            std::uint64_t /*addr*/,
                            std::function<void()> /*done*/) {
    throw std::logic_error("device has no hardware broadcast");
  }

  /// MPI library memory footprint on `node` (paper Fig. 13).
  virtual std::uint64_t memory_bytes(int node) const = 0;

  virtual const char* name() const = 0;
};

}  // namespace mns::mpi
