// Per-rank receive matching: posted-receive queue + unexpected-message
// queue, with MPI's non-overtaking semantics (the fabrics deliver in post
// order per (src,dst) pair, and both queues here are matched in FIFO
// order, so matching is standard-conformant).
//
// Hot-path layout: both queues are hashed into per-(src, tag) buckets so
// the common fully-specified lookup is O(1) instead of a linear scan of
// every outstanding receive (the scan dominated matching cost in dense
// alltoall/stress traffic, where one rank holds hundreds of posted
// receives across many peers). FIFO order is preserved by stamping every
// entry with a global arrival sequence number:
//
//   * Fully-specified posted receives live in their (src, tag) bucket;
//     receives naming kAnySource or kAnyTag go to a wildcard side-list.
//     An arrival considers the head of its exact bucket (FIFO => minimal
//     seq in that bucket) and the first matching wildcard entry, and takes
//     whichever was posted earlier — exactly the order a single linear
//     queue would have produced.
//   * Unexpected messages always carry a concrete (src, tag), so they
//     bucket perfectly; a wildcard receive resolves by taking the oldest
//     head among matching buckets.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/task.hpp"

namespace mns::mpi {

/// A receive the application has posted and the device must fill.
struct PostedRecv {
  Rank want_src = kAnySource;
  Tag want_tag = kAnyTag;
  View buf;
  std::shared_ptr<RequestState> req;
};

/// A message that arrived before a matching receive was posted. `claim`
/// is the device-specific continuation run (in the receiving rank's
/// context) when a receive finally matches: it copies buffered payload
/// out, or kicks the rendezvous CTS, and ultimately completes the request.
struct Unexpected {
  Envelope env;
  std::function<sim::Task<void>(PostedRecv)> claim;
};

class Matcher {
 public:
  /// Device side: an envelope arrived; returns the matching posted
  /// receive, or nullptr after which queueing must be handled by the
  /// caller.
  std::unique_ptr<PostedRecv> match_arrival(const Envelope& env) {
    auto bucket = posted_.find(key(env.src, env.tag));
    const bool exact = bucket != posted_.end() && !bucket->second.empty();
    auto wild = posted_wild_.begin();
    for (; wild != posted_wild_.end(); ++wild) {
      if (matches(wild->item.want_src, wild->item.want_tag, env)) break;
    }
    const bool any = wild != posted_wild_.end();
    if (!exact && !any) return nullptr;
    --posted_count_;
    // Earliest posted wins; within each container FIFO order is seq order.
    if (exact && (!any || bucket->second.front().seq < wild->seq)) {
      auto out =
          std::make_unique<PostedRecv>(std::move(bucket->second.front().item));
      bucket->second.pop_front();
      if (bucket->second.empty()) posted_.erase(bucket);
      return out;
    }
    auto out = std::make_unique<PostedRecv>(std::move(wild->item));
    posted_wild_.erase(wild);
    return out;
  }

  void add_unexpected(Unexpected u) {
    const std::uint64_t k = key(u.env.src, u.env.tag);
    unexpected_[k].push_back({next_seq_++, std::move(u)});
    ++unexpected_count_;
  }

  /// Application side: try to satisfy a new receive from the unexpected
  /// queue; otherwise the caller posts it.
  std::unique_ptr<Unexpected> match_posted(Rank src, Tag tag) {
    auto* bucket = find_unexpected(src, tag);
    if (bucket == nullptr) return nullptr;
    auto out = std::make_unique<Unexpected>(std::move(bucket->front().item));
    bucket->pop_front();
    --unexpected_count_;
    if (bucket->empty()) unexpected_.erase(key(out->env.src, out->env.tag));
    return out;
  }

  void post(PostedRecv r) {
    if (r.want_src == kAnySource || r.want_tag == kAnyTag) {
      posted_wild_.push_back({next_seq_++, std::move(r)});
    } else {
      const std::uint64_t k = key(r.want_src, r.want_tag);
      posted_[k].push_back({next_seq_++, std::move(r)});
    }
    ++posted_count_;
  }

  /// Probe support: find a matching unexpected message without claiming
  /// it. Returns nullptr when none has arrived yet.
  const Unexpected* peek_unexpected(Rank src, Tag tag) const {
    const auto* bucket =
        const_cast<Matcher*>(this)->find_unexpected(src, tag);
    return bucket != nullptr ? &bucket->front().item : nullptr;
  }

  std::size_t posted_count() const { return posted_count_; }
  std::size_t unexpected_count() const { return unexpected_count_; }

 private:
  template <typename T>
  struct Entry {
    std::uint64_t seq;
    T item;
  };
  template <typename T>
  using Bucket = std::deque<Entry<T>>;

  static std::uint64_t key(Rank src, Tag tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// The unexpected bucket a receive for (src, tag) should drain from:
  /// its exact bucket, or — for wildcard receives — the matching bucket
  /// whose head arrived first. Buckets are erased when emptied, so the
  /// wildcard scan touches only live (src, tag) pairs.
  Bucket<Unexpected>* find_unexpected(Rank src, Tag tag) {
    if (src != kAnySource && tag != kAnyTag) {
      auto it = unexpected_.find(key(src, tag));
      return it != unexpected_.end() && !it->second.empty() ? &it->second
                                                           : nullptr;
    }
    Bucket<Unexpected>* best = nullptr;
    for (auto& [k, bucket] : unexpected_) {
      if (bucket.empty() || !matches(src, tag, bucket.front().item.env)) {
        continue;
      }
      if (best == nullptr || bucket.front().seq < best->front().seq) {
        best = &bucket;
      }
    }
    return best;
  }

  std::unordered_map<std::uint64_t, Bucket<PostedRecv>> posted_;
  Bucket<PostedRecv> posted_wild_;  // receives naming kAnySource/kAnyTag
  // Ordered map: find_unexpected's wildcard scan iterates this container,
  // and while its min-by-seq selection is order-insensitive, keeping the
  // visit order keyed on (src, tag) instead of host hashing makes the
  // determinism structural. The map is touched once per message vs. the
  // posted_ hash's once per packet, so the rb-tree cost is off the
  // critical path.
  std::map<std::uint64_t, Bucket<Unexpected>> unexpected_;
  std::uint64_t next_seq_ = 0;
  std::size_t posted_count_ = 0;
  std::size_t unexpected_count_ = 0;
};

}  // namespace mns::mpi
