// Per-rank receive matching: posted-receive queue + unexpected-message
// queue, with MPI's non-overtaking semantics (the fabrics deliver in post
// order per (src,dst) pair, and both queues here are searched in FIFO
// order, so matching is standard-conformant).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "mpi/request.hpp"
#include "mpi/types.hpp"
#include "sim/task.hpp"

namespace mns::mpi {

/// A receive the application has posted and the device must fill.
struct PostedRecv {
  Rank want_src = kAnySource;
  Tag want_tag = kAnyTag;
  View buf;
  std::shared_ptr<RequestState> req;
};

/// A message that arrived before a matching receive was posted. `claim`
/// is the device-specific continuation run (in the receiving rank's
/// context) when a receive finally matches: it copies buffered payload
/// out, or kicks the rendezvous CTS, and ultimately completes the request.
struct Unexpected {
  Envelope env;
  std::function<sim::Task<void>(PostedRecv)> claim;
};

class Matcher {
 public:
  /// Device side: an envelope arrived; returns the matching posted
  /// receive, or nullopt after queueing must be handled by the caller.
  std::unique_ptr<PostedRecv> match_arrival(const Envelope& env) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches(it->want_src, it->want_tag, env)) {
        auto out = std::make_unique<PostedRecv>(std::move(*it));
        posted_.erase(it);
        return out;
      }
    }
    return nullptr;
  }

  void add_unexpected(Unexpected u) { unexpected_.push_back(std::move(u)); }

  /// Application side: try to satisfy a new receive from the unexpected
  /// queue; otherwise post it.
  std::unique_ptr<Unexpected> match_posted(Rank src, Tag tag) {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(src, tag, it->env)) {
        auto out = std::make_unique<Unexpected>(std::move(*it));
        unexpected_.erase(it);
        return out;
      }
    }
    return nullptr;
  }

  void post(PostedRecv r) { posted_.push_back(std::move(r)); }

  /// Probe support: find a matching unexpected message without claiming
  /// it. Returns nullptr when none has arrived yet.
  const Unexpected* peek_unexpected(Rank src, Tag tag) const {
    for (const auto& u : unexpected_) {
      if (matches(src, tag, u.env)) return &u;
    }
    return nullptr;
  }

  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  std::deque<PostedRecv> posted_;
  std::deque<Unexpected> unexpected_;
};

}  // namespace mns::mpi
