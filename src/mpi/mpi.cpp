#include "mpi/mpi.hpp"

#include <string>

#include "audit/report.hpp"

namespace mns::mpi {

void Mpi::register_audits(audit::AuditReport& report) {
  report.add_check("mpi::Mpi", [this](audit::AuditReport::Scope& s) {
    s.require_eq(ledger_.created, ledger_.completed,
                 "request(s) created but never completed");
    s.require_eq(ledger_.double_completed, std::uint64_t{0},
                 "request(s) completed more than once");
    for (const auto& proc : procs_) {
      const std::string rank = "rank " + std::to_string(proc->rank());
      s.require_eq(proc->matcher().unexpected_count(), std::size_t{0},
                   rank + ": orphaned unexpected message(s) at finalize");
      s.require_eq(proc->matcher().posted_count(), std::size_t{0},
                   rank + ": posted receive(s) never matched");
      s.require_eq(proc->deferred_pending(), std::size_t{0},
                   rank + ": deferred protocol action(s) never drained");
      s.require(!proc->cpu().in_mpi(),
                rank + ": still inside an MPI call at finalize");
    }
    s.require_eq(slots_.size(), std::size_t{0},
                 "collective slot(s) left open at finalize");
  });
}

}  // namespace mns::mpi
