#include "mpi/mpi.hpp"

#include <string>

#include "audit/report.hpp"

namespace mns::mpi {

std::uint64_t Mpi::canon_addr(Rank r, std::uint64_t addr,
                              std::uint64_t bytes) {
  // Granularity: the finest model page size in use (IB/GM use 4 KiB,
  // Elan 8 KiB), so distinct model pages never merge. The canonical base
  // sits above the skeletons' synthetic address space (0x4000'0000'0000 +
  // rank<<32) so the two ranges cannot collide in the per-node caches.
  // Partitioned jobs additionally salt the base by rank and number pages
  // in per-rank maps: cross-rank first-touch order is a thread-scheduling
  // artifact there, and a shared map would make canonical addresses (and
  // so regcache/MMU timing) run-to-run nondeterministic.
  constexpr std::uint64_t kPage = 4096;
  constexpr std::uint64_t kBase = 0x7000'0000'0000ULL;
  auto& pages = partitioned_
                    ? canon_rank_pages_[static_cast<std::size_t>(r)]
                    : canon_pages_;
  auto& next = partitioned_ ? canon_rank_next_[static_cast<std::size_t>(r)]
                            : canon_next_page_;
  const std::uint64_t base =
      partitioned_ ? kBase + ((static_cast<std::uint64_t>(r) + 1) << 40)
                   : kBase;
  const std::uint64_t first = addr / kPage;
  const std::uint64_t last = (addr + bytes - 1) / kPage;
  // First touch reserves the buffer's whole page range in one walk, so a
  // contiguous real buffer stays contiguous canonically and slices handed
  // to MPI later (which re-derive raw addresses from the payload pointer)
  // land inside the parent's reservation.
  if (!pages.count(first) || !pages.count(last)) {
    for (std::uint64_t p = first; p <= last; ++p) {
      if (pages.try_emplace(p, next).second) ++next;
    }
  }
  return base + pages[first] * kPage + addr % kPage;
}

void Mpi::register_audits(audit::AuditReport& report) {
  report.add_check("mpi::Mpi", [this](audit::AuditReport::Scope& s) {
    s.require_eq(ledger_.created.load(), ledger_.completed.load(),
                 "request(s) created but never completed");
    s.require_eq(ledger_.double_completed.load(), std::uint64_t{0},
                 "request(s) completed more than once");
    for (const auto& proc : procs_) {
      const std::string rank = "rank " + std::to_string(proc->rank());
      s.require_eq(proc->matcher().unexpected_count(), std::size_t{0},
                   rank + ": orphaned unexpected message(s) at finalize");
      s.require_eq(proc->matcher().posted_count(), std::size_t{0},
                   rank + ": posted receive(s) never matched");
      s.require_eq(proc->deferred_pending(), std::size_t{0},
                   rank + ": deferred protocol action(s) never drained");
      s.require(!proc->cpu().in_mpi(),
                rank + ": still inside an MPI call at finalize");
    }
    s.require_eq(slots_.size(), std::size_t{0},
                 "collective slot(s) left open at finalize");
  });
}

}  // namespace mns::mpi
