// The MPI "job": per-rank processes, the device, the profiler, and the
// rank-to-node topology. One Mpi object per simulated application run.
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "mpi/device.hpp"
#include "mpi/proc.hpp"
#include "prof/recorder.hpp"
#include "prof/trace.hpp"
#include "sim/engine.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::mpi {

struct Topology {
  /// rank -> node index. Slot (position within node) is derived.
  std::vector<int> rank_node;

  static Topology block(std::size_t nodes, int ppn) {
    // The paper's "block" mapping: ranks 0..ppn-1 on node 0, etc.
    Topology t;
    t.rank_node.reserve(nodes * static_cast<std::size_t>(ppn));
    for (std::size_t n = 0; n < nodes; ++n) {
      for (int s = 0; s < ppn; ++s) {
        t.rank_node.push_back(static_cast<int>(n));
      }
    }
    return t;
  }
};

class Mpi {
 public:
  /// `node_eng`, when non-empty, maps node index -> the engine that owns
  /// that node under partitioned (PDES) execution; each rank's Proc — its
  /// CPU, matcher and deferred queue — is built on its node's engine so
  /// every touch of that state happens on the owning partition's thread.
  /// Empty (the default) puts every rank on `eng`, the sequential layout.
  Mpi(sim::Engine& eng, Topology topo,
      const std::vector<sim::Engine*>& node_eng = {})
      : eng_(&eng), topo_(std::move(topo)),
        recorder_(topo_.rank_node.size()) {
    std::vector<int> slot_counter(
        topo_.rank_node.empty()
            ? 0
            : static_cast<std::size_t>(
                  *std::max_element(topo_.rank_node.begin(),
                                    topo_.rank_node.end()) +
                  1),
        0);
    procs_.reserve(topo_.rank_node.size());
    for (std::size_t r = 0; r < topo_.rank_node.size(); ++r) {
      const int node = topo_.rank_node[r];
      sim::Engine& pe =
          node_eng.empty() ? eng
                           : *node_eng.at(static_cast<std::size_t>(node));
      if (&pe != &eng) partitioned_ = true;
      procs_.push_back(std::make_unique<Proc>(
          pe, static_cast<Rank>(r), node,
          slot_counter[static_cast<std::size_t>(node)]++));
    }
    if (partitioned_) {
      canon_rank_pages_.resize(procs_.size());
      canon_rank_next_.assign(procs_.size(), 0);
    }
  }

  void set_device(std::unique_ptr<Device> dev) { device_ = std::move(dev); }

  sim::Engine& engine() const { return *eng_; }
  /// The engine owning `r`'s node (== engine() when not partitioned).
  /// Work done on behalf of rank `r` from another rank's context — request
  /// completion, deferred handoff, buffered-delivery copies — must be
  /// scheduled here, not on engine().
  sim::Engine& engine_of(Rank r) {
    return procs_.at(static_cast<std::size_t>(r))->engine();
  }
  Device& device() const {
    if (!device_) throw std::logic_error("Mpi: no device installed");
    return *device_;
  }

  std::size_t size() const { return procs_.size(); }
  Proc& proc(Rank r) { return *procs_.at(static_cast<std::size_t>(r)); }
  int node_of(Rank r) const {
    return topo_.rank_node.at(static_cast<std::size_t>(r));
  }
  bool same_node(Rank a, Rank b) const { return node_of(a) == node_of(b); }

  prof::Recorder& recorder() { return recorder_; }

  /// Rebase a real view's model-visible address onto a per-job canonical
  /// address space (first-touch dense page numbering, page offsets
  /// preserved).
  ///
  /// View::in/out derive the address from the host pointer, which depends
  /// on ASLR, allocator history and — with pooled coroutine frames — on
  /// which thread ran earlier sweep points. The registration-cache and
  /// NIC-MMU models key their timing on those addresses, so feeding them
  /// raw pointers makes simulated time depend on host memory layout.
  /// Canonicalizing at the MPI boundary keeps the models' access *pattern*
  /// (same page => same page, offsets intact) while making the values a
  /// pure function of this job's deterministic call order. Synthetic and
  /// already-canonical views pass through unchanged.
  ///
  /// The calling rank selects the numbering space. Sequential layout: one
  /// shared first-touch map (call order across ranks is deterministic).
  /// Partitioned layout: ranks on different engines canonicalize
  /// concurrently and their interleaving is scheduling-dependent, so each
  /// rank numbers pages in a private space whose base is salted by rank —
  /// deterministic per rank, disjoint across ranks.
  View canon(Rank r, View v) {
    if (v.synthetic() || v.canonical() || v.bytes() == 0) return v;
    return v.rebased(canon_addr(r, v.addr(), v.bytes()));
  }

  /// Canonical address the recorder/device should see for `v` (same map
  /// as canon(), without rebasing the view).
  std::uint64_t canon_addr(Rank r, const View& v) {
    if (v.synthetic() || v.canonical() || v.bytes() == 0) return v.addr();
    return canon_addr(r, v.addr(), v.bytes());
  }

  /// Request-completion conservation ledger; every RequestState the job
  /// creates reports into it (see request.hpp).
  RequestLedger& request_ledger() { return ledger_; }

  /// Finalize-time conservation checks over the whole MPI layer: every
  /// request completed exactly once, matcher queues empty (no orphaned
  /// unexpected messages, no dangling posted receives), deferred protocol
  /// work drained, no rank still inside an MPI call, and no collective
  /// slot left open.
  void register_audits(audit::AuditReport& report);

  /// Optional execution tracer (timeline recording); null disables.
  void set_tracer(prof::Tracer* t) { tracer_ = t; }
  prof::Tracer* tracer() const { return tracer_; }

  /// Armed by the cluster when the fault plan contains fail-stop clauses
  /// (linkdown/nicdown). Collectives then run a deterministic
  /// error-agreement epilogue so every live rank observes the same
  /// outcome; transient-only and fault-free runs skip it entirely,
  /// keeping their event streams bit-identical.
  void set_fail_stop_armed(bool v) { fail_stop_armed_ = v; }
  bool fail_stop_armed() const { return fail_stop_armed_; }

  /// Collective-coordination slot (used for the Elan hardware-broadcast
  /// fast path): every rank arrives at collective #seq; the root's
  /// broadcast completion releases them all, and the payload lets
  /// non-roots copy real broadcast data out.
  struct CollSlot {
    explicit CollSlot(sim::Engine& e) : trig(e) {}
    /// The root's buffer may die before the last rank resumes (the root
    /// returns from its bcast as soon as the hardware has the data), so
    /// stage the payload bytes in the slot rather than aliasing the
    /// root's view.
    void stage_payload(const View& buf) {
      payload = buf;
      if (!buf.synthetic()) {
        staged_.assign(buf.data(), buf.data() + buf.bytes());
        payload = View::in(staged_.data(), buf.bytes());
      }
    }
    sim::Trigger trig;
    View payload;
    int arrived = 0;

   private:
    std::vector<std::byte> staged_;
  };

  CollSlot& collective_slot(std::uint64_t seq) {
    auto it = slots_.find(seq);
    if (it == slots_.end()) {
      it = slots_.emplace(seq, std::make_unique<CollSlot>(*eng_)).first;
    }
    return *it->second;
  }
  void drop_collective_slot(std::uint64_t seq) { slots_.erase(seq); }

 private:
  std::uint64_t canon_addr(Rank r, std::uint64_t addr, std::uint64_t bytes);

  sim::Engine* eng_;
  Topology topo_;
  prof::Recorder recorder_;
  RequestLedger ledger_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::unique_ptr<Device> device_;
  prof::Tracer* tracer_ = nullptr;
  bool fail_stop_armed_ = false;
  std::unordered_map<std::uint64_t, std::unique_ptr<CollSlot>> slots_;
  std::unordered_map<std::uint64_t, std::uint64_t> canon_pages_;
  std::uint64_t canon_next_page_ = 0;
  bool partitioned_ = false;
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>>
      canon_rank_pages_;
  std::vector<std::uint64_t> canon_rank_next_;
};

}  // namespace mns::mpi
