// Per-rank process state: simulated CPU, matcher, deferred protocol work.
//
// The deferred queue is the heart of the paper's overlap story. When a
// message/handshake event arrives for a rank whose host is *computing*
// (outside MPI), implementations without NIC-side protocol engines cannot
// react until the application re-enters the library. Devices call
// `host_action`: it runs the action immediately if the rank is inside an
// MPI call (including blocked in a wait, where the host spins on
// completion), and defers it to the next MPI entry otherwise.
#pragma once

#include <deque>
#include <functional>

#include "model/pipe.hpp"
#include "mpi/matcher.hpp"
#include "sim/engine.hpp"

namespace mns::mpi {

class Proc {
 public:
  Proc(sim::Engine& eng, Rank rank, int node, int slot)
      : eng_(&eng), cpu_(eng), host_work_(eng, 1e12), rank_(rank),
        node_(node), slot_(slot) {}

  /// The engine this rank's node lives on (its partition's engine under
  /// PDES execution; the cluster engine otherwise). Event-context work
  /// for this rank must be spawned here.
  sim::Engine& engine() { return *eng_; }
  sim::Cpu& cpu() { return cpu_; }
  /// Serializes event-context host work (message delivery processing):
  /// the rank has ONE CPU, so concurrent arrivals queue — this is what
  /// makes incast patterns (alltoall fan-in) expensive.
  model::Pipe& host_work() { return host_work_; }
  Matcher& matcher() { return matcher_; }
  Rank rank() const { return rank_; }
  int node() const { return node_; }
  int slot() const { return slot_; }  // position within the node (SMP)

  /// Run `fn` now if the host is attentive (inside MPI), else defer it to
  /// the next MPI entry.
  void host_action(std::function<void()> fn) {
    if (cpu_.in_mpi()) {
      fn();
    } else {
      deferred_.push_back(std::move(fn));
      ++deferred_total_;
    }
  }

  /// Called on every MPI entry: run everything that piled up while the
  /// application was computing.
  void drain_deferred() {
    while (!deferred_.empty()) {
      auto fn = std::move(deferred_.front());
      deferred_.pop_front();
      fn();
    }
  }

  std::uint64_t deferred_total() const { return deferred_total_; }
  std::size_t deferred_pending() const { return deferred_.size(); }

 private:
  sim::Engine* eng_;
  sim::Cpu cpu_;
  model::Pipe host_work_;
  Matcher matcher_;
  Rank rank_;
  int node_;
  int slot_;
  std::deque<std::function<void()>> deferred_;
  std::uint64_t deferred_total_ = 0;
};

}  // namespace mns::mpi
