// Non-blocking request handles.
#pragma once

#include <memory>

#include "mpi/types.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::mpi {

struct RequestState {
  explicit RequestState(sim::Engine& eng) : trig(eng) {}

  void complete(const Status& s) {
    status = s;
    done = true;
    trig.fire();
  }

  bool done = false;
  Status status{};
  sim::Trigger trig;
};

/// Shared handle; copyable like an MPI_Request. A default-constructed
/// Request is the "null request": already complete with an empty Status.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  bool done() const { return !st_ || st_->done; }
  const Status& status() const {
    static const Status kEmpty{};
    return st_ ? st_->status : kEmpty;
  }

  /// Awaitable completion; resolves immediately if already done.
  sim::Task<Status> await_done() const {
    if (st_ && !st_->done) co_await st_->trig.wait();
    co_return st_ ? st_->status : Status{};
  }

  RequestState* state() const { return st_.get(); }

 private:
  std::shared_ptr<RequestState> st_;
};

}  // namespace mns::mpi
