// Non-blocking request handles.
#pragma once

#include <atomic>  // simlint-allow: threading (cross-partition ledger)
#include <cstdint>
#include <memory>

#include "audit/audit.hpp"
#include "mpi/types.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace mns::mpi {

/// Conservation bookkeeping for requests, owned by the Mpi job: at
/// finalize every created request must be completed exactly once. The
/// double-complete count makes the violation visible in every build; in
/// audit builds the MNS_AUDIT in complete() additionally throws at the
/// offending call site. Counters are relaxed atomics: ranks on different
/// PDES partitions report concurrently, and only the finalize-time sums
/// (read after every thread has parked) are meaningful.
struct RequestLedger {
  // simlint-allow: threading
  std::atomic<std::uint64_t> created{0};
  // simlint-allow: threading
  std::atomic<std::uint64_t> completed{0};
  // simlint-allow: threading
  std::atomic<std::uint64_t> double_completed{0};
};

struct RequestState {
  explicit RequestState(sim::Engine& eng, RequestLedger* ledger = nullptr)
      : trig(eng), ledger(ledger) {
    if (ledger) ledger->created.fetch_add(1, std::memory_order_relaxed);
  }

  void complete(const Status& s) {
    MNS_AUDIT(!done, "RequestState completed twice");
    if (ledger) {
      if (done) {
        ledger->double_completed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ledger->completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    status = s;
    done = true;
    trig.fire();
  }

  bool done = false;
  Status status{};
  sim::Trigger trig;
  RequestLedger* ledger = nullptr;
};

/// Shared handle; copyable like an MPI_Request. A default-constructed
/// Request is the "null request": already complete with an empty Status.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<RequestState> st) : st_(std::move(st)) {}

  bool valid() const { return st_ != nullptr; }
  bool done() const { return !st_ || st_->done; }
  const Status& status() const {
    static const Status kEmpty{};
    return st_ ? st_->status : kEmpty;
  }

  /// Awaitable completion; resolves immediately if already done.
  sim::Task<Status> await_done() const {
    if (st_ && !st_->done) co_await st_->trig.wait();
    co_return st_ ? st_->status : Status{};
  }

  RequestState* state() const { return st_.get(); }

 private:
  std::shared_ptr<RequestState> st_;
};

}  // namespace mns::mpi
