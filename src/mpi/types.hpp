// Core MPI-facing types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mns::mpi {

using Rank = int;
using Tag = int;

inline constexpr Rank kAnySource = -2;
inline constexpr Tag kAnyTag = -1;

/// Reserved tag space for collective algorithms; user tags must be >= 0
/// and < kCollectiveTagBase.
inline constexpr Tag kCollectiveTagBase = 1 << 24;

/// MPI_SUCCESS / the one error class the simulator surfaces: the fabric
/// exhausted its recovery protocol's retry budget for a message (IB RC QP
/// error, GM Go-Back-N give-up, Elan retry exhaustion). Requests complete
/// with this in Status::error instead of hanging the engine.
inline constexpr int kErrNone = 0;
inline constexpr int kErrFabric = 1;

struct Status {
  Rank source = kAnySource;
  Tag tag = kAnyTag;
  std::uint64_t bytes = 0;
  int error = kErrNone;
};

enum class Dtype : std::uint8_t { kByte, kInt32, kInt64, kDouble };

constexpr std::size_t dtype_size(Dtype d) {
  switch (d) {
    case Dtype::kByte: return 1;
    case Dtype::kInt32: return 4;
    case Dtype::kInt64: return 8;
    case Dtype::kDouble: return 8;
  }
  return 1;
}

enum class ROp : std::uint8_t { kSum, kMax, kMin };

/// A user buffer handed to MPI.
///
/// Two modes:
///  - real:      wraps actual memory; payloads are moved so applications
///               compute on received data (used by the verified apps).
///  - synthetic: carries only an address identity and a length; all the
///               timing models (registration caches, NIC MMUs, buffer
///               reuse) behave identically, but no bytes move (used by the
///               class-B communication skeletons where allocating real
///               class-B arrays would be pointless).
class View {
 public:
  View() = default;

  static View in(const void* p, std::uint64_t bytes) {
    View v;
    v.addr_ = reinterpret_cast<std::uint64_t>(p);
    v.data_ = const_cast<std::byte*>(static_cast<const std::byte*>(p));
    v.bytes_ = bytes;
    v.writable_ = false;
    return v;
  }

  static View out(void* p, std::uint64_t bytes) {
    View v;
    v.addr_ = reinterpret_cast<std::uint64_t>(p);
    v.data_ = static_cast<std::byte*>(p);
    v.bytes_ = bytes;
    v.writable_ = true;
    return v;
  }

  /// Synthetic buffer: `addr` is any nonzero stable identity the workload
  /// chooses (it feeds the registration-cache / MMU / reuse models).
  static View synth(std::uint64_t addr, std::uint64_t bytes) {
    View v;
    v.addr_ = addr;
    v.bytes_ = bytes;
    v.writable_ = true;
    return v;
  }

  std::uint64_t addr() const { return addr_; }
  std::uint64_t bytes() const { return bytes_; }
  std::byte* data() const { return data_; }
  bool synthetic() const { return data_ == nullptr; }
  bool writable() const { return writable_; }

  /// True once the model-visible address has been rebased onto the MPI
  /// layer's canonical address space (see Mpi::canon).
  bool canonical() const { return canon_; }

  /// Copy of this view with the model-visible address replaced by a
  /// canonical one. The payload pointer is untouched; only the identity
  /// fed to the registration-cache / MMU / reuse models changes.
  View rebased(std::uint64_t addr) const {
    View v = *this;
    v.addr_ = addr;
    v.canon_ = true;
    return v;
  }

 private:
  std::uint64_t addr_ = 0;
  std::byte* data_ = nullptr;
  std::uint64_t bytes_ = 0;
  bool writable_ = false;
  bool canon_ = false;
};

/// Copy payload between views where both sides are real. `bytes` is the
/// wire size (min of the two views enforced by the caller).
inline void copy_payload(const View& src, const View& dst,
                         std::uint64_t bytes) {
  if (src.synthetic() || dst.synthetic() || bytes == 0) return;
  std::memcpy(dst.data(), src.data(), static_cast<std::size_t>(bytes));
}

/// Message envelope used for matching.
struct Envelope {
  Rank src = 0;
  Rank dst = 0;
  Tag tag = 0;
  std::uint64_t bytes = 0;
};

constexpr bool matches(Rank want_src, Tag want_tag, const Envelope& env) {
  return (want_src == kAnySource || want_src == env.src) &&
         (want_tag == kAnyTag || want_tag == env.tag);
}

}  // namespace mns::mpi
