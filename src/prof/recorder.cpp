#include "prof/recorder.hpp"

namespace mns::prof {

void Recorder::touch_buffer(RankStats& st, std::uint64_t addr,
                            std::uint64_t bytes) {
  if (addr == 0) return;  // no buffer identity (internal temporaries)
  ++st.buffer_accesses;
  st.buffer_bytes += bytes;
  auto& seen = seen_[static_cast<std::size_t>(&st - ranks_.data())];
  if (!seen.insert(addr).second) {
    ++st.buffer_reuses;
    st.buffer_reuse_bytes += bytes;
  }
}

void Recorder::on_send(int rank, std::uint64_t bytes, bool nonblocking,
                       std::uint64_t addr, bool intra_node) {
  if (!enabled_) return;
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  st.sent.add(bytes);
  ++st.mpi_calls;
  st.total_bytes += bytes;
  ++st.ptp_calls;
  st.ptp_bytes += bytes;
  if (intra_node) {
    ++st.intra_calls;
    st.intra_bytes += bytes;
  }
  if (nonblocking) {
    ++st.isend_calls;
    st.isend_bytes += bytes;
  }
  touch_buffer(st, addr, bytes);
}

void Recorder::on_recv(int rank, std::uint64_t bytes, bool nonblocking,
                       std::uint64_t addr) {
  if (!enabled_) return;
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  // Note: receives do not count towards mpi_calls — the paper's call
  // accounting (Tables 1 and 5) follows send-side + collective calls.
  if (nonblocking) {
    ++st.irecv_calls;
    st.irecv_bytes += bytes;
  }
  touch_buffer(st, addr, bytes);
}

void Recorder::on_collective(int rank, const std::string& op,
                             std::uint64_t bytes, std::uint64_t addr) {
  if (!enabled_) return;
  auto& st = ranks_[static_cast<std::size_t>(rank)];
  ++st.mpi_calls;
  ++st.collective_calls;
  st.sent.add(bytes);  // Table 1 counts collective calls by buffer size
  st.total_bytes += bytes;
  st.collective_bytes += bytes;
  ++coll_ops_[static_cast<std::size_t>(rank)][op];
  touch_buffer(st, addr, bytes);
}

RankStats Recorder::totals() const {
  RankStats out;
  for (const auto& st : ranks_) {
    out.isend_calls += st.isend_calls;
    out.isend_bytes += st.isend_bytes;
    out.irecv_calls += st.irecv_calls;
    out.irecv_bytes += st.irecv_bytes;
    out.buffer_accesses += st.buffer_accesses;
    out.buffer_reuses += st.buffer_reuses;
    out.buffer_bytes += st.buffer_bytes;
    out.buffer_reuse_bytes += st.buffer_reuse_bytes;
    out.mpi_calls += st.mpi_calls;
    out.collective_calls += st.collective_calls;
    out.total_bytes += st.total_bytes;
    out.collective_bytes += st.collective_bytes;
    out.ptp_calls += st.ptp_calls;
    out.ptp_bytes += st.ptp_bytes;
    out.intra_calls += st.intra_calls;
    out.intra_bytes += st.intra_bytes;
    out.sent.merge(st.sent);
  }
  return out;
}

}  // namespace mns::prof
