// MPI profiling layer.
//
// The paper produced its application-characterization tables (message-size
// distribution, non-blocking usage, buffer reuse, collective share,
// intra-node share — Tables 1 and 3-6) by logging through the MPICH
// logging interface. This recorder plays that role: the MPI library calls
// it on every operation, and the bench harnesses query it to regenerate
// the same tables from *our* instrumented runs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/stats.hpp"

namespace mns::prof {

struct RankStats {
  // Point-to-point sends by payload size (Table 1).
  util::SizeHistogram sent;

  // Non-blocking usage (Table 3).
  std::uint64_t isend_calls = 0;
  std::uint64_t isend_bytes = 0;
  std::uint64_t irecv_calls = 0;
  std::uint64_t irecv_bytes = 0;

  // Buffer reuse (Table 4): an "access" is any user buffer handed to MPI.
  std::uint64_t buffer_accesses = 0;
  std::uint64_t buffer_reuses = 0;
  std::uint64_t buffer_bytes = 0;
  std::uint64_t buffer_reuse_bytes = 0;

  // Collective share (Table 5).
  std::uint64_t mpi_calls = 0;        // all communication calls
  std::uint64_t collective_calls = 0;
  std::uint64_t total_bytes = 0;      // communication volume
  std::uint64_t collective_bytes = 0;

  // Intra-node point-to-point share (Table 6).
  std::uint64_t ptp_calls = 0;
  std::uint64_t ptp_bytes = 0;
  std::uint64_t intra_calls = 0;
  std::uint64_t intra_bytes = 0;
};

class Recorder {
 public:
  explicit Recorder(std::size_t ranks)
      : ranks_(ranks), seen_(ranks), coll_ops_(ranks) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void on_send(int rank, std::uint64_t bytes, bool nonblocking,
               std::uint64_t addr, bool intra_node);
  void on_recv(int rank, std::uint64_t bytes, bool nonblocking,
               std::uint64_t addr);
  /// One collective call; `bytes` is this rank's contributed volume.
  void on_collective(int rank, const std::string& op, std::uint64_t bytes,
                     std::uint64_t addr);

  const RankStats& rank(int r) const {
    return ranks_.at(static_cast<std::size_t>(r));
  }
  std::size_t rank_count() const { return ranks_.size(); }

  /// Sum across ranks (the paper reports whole-application numbers).
  RankStats totals() const;

  /// Per-collective-op call counts across all ranks. Counts are kept
  /// per rank (each rank's MPI calls may execute on its partition's
  /// thread under PDES execution) and merged here at read time.
  std::unordered_map<std::string, std::uint64_t> collective_ops() const {
    std::unordered_map<std::string, std::uint64_t> merged;
    for (const auto& per_rank : coll_ops_) {
      for (const auto& [op, n] : per_rank) merged[op] += n;
    }
    return merged;
  }

 private:
  void touch_buffer(RankStats& st, std::uint64_t addr, std::uint64_t bytes);

  bool enabled_ = true;
  std::vector<RankStats> ranks_;
  std::vector<std::unordered_set<std::uint64_t>> seen_;
  std::vector<std::unordered_map<std::string, std::uint64_t>> coll_ops_;
};

}  // namespace mns::prof
