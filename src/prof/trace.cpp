#include "prof/trace.hpp"

#include <algorithm>
#include <ostream>

namespace mns::prof {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kWait: return "wait";
    case EventKind::kCollective: return "collective";
    case EventKind::kCompute: return "compute";
  }
  return "?";
}

void Tracer::write_csv(std::ostream& os) const {
  os << "t_start,t_end,rank,kind,op,peer,bytes\n";
  for (const auto& ev : events_) {
    os << ev.t_start << ',' << ev.t_end << ',' << ev.rank << ','
       << event_kind_name(ev.kind) << ',' << ev.op << ',' << ev.peer << ','
       << ev.bytes << '\n';
  }
}

std::vector<std::vector<std::uint64_t>> Tracer::comm_matrix(
    int ranks) const {
  std::vector<std::vector<std::uint64_t>> m(
      static_cast<std::size_t>(ranks),
      std::vector<std::uint64_t>(static_cast<std::size_t>(ranks), 0));
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kSend && ev.peer >= 0 && ev.peer < ranks &&
        ev.rank >= 0 && ev.rank < ranks) {
      m[static_cast<std::size_t>(ev.rank)]
       [static_cast<std::size_t>(ev.peer)] += ev.bytes;
    }
  }
  return m;
}

std::vector<Tracer::Breakdown> Tracer::breakdown(int ranks) const {
  std::vector<Breakdown> out(static_cast<std::size_t>(ranks));
  std::vector<double> first(static_cast<std::size_t>(ranks), -1.0);
  std::vector<double> last(static_cast<std::size_t>(ranks), 0.0);
  for (const auto& ev : events_) {
    if (ev.rank < 0 || ev.rank >= ranks) continue;
    auto& b = out[static_cast<std::size_t>(ev.rank)];
    const double dur = ev.t_end - ev.t_start;
    if (ev.kind == EventKind::kCompute) {
      b.compute_s += dur;
    } else {
      b.mpi_s += dur;
    }
    auto& f = first[static_cast<std::size_t>(ev.rank)];
    if (f < 0 || ev.t_start < f) f = ev.t_start;
    last[static_cast<std::size_t>(ev.rank)] =
        std::max(last[static_cast<std::size_t>(ev.rank)], ev.t_end);
  }
  for (int r = 0; r < ranks; ++r) {
    out[static_cast<std::size_t>(r)].total_s =
        first[static_cast<std::size_t>(r)] < 0
            ? 0
            : last[static_cast<std::size_t>(r)] -
                  first[static_cast<std::size_t>(r)];
  }
  return out;
}

}  // namespace mns::prof
