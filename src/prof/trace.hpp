// Execution tracing.
//
// Optional per-call timeline recording (what the paper did with the MPICH
// logging interface before aggregating). Each MPI operation becomes one
// event with simulated start/end times; analyses derive the
// rank-pair communication matrix and per-rank time breakdown
// (compute / MPI / idle), and the raw timeline exports as CSV for
// plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mns::prof {

enum class EventKind : std::uint8_t {
  kSend,
  kRecv,
  kWait,
  kCollective,
  kCompute,
};

const char* event_kind_name(EventKind k);

struct TraceEvent {
  double t_start = 0;  // simulated seconds
  double t_end = 0;
  int rank = 0;
  EventKind kind = EventKind::kSend;
  int peer = -1;             // point-to-point partner (-1: n/a)
  std::uint64_t bytes = 0;
  std::string op;            // "Send", "Allreduce", ...
};

class Tracer {
 public:
  void record(TraceEvent ev) { events_.push_back(std::move(ev)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// CSV timeline: t_start,t_end,rank,kind,op,peer,bytes.
  void write_csv(std::ostream& os) const;

  /// bytes sent from rank i to rank j (point-to-point events only).
  std::vector<std::vector<std::uint64_t>> comm_matrix(int ranks) const;

  struct Breakdown {
    double compute_s = 0;
    double mpi_s = 0;   // time inside Send/Recv/Wait/Collective events
    double total_s = 0; // first event start to last event end
    double idle_s() const {
      const double busy = compute_s + mpi_s;
      return total_s > busy ? total_s - busy : 0.0;
    }
  };
  /// Per-rank time decomposition over the traced window.
  std::vector<Breakdown> breakdown(int ranks) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace mns::prof
