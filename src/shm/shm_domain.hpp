// Intra-node shared-memory messaging.
//
// When two ranks share a node, MPI implementations short-circuit the NIC
// with a shared-memory segment: the sender copies into a ring buffer, the
// receiver polls and copies out. Both copies run on host CPUs at memcpy
// speed, which is why large-message shared-memory bandwidth *drops* when
// buffers stop fitting in cache (paper Fig. 10) — the fabric DMA engines
// never suffer that cliff.
//
// The domain models timing and ordering; payload movement and CPU-time
// charging are done by the MPI ch_smp device (copies burn the caller's
// simulated CPU, unlike NIC DMA).
#pragma once

#include <cstdint>
#include <functional>

#include "model/memcpy_model.hpp"
#include "sim/engine.hpp"

namespace mns::shm {

struct ShmConfig {
  sim::Time post_cost;         // enqueue descriptor + flag write
  sim::Time poll_cost;         // receiver poll + dequeue
  sim::Time visibility_delay;  // coherence propagation to the other CPU
  model::MemcpyConfig copy;    // the two memcpy halves
};

struct ShmMsg {
  int src_rank = 0;
  int dst_rank = 0;
  std::uint64_t bytes = 0;
  std::function<void()> remote_arrival;  // data visible to the receiver
};

/// One per node. `send_copy` is awaited by the *sender* (its CPU does the
/// copy-in); the receiver's copy-out cost is exposed via `copy_time` and
/// charged by the device when the message is matched.
class ShmDomain {
 public:
  ShmDomain(sim::Engine& eng, const ShmConfig& cfg)
      : eng_(&eng), cfg_(cfg), copier_(cfg.copy) {}

  /// Sender-side: descriptor post + copy-in. On return the sender may
  /// reuse its buffer; `remote_arrival` fires after the visibility delay.
  sim::Task<void> send_copy(ShmMsg msg) {
    co_await eng_->delay(cfg_.post_cost + copier_.copy_time(msg.bytes));
    ++messages_;
    bytes_ += msg.bytes;
    if (msg.remote_arrival) {
      eng_->after(cfg_.visibility_delay, std::move(msg.remote_arrival));
    }
  }

  /// Receiver-side copy-out cost for `bytes` (plus the poll).
  sim::Time recv_cost(std::uint64_t bytes) const {
    return cfg_.poll_cost + copier_.copy_time(bytes);
  }

  std::uint64_t messages() const { return messages_; }
  std::uint64_t bytes_moved() const { return bytes_; }
  const ShmConfig& config() const { return cfg_; }

 private:
  sim::Engine* eng_;
  ShmConfig cfg_;
  model::MemcpyModel copier_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace mns::shm
