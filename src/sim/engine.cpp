#include "sim/engine.hpp"

#include <algorithm>

#include "audit/report.hpp"
#include "sim/frame_pool.hpp"

namespace mns::sim {

namespace {
// 4-ary heap: children of i are [4i+1, 4i+4], parent is (i-1)/4. Shallower
// than a binary heap (log4 vs log2 levels) and the four children of one
// parent sit in adjacent memory, so a sift touches fewer cache lines.
constexpr std::size_t kHeapArity = 4;
}  // namespace

// Root coroutine wrapper: owns the process Task, reports completion and
// errors to the engine. On completion the engine destroys the frame from
// the final-suspend point, so finished processes cost nothing.
struct Engine::Root {
  struct promise_type : frame_pool::PoolAllocated {
    Engine* eng = nullptr;
    std::size_t root_index = 0;  // position in Engine::roots_ for O(1) retire
    bool daemon = false;
    Root get_return_object() {
      return Root{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // The frame is suspended at its final point: destroying it here is
        // well-defined and control returns to the engine's event loop.
        h.promise().eng->retire(h);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      eng->process_failed(std::current_exception());
    }
  };
  std::coroutine_handle<promise_type> handle;
};

namespace {
Engine::Root make_root(Task<> t) { co_await t; }
}  // namespace

Engine::~Engine() { drop_processes(); }

void Engine::drop_processes() {
  // Swap out roots_ first: destroying a frame can (transitively) destroy
  // Tasks that are themselves roots-in-waiting, and must not observe a
  // half-cleared vector.
  std::vector<std::coroutine_handle<>> roots = std::move(roots_);
  roots_.clear();
  for (auto h : roots) {
    if (h) h.destroy();
  }
  // Pending event payloads capture handles into the frames just
  // destroyed; drop them unrun (~EventFn reclaims boxed closures).
#if defined(MNS_EVENT_QUEUE_LADDER)
  ladder_.clear();
#else
  heap_keys_.clear();
  heap_slots_.clear();
#endif
  slab_.clear();
  slab_free_.clear();
  slab_seq_.clear();
  tombstones_ = 0;
  nowq_.clear();
  nowq_head_ = 0;
  live_ = 0;
}

void Engine::schedule_future(std::int64_t at_ps, EventFn fn) {
  if (at_ps < now_.count_ps()) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  heap_push(Key::make(at_ps, next_seq_++), std::move(fn));
}

#if defined(MNS_EVENT_QUEUE_LADDER)

// Ladder policy (-DMNS_EVENT_QUEUE=ladder): same slab parking and slot
// recycling, different key ordering structure. Keys are unique, so the
// pop sequence is identical to the heap's and results are bit-identical.
MNS_HOT std::uint32_t Engine::heap_push(Key key, EventFn fn) {
  std::uint32_t slot;
  if (!slab_free_.empty()) {
    slot = slab_free_.back();
    slab_free_.pop_back();
    slab_[slot] = std::move(fn);
    slab_seq_[slot] = key.seq();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(fn));
    slab_seq_.push_back(key.seq());
  }
  ladder_.push(key, slot);
  return slot;
}

MNS_HOT EventFn Engine::heap_pop(Key& key) {
  const auto e = ladder_.pop();
  key = e.key;
  EventFn top = std::move(slab_[e.slot]);
  slab_free_.push_back(e.slot);
  return top;
}

#else  // 4-ary heap (default)

// MNS_HOT: slab and heap arrays grow amortized and reuse free slots; in
// steady state pushes recycle capacity without touching the allocator.
MNS_HOT std::uint32_t Engine::heap_push(Key key, EventFn fn) {
  // Park the payload in the slab; only (key, slot) enter the sift.
  std::uint32_t slot;
  if (!slab_free_.empty()) {
    slot = slab_free_.back();
    slab_free_.pop_back();
    slab_[slot] = std::move(fn);
    slab_seq_[slot] = key.seq();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(fn));
    slab_seq_.push_back(key.seq());
  }
  std::size_t i = heap_keys_.size();
  heap_keys_.push_back(key);
  heap_slots_.push_back(slot);
  // Hole sift-up: move parents down into the hole instead of swapping.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!key.before(heap_keys_[parent])) break;
    heap_keys_[i] = heap_keys_[parent];
    heap_slots_[i] = heap_slots_[parent];
    i = parent;
  }
  heap_keys_[i] = key;
  heap_slots_[i] = slot;
  return slot;
}

// MNS_HOT: the free-list push_back recycles slab capacity (amortized).
MNS_HOT EventFn Engine::heap_pop(Key& key) {
  key = heap_keys_.front();
  const std::uint32_t top_slot = heap_slots_.front();
  const Key last_key = heap_keys_.back();
  const std::uint32_t last_slot = heap_slots_.back();
  heap_keys_.pop_back();
  heap_slots_.pop_back();
  const std::size_t n = heap_keys_.size();
  if (n > 0) {
    // Bottom-up sift-down: walk the hole along the min-child path to a
    // leaf without comparing against last_key (the displaced element
    // almost always belongs near the bottom), then bubble it back up the
    // few levels it doesn't. Only dense key/slot arrays are touched.
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * kHeapArity + 1;
      if (first >= n) break;
      const std::size_t end = std::min(first + kHeapArity, n);
      // The grandchildren of i form one contiguous range
      // [4*first+1, 4*first+16]; prefetching its keys (4 lines) and
      // slots (1 line) overlaps the next level's cache misses with this
      // level's compares, breaking the serial miss chain that otherwise
      // dominates deep pops.
      const std::size_t gfirst = first * kHeapArity + 1;
      if (gfirst < n) {
        const char* g = reinterpret_cast<const char*>(&heap_keys_[gfirst]);
        __builtin_prefetch(g);
        __builtin_prefetch(g + 64);
        __builtin_prefetch(g + 128);
        __builtin_prefetch(g + 192);
        __builtin_prefetch(&heap_slots_[gfirst]);
      }
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (heap_keys_[c].before(heap_keys_[best])) best = c;
      }
      heap_keys_[i] = heap_keys_[best];
      heap_slots_[i] = heap_slots_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!last_key.before(heap_keys_[parent])) break;
      heap_keys_[i] = heap_keys_[parent];
      heap_slots_[i] = heap_slots_[parent];
      i = parent;
    }
    heap_keys_[i] = last_key;
    heap_slots_[i] = last_slot;
    // Fetch the *next* pop's payload a whole event ahead of its use.
    __builtin_prefetch(&slab_[heap_slots_.front()]);
  }
  EventFn top = std::move(slab_[top_slot]);
  slab_free_.push_back(top_slot);
  return top;
}

#endif  // MNS_EVENT_QUEUE_LADDER

// MNS_HOT: roots_ grows amortized; slots are compacted on completion and
// capacity persists for the lifetime of the engine.
MNS_HOT void Engine::spawn(Task<> t, bool daemon) {
  Root root = make_root(std::move(t));
  root.handle.promise().eng = this;
  root.handle.promise().root_index = roots_.size();
  root.handle.promise().daemon = daemon;
  roots_.push_back(root.handle);
  if (!daemon) ++live_;
  // Start through the queue at the current time (spawn order = start
  // order) on the resume fast path — no closure, no boxing.
  resume_at(now_, root.handle);
}

bool Engine::step() {
 again:
  const bool have_now = nowq_head_ < nowq_.size();
  if (!have_now && queue_empty()) return false;
  if (events_processed_ >= event_limit_) throw EventLimitError(event_limit_);
  std::int64_t at_ps;
  std::uint64_t seq;
  EventFn fn;
  // The now-queue holds events at exactly now() in seq (FIFO) order; a
  // heap event competes only when it carries the same timestamp with a
  // smaller seq (scheduled for this instant before the clock reached it).
  bool take_heap = !have_now;
  if (have_now && !queue_empty()) {
    const Key top = queue_top_key();
    if (top.at_ps() == now_.count_ps() && top.seq() < nowq_[nowq_head_].seq) {
      take_heap = true;
    }
  }
  if (take_heap) {
    Key key{};
    fn = heap_pop(key);
    if (!fn) {
      // Cancelled tombstone: discard without advancing the clock, counting
      // an event, or consulting the event limit budget beyond this check.
      MNS_AUDIT(tombstones_ > 0, "tombstone popped with zero outstanding");
      --tombstones_;
      goto again;
    }
    at_ps = key.at_ps();
    seq = key.seq();
  } else {
    NowEvent& ne = nowq_[nowq_head_++];
    at_ps = now_.count_ps();
    seq = ne.seq;
    fn = std::move(ne.fn);
    if (nowq_head_ == nowq_.size()) {
      nowq_.clear();
      nowq_head_ = 0;
    }
  }
  if (at_ps > time_limit_ps_) {
    // Progress watchdog horizon crossed: the queue is still live (this
    // event would have run), so this is a livelock, not a deadlock.
    throw LivelockError(
        "engine clock would cross the configured time limit (" +
        Time::ps(time_limit_ps_).str() + ")\n  now           = " +
        now_.str() + "\n  next event at = " + Time::ps(at_ps).str() +
        "\n  events run    = " + std::to_string(events_processed_) +
        "\n  pending       = " + std::to_string(pending_events()) +
        "\n  live procs    = " + std::to_string(live_));
  }
#if defined(MNS_AUDIT_ENABLED)
  MNS_AUDIT(at_ps >= now_.count_ps(),
            "event time regressed behind the clock");
  MNS_AUDIT(events_processed_ == 0 || at_ps > audit_last_at_.count_ps() ||
                (at_ps == audit_last_at_.count_ps() &&
                 seq > audit_last_seq_),
            "determinism tie-break violated: equal-time events must pop "
            "in schedule (seq) order");
  audit_last_at_ = Time::ps(at_ps);
  audit_last_seq_ = seq;
#else
  (void)seq;
#endif
  now_ = Time::ps(at_ps);
  ++events_processed_;
  fn.invoke();
  return true;
}

void Engine::run() {
  while (step()) {
    if (failure_) {
      auto e = failure_;
      failure_ = nullptr;
      std::rethrow_exception(e);
    }
  }
  if (live_ > 0) throw DeadlockError(live_);
}

bool Engine::run_until(Time deadline) {
  for (;;) {
    // next_event_at_ps() purges cancelled tombstones off the queue top,
    // so the deadline test sees the time of an event that will actually
    // run — a tombstone at t <= deadline must not admit a live event
    // beyond it.
    const std::int64_t next_at = next_event_at_ps();
    if (next_at == INT64_MAX) return true;
    if (next_at > deadline.count_ps()) return false;
    step();
    if (failure_) {
      auto e = failure_;
      failure_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

std::int64_t Engine::next_event_at_ps() {
  if (nowq_head_ < nowq_.size()) return now_.count_ps();
  for (;;) {
    if (queue_empty()) return INT64_MAX;
    if (slab_[queue_top_slot()]) return queue_top_key().at_ps();
    // Cancelled tombstone on top: discard it so the reported time names
    // an event that will actually run (same bookkeeping as step()).
    Key key{};
    (void)heap_pop(key);
    MNS_AUDIT(tombstones_ > 0, "tombstone popped with zero outstanding");
    --tombstones_;
  }
}

bool Engine::step_one() {
  const bool ran = step();
  if (failure_) {
    auto e = failure_;
    failure_ = nullptr;
    std::rethrow_exception(e);
  }
  return ran;
}

void Engine::retire(std::coroutine_handle<> h) {
  const auto rh = std::coroutine_handle<Root::promise_type>::from_address(
      h.address());
  if (!rh.promise().daemon) --live_;
  const std::size_t idx = rh.promise().root_index;
  // Swap-erase: root order is irrelevant, only liveness matters.
  roots_[idx] = roots_.back();
  if (roots_[idx] != h) {
    auto moved = std::coroutine_handle<Root::promise_type>::from_address(
        roots_[idx].address());
    moved.promise().root_index = idx;
  }
  roots_.pop_back();
  h.destroy();
}

void Engine::process_failed(std::exception_ptr e) {
  if (!failure_) failure_ = e;
}

void Engine::register_audits(audit::AuditReport& report) {
  report.add_check("sim::Engine", [this](audit::AuditReport::Scope& s) {
    s.require_eq(pending_events(), std::size_t{0},
                 "event queue not drained at finalize");
    s.require_eq(tombstones_, std::size_t{0},
                 "cancelled event tombstone(s) still parked at finalize");
    s.require_eq(live_, std::size_t{0},
                 "non-daemon process(es) still live at finalize");
    s.require(now_ >= Time::zero(), "clock below zero at finalize");
  });
}

}  // namespace mns::sim
