#include "sim/engine.hpp"

#include <algorithm>

#include "audit/report.hpp"

namespace mns::sim {

// Root coroutine wrapper: owns the process Task, reports completion and
// errors to the engine. On completion the engine destroys the frame from
// the final-suspend point, so finished processes cost nothing.
struct Engine::Root {
  struct promise_type {
    Engine* eng = nullptr;
    std::size_t root_index = 0;  // position in Engine::roots_ for O(1) retire
    bool daemon = false;
    Root get_return_object() {
      return Root{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // The frame is suspended at its final point: destroying it here is
        // well-defined and control returns to the engine's event loop.
        h.promise().eng->retire(h);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      eng->process_failed(std::current_exception());
    }
  };
  std::coroutine_handle<promise_type> handle;
};

namespace {
Engine::Root make_root(Task<> t) { co_await t; }
}  // namespace

Engine::~Engine() { drop_processes(); }

void Engine::drop_processes() {
  // Swap out roots_ first: destroying a frame can (transitively) destroy
  // Tasks that are themselves roots-in-waiting, and must not observe a
  // half-cleared vector.
  std::vector<std::coroutine_handle<>> roots = std::move(roots_);
  roots_.clear();
  for (auto h : roots) {
    if (h) h.destroy();
  }
  // Pending event callbacks capture handles into the frames just
  // destroyed; drop them unrun.
  heap_.clear();
  live_ = 0;
}

void Engine::after(Time delay, std::function<void()> fn) {
  at(now_ + delay, std::move(fn));
}

void Engine::at(Time when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Engine::at: scheduling into the past");
  }
  heap_.push_back(Event{when, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void Engine::spawn(Task<> t, bool daemon) {
  Root root = make_root(std::move(t));
  root.handle.promise().eng = this;
  root.handle.promise().root_index = roots_.size();
  root.handle.promise().daemon = daemon;
  roots_.push_back(root.handle);
  if (!daemon) ++live_;
  after(Time::zero(), [h = root.handle] { h.resume(); });
}

bool Engine::step() {
  if (heap_.empty()) return false;
  if (events_processed_ >= event_limit_) throw EventLimitError(event_limit_);
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
#if defined(MNS_AUDIT_ENABLED)
  MNS_AUDIT(ev.at >= now_, "event time regressed behind the clock");
  MNS_AUDIT(events_processed_ == 0 || ev.at > audit_last_at_ ||
                (ev.at == audit_last_at_ && ev.seq > audit_last_seq_),
            "determinism tie-break violated: equal-time events must pop "
            "in schedule (seq) order");
  audit_last_at_ = ev.at;
  audit_last_seq_ = ev.seq;
#endif
  now_ = ev.at;
  ++events_processed_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
    if (failure_) {
      auto e = failure_;
      failure_ = nullptr;
      std::rethrow_exception(e);
    }
  }
  if (live_ > 0) throw DeadlockError(live_);
}

bool Engine::run_until(Time deadline) {
  while (!heap_.empty()) {
    if (heap_.front().at > deadline) return false;
    step();
    if (failure_) {
      auto e = failure_;
      failure_ = nullptr;
      std::rethrow_exception(e);
    }
  }
  return true;
}

void Engine::retire(std::coroutine_handle<> h) {
  const auto rh = std::coroutine_handle<Root::promise_type>::from_address(
      h.address());
  if (!rh.promise().daemon) --live_;
  const std::size_t idx = rh.promise().root_index;
  // Swap-erase: root order is irrelevant, only liveness matters.
  roots_[idx] = roots_.back();
  if (roots_[idx] != h) {
    auto moved = std::coroutine_handle<Root::promise_type>::from_address(
        roots_[idx].address());
    moved.promise().root_index = idx;
  }
  roots_.pop_back();
  h.destroy();
}

void Engine::process_failed(std::exception_ptr e) {
  if (!failure_) failure_ = e;
}

void Engine::register_audits(audit::AuditReport& report) {
  report.add_check("sim::Engine", [this](audit::AuditReport::Scope& s) {
    s.require_eq(heap_.size(), std::size_t{0},
                 "event queue not drained at finalize");
    s.require_eq(live_, std::size_t{0},
                 "non-daemon process(es) still live at finalize");
    s.require(now_ >= Time::zero(), "clock below zero at finalize");
  });
}

}  // namespace mns::sim
