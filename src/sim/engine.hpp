// Discrete-event simulation engine.
//
// The engine owns a time-ordered event queue and the root coroutine frames
// of all spawned processes. Determinism: events at equal timestamps run in
// schedule order (monotonic sequence number tie-break), and nothing in the
// simulator consults wall-clock time or unseeded randomness.
//
// Hot-path design (the simulator spends most of its host time here):
//   - An event payload is an EventFn — a raw function pointer plus two
//     inline words. The dominant payload, "resume this coroutine", is a
//     fast path with no type erasure and no allocation; captureless and
//     small trivially-copyable callables are stored inline; only genuinely
//     capturing callbacks fall back to one boxed heap closure.
//   - Future events live in a 4-ary min-heap split structure-of-arrays
//     style: the sift loops move only 16-byte packed (at, seq) keys and
//     4-byte slab slots, while the 24-byte payloads sit still in a
//     recycled slab. Events scheduled at exactly now() skip the heap via
//     a FIFO now-queue.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "audit/audit.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/annotations.hpp"

#if defined(MNS_EVENT_QUEUE_LADDER)
#include "sim/ladder_queue.hpp"
#endif

namespace mns::audit {
class AuditReport;
}

namespace mns::sim {

/// Thrown by Engine::run() when processes remain but no event can wake them.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::size_t stuck)
      : std::runtime_error("simulation deadlock: " + std::to_string(stuck) +
                           " process(es) blocked with empty event queue") {}
};

/// Thrown when the configured event budget is exhausted — the guard
/// against live-locks (e.g. an MPI_Probe polling for a message that can
/// never arrive generates events forever without advancing the program).
class EventLimitError : public std::runtime_error {
 public:
  explicit EventLimitError(std::uint64_t limit)
      : std::runtime_error("simulation exceeded its event limit (" +
                           std::to_string(limit) +
                           "); suspected live-lock (unsatisfiable poll?)") {}
};

/// Thrown by the progress watchdog: the simulation keeps scheduling events
/// (so DeadlockError never fires) and keeps advancing time (so no single
/// budget trips), yet the workload makes no forward progress — the classic
/// shape is an RTO storm retransmitting into a dead link forever. Carries
/// a human-readable diagnostic report assembled by whoever detected the
/// livelock (per-flow stages, pending timers, per-partition horizons).
class LivelockError : public std::runtime_error {
 public:
  explicit LivelockError(std::string report)
      : std::runtime_error("simulation livelock: no forward progress\n" +
                           report),
        report_(std::move(report)) {}
  /// The diagnostic report alone (what() prefixes it with a headline).
  const std::string& report() const { return report_; }

 private:
  std::string report_;
};

/// The event payload: a raw function pointer plus two inline words.
///
/// Three storage forms, cheapest first:
///   resume(h)     — the coroutine-resume fast path (a handle address)
///   inline        — captureless or small trivially-copyable callables,
///                   memcpy'd into the two words
///   boxed         — everything else: one heap closure behind a vtable
/// Move-only; an un-invoked boxed payload is destroyed with its event
/// (drop_processes clears the queue without running it).
class EventFn {
 public:
  using Raw = void (*)(void*, void*);

  EventFn() noexcept = default;
  EventFn(Raw fn, void* a, void* b = nullptr) noexcept
      : fn_(fn), a_(a), b_(b) {}

  /// Fast path: `h.resume()` with no erasure and no allocation.
  static EventFn resume(std::coroutine_handle<> h) noexcept {
    return EventFn(&resume_thunk, h.address());
  }

  /// Wrap an arbitrary callable, boxing only when it cannot be stored
  /// inline (capturing more than two words, or non-trivial captures).
  /// MNS_HOT: the boxed branch allocates by design; hot-path callers are
  /// expected to pass fn-pointer payloads that take the inline branches.
  template <class F>
  MNS_HOT static EventFn make(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (std::is_empty_v<D> && std::is_trivially_copyable_v<D> &&
                  std::is_default_constructible_v<D>) {
      (void)f;  // stateless: nothing to store
      return EventFn(&stateless_thunk<D>, nullptr);
    } else if constexpr (std::is_trivially_copyable_v<D> &&
                         std::is_trivially_destructible_v<D> &&
                         sizeof(D) <= 2 * sizeof(void*) &&
                         alignof(D) <= alignof(void*)) {
      EventFn ev(&inline_thunk<D>, nullptr, nullptr);
      std::memcpy(&ev.a_, std::addressof(f), sizeof(D));
      return ev;
    } else {
      return EventFn(&boxed_thunk, new Boxed<D>(std::forward<F>(f)));
    }
  }

  EventFn(EventFn&& o) noexcept
      : fn_(std::exchange(o.fn_, nullptr)),
        a_(std::exchange(o.a_, nullptr)),
        b_(std::exchange(o.b_, nullptr)) {}
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      fn_ = std::exchange(o.fn_, nullptr);
      a_ = std::exchange(o.a_, nullptr);
      b_ = std::exchange(o.b_, nullptr);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return fn_ != nullptr; }

  /// Run the payload. Single-shot: consumes a boxed closure.
  void invoke() {
    const Raw fn = std::exchange(fn_, nullptr);
    if (fn == &boxed_thunk) {
      std::unique_ptr<BoxedBase> box(static_cast<BoxedBase*>(a_));
      box->call();
    } else {
      fn(a_, b_);
    }
  }

 private:
  struct BoxedBase {
    virtual void call() = 0;
    virtual ~BoxedBase() = default;
  };
  template <class F>
  struct Boxed final : BoxedBase {
    F f;
    template <class G>
    explicit Boxed(G&& g) : f(std::forward<G>(g)) {}
    void call() override { f(); }
  };

  static void resume_thunk(void* a, void*) {
    std::coroutine_handle<>::from_address(a).resume();
  }
  // Tag only; dispatch happens in invoke() so the box can be reclaimed.
  static void boxed_thunk(void*, void*) {}
  template <class D>
  static void stateless_thunk(void*, void*) {
    D{}();
  }
  template <class D>
  static void inline_thunk(void* a, void* b) {
    void* words[2] = {a, b};
    alignas(alignof(D)) unsigned char buf[sizeof(D)];
    std::memcpy(buf, words, sizeof(D));
    (*std::launder(reinterpret_cast<D*>(buf)))();
  }

  void reset() noexcept {
    if (fn_ == &boxed_thunk) delete static_cast<BoxedBase*>(a_);
    fn_ = nullptr;
  }

  Raw fn_ = nullptr;
  void* a_ = nullptr;
  void* b_ = nullptr;
};

/// Event ordering key: (at, seq) packed into one 128-bit integer so the
/// ordering test is a single unsigned compare (cmp/sbb, no second branch)
/// in the queue's compare loops. at_ps is sign-flipped into the high half
/// so the unsigned order matches the signed (at, seq) lexicographic
/// order. Public so alternative queue policies (sim/ladder_queue.hpp) can
/// order the same keys; payloads stay in the engine's slab either way.
struct EventKey {
  unsigned __int128 packed;
  static EventKey make(std::int64_t at_ps, std::uint64_t seq) noexcept {
    const auto hi = static_cast<std::uint64_t>(at_ps) ^
                    (std::uint64_t{1} << 63);
    return EventKey{(static_cast<unsigned __int128>(hi) << 64) | seq};
  }
  std::int64_t at_ps() const noexcept {
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(packed >> 64) ^
        (std::uint64_t{1} << 63));
  }
  std::uint64_t seq() const noexcept {
    return static_cast<std::uint64_t>(packed);
  }
  bool before(const EventKey& o) const noexcept { return packed < o.packed; }
};

/// Handle to a cancellable event (see Engine::at_cancellable). The pair
/// (slot, seq) is ABA-safe: seq is globally unique, so a handle whose slot
/// has been recycled for a later event simply fails to cancel.
struct EventId {
  std::uint32_t slot = UINT32_MAX;
  std::uint64_t seq = 0;
  bool valid() const noexcept { return slot != UINT32_MAX; }
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule a payload to run `delay` from now. Negative delays are an
  /// error.
  void after(Time delay, EventFn fn) { at(now_ + delay, std::move(fn)); }
  /// Schedule a payload at absolute time `at` (must be >= now()).
  /// Events at exactly now() — every synchronization wake-up, process
  /// start, and hand-off in the simulator — take the O(1) now-queue fast
  /// path; only genuinely future events pay the heap sift.
  /// MNS_HOT: the now-queue push_back is amortized — its capacity is
  /// retained across clear() and reaches steady state after warm-up.
  MNS_HOT void at(Time when, EventFn fn) {
    const std::int64_t at_ps = when.count_ps();
    if (at_ps == now_.count_ps()) {
      nowq_.push_back(NowEvent{next_seq_++, std::move(fn)});
      return;
    }
    schedule_future(at_ps, std::move(fn));
  }

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<F&>)
  void after(Time delay, F&& fn) {
    at(now_ + delay, EventFn::make(std::forward<F>(fn)));
  }
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<F&>)
  void at(Time when, F&& fn) {
    at(when, EventFn::make(std::forward<F>(fn)));
  }

  /// Schedule a payload that may later be revoked with cancel() — the
  /// shape of a retransmit/timeout timer, which is armed pessimistically
  /// and cancelled on the (common) success path. Cancellable events always
  /// take the heap path, even at exactly now(), so the returned EventId
  /// names a stable slab slot.
  EventId at_cancellable(Time when, EventFn fn) {
    const std::int64_t at_ps = when.count_ps();
    if (at_ps < now_.count_ps()) {
      throw std::logic_error("Engine::at_cancellable: scheduling into the past");
    }
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot = heap_push(Key::make(at_ps, seq), std::move(fn));
    return EventId{slot, seq};
  }
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<F&>)
  EventId at_cancellable(Time when, F&& fn) {
    return at_cancellable(when, EventFn::make(std::forward<F>(fn)));
  }

  /// Revoke an event scheduled with at_cancellable(). Returns true if the
  /// event was still pending (it will never run); false if it already ran,
  /// was already cancelled, or the id is stale. The payload is destroyed
  /// immediately (a boxed closure is freed here, not at pop time); the
  /// heap entry remains as a tombstone that step() discards without
  /// advancing the clock or counting against the event limit.
  bool cancel(EventId id) {
    if (!id.valid() || id.slot >= slab_.size()) return false;
    if (slab_seq_[id.slot] != id.seq || !slab_[id.slot]) return false;
    slab_[id.slot] = EventFn{};
    ++tombstones_;
    ++events_cancelled_;
    return true;
  }

  /// Coroutine-resume fast paths: no closure, no allocation.
  void resume_after(Time delay, std::coroutine_handle<> h) {
    at(now_ + delay, EventFn::resume(h));
  }
  void resume_at(Time when, std::coroutine_handle<> h) {
    at(when, EventFn::resume(h));
  }

  /// Pre-size the event heap for at least `n` concurrently pending events
  /// (Cluster sizes this from the topology: ranks, NICs, channel depth).
  void reserve_events(std::size_t n) {
#if defined(MNS_EVENT_QUEUE_LADDER)
    ladder_.reserve(n);
#else
    heap_keys_.reserve(n);
    heap_slots_.reserve(n);
#endif
    slab_.reserve(n);
  }

  /// Awaitable pause: `co_await eng.delay(Time::us(5));`
  /// Zero-length delays still suspend (and requeue), preserving FIFO
  /// fairness between processes.
  auto delay(Time d) {
    struct Awaiter {
      Engine& eng;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.resume_after(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Launch `t` as a process. It starts via the event queue at the current
  /// time, so spawn order is start order. A `daemon` process (a NIC
  /// firmware loop, a progress engine) does not keep the simulation alive:
  /// run() completes when only daemons remain blocked.
  void spawn(Task<void> t, bool daemon = false);

  /// Run until the event queue drains. Throws the first exception escaping
  /// any process, or DeadlockError if processes remain blocked.
  void run();

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run). Returns true if the queue drained.
  bool run_until(Time deadline);

  std::size_t live_processes() const { return live_; }
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t events_cancelled() const { return events_cancelled_; }
  /// Pending *live* events: cancelled tombstones still parked in the heap
  /// are excluded (they will be discarded, never run).
  std::size_t pending_events() const {
    return queue_size() - tombstones_ + (nowq_.size() - nowq_head_);
  }

  /// Earliest pending live event time in picoseconds, or INT64_MAX when
  /// the queue is empty. Purges cancelled tombstones off the queue top
  /// (without counting events or advancing the clock), so the answer
  /// names an event that will actually run. This is the PDES executor's
  /// local-virtual-time probe (sim/pdes/).
  std::int64_t next_event_at_ps();

  /// Pop and run exactly one event (the step loop of run(), exposed for
  /// external schedulers that interleave event execution with
  /// cross-partition delivery). Returns false if the queue is empty.
  /// Rethrows the first failure escaping a process.
  bool step_one();

  /// Abort run()/run_until() with EventLimitError after this many events
  /// (default: effectively unlimited).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Progress watchdog: abort with LivelockError the moment an event past
  /// `deadline` would run (default: no limit). Unlike run_until — which
  /// returns control with the queue intact — crossing this horizon is a
  /// hard failure: it converts a runaway simulation (RTO storm, unbounded
  /// poll) into a clean diagnostic instead of an unbounded wall-clock
  /// hang. Works identically under the PDES executor, where each
  /// partition's engine checks its own clock.
  void set_time_limit(Time deadline) { time_limit_ps_ = deadline.count_ps(); }
  Time time_limit() const { return Time::ps(time_limit_ps_); }
  bool has_time_limit() const { return time_limit_ps_ != INT64_MAX; }

  /// Finalize-time conservation checks: event queue drained, no live
  /// non-daemon process. Register after the simulation has run.
  void register_audits(audit::AuditReport& report);

  /// Destroy every suspended process frame and drop pending events.
  /// Owners embedding an Engine next to the objects its processes
  /// reference (Cluster: MPI state, fabrics, node hardware) must call
  /// this before those objects die — frame-local destructors (MpiScope,
  /// Requests) run here and touch them. Idempotent; ~Engine covers the
  /// standalone case.
  void drop_processes();

#if defined(MNS_AUDIT_ENABLED)
  /// Fault injection for audit tests only: force the clock forward so the
  /// next event pop trips the time-monotonicity audit in step().
  void debug_warp_clock_for_test(Time t) { now_ = t; }
#endif

  struct Root;  // root coroutine wrapper; public for the factory coroutine

 private:
  using Key = EventKey;
  // Now-queue entry: the timestamp is implicitly now(), only the seq
  // tie-break is needed to interleave with equal-time heap events.
  struct NowEvent {
    std::uint64_t seq;
    EventFn fn;
  };

  void schedule_future(std::int64_t at_ps, EventFn fn);
  std::uint32_t heap_push(Key key, EventFn fn);
  EventFn heap_pop(Key& key);

  // Queue-policy seam: both policies order the same unique keys, so the
  // pop sequence — and every simulated result — is policy-invariant.
  bool queue_empty() const noexcept {
#if defined(MNS_EVENT_QUEUE_LADDER)
    return ladder_.empty();
#else
    return heap_keys_.empty();
#endif
  }
  std::size_t queue_size() const noexcept {
#if defined(MNS_EVENT_QUEUE_LADDER)
    return ladder_.size();
#else
    return heap_keys_.size();
#endif
  }
  // Precondition: !queue_empty().
  Key queue_top_key() {
#if defined(MNS_EVENT_QUEUE_LADDER)
    return ladder_.top().key;
#else
    return heap_keys_.front();
#endif
  }
  // Precondition: !queue_empty().
  std::uint32_t queue_top_slot() {
#if defined(MNS_EVENT_QUEUE_LADDER)
    return ladder_.top().slot;
#else
    return heap_slots_.front();
#endif
  }

  bool step();  // pop and run one event; false if queue empty
  void retire(std::coroutine_handle<> h);  // process done: reclaim its frame
  void process_failed(std::exception_ptr e);

#if defined(MNS_EVENT_QUEUE_LADDER)
  // Alternative future-event queue policy (-DMNS_EVENT_QUEUE=ladder): a
  // two-rung ladder ordering the same unique (at, seq) keys, so the pop
  // sequence — and therefore every simulated result — is bit-identical
  // to the heap. Payloads stay in the slab below in both policies.
  LadderQueue<Key> ladder_;
#else
  // The future-event 4-ary min-heap, split structure-of-arrays style: the
  // sift loops compare only keys, so the traversal walks a dense 16-byte
  // array (100k pending events = 1.6 MB of keys) instead of dragging the
  // payload words through the cache on every probe.
  // Structure-of-arrays heap: sift loops move only 16-byte keys and
  // 4-byte slab slots; the 24-byte payloads never move. slab_free_
  // recycles slots LIFO, so a push usually lands its payload on a
  // cache-warm slab entry.
  std::vector<Key> heap_keys_;
  std::vector<std::uint32_t> heap_slots_;
#endif
  std::vector<EventFn> slab_;
  std::vector<std::uint32_t> slab_free_;
  // Per-slot seq stamp of the event currently parked there; lets cancel()
  // verify an EventId still names the same scheduling (ABA guard).
  std::vector<std::uint64_t> slab_seq_;
  // Cancelled events still occupying heap entries. step() skips them for
  // free; pending_events() subtracts them.
  std::size_t tombstones_ = 0;
  std::uint64_t events_cancelled_ = 0;
  // FIFO of events at exactly now(): push_back / consume-from-head. The
  // queue fully drains before the clock can advance (its entries are
  // minimal), so head==size resets storage to empty and nothing lingers.
  std::vector<NowEvent> nowq_;
  std::size_t nowq_head_ = 0;
  Time now_;
  // Shadow order tracking: audit builds verify in step() that events pop
  // in strict (time, seq) order — the determinism contract.
  Time audit_last_at_;
  std::uint64_t audit_last_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = UINT64_MAX;
  std::int64_t time_limit_ps_ = INT64_MAX;
  std::size_t live_ = 0;
  std::exception_ptr failure_;
  // Live root frames only; finished processes are destroyed eagerly so
  // long runs spawning millions of transient tasks stay flat in memory.
  std::vector<std::coroutine_handle<>> roots_;
};

/// A simulated host CPU context for one process (rank).
///
/// The testbed nodes are dual-CPU and the paper never oversubscribes, so
/// each rank owns a CPU and there is no CPU scheduling to model — a Cpu
/// only advances simulated time and keeps accounting:
///   - compute():  application computation (overlappable with NIC activity)
///   - busy():     host work inside the MPI library ("host overhead")
/// `in_mpi` tells devices whether the host is currently attentive: protocol
/// steps that need host intervention (e.g. the IB/GM rendezvous handshake)
/// are deferred while the rank computes outside MPI.
class Cpu {
 public:
  explicit Cpu(Engine& eng) : eng_(&eng) {}

  Task<void> compute(Time d) {
    compute_time_ += d;
    co_await eng_->delay(d);
  }

  Task<void> busy(Time d) {
    overhead_time_ += d;
    co_await eng_->delay(d);
  }

  /// Account overhead without advancing time: used by event-context
  /// handlers that charge the rank's CPU while it is blocked (the delay is
  /// applied by the handler's own scheduling).
  void accrue_overhead(Time d) { overhead_time_ += d; }

  Time compute_time() const { return compute_time_; }
  Time overhead_time() const { return overhead_time_; }

  bool in_mpi() const { return mpi_depth_ > 0; }
  void enter_mpi() { ++mpi_depth_; }
  void exit_mpi() { --mpi_depth_; }

  Engine& engine() const { return *eng_; }

 private:
  Engine* eng_;
  Time compute_time_;
  Time overhead_time_;
  int mpi_depth_ = 0;
};

/// RAII guard marking "the host is inside an MPI call".
class MpiScope {
 public:
  explicit MpiScope(Cpu& cpu) : cpu_(&cpu) { cpu_->enter_mpi(); }
  ~MpiScope() { cpu_->exit_mpi(); }
  MpiScope(const MpiScope&) = delete;
  MpiScope& operator=(const MpiScope&) = delete;

 private:
  Cpu* cpu_;
};

}  // namespace mns::sim
