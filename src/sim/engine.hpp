// Discrete-event simulation engine.
//
// The engine owns a time-ordered event queue and the root coroutine frames
// of all spawned processes. Determinism: events at equal timestamps run in
// schedule order (monotonic sequence number tie-break), and nothing in the
// simulator consults wall-clock time or unseeded randomness.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mns::audit {
class AuditReport;
}

namespace mns::sim {

/// Thrown by Engine::run() when processes remain but no event can wake them.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(std::size_t stuck)
      : std::runtime_error("simulation deadlock: " + std::to_string(stuck) +
                           " process(es) blocked with empty event queue") {}
};

/// Thrown when the configured event budget is exhausted — the guard
/// against live-locks (e.g. an MPI_Probe polling for a message that can
/// never arrive generates events forever without advancing the program).
class EventLimitError : public std::runtime_error {
 public:
  explicit EventLimitError(std::uint64_t limit)
      : std::runtime_error("simulation exceeded its event limit (" +
                           std::to_string(limit) +
                           "); suspected live-lock (unsatisfiable poll?)") {}
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` from now. Negative delays are an error.
  void after(Time delay, std::function<void()> fn);
  /// Schedule `fn` at absolute time `at` (must be >= now()).
  void at(Time when, std::function<void()> fn);

  /// Awaitable pause: `co_await eng.delay(Time::us(5));`
  /// Zero-length delays still suspend (and requeue), preserving FIFO
  /// fairness between processes.
  auto delay(Time d) {
    struct Awaiter {
      Engine& eng;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.after(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Launch `t` as a process. It starts via the event queue at the current
  /// time, so spawn order is start order. A `daemon` process (a NIC
  /// firmware loop, a progress engine) does not keep the simulation alive:
  /// run() completes when only daemons remain blocked.
  void spawn(Task<void> t, bool daemon = false);

  /// Run until the event queue drains. Throws the first exception escaping
  /// any process, or DeadlockError if processes remain blocked.
  void run();

  /// Run until simulated time would exceed `deadline` (events at exactly
  /// `deadline` still run). Returns true if the queue drained.
  bool run_until(Time deadline);

  std::size_t live_processes() const { return live_; }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Abort run()/run_until() with EventLimitError after this many events
  /// (default: effectively unlimited).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Finalize-time conservation checks: event queue drained, no live
  /// non-daemon process. Register after the simulation has run.
  void register_audits(audit::AuditReport& report);

  /// Destroy every suspended process frame and drop pending events.
  /// Owners embedding an Engine next to the objects its processes
  /// reference (Cluster: MPI state, fabrics, node hardware) must call
  /// this before those objects die — frame-local destructors (MpiScope,
  /// Requests) run here and touch them. Idempotent; ~Engine covers the
  /// standalone case.
  void drop_processes();

#if defined(MNS_AUDIT_ENABLED)
  /// Fault injection for audit tests only: force the clock forward so the
  /// next event pop trips the time-monotonicity audit in step().
  void debug_warp_clock_for_test(Time t) { now_ = t; }
#endif

  struct Root;  // root coroutine wrapper; public for the factory coroutine

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    // Min-heap via `greater`: earliest (at, seq) first.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool step();  // pop and run one event; false if queue empty
  void retire(std::coroutine_handle<> h);  // process done: reclaim its frame
  void process_failed(std::exception_ptr e);

  std::vector<Event> heap_;
  Time now_;
  // Shadow order tracking: audit builds verify in step() that events pop
  // in strict (time, seq) order — the determinism contract.
  Time audit_last_at_;
  std::uint64_t audit_last_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t event_limit_ = UINT64_MAX;
  std::size_t live_ = 0;
  std::exception_ptr failure_;
  // Live root frames only; finished processes are destroyed eagerly so
  // long runs spawning millions of transient tasks stay flat in memory.
  std::vector<std::coroutine_handle<>> roots_;
};

/// A simulated host CPU context for one process (rank).
///
/// The testbed nodes are dual-CPU and the paper never oversubscribes, so
/// each rank owns a CPU and there is no CPU scheduling to model — a Cpu
/// only advances simulated time and keeps accounting:
///   - compute():  application computation (overlappable with NIC activity)
///   - busy():     host work inside the MPI library ("host overhead")
/// `in_mpi` tells devices whether the host is currently attentive: protocol
/// steps that need host intervention (e.g. the IB/GM rendezvous handshake)
/// are deferred while the rank computes outside MPI.
class Cpu {
 public:
  explicit Cpu(Engine& eng) : eng_(&eng) {}

  Task<void> compute(Time d) {
    compute_time_ += d;
    co_await eng_->delay(d);
  }

  Task<void> busy(Time d) {
    overhead_time_ += d;
    co_await eng_->delay(d);
  }

  /// Account overhead without advancing time: used by event-context
  /// handlers that charge the rank's CPU while it is blocked (the delay is
  /// applied by the handler's own scheduling).
  void accrue_overhead(Time d) { overhead_time_ += d; }

  Time compute_time() const { return compute_time_; }
  Time overhead_time() const { return overhead_time_; }

  bool in_mpi() const { return mpi_depth_ > 0; }
  void enter_mpi() { ++mpi_depth_; }
  void exit_mpi() { --mpi_depth_; }

  Engine& engine() const { return *eng_; }

 private:
  Engine* eng_;
  Time compute_time_;
  Time overhead_time_;
  int mpi_depth_ = 0;
};

/// RAII guard marking "the host is inside an MPI call".
class MpiScope {
 public:
  explicit MpiScope(Cpu& cpu) : cpu_(&cpu) { cpu_->enter_mpi(); }
  ~MpiScope() { cpu_->exit_mpi(); }
  MpiScope(const MpiScope&) = delete;
  MpiScope& operator=(const MpiScope&) = delete;

 private:
  Cpu* cpu_;
};

}  // namespace mns::sim
