#include "sim/frame_pool.hpp"

#include <new>

#include "audit/audit.hpp"
#include "audit/report.hpp"

namespace mns::sim::frame_pool {

namespace {

// Bins are kGranule-wide up to kMaxPooledBytes. Coroutine frames cluster
// in a few dozen sizes well under 2 KiB (a Cpu::compute frame is ~128 B;
// the largest collective frames stay under 1 KiB), so 64-byte bins up to
// 4 KiB cover everything the simulator spawns in bulk; anything larger
// falls through to the global allocator.
constexpr std::size_t kGranule = 64;
constexpr std::size_t kMaxPooledBytes = 4096;
constexpr std::size_t kBinCount = kMaxPooledBytes / kGranule;

// Every block carries a 16-byte header so deallocate() can find the bin
// without a size parameter; 16 bytes also preserves new-alignment for the
// frame that follows.
struct alignas(16) Header {
  std::uint32_t bin;
  std::uint32_t magic;
};
constexpr std::uint32_t kMagic = 0x4650'4f4cu;
constexpr std::uint32_t kOversize = 0xffff'ffffu;

struct FreeNode {
  FreeNode* next;
};

struct Arena {
  FreeNode* bins[kBinCount] = {};
  Stats st;

  ~Arena() { release_free_blocks(); }

  void release_free_blocks() noexcept {
    for (auto*& head : bins) {
      while (head) {
        FreeNode* n = head;
        head = n->next;
        ::operator delete(static_cast<void*>(n));
      }
    }
  }
};

Arena& arena() noexcept {
  thread_local Arena a;
  return a;
}

}  // namespace

void* allocate(std::size_t bytes) {
  Arena& a = arena();
  ++a.st.allocated;
  const std::size_t total = bytes + sizeof(Header);
  if (total <= kMaxPooledBytes) {
    const std::size_t bin = (total + kGranule - 1) / kGranule - 1;
    void* block;
    if (FreeNode* n = a.bins[bin]) {
      a.bins[bin] = n->next;
      ++a.st.pool_hits;
      block = n;
    } else {
      block = ::operator new((bin + 1) * kGranule);
    }
    auto* h = new (block) Header{static_cast<std::uint32_t>(bin), kMagic};
    return h + 1;
  }
  ++a.st.oversize;
  auto* h = new (::operator new(total)) Header{kOversize, kMagic};
  return h + 1;
}

void deallocate(void* p) noexcept {
  if (!p) return;
  Arena& a = arena();
  ++a.st.freed;
  Header* h = static_cast<Header*>(p) - 1;
  MNS_AUDIT(h->magic == kMagic,
            "frame_pool::deallocate on a block it did not allocate");
  const std::uint32_t bin = h->bin;
  if (bin == kOversize) {
    ::operator delete(static_cast<void*>(h));
    return;
  }
  // The header memory is reused as the freelist link.
  auto* n = new (static_cast<void*>(h)) FreeNode{a.bins[bin]};
  a.bins[bin] = n;
}

Stats stats() noexcept { return arena().st; }

void trim() noexcept { arena().release_free_blocks(); }

void register_audits(audit::AuditReport& report) {
  report.add_check("sim::frame_pool", [](audit::AuditReport::Scope& s) {
    const Stats st = stats();
    s.require_eq(st.freed, st.allocated,
                 "coroutine frame pool not empty at finalize (leaked or "
                 "still-live frame)");
  });
}

}  // namespace mns::sim::frame_pool
