// Pooled allocation for coroutine frames.
//
// A class-B skeleton run spawns millions of transient Task<> frames
// (Cpu::compute/busy, per-message channel tasks, collective fan-outs);
// with the default allocator every one of them is a global
// operator-new/delete round trip. This pool routes frame allocation
// through a per-thread size-binned freelist: after warm-up a frame
// allocation is a pointer pop and a free is a pointer push.
//
// Per-thread, not global-locked: the sweep runner (src/sweep/) executes
// independent simulations on worker threads, and a simulation allocates
// and frees all of its frames on its own thread, so the arenas never
// contend and determinism is untouched. The pool has no effect on
// simulated results — only on host-side speed.
//
// Conservation: every frame allocated must be freed by simulation end.
// register_audits() wires that invariant into the finalize AuditReport
// (Cluster::make_audit_report), so a leaked frame fails the run loudly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mns::audit {
class AuditReport;
}

namespace mns::sim::frame_pool {

/// Allocation counters for the calling thread's arena.
struct Stats {
  std::uint64_t allocated = 0;  // every allocate() call
  std::uint64_t freed = 0;      // every deallocate() call
  std::uint64_t pool_hits = 0;  // served by popping a freelist block
  std::uint64_t oversize = 0;   // larger than the largest bin (unpooled)
  std::uint64_t outstanding() const { return allocated - freed; }
};

/// Allocate `bytes` from the calling thread's arena.
void* allocate(std::size_t bytes);
/// Return a block obtained from allocate(). Safe for null.
void deallocate(void* p) noexcept;

Stats stats() noexcept;

/// Release every cached free block back to the global allocator. The
/// arena keeps serving afterwards; outstanding blocks are unaffected.
void trim() noexcept;

/// Finalize check: every frame allocated on this thread has been freed
/// (the pool is empty-at-exit). Register alongside the engine checks.
void register_audits(audit::AuditReport& report);

/// Mixin giving a coroutine promise (and thus its frame) pooled
/// allocation: `struct promise_type : frame_pool::PoolAllocated { ... }`.
struct PoolAllocated {
  static void* operator new(std::size_t n) { return allocate(n); }
  static void operator delete(void* p) noexcept { deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    deallocate(p);
  }
};

}  // namespace mns::sim::frame_pool
