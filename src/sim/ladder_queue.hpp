// Two-rung ladder (calendar-family) event queue: a compile-time
// alternative to the engine's 4-ary heap (-DMNS_EVENT_QUEUE=ladder).
//
// Discrete-event workloads push mostly *future* events and pop in time
// order, so the classic ladder/calendar observation applies: keep a small
// sorted "near" rung that pops from its tail in O(1), and an unsorted
// "far" rung that absorbs pushes beyond the near horizon in O(1). When
// the near rung drains, the whole far rung is promoted with one sort
// (amortized O(log n) per event, with a far better constant than a heap
// sift when the horizon is deep). Pushes landing inside the near horizon
// pay a sorted insert — rare for the engine's traffic, where same-instant
// events take the now-queue and timers land far in the future.
//
// The structure stores the same (key, slab-slot) pairs the heap does, so
// slab recycling, EventId cancellation (tombstones pop through it
// unchanged) and the (time, seq) determinism contract are untouched: keys
// are unique (seq tie-break), so any correct priority queue pops the
// exact same sequence and simulation results are bit-identical across
// queue policies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace mns::sim {

template <class Key>
class LadderQueue {
 public:
  struct Entry {
    Key key;
    std::uint32_t slot;
  };

  bool empty() const noexcept { return near_.empty() && far_.empty(); }
  std::size_t size() const noexcept { return near_.size() + far_.size(); }

  /// MNS_HOT: warm-up-only growth — both rungs pre-reserve once and keep
  /// their capacity for the run.
  MNS_HOT void reserve(std::size_t n) {
    near_.reserve(n);
    far_.reserve(n);
  }

  void clear() noexcept {
    near_.clear();
    far_.clear();
    have_boundary_ = false;
  }

  /// MNS_HOT: rung push_back/insert grow amortized — capacity is retained
  /// across pops (pop_back never shrinks) and promote() only swaps the
  /// rungs, so steady state recycles the same storage, like the engine's
  /// heap arrays.
  MNS_HOT void push(Key key, std::uint32_t slot) {
    if (!have_boundary_) {
      // First event after empty: it alone defines the near horizon, so
      // a monotone stream of future pushes goes straight to the far rung.
      boundary_ = key;
      have_boundary_ = true;
      near_.push_back(Entry{key, slot});
      return;
    }
    if (!key.before(boundary_)) {  // key >= boundary: beyond the horizon
      far_.push_back(Entry{key, slot});
      return;
    }
    // Inside the near horizon: sorted insert (descending, min at back).
    const auto it = std::upper_bound(
        near_.begin(), near_.end(), key,
        [](const Key& k, const Entry& e) { return e.key.before(k); });
    near_.insert(it, Entry{key, slot});
  }

  /// Minimum entry; promotes the far rung first if the near rung drained.
  const Entry& top() {
    if (near_.empty()) promote();
    return near_.back();
  }

  Entry pop() {
    if (near_.empty()) promote();
    Entry e = near_.back();
    near_.pop_back();
    return e;
  }

 private:
  void promote() {
    // near_ is empty and far_ is not (callers check emptiness): the far
    // rung becomes the new near rung with one descending sort, and its
    // maximum becomes the new horizon.
    near_.swap(far_);
    std::sort(near_.begin(), near_.end(),
              [](const Entry& a, const Entry& b) { return b.key.before(a.key); });
    boundary_ = near_.front().key;
    have_boundary_ = true;
  }

  std::vector<Entry> near_;  // sorted descending by key; back() is the min
  std::vector<Entry> far_;   // unsorted; every key >= boundary_
  Key boundary_{};           // >= every near key once have_boundary_
  bool have_boundary_ = false;
};

}  // namespace mns::sim
