#include "sim/pdes/fabric_exec.hpp"

#include "util/annotations.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mns::sim::pdes {

namespace {

constexpr std::int64_t kInf = INT64_MAX;

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return a >= kInf - b ? kInf : a + b;
}

// Max-heap comparator inverted into min-heap (when, src, idx) pops —
// the partition-invariant delivery order.
struct MsgAfter {
  bool operator()(const WireMsg& a, const WireMsg& b) const noexcept {
    if (a.when_ps != b.when_ps) return a.when_ps > b.when_ps;
    if (a.src_node != b.src_node) return a.src_node > b.src_node;
    return a.send_idx > b.send_idx;
  }
};

}  // namespace

FabricExecutor::FabricExecutor(Topology topo, std::vector<Engine*> engines)
    : topo_(std::move(topo)),
      engines_(std::move(engines)),
      handlers_(static_cast<std::size_t>(topo_.nodes)),
      send_idx_(static_cast<std::size_t>(topo_.nodes), 0),
      stats_(static_cast<std::size_t>(topo_.partitions)),
      idle_(static_cast<std::size_t>(topo_.partitions), false),
      errors_(static_cast<std::size_t>(topo_.partitions)) {
  topo_.validate();
  if (engines_.size() != static_cast<std::size_t>(topo_.partitions)) {
    throw std::invalid_argument(
        "FabricExecutor: need exactly one engine per partition");
  }
  const int k = topo_.partitions;
  parts_.resize(static_cast<std::size_t>(k));
  for (auto& p : parts_) p = std::make_unique<Part>();
  chan_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  for (auto& c : chan_) c = std::make_unique<Channel>();
  pool_.reserve(static_cast<std::size_t>(k > 1 ? k - 1 : 0));
  for (int p = 1; p < k; ++p) {
    pool_.emplace_back([this, p] { thread_main(p); });
  }
}

FabricExecutor::~FabricExecutor() {
  {
    std::lock_guard<std::mutex> g(round_mu_);
    quit_ = true;
  }
  round_cv_.notify_all();
  for (auto& th : pool_) th.join();
  // Abort-path hygiene: free any boxed descriptors still buffered.
  for (auto& ch : chan_) {
    for (WireMsg& m : ch->buf) discard(m);
  }
  for (auto& part : parts_) {
    for (WireMsg& m : part->pending) discard(m);
  }
}

void FabricExecutor::set_handler(int node, WireHandler h) {
  handlers_[static_cast<std::size_t>(node)] = std::move(h);
}

void FabricExecutor::set_box_deleter(std::function<void(void*)> d) {
  box_deleter_ = std::move(d);
}

void FabricExecutor::discard(WireMsg& m) {
  if (m.box != nullptr && box_deleter_) box_deleter_(m.box);
  m.box = nullptr;
}

void FabricExecutor::send(int src_node, int dst_node, Time when,
                          std::uint64_t a, std::uint64_t b, std::uint64_t c,
                          void* box) {
  const int p = topo_.part_of[static_cast<std::size_t>(src_node)];
  const int q = topo_.part_of[static_cast<std::size_t>(dst_node)];
  const std::int64_t now_ps = engines_[static_cast<std::size_t>(p)]
                                  ->now()
                                  .count_ps();
  const std::int64_t when_ps = when.count_ps();
  if (when_ps < sat_add(now_ps, topo_.lookahead.count_ps())) {
    throw std::logic_error(
        "FabricExecutor: send violates lookahead (when < now + lookahead)");
  }
  WireMsg m;
  m.when_ps = when_ps;
  m.src_node = src_node;
  m.dst_node = dst_node;
  m.send_idx = send_idx_[static_cast<std::size_t>(src_node)]++;
  m.a = a;
  m.b = b;
  m.c = c;
  m.box = box;
  Part& mine = *parts_[static_cast<std::size_t>(p)];
  if (q == p) {
    // Amortized growth of the owner's merge heap; same-partition sends
    // re-enter through it so ordering is layout-independent.
    mine.pending.push_back(m);  // simcheck-allow: hot-alloc
    std::push_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
    return;
  }
  stats_[static_cast<std::size_t>(p)].sent += 1;
  sent_.fetch_add(1, std::memory_order_seq_cst);
  Channel& ch = channel(p, q);
  std::lock_guard<std::mutex> g(ch.mu);
  if (when_ps < ch.min_when.load(std::memory_order_seq_cst)) {
    ch.min_when.store(when_ps, std::memory_order_seq_cst);
  }
  // Channel buffers keep their capacity across rounds; growth is a
  // warm-up cost, not a steady-state one.
  ch.buf.push_back(m);  // simcheck-allow: hot-alloc
}

void FabricExecutor::run_round(const std::function<void(int)>& setup) {
  const int k = topo_.partitions;
  if (k == 1) {
    // Degenerate single-partition round: the sequential engine, no
    // synchronization protocol at all (Cluster normally bypasses the
    // executor entirely in this case).
    setup(0);
    engines_[0]->run();
    return;
  }
  for (auto& part : parts_) part->known.store(0, std::memory_order_seq_cst);
  std::fill(idle_.begin(), idle_.end(), false);
  sent_.store(0, std::memory_order_seq_cst);
  received_.store(0, std::memory_order_seq_cst);
  done_.store(false, std::memory_order_seq_cst);
  abort_.store(false, std::memory_order_seq_cst);
  errors_.assign(static_cast<std::size_t>(k), nullptr);
  {
    std::lock_guard<std::mutex> g(round_mu_);
    setup_ = &setup;
    done_workers_ = 0;
    ++round_gen_;
  }
  round_cv_.notify_all();
  round(0);
  {
    std::unique_lock<std::mutex> lk(round_mu_);
    park_cv_.wait(lk, [&] { return done_workers_ == k - 1; });
    setup_ = nullptr;
  }
  for (std::size_t p = 0; p < errors_.size(); ++p) {
    if (errors_[p]) std::rethrow_exception(errors_[p]);
  }
}

void FabricExecutor::thread_main(int p) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* setup = nullptr;
    {
      std::unique_lock<std::mutex> lk(round_mu_);
      round_cv_.wait(lk, [&] { return quit_ || round_gen_ > seen; });
      if (quit_) return;
      seen = round_gen_;
      setup = setup_;
    }
    (void)setup;
    round(p);
    {
      std::lock_guard<std::mutex> g(round_mu_);
      ++done_workers_;
    }
    park_cv_.notify_one();
  }
}

void FabricExecutor::round(int p) {
  Engine& eng = *engines_[static_cast<std::size_t>(p)];
  try {
    if (setup_) (*setup_)(p);
    loop(p, eng);
    if (!abort_.load(std::memory_order_acquire) && eng.live_processes() > 0) {
      throw DeadlockError(eng.live_processes());
    }
  } catch (...) {
    std::lock_guard<std::mutex> g(term_mu_);
    errors_[static_cast<std::size_t>(p)] = std::current_exception();
    abort_.store(true, std::memory_order_release);
  }
}

// The barrier-free LBTS loop; structurally the proof-carrying loop of
// pdes.cpp (see the seqlock and termination comments there).
void FabricExecutor::loop(int p, Engine& eng) {
  Part& mine = *parts_[static_cast<std::size_t>(p)];
  PartStats& st = stats_[static_cast<std::size_t>(p)];
  const std::int64_t la = topo_.lookahead.count_ps();
  bool is_idle = false;
  for (;;) {
    if (abort_.load(std::memory_order_acquire)) return;
    if (done_.load(std::memory_order_acquire)) break;

    st.lbts_rounds += 1;
    std::int64_t m = kInf;
    for (;;) {
      const std::uint64_t g0 = gen_.load(std::memory_order_seq_cst);
      if ((g0 & 1) == 0) {
        m = kInf;
        for (const auto& ch : chan_) {
          m = std::min(m, ch->min_when.load(std::memory_order_seq_cst));
        }
        for (const auto& part : parts_) {
          m = std::min(m, part->known.load(std::memory_order_seq_cst));
        }
        if (gen_.load(std::memory_order_seq_cst) == g0) break;
      }
      if (abort_.load(std::memory_order_relaxed)) return;
    }
    const std::int64_t safe = sat_add(m, la);

    drain(p, is_idle);

    bool progressed = false;
    for (;;) {
      const std::int64_t t_local = eng.next_event_at_ps();
      const std::int64_t t_chan =
          mine.pending.empty() ? kInf : mine.pending.front().when_ps;
      const std::int64_t t = std::min(t_local, t_chan);
      if (t >= safe) break;
      if (t_chan <= t_local) {
        deliver_batch(mine, eng, p, t_chan);
      } else {
        eng.step_one();
      }
      progressed = true;
      if (abort_.load(std::memory_order_relaxed)) return;
    }
    st.events = eng.events_processed();

    const std::int64_t horizon =
        std::min(eng.next_event_at_ps(),
                 mine.pending.empty() ? kInf : mine.pending.front().when_ps);
    const std::int64_t prev = mine.known.load(std::memory_order_relaxed);
    if (horizon > prev) {
      remove_evidence(
          [&] { mine.known.store(horizon, std::memory_order_seq_cst); });
    } else if (horizon < prev) {
      mine.known.store(horizon, std::memory_order_seq_cst);
    }

    if (horizon == kInf) {
      std::lock_guard<std::mutex> g(term_mu_);
      if (!is_idle) {
        idle_[static_cast<std::size_t>(p)] = true;
        is_idle = true;
      }
      if (std::all_of(idle_.begin(), idle_.end(), [](bool b) { return b; }) &&
          sent_.load(std::memory_order_seq_cst) ==
              received_.load(std::memory_order_seq_cst)) {
        done_.store(true, std::memory_order_release);
        break;
      }
    }
    if (!progressed) std::this_thread::yield();
  }
}

// MNS_HOT: the pending-heap push_back grows amortized — capacity is
// retained across rounds, so steady state stops allocating once the heap
// has seen its high-water mark.
MNS_HOT void FabricExecutor::drain(int p, bool& is_idle) {
  Part& mine = *parts_[static_cast<std::size_t>(p)];
  const int k = topo_.partitions;
  std::vector<WireMsg> got;
  for (int q = 0; q < k; ++q) {
    if (q == p) continue;
    Channel& ch = channel(q, p);
    if (ch.min_when.load(std::memory_order_seq_cst) == kInf) continue;
    got.clear();
    {
      std::lock_guard<std::mutex> g(ch.mu);
      got.swap(ch.buf);
      std::int64_t mn = kInf;
      for (const WireMsg& msg : got) mn = std::min(mn, msg.when_ps);
      if (mn < mine.known.load(std::memory_order_seq_cst)) {
        mine.known.store(mn, std::memory_order_seq_cst);
      }
      remove_evidence(
          [&] { ch.min_when.store(kInf, std::memory_order_seq_cst); });
    }
    if (got.empty()) continue;
    if (is_idle) {
      std::lock_guard<std::mutex> g(term_mu_);
      idle_[static_cast<std::size_t>(p)] = false;
      is_idle = false;
    }
    received_.fetch_add(got.size(), std::memory_order_seq_cst);
    stats_[static_cast<std::size_t>(p)].received += got.size();
    for (const WireMsg& msg : got) {
      mine.pending.push_back(msg);
      std::push_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
    }
  }
}

void FabricExecutor::dispatch(const WireMsg& m) {
  const WireHandler& h = handlers_[static_cast<std::size_t>(m.dst_node)];
  if (!h) {
    throw std::logic_error("FabricExecutor: message for node " +
                           std::to_string(m.dst_node) +
                           " with no registered handler");
  }
  h(m);
}

// MNS_HOT: one vector per same-timestamp batch, not per message — the
// batch must outlive this frame (the BatchGuard owns the boxed
// descriptors until the batch event runs), so it cannot live in a pool
// keyed to this call.
MNS_HOT void FabricExecutor::deliver_batch(Part& mine, Engine& eng, int p,
                                   std::int64_t t) {
  std::vector<WireMsg> batch;
  while (!mine.pending.empty() && mine.pending.front().when_ps == t) {
    std::pop_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
    batch.push_back(mine.pending.back());
    mine.pending.pop_back();
  }
  stats_[static_cast<std::size_t>(p)].batches += 1;
  // The guard owns the boxed descriptors until each message is actually
  // dispatched: a batch event destroyed unrun (drop_processes on an
  // abort path) must still free them.
  struct BatchGuard {
    FabricExecutor* ex;
    std::vector<WireMsg> msgs;
    ~BatchGuard() {
      for (WireMsg& m : msgs) ex->discard(m);
    }
  };
  eng.at(Time::ps(t),
         EventFn::make(
             [g = std::make_shared<BatchGuard>(this, std::move(batch))]() {
               for (WireMsg& m : g->msgs) {
                 g->ex->dispatch(m);
                 m.box = nullptr;  // ownership passed to the handler
               }
             }));
}

}  // namespace mns::sim::pdes
