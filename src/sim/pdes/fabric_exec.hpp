// Conservative PDES executor for the cluster fabric (the `--partitions`
// execution engine behind cluster::Cluster).
//
// pdes::run() owns its engines and lives for one call; the cluster needs
// the inverse shape: the partition Engines are owned by Cluster (pipes,
// NIC state, MPI procs and their coroutine frames all hang off them and
// outlive any single run), and Cluster::run() is called repeatedly on
// the same instance. FabricExecutor therefore
//   - borrows a fixed vector of Engines, one per partition, for its
//     whole lifetime;
//   - keeps one persistent worker thread per partition > 0 (partition 0
//     always executes on the caller), parked between rounds, so
//     coroutine frames created while executing partition p's events
//     always allocate and free on the same thread's frame pool;
//   - carries a small payload (three words + an optional boxed
//     descriptor) per message instead of pdes::run()'s single word: the
//     fabric's split-flow protocol ships a flow descriptor once per
//     message and per-packet words afterwards.
//
// The synchronization protocol — barrier-free LBTS with the
// evidence-removal seqlock, heap-merged (when, src node, send idx)
// delivery batches, counting termination — is the one proved out in
// sim/pdes/pdes.cpp; see that file's comments for the full argument.
// The merge key is partition-invariant here for the same reason: every
// component is a pure function of the sending node's deterministic
// history.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/engine.hpp"
#include "sim/pdes/pdes.hpp"
#include "sim/time.hpp"

namespace mns::sim::pdes {

/// One timestamped cross-partition fabric message. (when_ps, src_node,
/// send_idx) is the deterministic merge key; a/b/c are protocol words
/// interpreted by the destination handler; `box` optionally carries a
/// heap descriptor whose ownership passes to the handler (the executor
/// frees undelivered boxes through the registered deleter on abort).
struct WireMsg {
  std::int64_t when_ps = 0;
  std::int32_t src_node = 0;
  std::int32_t dst_node = 0;
  std::uint64_t send_idx = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  void* box = nullptr;
};

/// Invoked on the destination node's owning partition, at the message
/// timestamp, in deterministic (when, src node, send idx) order.
using WireHandler = std::function<void(const WireMsg&)>;

class FabricExecutor {
 public:
  /// Per-partition synchronization counters, exposed so the finalize
  /// audit can surface a skewed partition plan instead of hiding it:
  /// `events` is the engine's cumulative processed-event count,
  /// `sent`/`received` count channel messages by the owning side,
  /// `batches` the carrier events injected to deliver them, and
  /// `lbts_rounds` the safe-time scans the partition ran.
  struct PartStats {
    std::uint64_t events = 0;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t batches = 0;
    std::uint64_t lbts_rounds = 0;
  };

  /// `engines[p]` is partition p's engine; the executor borrows them
  /// (Cluster owns engine lifetime). Spawns partitions-1 parked worker
  /// threads that live until destruction.
  FabricExecutor(Topology topo, std::vector<Engine*> engines);
  ~FabricExecutor();
  FabricExecutor(const FabricExecutor&) = delete;
  FabricExecutor& operator=(const FabricExecutor&) = delete;

  /// Register `node`'s handler (before the first round; not thread-safe
  /// against a running round).
  void set_handler(int node, WireHandler h);

  /// Deleter for WireMsg::box, used only for messages the executor must
  /// discard itself (abort paths); delivered boxes belong to handlers.
  void set_box_deleter(std::function<void(void*)> d);

  /// Timestamped message from src_node (must be called on its owning
  /// partition's thread) to dst_node's handler at absolute time `when`.
  /// Requires when >= src partition's now + lookahead, intra-partition
  /// sends included, so workload legality never depends on the layout.
  void send(int src_node, int dst_node, Time when, std::uint64_t a,
            std::uint64_t b = 0, std::uint64_t c = 0, void* box = nullptr);

  /// One synchronized round: `setup(p)` runs on partition p's thread
  /// first (partition 0 inline on the caller), then all partitions
  /// execute events and channel deliveries to global quiescence.
  /// Throws the lowest-partition failure after every thread has parked.
  void run_round(const std::function<void(int)>& setup);

  const std::vector<PartStats>& part_stats() const { return stats_; }
  const Topology& topology() const { return topo_; }
  int partitions() const { return topo_.partitions; }

 private:
  struct Channel {
    std::mutex mu;
    std::vector<WireMsg> buf;
    std::atomic<std::int64_t> min_when{INT64_MAX};
  };
  struct Part {
    std::vector<WireMsg> pending;  // min-heap by (when, src, idx)
    std::atomic<std::int64_t> known{0};
  };

  Channel& channel(int from, int to) {
    return *chan_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(topo_.partitions) +
                  static_cast<std::size_t>(to)];
  }
  void thread_main(int p);
  void round(int p);
  void loop(int p, Engine& eng);
  void drain(int p, bool& is_idle);
  void deliver_batch(Part& mine, Engine& eng, int p, std::int64_t t);
  void dispatch(const WireMsg& m);
  void discard(WireMsg& m);
  template <typename Store>
  void remove_evidence(Store&& store) {
    std::lock_guard<std::mutex> g(gen_mu_);
    gen_.fetch_add(1, std::memory_order_seq_cst);
    store();
    gen_.fetch_add(1, std::memory_order_seq_cst);
  }

  const Topology topo_;
  std::vector<Engine*> engines_;
  std::vector<std::unique_ptr<Part>> parts_;
  std::vector<std::unique_ptr<Channel>> chan_;  // [from * K + to]
  std::vector<WireHandler> handlers_;           // per node
  std::vector<std::uint64_t> send_idx_;         // per node, owner-thread
  std::vector<PartStats> stats_;
  std::function<void(void*)> box_deleter_;

  // Evidence-removal seqlock (see pdes.cpp).
  std::mutex gen_mu_;
  std::atomic<std::uint64_t> gen_{0};

  // Termination protocol state, reset per round.
  std::mutex term_mu_;
  std::vector<bool> idle_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> abort_{false};
  std::vector<std::exception_ptr> errors_;

  // Round/parking protocol: workers wait for round_gen_ to advance (or
  // quit_), run one round, then report through done_workers_.
  std::mutex round_mu_;
  std::condition_variable round_cv_;
  std::condition_variable park_cv_;
  std::uint64_t round_gen_ = 0;
  int done_workers_ = 0;
  bool quit_ = false;
  const std::function<void(int)>* setup_ = nullptr;
  std::vector<std::thread> pool_;
};

}  // namespace mns::sim::pdes
