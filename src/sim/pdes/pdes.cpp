#include "sim/pdes/pdes.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace mns::sim::pdes {

namespace {

constexpr std::int64_t kInf = INT64_MAX;

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return a >= kInf - b ? kInf : a + b;
}

// A timestamped cross-partition message. The ordering key
// (when, src_node, send_idx) is a pure function of the sending node's
// deterministic history — never of the partition layout — which is what
// makes the delivery order partition-invariant. Trivially copyable: the
// payload is one data word, interpreted by the destination node's
// registered handler on the destination's own thread.
struct Msg {
  std::int64_t when_ps = 0;
  std::int32_t src_node = 0;
  std::int32_t dst_node = 0;
  std::uint64_t send_idx = 0;
  std::uint64_t word = 0;
};

// "a after b" comparator: std::push_heap/pop_heap build a max-heap, so
// inverting the order yields a min-heap popping (when, src, idx) order.
struct MsgAfter {
  bool operator()(const Msg& a, const Msg& b) const noexcept {
    if (a.when_ps != b.when_ps) return a.when_ps > b.when_ps;
    if (a.src_node != b.src_node) return a.src_node > b.src_node;
    return a.send_idx > b.send_idx;
  }
};

}  // namespace

Topology Topology::blocks(int nodes, int partitions, Time lookahead) {
  Topology t;
  t.nodes = nodes;
  t.partitions = partitions;
  t.lookahead = lookahead;
  t.part_of.resize(static_cast<std::size_t>(nodes > 0 ? nodes : 0));
  if (nodes > 0 && partitions > 0) {
    for (int i = 0; i < nodes; ++i) {
      t.part_of[static_cast<std::size_t>(i)] =
          static_cast<int>((static_cast<std::int64_t>(i) * partitions) /
                           nodes);
    }
  }
  t.validate();
  return t;
}

void Topology::validate() const {
  if (nodes <= 0) throw std::invalid_argument("pdes: topology needs nodes");
  if (partitions <= 0 || partitions > nodes) {
    throw std::invalid_argument(
        "pdes: partitions must be in [1, nodes], got " +
        std::to_string(partitions) + " for " + std::to_string(nodes) +
        " nodes");
  }
  if (part_of.size() != static_cast<std::size_t>(nodes)) {
    throw std::invalid_argument("pdes: part_of must map every node");
  }
  std::vector<bool> used(static_cast<std::size_t>(partitions), false);
  for (int p : part_of) {
    if (p < 0 || p >= partitions) {
      throw std::invalid_argument("pdes: node mapped to partition " +
                                  std::to_string(p) + " out of range");
    }
    used[static_cast<std::size_t>(p)] = true;
  }
  for (int q = 0; q < partitions; ++q) {
    if (!used[static_cast<std::size_t>(q)]) {
      throw std::invalid_argument("pdes: partition " + std::to_string(q) +
                                  " owns no nodes");
    }
  }
  if (lookahead <= Time::zero()) {
    throw std::invalid_argument(
        "pdes: lookahead must be positive (the conservative window is the "
        "minimum link latency; zero admits no parallel progress)");
  }
}

std::uint64_t Result::digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Emission& e : emissions) {
    mix(static_cast<std::uint64_t>(e.at_ps));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.node)));
    mix(e.idx);
    mix(e.word);
  }
  mix(static_cast<std::uint64_t>(end_ps));
  return h;
}

// The runtime: per-partition state, channels, the LBTS protocol and the
// worker loop. One Executor per run(); partitions index into dense
// arrays sized at construction, before any worker starts.
class Executor {
 public:
  Executor(const Topology& topo, std::uint64_t event_limit)
      : topo_(topo),
        limit_(event_limit),
        parts_(static_cast<std::size_t>(topo.partitions)),
        idle_(static_cast<std::size_t>(topo.partitions), false),
        errors_(static_cast<std::size_t>(topo.partitions)),
        send_idx_(static_cast<std::size_t>(topo.nodes), 0),
        emit_idx_(static_cast<std::size_t>(topo.nodes), 0),
        handlers_(static_cast<std::size_t>(topo.nodes)) {
    const int k = topo_.partitions;
    chan_.resize(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
    for (auto& c : chan_) c = std::make_unique<Channel>();
    for (int n = 0; n < topo_.nodes; ++n) {
      parts_[static_cast<std::size_t>(topo_.part_of[static_cast<std::size_t>(
                 n)])]
          .owned.push_back(n);
    }
  }

  Result run(const Build& build) {
    const int k = topo_.partitions;
    // Workers own their Engine for its whole lifecycle (construction,
    // processing, destruction) so coroutine frames allocate and free on
    // one thread's frame pool. Partition 0 runs on the caller; for
    // k == 1 that means no thread is created at all and the executor is
    // the sequential engine plus the (empty-channel) drain discipline —
    // the same code path the parallel runs must match bit-for-bit.
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(k > 1 ? k - 1 : 0));
    for (int p = 1; p < k; ++p) {
      pool.emplace_back([this, p, &build] { worker(p, build); });
    }
    worker(0, build);
    for (auto& th : pool) th.join();

    for (std::size_t p = 0; p < errors_.size(); ++p) {
      if (errors_[p]) std::rethrow_exception(errors_[p]);
    }

    Result r;
    std::size_t total = 0;
    for (const Part& part : parts_) total += part.emissions.size();
    r.emissions.reserve(total);
    for (Part& part : parts_) {
      r.emissions.insert(r.emissions.end(),
                         std::make_move_iterator(part.emissions.begin()),
                         std::make_move_iterator(part.emissions.end()));
      r.end_ps = std::max(r.end_ps, part.end_ps);
      // Batch carrier events are layout-dependent (same-instant messages
      // split across destination partitions fuse differently), so they
      // are excluded: `events` counts workload events only and is
      // partition-invariant like every counter except delivery_batches.
      r.events += part.events - part.batches;
      r.messages += part.messages;
      r.delivery_batches += part.batches;
    }
    // The merge rule: (time, node, per-node index). Every component is
    // partition-invariant, and (node, idx) pairs are unique, so this
    // order is total and identical for every partition count.
    std::sort(r.emissions.begin(), r.emissions.end(),
              [](const Emission& a, const Emission& b) {
                if (a.at_ps != b.at_ps) return a.at_ps < b.at_ps;
                if (a.node != b.node) return a.node < b.node;
                return a.idx < b.idx;
              });
    return r;
  }

  void send(Context& ctx, int src, int dst, Time when, std::uint64_t word) {
    if (src < 0 || src >= topo_.nodes || dst < 0 || dst >= topo_.nodes) {
      throw std::logic_error("pdes: send with node out of range");
    }
    if (topo_.part_of[static_cast<std::size_t>(src)] != ctx.partition()) {
      throw std::logic_error(
          "pdes: send from a node this partition does not own");
    }
    const std::int64_t now_ps = ctx.engine().now().count_ps();
    const std::int64_t when_ps = when.count_ps();
    if (when_ps < sat_add(now_ps, topo_.lookahead.count_ps())) {
      // Enforced for *every* pair, intra-partition included, so whether
      // a workload is legal never depends on the layout.
      throw std::logic_error(
          "pdes: send violates lookahead (when < now + lookahead)");
    }
    Msg m;
    m.when_ps = when_ps;
    m.src_node = src;
    m.dst_node = dst;
    m.send_idx = send_idx_[static_cast<std::size_t>(src)]++;
    m.word = word;
    const int p = ctx.partition();
    const int q = topo_.part_of[static_cast<std::size_t>(dst)];
    Part& mine = parts_[static_cast<std::size_t>(p)];
    if (q == p) {
      mine.pending.push_back(m);
      std::push_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
      return;
    }
    // sent_ is counted before the push: the termination check treats
    // sent != received as "message still in motion".
    sent_.fetch_add(1, std::memory_order_seq_cst);
    Channel& ch = channel(p, q);
    std::lock_guard<std::mutex> g(ch.mu);
    if (when_ps < ch.min_when.load(std::memory_order_seq_cst)) {
      ch.min_when.store(when_ps, std::memory_order_seq_cst);
    }
    ch.buf.push_back(m);
  }

  void on_message(Context& ctx, int node, MsgHandler h) {
    if (node < 0 || node >= topo_.nodes ||
        topo_.part_of[static_cast<std::size_t>(node)] != ctx.partition()) {
      throw std::logic_error(
          "pdes: on_message for a node this partition does not own");
    }
    handlers_[static_cast<std::size_t>(node)] = std::move(h);
  }

  void emit(Context& ctx, int node, std::uint64_t word) {
    if (node < 0 || node >= topo_.nodes ||
        topo_.part_of[static_cast<std::size_t>(node)] != ctx.partition()) {
      throw std::logic_error(
          "pdes: emit for a node this partition does not own");
    }
    Part& mine = parts_[static_cast<std::size_t>(ctx.partition())];
    Emission e;
    e.at_ps = ctx.engine().now().count_ps();
    e.node = node;
    e.idx = emit_idx_[static_cast<std::size_t>(node)]++;
    e.word = word;
    mine.emissions.push_back(e);
  }

 private:
  struct Channel {
    std::mutex mu;
    std::vector<Msg> buf;
    // Minimum timestamp buffered in-flight (kInf when empty): the LBTS
    // scan reads this so a message between "pushed" and "drained" is
    // never invisible.
    std::atomic<std::int64_t> min_when{kInf};
  };

  struct Part {
    // Owner-thread state -------------------------------------------------
    std::vector<Msg> pending;  // min-heap by (when, src, idx)
    std::vector<Emission> emissions;
    std::vector<int> owned;  // node ids, ascending (built before workers)
    std::int64_t end_ps = 0;
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    std::uint64_t batches = 0;
    // Published state ----------------------------------------------------
    // Earliest unprocessed event, local or pending (kInf when drained).
    // Written by the owner only; read by every LBTS scan.
    std::atomic<std::int64_t> known{0};
  };

  Channel& channel(int from, int to) {
    return *chan_[static_cast<std::size_t>(from) *
                      static_cast<std::size_t>(topo_.partitions) +
                  static_cast<std::size_t>(to)];
  }

  void worker(int p, const Build& build) {
    try {
      Engine eng;
      eng.set_event_limit(limit_);
      Context ctx;
      ctx.exec_ = this;
      ctx.eng_ = &eng;
      ctx.part_ = p;
      ctx.owned_ = parts_[static_cast<std::size_t>(p)].owned;
      build(ctx);
      loop(ctx, eng);
      if (!abort_.load(std::memory_order_acquire) &&
          eng.live_processes() > 0) {
        // Global quiescence with live non-daemon processes: the same
        // deadlock the sequential run() reports.
        throw DeadlockError(eng.live_processes());
      }
    } catch (...) {
      std::lock_guard<std::mutex> g(term_mu_);
      errors_[static_cast<std::size_t>(p)] = std::current_exception();
      abort_.store(true, std::memory_order_release);
    }
  }

  void loop(Context& ctx, Engine& eng) {
    const int p = ctx.partition();
    Part& mine = parts_[static_cast<std::size_t>(p)];
    const int k = topo_.partitions;
    const std::int64_t la = topo_.lookahead.count_ps();
    bool is_idle = false;
    for (;;) {
      if (abort_.load(std::memory_order_acquire)) return;
      if (done_.load(std::memory_order_acquire)) break;

      // LBTS: safe = min(every known horizon, every channel in-flight
      // minimum) + lookahead. Evidence of one in-flight message MOVES
      // between those locations over its life (sender horizon -> channel
      // minimum -> receiver horizon, each new location written before
      // the old one is released), so a fixed-order scan — even one that
      // re-reads the channels after the horizons — can be defeated by a
      // transfer chain interleaving with it. The scan therefore retries
      // under the evidence seqlock: gen_ is odd while a removal is in
      // flight, so a scan bracketed by the same even gen_ ran in a
      // window where no evidence vanished, and whatever evidence existed
      // when the window opened was still in place when each location was
      // read.
      std::int64_t m = kInf;
      if (k > 1) {
        for (;;) {
          const std::uint64_t g0 = gen_.load(std::memory_order_seq_cst);
          if ((g0 & 1) == 0) {
            m = kInf;
            for (const auto& ch : chan_) {
              m = std::min(m, ch->min_when.load(std::memory_order_seq_cst));
            }
            for (const Part& part : parts_) {
              m = std::min(m, part.known.load(std::memory_order_seq_cst));
            }
            if (gen_.load(std::memory_order_seq_cst) == g0) break;
          }
          if (abort_.load(std::memory_order_relaxed)) return;
        }
      }
      const std::int64_t safe = sat_add(m, la);

      if (k > 1) drain(p, is_idle);

      // Execute everything strictly before the safe time, interleaving
      // channel deliveries with engine events: all deliveries for time t
      // are injected (as one batch, in (when, src, idx) order) before
      // the first event at t runs — the partition-invariant moment.
      bool progressed = false;
      for (;;) {
        const std::int64_t t_local = eng.next_event_at_ps();
        const std::int64_t t_chan =
            mine.pending.empty() ? kInf : mine.pending.front().when_ps;
        const std::int64_t t = std::min(t_local, t_chan);
        if (t >= safe) break;
        if (t_chan <= t_local) {
          deliver_batch(ctx, mine, eng, t_chan);
        } else {
          eng.step_one();
        }
        progressed = true;
        if (abort_.load(std::memory_order_relaxed)) return;
      }
      mine.events = eng.events_processed();
      mine.end_ps = std::max(mine.end_ps, eng.now().count_ps());

      // Publish the new horizon (owner-only). Lowering it adds evidence
      // and may race freely with scans; RAISING it removes evidence and
      // must go through the seqlock so no concurrent scan half-sees the
      // move.
      const std::int64_t horizon =
          std::min(eng.next_event_at_ps(),
                   mine.pending.empty() ? kInf : mine.pending.front().when_ps);
      const std::int64_t prev = mine.known.load(std::memory_order_relaxed);
      if (horizon > prev) {
        remove_evidence(
            [&] { mine.known.store(horizon, std::memory_order_seq_cst); });
      } else if (horizon < prev) {
        mine.known.store(horizon, std::memory_order_seq_cst);
      }

      if (horizon == kInf) {
        // Quiescent: flag it and test global termination. Idle flags only
        // change under term_mu_, sends count before the channel push and
        // drains clear the flag before counting the receive, so
        // "all idle and sent == received" can only be observed when no
        // message can ever wake anyone again.
        std::lock_guard<std::mutex> g(term_mu_);
        if (!is_idle) {
          idle_[static_cast<std::size_t>(p)] = true;
          is_idle = true;
        }
        if (std::all_of(idle_.begin(), idle_.end(),
                        [](bool b) { return b; }) &&
            sent_.load(std::memory_order_seq_cst) ==
                received_.load(std::memory_order_seq_cst)) {
          done_.store(true, std::memory_order_release);
          break;
        }
      }
      if (!progressed) std::this_thread::yield();
    }
  }

  void drain(int p, bool& is_idle) {
    Part& mine = parts_[static_cast<std::size_t>(p)];
    const int k = topo_.partitions;
    std::vector<Msg> got;
    for (int q = 0; q < k; ++q) {
      if (q == p) continue;
      Channel& ch = channel(q, p);
      if (ch.min_when.load(std::memory_order_seq_cst) == kInf) continue;
      got.clear();
      {
        std::lock_guard<std::mutex> g(ch.mu);
        got.swap(ch.buf);
        std::int64_t mn = kInf;
        for (const Msg& msg : got) mn = std::min(mn, msg.when_ps);
        // Take responsibility for the drained messages *before* the
        // channel forgets them: lower our horizon first (evidence-adding,
        // lock-free), then clear the in-flight minimum through the
        // seqlock — the clear is an evidence removal, legal only because
        // the lowered horizon now carries the same evidence.
        if (mn < mine.known.load(std::memory_order_seq_cst)) {
          mine.known.store(mn, std::memory_order_seq_cst);
        }
        remove_evidence(
            [&] { ch.min_when.store(kInf, std::memory_order_seq_cst); });
      }
      if (got.empty()) continue;
      if (is_idle) {
        std::lock_guard<std::mutex> g(term_mu_);
        idle_[static_cast<std::size_t>(p)] = false;
        is_idle = false;
      }
      received_.fetch_add(got.size(), std::memory_order_seq_cst);
      for (const Msg& msg : got) {
        mine.pending.push_back(msg);
        std::push_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
      }
    }
  }

  void dispatch(Context& ctx, const Msg& m) {
    const MsgHandler& h = handlers_[static_cast<std::size_t>(m.dst_node)];
    if (!h) {
      throw std::logic_error("pdes: message for node " +
                             std::to_string(m.dst_node) +
                             " with no registered handler");
    }
    h(ctx, m.dst_node, m.word);
  }

  // Pop every pending delivery at time t (the heap yields them in
  // (when, src, idx) order) and inject them as ONE engine event. The
  // engine assigns a drained group contiguous seqs either way, so fusing
  // them cannot reorder anything — it just replaces n heap sifts with
  // one (per-link event batching on the delivery path).
  void deliver_batch(Context& ctx, Part& mine, Engine& eng,
                     std::int64_t t) {
    std::vector<Msg> batch;
    while (!mine.pending.empty() && mine.pending.front().when_ps == t) {
      std::pop_heap(mine.pending.begin(), mine.pending.end(), MsgAfter{});
      batch.push_back(mine.pending.back());
      mine.pending.pop_back();
    }
    mine.messages += batch.size();
    mine.batches += 1;
    Context* cp = &ctx;  // outlives every event (lives through the loop)
    eng.at(Time::ps(t),
           EventFn::make([this, cp, batch = std::move(batch)]() mutable {
             for (const Msg& m : batch) dispatch(*cp, m);
           }));
  }

  // Evidence-removal seqlock. Raising a known horizon back up and
  // resetting a drained channel's minimum are the only writes that make
  // a timestamp *disappear* from the LBTS scan's view; they serialize on
  // gen_mu_ (single writer, so odd/even parity is meaningful) and hold
  // gen_ odd for their duration. Evidence-ADDING writes — a send
  // lowering a channel minimum, a drain lowering the receiver's horizon
  // — bypass it entirely: a scan that sees them early only computes a
  // smaller, more conservative safe time. Lock order: ch.mu -> gen_mu_
  // (drain); the raise site takes gen_mu_ alone.
  template <typename Store>
  void remove_evidence(Store&& store) {
    std::lock_guard<std::mutex> g(gen_mu_);
    gen_.fetch_add(1, std::memory_order_seq_cst);
    store();
    gen_.fetch_add(1, std::memory_order_seq_cst);
  }

  const Topology topo_;
  const std::uint64_t limit_;
  std::vector<Part> parts_;
  std::vector<std::unique_ptr<Channel>> chan_;  // [from * K + to]
  std::mutex gen_mu_;
  std::atomic<std::uint64_t> gen_{0};
  // Termination protocol (see loop()/drain()). Idle flags are guarded by
  // term_mu_; the message counters are seq-cst atomics ordered against
  // the channel operations.
  std::mutex term_mu_;
  std::vector<bool> idle_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<bool> done_{false};
  std::atomic<bool> abort_{false};
  std::vector<std::exception_ptr> errors_;
  // Per-node deterministic counters and handlers. A node is owned by
  // exactly one partition, so each entry is touched by one thread only.
  std::vector<std::uint64_t> send_idx_;
  std::vector<std::uint64_t> emit_idx_;
  std::vector<MsgHandler> handlers_;
};

void Context::emit(int node, std::uint64_t word) {
  exec_->emit(*this, node, word);
}

void Context::on_message(int node, MsgHandler h) {
  exec_->on_message(*this, node, std::move(h));
}

void Context::send(int src_node, int dst_node, Time when,
                   std::uint64_t word) {
  exec_->send(*this, src_node, dst_node, when, word);
}

Result run(const Topology& topo, const Build& build,
           std::uint64_t event_limit) {
  topo.validate();
  Executor exec(topo, event_limit);
  return exec.run(build);
}

}  // namespace mns::sim::pdes
