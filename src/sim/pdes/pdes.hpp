// Conservative parallel discrete-event simulation (PDES) core.
//
// Partitions a node graph across worker threads, each partition owning a
// private Engine (its own event heap and now-queue), with timestamped
// cross-partition event channels and a barrier-free safe-time (LBTS)
// computation. The contract mirrors SweepRunner's `--jobs` invariance,
// but *inside* one run: observable results are bit-identical for any
// partition count, including partitions == 1, which executes the same
// code inline on the caller with no threads at all.
//
// # Model
//
// The workload is a set of `nodes` logical nodes. Each node's event
// handlers may touch only that node's state; nodes interact exclusively
// through Context::send(src, dst, when, word), a timestamped message
// that invokes dst's registered handler (Context::on_message) on dst's
// partition at absolute time `when`. Sends must
// respect the topology's lookahead: when >= now + lookahead, the minimum
// link latency of the modelled network — physics every fabric in this
// simulator already obeys (a packet cannot arrive before one wire
// latency). That slack is exactly what lets a partition execute ahead
// without waiting for its peers event-by-event.
//
// # Safe time (LBTS), barrier-free
//
// Every partition publishes (seq-cst atomics, no barrier, no null
// messages) its `known` horizon: the timestamp of its earliest
// unprocessed event, local or pending-delivery, INT64_MAX when drained.
// Each channel additionally publishes the minimum timestamp buffered
// in-flight inside it. Any future message anywhere must descend, through
// chains of executions each adding >= 0 and a final send adding
// >= lookahead, from one of those horizons, so
//
//   safe = min(all known, all in-flight minima) + lookahead
//
// is a lower bound on any delivery this partition can still receive, and
// every event strictly before `safe` can run immediately.
//
// The scan is made atomic against evidence *removal* by a seqlock.
// Evidence of one in-flight message moves between locations over its
// life — sender horizon, channel minimum, receiver horizon, each new
// location written before the old one is released — so a fixed-order
// scan (in any order, however many passes) can be defeated by a
// transfer chain that interleaves with it. Instead, the two writes that
// remove evidence (raising a horizon at round end, resetting a drained
// channel's minimum) serialize on a mutex and hold a generation counter
// odd; a scan only accepts a minimum read entirely within one even,
// unchanged generation — a window in which no evidence vanished, so
// whatever evidence existed when the window opened was still in place
// when each location was read. Evidence-adding writes (a send lowering
// a channel minimum, a drain lowering the receiver's horizon) stay
// lock-free: observing them early only makes `safe` more conservative.
//
// # Determinism (the merge rule)
//
// Deliveries for time t are injected into the destination engine at the
// moment no earlier event remains, sorted by (when, src node, per-source
// send index) — every component of that key is a pure function of the
// sending node's deterministic history, never of the partition layout.
// Same-time deliveries then execute as one batch event (single heap
// entry; engine seqs of a drained group are contiguous, so batching
// cannot reorder them against anything). Locally-scheduled events keep
// the engine's (time, seq) order. Node observables are recorded through
// Context::emit into per-node streams merged by (time, node, per-node
// index). Every key above is partition-invariant, so the merged stream —
// and anything derived from it — is bit-identical from K=1 to K=nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace mns::sim::pdes {

/// Static description of the partitioned world: which partition owns
/// each node, and the lookahead floor every send must respect.
struct Topology {
  int nodes = 0;
  int partitions = 1;
  std::vector<int> part_of;  // node -> owning partition, size() == nodes
  // Minimum cross-node latency: every send must satisfy
  // when >= now + lookahead. Must be > 0 — zero lookahead admits no
  // conservative window (and no physical link is instantaneous).
  Time lookahead;

  /// Contiguous block partitioning (node i -> partition i*K/nodes), the
  /// layout matching the cluster's block rank placement.
  static Topology blocks(int nodes, int partitions, Time lookahead);

  /// Throws std::invalid_argument on structural errors (no nodes, bad
  /// partition ids, non-positive lookahead, empty partition).
  void validate() const;
};

class Executor;

/// One deterministic observable record: node `node`'s `idx`-th emission,
/// stamped with the simulated time it was recorded.
struct Emission {
  std::int64_t at_ps = 0;
  std::int32_t node = 0;
  std::uint32_t pad_ = 0;  // explicit padding: Emission is hashed bytewise
  std::uint64_t idx = 0;
  std::uint64_t word = 0;

  friend bool operator==(const Emission&, const Emission&) = default;
};

/// Merged run result. `emissions` is the deterministic observable stream
/// (sorted by (at_ps, node, idx)); the counters are aggregates over all
/// partitions. `events` counts workload-scheduled engine events only —
/// the carrier events injected to deliver message batches are excluded,
/// because batch grouping is layout-dependent (same-instant messages to
/// nodes in different partitions fuse into one batch at K=1 but several
/// at K>1). Every counter is partition-invariant except
/// `delivery_batches`, which counts exactly those carriers and measures
/// scheduling efficiency, not simulated behaviour.
struct Result {
  std::vector<Emission> emissions;
  std::int64_t end_ps = 0;          // max partition clock at drain
  std::uint64_t events = 0;         // workload events processed, summed
                                    // (delivery-batch carriers excluded)
  std::uint64_t messages = 0;       // channel messages delivered
  std::uint64_t delivery_batches = 0;  // batch events carrying them

  /// FNV-1a over the emission stream + end time: the digest the
  /// partition-invariance tests compare.
  std::uint64_t digest() const;
};

class Context;

/// Per-node message handler: invoked on the node's owning partition, at
/// the message's timestamp, in deterministic (time, src node, per-source
/// send index) order. The Context passed in is the *destination*
/// partition's — handlers never see (and so can never touch) sender-side
/// state, which is what keeps partitioned execution race-free by
/// construction.
using MsgHandler =
    std::function<void(Context&, int node, std::uint64_t word)>;

/// Per-partition handle passed to the workload builder. Lives for the
/// whole run; all methods are owner-thread-only (the partition's worker).
class Context {
 public:
  Engine& engine() noexcept { return *eng_; }
  int partition() const noexcept { return part_; }
  /// Nodes owned by this partition, ascending.
  const std::vector<int>& nodes() const noexcept { return owned_; }
  Time now() const noexcept { return eng_->now(); }

  /// Record one word of node-observable output (a completion, a verdict,
  /// a counter sample). Streams are merged deterministically across
  /// partitions; this is what the bit-identity contract is stated over.
  void emit(int node, std::uint64_t word);

  /// Register `node`'s message handler (build time; owned nodes only).
  void on_message(int node, MsgHandler h);

  /// Timestamped message: deliver `word` to dst's handler at absolute
  /// time `when`. Requires when >= now + lookahead for every (src, dst)
  /// pair — also intra-partition ones, so the legality of a workload
  /// never depends on the layout.
  void send(int src_node, int dst_node, Time when, std::uint64_t word);

 private:
  friend class Executor;
  Executor* exec_ = nullptr;
  Engine* eng_ = nullptr;
  int part_ = 0;
  std::vector<int> owned_;
};

/// Workload builder: invoked once per partition, on that partition's
/// worker thread (inline on the caller for partitions == 1 — code must
/// not depend on which; for K > 1 invocations run concurrently, so the
/// callable must be safe to call from several threads at once). Spawns
/// processes / schedules events / registers handlers for the partition's
/// own nodes only.
using Build = std::function<void(Context&)>;

/// Run `build` over `topo` to completion and merge the observable
/// streams. Throws the lowest-partition failure (process exceptions,
/// DeadlockError for stuck non-daemon processes, EventLimitError when a
/// partition exceeds `event_limit`).
Result run(const Topology& topo, const Build& build,
           std::uint64_t event_limit = UINT64_MAX);

}  // namespace mns::sim::pdes
