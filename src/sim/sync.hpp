// Synchronization primitives for simulated processes.
//
// All wake-ups go through the engine's event queue (zero-delay events), so
// the order in which blocked coroutines resume is deterministic and no
// resume happens inside the notifier's stack frame. Hand-off is direct:
// a sender/releaser assigns its message/token to a specific waiter, so a
// third party arriving between notify and resume cannot steal it.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"

namespace mns::sim {

/// One-shot event. Awaiting after fire() completes immediately; firing
/// releases all current waiters. fire() is idempotent.
class Trigger {
 public:
  explicit Trigger(Engine& eng) : eng_(&eng) {}

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      eng_->resume_after(Time::zero(), h);
    }
    waiters_.clear();
  }

  /// Re-arm a fired trigger. Only valid when no coroutine is waiting.
  void reset() {
    if (!waiters_.empty()) {
      throw std::logic_error("Trigger::reset with pending waiters");
    }
    fired_ = false;
  }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) { t.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO mailbox. Senders never block; receivers block until a
/// message is available. Messages are delivered in send order; with
/// multiple concurrent receivers each message goes to exactly one.
template <class T>
class Mailbox {
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

 public:
  explicit Mailbox(Engine& eng) : eng_(&eng) {}

  void send(T msg) {
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot = std::move(msg);  // direct hand-off: cannot be stolen
      eng_->resume_after(Time::zero(), w->handle);
      return;
    }
    queue_.push_back(std::move(msg));
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  auto receive() {
    struct Awaiter : Waiter {
      Mailbox& mb;
      explicit Awaiter(Mailbox& m) : mb(m) {}
      bool await_ready() const noexcept { return !mb.queue_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        mb.waiters_.push_back(this);
      }
      T await_resume() {
        if (this->slot.has_value()) return std::move(*this->slot);
        T msg = std::move(mb.queue_.front());
        mb.queue_.pop_front();
        return msg;
      }
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  std::deque<T> queue_;
  std::deque<Waiter*> waiters_;
};

/// Counting semaphore with direct token hand-off.
class Semaphore {
 public:
  Semaphore(Engine& eng, std::size_t initial) : eng_(&eng), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool handed_off = false;
      bool await_ready() const noexcept {
        return s.count_ > 0 && s.waiters_.empty();
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back({h, &handed_off});
      }
      void await_resume() noexcept {
        if (!handed_off) --s.count_;  // token taken from the free pool
      }
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto [h, flag] = waiters_.front();
      waiters_.pop_front();
      *flag = true;  // token handed directly to this waiter
      eng_->resume_after(Time::zero(), h);
      return;
    }
    ++count_;
  }

  std::size_t available() const { return count_; }

 private:
  struct Entry {
    std::coroutine_handle<> handle;
    bool* handed_off;
  };
  Engine* eng_;
  std::size_t count_;
  std::deque<Entry> waiters_;
};

/// Reusable barrier for `n` participants (used in tests and by the
/// benchmark drivers to align phases; MPI_Barrier is implemented in the MPI
/// layer with real messages, not with this).
class SimBarrier {
 public:
  SimBarrier(Engine& eng, std::size_t n) : eng_(&eng), n_(n) {}

  auto arrive_and_wait() {
    struct Awaiter {
      SimBarrier& b;
      bool await_ready() const noexcept { return b.n_ == 1; }
      void await_suspend(std::coroutine_handle<> h) {
        b.waiters_.push_back(h);
        if (b.waiters_.size() == b.n_) {
          for (auto w : b.waiters_) {
            b.eng_->resume_after(Time::zero(), w);
          }
          b.waiters_.clear();
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  std::size_t n_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace mns::sim
