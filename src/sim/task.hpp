// Lazy coroutine task with continuation chaining.
//
// Every simulated process (an MPI rank, a NIC firmware thread, a benchmark
// driver) is a tree of Task<> coroutines scheduled by sim::Engine. A Task is
// lazy: it runs only when co_awaited (or spawned as a process root), and on
// completion transfers control back to its awaiter via symmetric transfer,
// so arbitrarily deep call chains use O(1) stack.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "audit/audit.hpp"
#include "sim/frame_pool.hpp"

namespace mns::sim {

namespace detail {

// PromiseBase inherits PoolAllocated, so every Task<T> coroutine frame is
// carved from the per-thread frame pool instead of the global allocator —
// the millions of transient compute()/busy()/channel tasks a skeleton run
// spawns become freelist pops.
struct PromiseBase : frame_pool::PoolAllocated {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      return h.promise().continuation;
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept(!audit::kEnabled) {
      MNS_AUDIT(h, "co_await on a moved-from/empty Task");
      MNS_AUDIT(!h.done(), "Task co_awaited more than once");
      return false;
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
      return h;  // start the child coroutine
    }
    T await_resume() {
      if (h.promise().error) std::rethrow_exception(h.promise().error);
      return std::move(h.promise().value);
    }
  };
  Awaiter operator co_await() const& noexcept { return Awaiter{h_}; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }
  friend class Engine;
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  struct Awaiter {
    std::coroutine_handle<promise_type> h;
    bool await_ready() const noexcept(!audit::kEnabled) {
      MNS_AUDIT(h, "co_await on a moved-from/empty Task");
      MNS_AUDIT(!h.done(), "Task co_awaited more than once");
      return false;
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
      h.promise().continuation = cont;
      return h;
    }
    void await_resume() {
      if (h.promise().error) std::rethrow_exception(h.promise().error);
    }
  };
  Awaiter operator co_await() const& noexcept { return Awaiter{h_}; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
    h_ = {};
  }
  friend class Engine;
  std::coroutine_handle<promise_type> h_;
};

}  // namespace mns::sim
