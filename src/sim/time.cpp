#include "sim/time.hpp"

#include <cstdio>

namespace mns::sim {

std::string Time::str() const {
  char buf[48];
  const double ps = static_cast<double>(ps_);
  if (ps_ == 0) return "0";
  if (ps < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fps", ps);
  } else if (ps < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fns", ps / 1e3);
  } else if (ps < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fus", ps / 1e6);
  } else if (ps < 1e12) {
    std::snprintf(buf, sizeof buf, "%.2fms", ps / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", ps / 1e12);
  }
  return buf;
}

}  // namespace mns::sim
