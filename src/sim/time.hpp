// Simulated time as a strong type.
//
// The unit is the picosecond: at the modelled bandwidths (up to ~1 GB/s per
// byte-stream) one byte takes ~1000 ps, so integer arithmetic never loses
// sub-nanosecond serialization times, and int64 picoseconds still spans
// ~106 days of simulated time — far beyond any run here.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace mns::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time ps(std::int64_t v) { return Time{v}; }
  static constexpr Time ns(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000'000}; }
  /// From floating-point seconds/microseconds (rounded to nearest ps).
  static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e12 + (v >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Time usec(double v) { return seconds(v * 1e-6); }
  static constexpr Time nsec(double v) { return seconds(v * 1e-9); }

  constexpr std::int64_t count_ps() const { return ps_; }
  constexpr double to_seconds() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }
  /// Scale by a floating-point factor (named to avoid int/double overload
  /// ambiguity at call sites with literal multipliers).
  constexpr Time scaled(double k) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ps_) * k + 0.5)};
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ps_ / k}; }
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }

  friend constexpr auto operator<=>(Time, Time) = default;

  /// "12.34us" style rendering for logs and tables.
  std::string str() const;

 private:
  explicit constexpr Time(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

/// Time to move `bytes` at `bytes_per_second` (rounded up to whole ps).
constexpr Time transfer_time(std::uint64_t bytes, double bytes_per_second) {
  const double sec = static_cast<double>(bytes) / bytes_per_second;
  return Time::seconds(sec);
}

}  // namespace mns::sim
