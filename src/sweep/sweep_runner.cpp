#include "sweep/sweep_runner.hpp"

namespace mns::sweep {

int hardware_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace mns::sweep
