// Parallel sweep harness: fans independent simulation points over a
// thread pool.
//
// The paper's artifacts are sweeps of independent deterministic
// simulations — (net, size, window, app, nodes) points that share no
// state. SweepRunner exploits exactly that independence and nothing more:
//
//   - each point owns its private Engine/Cluster, constructed and run
//     entirely on one worker thread, so per-point determinism is the
//     single-threaded determinism the simulator already guarantees;
//   - results come back in input order regardless of --jobs, so emitted
//     tables are bit-identical between --jobs 1 and --jobs N;
//   - parallelism lives ONLY here, between simulations, never inside one.
//     tools/simlint.py enforces that no other src/ code touches threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mns::sweep {

/// The machine's worker count (for `--jobs 0` = "whole machine").
int hardware_jobs() noexcept;

class SweepRunner {
 public:
  /// jobs <= 1 runs every point inline on the caller (no threads are
  /// created at all); jobs == 0 means hardware_jobs().
  explicit SweepRunner(int jobs = 1)
      : jobs_(jobs == 0 ? hardware_jobs() : jobs) {}

  int jobs() const noexcept { return jobs_; }

  /// Evaluate fn(0) .. fn(n-1), distributing points over the pool, and
  /// return the results in index order. If points throw, the exception of
  /// the lowest-index failing point is rethrown on the caller after all
  /// workers drain (deterministic error reporting); later points may be
  /// skipped once a failure is seen.
  template <class Fn>
  auto run_indexed(std::size_t n, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<R>> slots(n);
    if (jobs_ <= 1 || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
    } else {
      std::atomic<std::size_t> next{0};
      std::atomic<bool> failed{false};
      std::vector<std::exception_ptr> errors(n);
      auto worker = [&]() noexcept {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          if (failed.load(std::memory_order_relaxed)) return;
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      };
      const std::size_t nthreads =
          std::min(static_cast<std::size_t>(jobs_), n);
      std::vector<std::thread> pool;
      pool.reserve(nthreads - 1);
      for (std::size_t t = 0; t + 1 < nthreads; ++t) {
        pool.emplace_back(worker);
      }
      worker();  // the caller is a worker too
      for (auto& th : pool) th.join();
      for (auto& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) {
      // Reaching here means no worker recorded an exception, which with
      // the rethrow loop above implies every slot was filled; check it
      // anyway so a future scheduling bug surfaces as an error instead
      // of UB on an empty optional.
      if (!s.has_value()) {
        throw std::logic_error("SweepRunner: point skipped without error");
      }
      out.push_back(std::move(*s));
    }
    return out;
  }

  /// run_indexed over a list of point descriptors.
  template <class In, class Fn>
  auto map(const std::vector<In>& items, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, const In&>> {
    return run_indexed(items.size(),
                       [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  int jobs_;
};

}  // namespace mns::sweep
