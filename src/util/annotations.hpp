// Source annotations consumed by the static checkers (tools/simcheck).
//
// MNS_HOT marks a function as an *audited allocation boundary* on the
// simulator's hot paths: its own body is allowed to allocate (slab refill,
// amortized vector growth, pooled-frame handoff) because that allocation
// has been reviewed and is amortized or warm-up-only — but simcheck still
// descends into its callees, so the exemption does not leak downward.
// Annotate the narrowest function that owns the allocation, never a whole
// step function.
#pragma once

#if defined(__clang__)
#define MNS_HOT [[clang::annotate("mns_hot")]]
#else
#define MNS_HOT
#endif
