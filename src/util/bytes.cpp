#include "util/bytes.hpp"

#include <cctype>
#include <stdexcept>

namespace mns::util {

std::uint64_t parse_size(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("empty size");
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad size: " + text);
  }
  std::uint64_t mult = 1;
  if (pos < text.size()) {
    if (pos + 1 != text.size()) throw std::invalid_argument("bad size: " + text);
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': mult = 1ULL << 10; break;
      case 'M': mult = 1ULL << 20; break;
      case 'G': mult = 1ULL << 30; break;
      default: throw std::invalid_argument("bad size suffix: " + text);
    }
  }
  return value * mult;
}

std::vector<std::uint64_t> size_sweep(std::uint64_t from, std::uint64_t to) {
  if (from == 0 || from > to) {
    throw std::invalid_argument("size_sweep: need 0 < from <= to");
  }
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = from; s <= to; s *= 2) {
    sizes.push_back(s);
    if (s > to / 2) break;  // avoid overflow on the doubling
  }
  return sizes;
}

}  // namespace mns::util
