// Byte-size parsing/formatting helpers ("64K" <-> 65536).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mns::util {

/// Parse "4", "2K", "64K", "1M", "1G" (binary multiples). Throws
/// std::invalid_argument on malformed input.
std::uint64_t parse_size(const std::string& text);

/// Geometric sweep of message sizes: from, from*2, ..., up to and
/// including `to` (the paper's figures all use power-of-two sweeps).
std::vector<std::uint64_t> size_sweep(std::uint64_t from, std::uint64_t to);

}  // namespace mns::util
