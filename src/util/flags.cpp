#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/bytes.hpp"

namespace mns::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::string Flags::get(const std::string& key, const std::string& def) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto text = get(key, "");
  if (text.empty()) return def;
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(text, &used);
    // Full-string parse: "8x" or "8 " must not silently read as 8.
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got '" +
                                text + "'");
  }
}

std::uint64_t Flags::get_uint(const std::string& key,
                              std::uint64_t def) const {
  const auto text = get(key, "");
  if (text.empty()) return def;
  try {
    if (text[0] == '-') throw std::invalid_argument(text);
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key +
                                " expects a non-negative integer, got '" +
                                text + "'");
  }
}

double Flags::get_double(const std::string& key, double def) const {
  const auto text = get(key, "");
  if (text.empty()) return def;
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" +
                                text + "'");
  }
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto text = get(key, "");
  if (text.empty()) return def;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  throw std::invalid_argument("flag --" + key + " expects a boolean, got '" +
                              text + "'");
}

std::uint64_t Flags::get_size(const std::string& key, std::uint64_t def) const {
  const auto text = get(key, "");
  if (text.empty()) return def;
  return parse_size(text);
}

void Flags::reject_unknown() const {
  for (const auto& [key, value] : values_) {
    if (!queried_.count(key)) {
      throw std::invalid_argument("unknown flag --" + key + "=" + value);
    }
  }
}

int run_cli_thunk(int (*fn)(void*), void* ctx) {
  try {
    return fn(ctx);
  } catch (const std::invalid_argument& e) {
    // Malformed flag values (--seed=abc, --faults=drop:x) are user error,
    // not a crash: print the message and exit with a distinct code
    // instead of letting the exception escape main into std::terminate.
    std::fprintf(stderr, "error: %s\n", e.what());  // simlint-allow: stdout
    return 2;
  }
}

}  // namespace mns::util
