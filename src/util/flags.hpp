// Minimal command-line flag parser shared by benches and examples.
//
// Supports `--key=value` and boolean `--flag` forms (no space-separated
// values: `--key value` would be ambiguous with positionals). Unknown flags
// are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

namespace mns::util {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  /// Like get_int but rejects negative values (seeds, counts).
  std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;
  /// Byte size with K/M/G suffix.
  std::uint64_t get_size(const std::string& key, std::uint64_t def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Call after all get()s: throws if any flag was never queried
  /// (catches typos like --node=8 for --nodes=8).
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

/// Non-template core of run_cli (flags.cpp owns the catch + stderr).
int run_cli_thunk(int (*fn)(void*), void* ctx);

/// CLI boundary for mains using Flags: runs `fn` and turns a
/// malformed-flag std::invalid_argument (bad --seed, bad --faults, typo'd
/// flag name) into a clear stderr message and exit code 2 instead of an
/// unhandled exception out of main.
///
///   int main(int argc, char** argv) {
///     return util::run_cli([&] { ...parse + run...; return 0; });
///   }
template <class F>
int run_cli(F&& fn) {
  using Fn = std::remove_reference_t<F>;
  auto thunk = [](void* ctx) -> int { return (*static_cast<Fn*>(ctx))(); };
  return run_cli_thunk(thunk, &fn);
}

}  // namespace mns::util
