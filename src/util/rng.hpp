// Deterministic pseudo-random number generation for simulation workloads.
//
// The simulator must be bit-for-bit reproducible across runs, so all
// randomness flows through explicitly seeded generators; nothing reads
// std::random_device or the clock.
#pragma once

#include <cstdint>
#include <limits>

namespace mns::util {

/// SplitMix64: tiny, fast, statistically solid for workload generation.
/// Used both directly and to seed Xoshiro256ss streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — general-purpose generator for the workload generators.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mns::util
