#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mns::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double Samples::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("percentile of empty Samples");
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::min() const {
  return xs_.empty() ? 0.0 : *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  return xs_.empty() ? 0.0 : *std::max_element(xs_.begin(), xs_.end());
}

void SizeHistogram::add(std::uint64_t bytes, std::uint64_t count) {
  total_count_ += count;
  total_bytes_ += bytes * count;
  for (auto& e : entries_) {
    if (e.size == bytes) {
      e.count += count;
      return;
    }
  }
  entries_.push_back({bytes, count});
}

std::uint64_t SizeHistogram::count_in(std::uint64_t lo,
                                      std::uint64_t hi) const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) {
    if (e.size >= lo && e.size < hi) n += e.count;
  }
  return n;
}

std::uint64_t SizeHistogram::bytes_in(std::uint64_t lo,
                                      std::uint64_t hi) const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) {
    if (e.size >= lo && e.size < hi) n += e.size * e.count;
  }
  return n;
}

void SizeHistogram::merge(const SizeHistogram& other) {
  for (const auto& e : other.entries_) add(e.size, e.count);
}

}  // namespace mns::util
