// Streaming statistics accumulators used by benchmarks and the profiler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mns::util {

/// Welford-style streaming accumulator: mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; supports exact percentiles. Used where the sample
/// count is bounded (micro-benchmark repetitions).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double percentile(double p) const;  ///< p in [0,100], linear interpolation.
  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const;
  double max() const;

 private:
  std::vector<double> xs_;
};

/// Power-of-two histogram over byte sizes; regenerates the paper's Table 1
/// style "size class" breakdowns.
class SizeHistogram {
 public:
  void add(std::uint64_t bytes, std::uint64_t count = 1);

  std::uint64_t total_count() const { return total_count_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Count of messages with lo <= size < hi.
  std::uint64_t count_in(std::uint64_t lo, std::uint64_t hi) const;
  /// Bytes carried by messages with lo <= size < hi.
  std::uint64_t bytes_in(std::uint64_t lo, std::uint64_t hi) const;

  /// Fold another histogram into this one.
  void merge(const SizeHistogram& other);

 private:
  struct Entry {
    std::uint64_t size;
    std::uint64_t count;
  };
  std::vector<Entry> entries_;  // exact (size,count) pairs, kept sorted-ish
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace mns::util
