#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mns::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  cells_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return add(ss.str());
}

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
}

std::string size_label(std::uint64_t bytes) {
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

}  // namespace mns::util
