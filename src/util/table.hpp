// Plain-text table / CSV emitters for bench harness output.
//
// Every bench binary prints one of these per paper figure/table; columns
// are right-aligned for eyeballing and a `--csv` mode emits
// machine-readable rows for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mns::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 2);
  Table& add(std::uint64_t value);
  Table& add(int value);

  /// Render with aligned columns to `os`.
  void print(std::ostream& os) const;
  /// Render as CSV (header row + data rows).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return cells_.size(); }
  const std::vector<std::vector<std::string>>& cells() const { return cells_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format helper: "4", "1K", "64K", "1M" — the paper's x-axis labels.
std::string size_label(std::uint64_t bytes);

}  // namespace mns::util
