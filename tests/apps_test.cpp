// Application kernels: real-mode numerics verify; skeleton mode runs the
// class-B message schedule; both modes and all networks complete.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"

namespace {

using namespace mns;
using apps::AppResult;
using apps::Mode;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using sim::Task;

AppResult run_app_on(const apps::AppSpec& spec, Net net, std::size_t nodes,
                     int ppn, Mode mode, bool test_size = true) {
  ClusterConfig cfg{.nodes = nodes, .ppn = ppn, .net = net};
  Cluster c(cfg);
  std::vector<AppResult> results(static_cast<std::size_t>(c.ranks()));
  c.run([&](Comm& comm) -> Task<> {
    auto& fn = test_size ? spec.run_test : spec.run_full;
    results[static_cast<std::size_t>(comm.rank())] =
        co_await fn(comm, mode);
  });
  return results[0];
}

class RealApps : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(All, RealApps,
                         ::testing::Values("is", "cg", "mg", "ft", "lu",
                                           "sp", "bt", "s3d50"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(RealApps, VerifiesOn4RanksIB) {
  const auto& spec = apps::find_app(GetParam());
  ASSERT_TRUE(spec.ranks_ok(4));
  const AppResult r = run_app_on(spec, Net::kInfiniBand, 4, 1, Mode::kReal);
  EXPECT_TRUE(r.verified) << GetParam();
  EXPECT_GT(r.app_seconds, 0.0);
}

TEST_P(RealApps, VerifiesOnMyrinet) {
  const auto& spec = apps::find_app(GetParam());
  const AppResult r = run_app_on(spec, Net::kMyrinet, 4, 1, Mode::kReal);
  EXPECT_TRUE(r.verified) << GetParam();
}

TEST_P(RealApps, VerifiesOnQuadrics) {
  const auto& spec = apps::find_app(GetParam());
  const AppResult r = run_app_on(spec, Net::kQuadrics, 4, 1, Mode::kReal);
  EXPECT_TRUE(r.verified) << GetParam();
}

TEST_P(RealApps, VerifiesInSmpMode) {
  // 8 ranks as 2-per-node on 4 nodes: exercises the intra-node paths.
  const auto& spec = apps::find_app(GetParam());
  if (!spec.ranks_ok(8)) GTEST_SKIP() << "needs different rank count";
  const AppResult r = run_app_on(spec, Net::kInfiniBand, 4, 2, Mode::kReal);
  EXPECT_TRUE(r.verified) << GetParam();
}

TEST_P(RealApps, NetworkInvariantNumerics) {
  // The numeric answer must not depend on the interconnect.
  const auto& spec = apps::find_app(GetParam());
  const AppResult a = run_app_on(spec, Net::kInfiniBand, 4, 1, Mode::kReal);
  const AppResult b = run_app_on(spec, Net::kQuadrics, 4, 1, Mode::kReal);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum) << GetParam();
}

TEST_P(RealApps, SkeletonModeCompletes) {
  const auto& spec = apps::find_app(GetParam());
  const AppResult r =
      run_app_on(spec, Net::kInfiniBand, 4, 1, Mode::kSkeleton);
  EXPECT_GT(r.app_seconds, 0.0);
}

TEST_P(RealApps, SkeletonDeterministic) {
  const auto& spec = apps::find_app(GetParam());
  const AppResult a =
      run_app_on(spec, Net::kMyrinet, 4, 1, Mode::kSkeleton);
  const AppResult b =
      run_app_on(spec, Net::kMyrinet, 4, 1, Mode::kSkeleton);
  EXPECT_DOUBLE_EQ(a.app_seconds, b.app_seconds) << GetParam();
}

TEST(AppsMisc, EightRankRealRuns) {
  for (const char* name : {"is", "cg", "mg", "ft", "lu", "s3d50"}) {
    const auto& spec = apps::find_app(name);
    ASSERT_TRUE(spec.ranks_ok(8)) << name;
    const AppResult r =
        run_app_on(spec, Net::kInfiniBand, 8, 1, Mode::kReal);
    EXPECT_TRUE(r.verified) << name;
  }
}

TEST(AppsMisc, RankConstraints) {
  EXPECT_TRUE(apps::find_app("sp").ranks_ok(4));
  EXPECT_FALSE(apps::find_app("sp").ranks_ok(8));
  EXPECT_TRUE(apps::find_app("cg").ranks_ok(8));
  EXPECT_FALSE(apps::find_app("cg").ranks_ok(6));
  EXPECT_TRUE(apps::find_app("is").ranks_ok(7));
  EXPECT_THROW(apps::find_app("nope"), std::invalid_argument);
}

TEST(AppsMisc, BandwidthBoundAppFavorsInfiniBand) {
  // Class-B IS moves multi-MB alltoallv payloads: InfiniBand's 3.5x
  // bandwidth advantage must show up in simulated execution time
  // (paper Fig. 14: IS is IB's biggest win).
  const auto& spec = apps::find_app("is");
  const AppResult ib = run_app_on(spec, Net::kInfiniBand, 8, 1,
                                  Mode::kSkeleton, /*test_size=*/false);
  const AppResult my = run_app_on(spec, Net::kMyrinet, 8, 1,
                                  Mode::kSkeleton, /*test_size=*/false);
  EXPECT_GT(my.app_seconds, ib.app_seconds * 1.15);
}

}  // namespace
