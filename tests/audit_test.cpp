// Invariant-audit layer: the checks must pass on healthy runs and —
// crucially — actually fire on injected faults. Each audit class gets a
// deliberate violation here: a leaked registration, a double-completed
// request, a clock warp, an orphaned unexpected message, a posted receive
// that never matches. Tests that need the hot-path MNS_AUDIT macros or
// the fault-injection hooks are skipped in non-audit builds; the
// finalize-time AuditReport works in every build and is tested in all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/report.hpp"
#include "cluster/cluster.hpp"
#include "model/regcache.hpp"
#include "mpi/request.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mns;
using audit::AuditError;
using audit::AuditReport;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Engine;
using sim::Task;
using sim::Time;

bool any_violation_mentions(const AuditReport& report, const std::string& what) {
  for (const auto& v : report.violations()) {
    if (v.message.find(what) != std::string::npos) return true;
  }
  return false;
}

// --- AuditReport mechanics --------------------------------------------------

TEST(AuditReport, CleanWhenEveryCheckPasses) {
  AuditReport report;
  report.add_check("alpha", [](AuditReport::Scope& s) {
    s.require(true, "never fires");
    s.require_eq(3, 3, "equal");
  });
  report.run();
  EXPECT_TRUE(report.clean());
  EXPECT_NO_THROW(report.require_clean());
}

TEST(AuditReport, CollectsViolationsWithComponentAndValues) {
  AuditReport report;
  report.add_check("regcache", [](AuditReport::Scope& s) {
    s.require_eq(std::uint64_t{4096}, std::uint64_t{8192}, "pinned mismatch");
    s.require(false, "also broken");
  });
  report.run();
  ASSERT_EQ(report.violations().size(), 2u);
  EXPECT_EQ(report.violations()[0].component, "regcache");
  // Both observed values must appear so the report is actionable.
  EXPECT_NE(report.violations()[0].message.find("4096"), std::string::npos);
  EXPECT_NE(report.violations()[0].message.find("8192"), std::string::npos);
  EXPECT_THROW(report.require_clean(), AuditError);
}

TEST(AuditReport, CheckThatThrowsBecomesAViolationNotACrash) {
  AuditReport report;
  report.add_check("flaky", [](AuditReport::Scope&) {
    throw std::runtime_error("component exploded");
  });
  report.run();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(any_violation_mentions(report, "component exploded"));
}

// --- hot-path macros (audit builds only) ------------------------------------

TEST(AuditMacro, FiresWithExpressionAndMessage) {
  if constexpr (!audit::kEnabled) {
    GTEST_SKIP() << "MNS_AUDIT compiled out (configure with -DMNS_AUDIT=ON)";
  } else {
    try {
      MNS_AUDIT(1 + 1 == 3, "arithmetic is broken");
      FAIL() << "MNS_AUDIT(false) did not throw";
    } catch (const AuditError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
      EXPECT_NE(what.find("arithmetic is broken"), std::string::npos);
    }
    EXPECT_THROW(MNS_AUDIT_EQ(2, 5, "unequal"), AuditError);
    EXPECT_NO_THROW(MNS_AUDIT(true, "fine"));
    EXPECT_NO_THROW(MNS_AUDIT_EQ(7, 7, "fine"));
  }
}

// --- registration cache -----------------------------------------------------

model::RegCacheConfig small_regcache_config() {
  return model::RegCacheConfig{
      .register_base = Time::us(50),
      .register_per_page = Time::us(1),
      .deregister_cost = Time::us(30),
      .page_bytes = 4096,
      .capacity_bytes = 64 << 10,
  };
}

TEST(RegcacheAudit, HealthyCacheIsClean) {
  model::RegistrationCache rc(small_regcache_config());
  // Hit, miss, reuse, eviction, clear — the whole lifecycle.
  rc.acquire(0x1000, 8 << 10);
  rc.acquire(0x1000, 8 << 10);            // hit
  rc.acquire(0x9000, 60 << 10);           // evicts the first
  rc.acquire(0x1000, 8 << 10);            // re-register after eviction
  rc.clear();
  rc.acquire(0x2000, 4 << 10);

  AuditReport report;
  rc.register_audits(report, "regcache[test]");
  report.run();
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(RegcacheAudit, LeakedPinnedBytesTripTheConservationCheck) {
#if defined(MNS_AUDIT_ENABLED)
  model::RegistrationCache rc(small_regcache_config());
  rc.acquire(0x1000, 8 << 10);
  // A lost deregistration: pinned accounting drifts from the live regions.
  rc.debug_leak_pinned_for_test(4096);

  AuditReport report;
  rc.register_audits(report, "regcache[test]");
  report.run();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(any_violation_mentions(report, "pinned"));
  EXPECT_THROW(report.require_clean(), AuditError);
#else
  GTEST_SKIP() << "fault-injection hook needs -DMNS_AUDIT=ON";
#endif
}

// --- request lifecycle ------------------------------------------------------

TEST(RequestAudit, DoubleCompleteIsDetected) {
  Engine eng;
  mpi::RequestLedger ledger;
  auto st = std::make_shared<mpi::RequestState>(eng, &ledger);
  st->complete(mpi::Status{});
  EXPECT_EQ(ledger.created, 1u);
  EXPECT_EQ(ledger.completed, 1u);

  if constexpr (audit::kEnabled) {
    // Audit builds catch the bug at the offending call site.
    EXPECT_THROW(st->complete(mpi::Status{}), AuditError);
  } else {
    // Release builds still count it for the finalize report.
    st->complete(mpi::Status{});
    EXPECT_EQ(ledger.double_completed, 1u);
    EXPECT_EQ(ledger.completed, 1u);
  }
}

// --- engine -----------------------------------------------------------------

TEST(EngineAudit, DrainedRunIsClean) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<> { co_await e.delay(Time::us(3)); }(eng));
  eng.run();

  AuditReport report;
  eng.register_audits(report);
  report.run();
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(EngineAudit, ClockWarpTripsTimeMonotonicityAudit) {
#if defined(MNS_AUDIT_ENABLED)
  Engine eng;
  eng.after(Time::us(1), [] {});
  // Corrupt the clock: the pending event is now in the engine's past.
  eng.debug_warp_clock_for_test(Time::ms(5));
  EXPECT_THROW(eng.run(), AuditError);
#else
  GTEST_SKIP() << "fault-injection hook needs -DMNS_AUDIT=ON";
#endif
}

TEST(EngineAudit, DroppedProcessesLeaveNoLiveCount) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<> {
    co_await e.delay(Time::seconds(100.0));
  }(eng));
  eng.drop_processes();

  AuditReport report;
  eng.register_audits(report);
  report.run();
  EXPECT_TRUE(report.clean()) << report.summary();
  eng.run();  // empty queue: returns immediately, no deadlock claim
}

// --- full-stack MPI audits --------------------------------------------------

TEST(MpiAudit, CleanBarrierRunPassesEveryLayerOnAllNets) {
  for (Net net : {Net::kInfiniBand, Net::kMyrinet, Net::kQuadrics}) {
    ClusterConfig cfg{.nodes = 4, .net = net};
    Cluster c(cfg);
    c.run([](Comm& comm) -> Task<> {
      std::vector<int> buf(64, comm.rank());
      co_await comm.allreduce(View::out(buf.data(), buf.size() * 4), 64,
                              mpi::Dtype::kInt32, mpi::ROp::kSum);
      co_await comm.barrier();
    });
    AuditReport report = c.make_audit_report();
    report.run();
    EXPECT_TRUE(report.clean())
        << cluster::net_name(net) << ": " << report.summary();
  }
}

TEST(MpiAudit, OrphanedUnexpectedMessageIsReported) {
  // Rank 0 sends an eager message nobody ever receives: legal MPI up to
  // finalize, where it becomes a correctness bug the audit must name.
  ClusterConfig cfg{.nodes = 2, .net = Net::kInfiniBand};
  Cluster c(cfg);
  auto program = [](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      co_await comm.send(View::synth(0xAB00, 256), 1, 9);
    }
    // The barrier makes rank 1 re-enter MPI after the eager message has
    // arrived, draining it from the deferred queue into the matcher's
    // unexpected queue — where it then rots until finalize.
    co_await comm.barrier();
  };

  if constexpr (audit::kEnabled) {
    EXPECT_THROW(c.run(program), AuditError);
  } else {
    c.run(program);
    AuditReport report = c.make_audit_report();
    report.run();
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(any_violation_mentions(report, "unexpected"))
        << report.summary();
  }
}

TEST(MpiAudit, PostedReceiveThatNeverMatchesIsReported) {
  ClusterConfig cfg{.nodes = 2, .net = Net::kMyrinet};
  Cluster c(cfg);
  auto program = [](Comm& comm) -> Task<> {
    if (comm.rank() == 1) {
      // Post and abandon: the request is never matched or waited on.
      co_await comm.irecv(View::synth(0xCD00, 128), 0, 3);
    }
    co_return;
  };

  if constexpr (audit::kEnabled) {
    EXPECT_THROW(c.run(program), AuditError);
  } else {
    c.run(program);
    AuditReport report = c.make_audit_report();
    report.run();
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(any_violation_mentions(report, "posted"));
  }
}

TEST(MpiAudit, HardwareBroadcastPayloadOutlivesTheRootBuffer) {
  // Regression for the collective-slot lifetime bug: on the hardware
  // broadcast path (Quadrics) the root used to publish a view of its own
  // stack buffer; a root that finished early freed it before slower ranks
  // copied. The slot now stages the bytes, so every rank must observe the
  // root's data even though the root's buffer is scoped to its coroutine.
  ClusterConfig cfg{.nodes = 4, .net = Net::kQuadrics};
  Cluster c(cfg);
  std::vector<std::vector<int>> got(4);
  c.run([&got](Comm& comm) -> Task<> {
    std::vector<int> buf(128, comm.rank() == 0 ? 424242 : 0);
    co_await comm.bcast(View::out(buf.data(), buf.size() * 4), 0);
    got[static_cast<std::size_t>(comm.rank())] = buf;
  });
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 128u);
    for (int v : got[static_cast<std::size_t>(r)]) EXPECT_EQ(v, 424242);
  }
}

}  // namespace
