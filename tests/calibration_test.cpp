// Calibration regression suite: asserts the simulated micro-benchmarks
// stay within tolerance of the paper's measured values (Section 3), and
// that the qualitative *shapes* — who wins, where the crossovers and
// cliffs fall — match. Any model change that breaks a published behaviour
// fails here.
//
// Known, documented deviations (see EXPERIMENTS.md): Myrinet and Quadrics
// bi-directional small-message latency come out 20-30% lower than
// measured; Quadrics/Myrinet allreduce land 15-30% low. Orders and shapes
// are preserved; those rows use wider bands.
#include <gtest/gtest.h>

#include "microbench/microbench.hpp"

namespace {

using namespace mns;
using cluster::Bus;
using cluster::Net;
using microbench::Options;
using microbench::Point;

double at(const std::vector<Point>& pts, std::uint64_t size) {
  for (const auto& p : pts) {
    if (p.size == size) return p.value;
  }
  ADD_FAILURE() << "no point for size " << size;
  return -1;
}

void expect_near_pct(double ours, double paper, double pct) {
  EXPECT_GT(ours, paper * (1.0 - pct / 100.0)) << "paper=" << paper;
  EXPECT_LT(ours, paper * (1.0 + pct / 100.0)) << "paper=" << paper;
}

// --- Fig. 1: latency -------------------------------------------------------

TEST(Calibration, SmallMessageLatency) {
  expect_near_pct(at(microbench::latency(Net::kInfiniBand, {4}), 4), 6.8, 8);
  expect_near_pct(at(microbench::latency(Net::kMyrinet, {4}), 4), 6.7, 8);
  expect_near_pct(at(microbench::latency(Net::kQuadrics, {4}), 4), 4.6, 8);
}

TEST(Calibration, LargeMessageLatencyIBWins) {
  // "For large messages, InfiniBand has a clear advantage because of its
  // higher bandwidth."
  const std::vector<std::uint64_t> sz{16 << 10};
  const double ib = at(microbench::latency(Net::kInfiniBand, sz), 16 << 10);
  const double my = at(microbench::latency(Net::kMyrinet, sz), 16 << 10);
  const double qs = at(microbench::latency(Net::kQuadrics, sz), 16 << 10);
  EXPECT_LT(ib, my);
  EXPECT_LT(ib, qs);
}

// --- Fig. 2: bandwidth -----------------------------------------------------

TEST(Calibration, PeakBandwidth) {
  const std::vector<std::uint64_t> sz{1 << 20};
  expect_near_pct(at(microbench::bandwidth(Net::kInfiniBand, sz), 1 << 20),
                  841, 5);
  expect_near_pct(at(microbench::bandwidth(Net::kMyrinet, sz), 1 << 20),
                  235, 5);
  expect_near_pct(at(microbench::bandwidth(Net::kQuadrics, sz), 1 << 20),
                  308, 5);
}

TEST(Calibration, IbBandwidthDipsAtRendezvousSwitch) {
  // "The bandwidth drop for 2KB messages is because the protocol switches
  // from Eager to Rendezvous."
  const auto bw =
      microbench::bandwidth(Net::kInfiniBand, {1024, 2048, 4096});
  EXPECT_LT(at(bw, 2048), at(bw, 1024));
  EXPECT_GT(at(bw, 4096), at(bw, 2048));
}

TEST(Calibration, WindowSizeRaisesBandwidth) {
  Options w4;
  w4.window = 4;
  Options w16;
  w16.window = 16;
  for (Net net : {Net::kInfiniBand, Net::kMyrinet}) {
    const double b4 = at(microbench::bandwidth(net, {4096}, w4), 4096);
    const double b16 = at(microbench::bandwidth(net, {4096}, w16), 4096);
    EXPECT_GT(b16, b4 * 1.05) << "window should help medium messages";
  }
}

TEST(Calibration, QuadricsLargeWindowDroops) {
  // Fig. 2: QSN throughput falls once the window exceeds the Elan DMA
  // queue depth (16).
  Options w16;
  w16.window = 16;
  Options w32;
  w32.window = 32;
  const double b16 = at(microbench::bandwidth(Net::kQuadrics, {4096}, w16), 4096);
  const double b32 = at(microbench::bandwidth(Net::kQuadrics, {4096}, w32), 4096);
  EXPECT_LT(b32, b16);
}

// --- Fig. 3: host overhead ---------------------------------------------------

TEST(Calibration, HostOverhead) {
  expect_near_pct(at(microbench::host_overhead(Net::kInfiniBand, {4}), 4),
                  1.7, 12);
  expect_near_pct(at(microbench::host_overhead(Net::kMyrinet, {4}), 4), 0.8,
                  12);
  expect_near_pct(at(microbench::host_overhead(Net::kQuadrics, {4}), 4), 3.3,
                  12);
}

TEST(Calibration, OverheadOrderIndependentOfLatencyOrder) {
  // Quadrics has the best latency but the WORST host overhead.
  const double ib = at(microbench::host_overhead(Net::kInfiniBand, {4}), 4);
  const double my = at(microbench::host_overhead(Net::kMyrinet, {4}), 4);
  const double qs = at(microbench::host_overhead(Net::kQuadrics, {4}), 4);
  EXPECT_LT(my, ib);
  EXPECT_LT(ib, qs);
}

// --- Figs. 4/5: bi-directional ----------------------------------------------

TEST(Calibration, BidirLatency) {
  expect_near_pct(at(microbench::bidir_latency(Net::kInfiniBand, {4}), 4),
                  7.0, 10);
  // Documented deviations: mechanisms give 8.1 (paper 10.1) and 5.4 (7.4).
  expect_near_pct(at(microbench::bidir_latency(Net::kMyrinet, {4}), 4), 10.1,
                  30);
  expect_near_pct(at(microbench::bidir_latency(Net::kQuadrics, {4}), 4), 7.4,
                  35);
}

TEST(Calibration, BidirPenaltyShape) {
  // InfiniBand barely degrades bi-directionally; Myrinet degrades most.
  auto penalty = [](Net net) {
    return at(microbench::bidir_latency(net, {4}), 4) -
           at(microbench::latency(net, {4}), 4);
  };
  const double ib = penalty(Net::kInfiniBand);
  const double my = penalty(Net::kMyrinet);
  const double qs = penalty(Net::kQuadrics);
  EXPECT_LT(ib, 0.7);
  EXPECT_GT(my, 1.0);
  EXPECT_GT(my, qs);
}

TEST(Calibration, BidirBandwidth) {
  expect_near_pct(
      at(microbench::bidir_bandwidth(Net::kInfiniBand, {1 << 20}), 1 << 20),
      900, 5);
  expect_near_pct(
      at(microbench::bidir_bandwidth(Net::kQuadrics, {1 << 20}), 1 << 20),
      375, 8);
  // Myrinet: fine at 64 KB, SRAM-bound past 256 KB.
  const auto my = microbench::bidir_bandwidth(
      Net::kMyrinet, {64 << 10, 1 << 20});
  expect_near_pct(at(my, 64 << 10), 473, 10);
  EXPECT_LT(at(my, 1 << 20), 345);
  EXPECT_GT(at(my, 1 << 20), 290);
}

// --- Fig. 6: overlap ---------------------------------------------------------

TEST(Calibration, OverlapShapes) {
  const std::vector<std::uint64_t> sizes{1024, 64 << 10};
  const auto ib = microbench::overlap_potential(Net::kInfiniBand, sizes);
  const auto qs = microbench::overlap_potential(Net::kQuadrics, sizes);
  // Quadrics (NIC-resident protocol) overlaps large transfers almost
  // fully; IB/GM plateau once rendezvous needs the host.
  EXPECT_GT(at(qs, 64 << 10), 150.0);
  EXPECT_LT(at(ib, 64 << 10), 60.0);
  // For small (eager) messages IB has decent overlap.
  EXPECT_GT(at(ib, 1024), 2.0);
}

// --- Figs. 7/8: buffer reuse -------------------------------------------------

TEST(Calibration, BufferReuseSensitivity) {
  // 0% reuse must be distinctly slower than 100% for all three, each for
  // its own reason (IB/GM registration, QSN MMU sync).
  {
    const double hot = at(
        microbench::buffer_reuse_latency(Net::kInfiniBand, {4096}, 100), 4096);
    const double cold = at(
        microbench::buffer_reuse_latency(Net::kInfiniBand, {4096}, 0), 4096);
    EXPECT_GT(cold, hot * 1.5);  // VAPI registration dwarfs the 4K latency
  }
  {
    const std::uint64_t sz = 64 << 10;
    const double hot =
        at(microbench::buffer_reuse_latency(Net::kMyrinet, {sz}, 100), sz);
    const double cold =
        at(microbench::buffer_reuse_latency(Net::kMyrinet, {sz}, 0), sz);
    EXPECT_GT(cold, hot + 50.0);  // both-side GM registration
  }
  {
    const double hot = at(
        microbench::buffer_reuse_latency(Net::kQuadrics, {4096}, 100), 4096);
    const double cold = at(
        microbench::buffer_reuse_latency(Net::kQuadrics, {4096}, 0), 4096);
    EXPECT_GT(cold, hot + 5.0);  // MMU sync on both NICs
  }
}

TEST(Calibration, MyrinetInsensitiveBelow16K) {
  // Fig. 7: "Myrinet latency ... not significantly affected until the
  // message size reaches more than 16KB" (eager copies use pre-registered
  // buffers).
  const double hot =
      at(microbench::buffer_reuse_latency(Net::kMyrinet, {4096}, 100), 4096);
  const double cold =
      at(microbench::buffer_reuse_latency(Net::kMyrinet, {4096}, 0), 4096);
  EXPECT_LT(cold, hot * 1.15);
}

TEST(Calibration, QuadricsSensitiveAtAllSizes) {
  // Fig. 7: "a steep rise in latency for Quadrics with lack of buffer
  // reuse for all messages" — the NIC MMU sync has no size floor.
  const double hot =
      at(microbench::buffer_reuse_latency(Net::kQuadrics, {64}, 100), 64);
  const double cold =
      at(microbench::buffer_reuse_latency(Net::kQuadrics, {64}, 0), 64);
  EXPECT_GT(cold, hot + 2.0);  // several us of MMU stall
}

TEST(Calibration, ReuseBandwidthMonotone) {
  for (Net net : {Net::kInfiniBand, Net::kQuadrics}) {
    const std::uint64_t size = 64 << 10;
    const double b0 =
        at(microbench::buffer_reuse_bandwidth(net, {size}, 0), size);
    const double b50 =
        at(microbench::buffer_reuse_bandwidth(net, {size}, 50), size);
    const double b100 =
        at(microbench::buffer_reuse_bandwidth(net, {size}, 100), size);
    EXPECT_LT(b0, b50) << net_name(net);
    EXPECT_LT(b50, b100) << net_name(net);
  }
}

// --- Figs. 9/10: intra-node --------------------------------------------------

TEST(Calibration, IntranodeLatency) {
  expect_near_pct(at(microbench::intranode_latency(Net::kInfiniBand, {4}), 4),
                  1.6, 10);
  expect_near_pct(at(microbench::intranode_latency(Net::kMyrinet, {4}), 4),
                  1.3, 10);
  // Quadrics intra-node is WORSE than its inter-node latency.
  const double qs_intra =
      at(microbench::intranode_latency(Net::kQuadrics, {4}), 4);
  EXPECT_GT(qs_intra, 4.6);
}

TEST(Calibration, IntranodeBandwidthShapes) {
  // IB switches to NIC loopback >= 16 KB: >450 MB/s at 1 MB; Myrinet's
  // all-shm path thrashes the cache and drops below it.
  const double ib = at(
      microbench::intranode_bandwidth(Net::kInfiniBand, {1 << 20}), 1 << 20);
  const double my = at(
      microbench::intranode_bandwidth(Net::kMyrinet, {1 << 20}), 1 << 20);
  expect_near_pct(ib, 450, 8);
  EXPECT_LT(my, ib);
}

// --- Figs. 11/12: collectives ------------------------------------------------

TEST(Calibration, Alltoall8Nodes) {
  expect_near_pct(at(microbench::alltoall_latency(Net::kInfiniBand, {4}), 4),
                  31, 10);
  expect_near_pct(at(microbench::alltoall_latency(Net::kMyrinet, {4}), 4),
                  36, 20);
  expect_near_pct(at(microbench::alltoall_latency(Net::kQuadrics, {4}), 4),
                  67, 10);
}

TEST(Calibration, Allreduce8Nodes) {
  expect_near_pct(at(microbench::allreduce_latency(Net::kInfiniBand, {4}), 4),
                  46, 15);
  expect_near_pct(at(microbench::allreduce_latency(Net::kMyrinet, {4}), 4),
                  35, 32);
  expect_near_pct(at(microbench::allreduce_latency(Net::kQuadrics, {4}), 4),
                  28, 20);
}

TEST(Calibration, CollectiveOrderings) {
  // Fig. 11: IB < Myri < QSN for alltoall; Fig. 12: QSN < Myri < IB for
  // allreduce.
  const double a_ib = at(microbench::alltoall_latency(Net::kInfiniBand, {4}), 4);
  const double a_my = at(microbench::alltoall_latency(Net::kMyrinet, {4}), 4);
  const double a_qs = at(microbench::alltoall_latency(Net::kQuadrics, {4}), 4);
  EXPECT_LT(a_ib, a_my);
  EXPECT_LT(a_my, a_qs);
  const double r_ib = at(microbench::allreduce_latency(Net::kInfiniBand, {4}), 4);
  const double r_my = at(microbench::allreduce_latency(Net::kMyrinet, {4}), 4);
  const double r_qs = at(microbench::allreduce_latency(Net::kQuadrics, {4}), 4);
  EXPECT_LT(r_qs, r_my);
  EXPECT_LT(r_my, r_ib);
}

// --- Fig. 13: memory usage ---------------------------------------------------

TEST(Calibration, MemoryUsage) {
  const auto ib = microbench::memory_usage(Net::kInfiniBand, 8);
  EXPECT_NEAR(ib.front().value, 25.0, 3.0);  // 2 nodes
  EXPECT_NEAR(ib.back().value, 55.0, 5.0);   // 8 nodes
  // Linear growth with connections.
  for (std::size_t i = 1; i < ib.size(); ++i) {
    EXPECT_GT(ib[i].value, ib[i - 1].value);
  }
  // Myrinet and Quadrics are flat.
  for (Net net : {Net::kMyrinet, Net::kQuadrics}) {
    const auto mem = microbench::memory_usage(net, 8);
    EXPECT_DOUBLE_EQ(mem.front().value, mem.back().value) << net_name(net);
    EXPECT_LT(mem.back().value, 15.0) << net_name(net);
  }
}

// --- Figs. 26/27: PCI vs PCI-X -----------------------------------------------

TEST(Calibration, InfiniBandOnPci) {
  Options pci;
  pci.bus = Bus::kPci66;
  // "latency ... only increases by about 0.6 us"
  const double lat_x = at(microbench::latency(Net::kInfiniBand, {4}), 4);
  const double lat_p = at(microbench::latency(Net::kInfiniBand, {4}, pci), 4);
  EXPECT_NEAR(lat_p - lat_x, 0.6, 0.45);
  // "the bandwidth decreases and only reaches 378MB/s"
  expect_near_pct(
      at(microbench::bandwidth(Net::kInfiniBand, {1 << 20}, pci), 1 << 20),
      378, 6);
}

}  // namespace
