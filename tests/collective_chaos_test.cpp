// Fault-aware collectives chaos matrix.
//
// The tentpole property of the fail-stop model at the MPI layer: for any
// collective, any fabric, any fail-stop or transient plan and any PDES
// partition count, (a) every rank returns from the collective — no hang,
// every underlying message delivered, errored or aborted — and (b) after
// the error-agreement epilogue all live ranks report the SAME
// Comm::last_error() for the run's final collective. Digests are
// bit-identical across reruns and across partition counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "sweep/sweep_runner.hpp"

using namespace mns;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kBytes = 4 << 10;
constexpr int kRounds = 3;

// Seed -> plan: even seeds are fail-stop (a directed link or a whole NIC
// dies early in the run), odd seeds are the transient mixes the pre-
// fail-stop chaos suite already exercises (and must keep bit-identical).
fault::FaultPlan coll_plan(std::uint64_t seed) {
  fault::FaultPlan p(seed);
  if (seed % 2 == 0) {
    const auto at = sim::Time::us(static_cast<std::int64_t>(seed % 7) * 10);
    if (seed % 4 == 0) {
      const int src = static_cast<int>((seed >> 2) % kNodes);
      const int dst = static_cast<int>(
          (static_cast<std::uint64_t>(src) + 1 + (seed >> 3) % (kNodes - 1)) %
          kNodes);
      p.link_down(src, dst, at);
    } else {
      p.nic_down(static_cast<int>((seed >> 1) % kNodes), at);
    }
  } else {
    p.drop(fault::kAnyNode, fault::kAnyNode,
           0.03 + 0.01 * static_cast<double>(seed % 5));
    if (seed % 3 == 0) p.corrupt(1, 2, 0.10);
  }
  return p;
}

struct Digest {
  std::vector<std::uint64_t> words;
  bool operator==(const Digest&) const = default;
};

// One matrix point: seed selects the collective (bcast / reduce /
// allreduce / barrier / alltoall) and the plan; the collective runs
// kRounds times. Runs on SweepRunner workers, so invariant failures fold
// into the digest's trailing violation count instead of gtest macros.
Digest run_coll(cluster::Net net, std::uint64_t seed, int partitions) {
  const int kind = static_cast<int>(seed % 5);
  cluster::ClusterConfig cfg{.nodes = kNodes, .net = net,
                             .partitions = partitions};
  cfg.faults = coll_plan(seed);
  cluster::Cluster c(cfg);
  const auto ranks = static_cast<std::size_t>(c.ranks());
  std::vector<std::vector<int>> errs(ranks);
  std::vector<sim::Time> finished(ranks);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const auto r = static_cast<unsigned>(comm.rank());
    // Fixed synthetic addresses: real heap addresses would vary between
    // runs and perturb pin-down cache behaviour (and with it simulated
    // time), breaking the bit-identity assertions below.
    const mpi::View buf = mpi::View::synth(0x40000u + (r << 16), kBytes);
    const mpi::View scratch = mpi::View::synth(0x400000u + (r << 16), kBytes);
    for (int round = 0; round < kRounds; ++round) {
      switch (kind) {
        case 0:
          // Fixed root: the per-round communication pattern must be
          // identical so the monotonic-visibility invariant below holds.
          co_await comm.bcast(buf, 0);
          break;
        case 1:
          co_await comm.reduce(buf, kBytes / 8, mpi::Dtype::kInt64,
                               mpi::ROp::kSum, 0);
          break;
        case 2:
          co_await comm.allreduce(buf, kBytes / 8, mpi::Dtype::kInt64,
                                  mpi::ROp::kMax);
          break;
        case 3:
          co_await comm.barrier();
          break;
        default:
          co_await comm.alltoall(buf, scratch, kBytes / kNodes);
          break;
      }
      errs[r].push_back(comm.last_error());
    }
    finished[r] = comm.now();
  });

  model::NetFabric& fab = c.fabric();
  std::uint64_t violations = 0;
  Digest d;
  for (const auto& rank_errs : errs) {
    if (rank_errs.size() != kRounds) ++violations;
    for (const int e : rank_errs) {
      // Delivered-or-errored: the only legal outcomes.
      if (e != mpi::kErrNone && e != mpi::kErrFabric) ++violations;
      d.words.push_back(static_cast<std::uint64_t>(e));
    }
  }
  // Same-error-everywhere. Only fail-stop plans run the agreement
  // epilogue (transient-only plans keep the pre-existing local-error
  // semantics bit-identical), so the unanimity invariants apply to them
  // alone. A permanent fault may first manifest mid-agreement, so the
  // round where errors first appear is allowed to diverge — but every
  // LATER round reuses the same (fixed) communication pattern across the
  // now-known-dead component, so it must be unanimously kErrFabric.
  if (cfg.faults.has_fail_stop()) {
    int first_err_round = kRounds;
    for (const auto& rank_errs : errs) {
      for (int round = 0; round < kRounds; ++round) {
        if (rank_errs[static_cast<std::size_t>(round)] != mpi::kErrNone &&
            round < first_err_round) {
          first_err_round = round;
        }
      }
    }
    for (const auto& rank_errs : errs) {
      // Rounds before the first error are clean by definition of
      // first_err_round; rounds after it must all agree on the error.
      for (int round = first_err_round + 1; round < kRounds; ++round) {
        if (rank_errs[static_cast<std::size_t>(round)] != mpi::kErrFabric) {
          ++violations;
        }
      }
    }
  }
  // Extended conservation law (also enforced by the finalize audit).
  if (fab.messages_posted() != fab.messages_delivered() +
                                   fab.messages_errored() +
                                   fab.messages_aborted()) {
    ++violations;
  }
  if (!cfg.faults.has_fail_stop() && fab.messages_aborted() != 0) {
    ++violations;  // degradation must stay off on transient-only plans
  }
  if (!c.make_audit_report().clean()) ++violations;
  d.words.push_back(fab.messages_posted());
  d.words.push_back(fab.messages_delivered());
  d.words.push_back(fab.messages_errored());
  d.words.push_back(fab.messages_aborted());
  d.words.push_back(fab.links_failed());
  d.words.push_back(fab.degrade_rounds());
  // Per-rank completion times, not Cluster::now(): the global clock is
  // the max over partition engines, and a failed boundary flow's rx-half
  // teardown timer (+lookahead, partitioned runs only) can be the
  // globally-last event. Application-level timestamps are the ones the
  // determinism contract covers, and per-rank is the stronger check.
  for (const sim::Time t : finished) {
    d.words.push_back(static_cast<std::uint64_t>(t.count_ps()));
  }
  d.words.push_back(violations);
  return d;
}

constexpr cluster::Net kAllNets[] = {cluster::Net::kInfiniBand,
                                     cluster::Net::kMyrinet,
                                     cluster::Net::kQuadrics};

std::vector<Digest> run_matrix(int jobs, std::size_t seeds, int partitions) {
  sweep::SweepRunner runner(jobs);
  return runner.run_indexed(seeds * 3, [&](std::size_t i) {
    return run_coll(kAllNets[i % 3], 1 + i / 3, partitions);
  });
}

}  // namespace

// 64 seeds x 3 fabrics x {bcast, reduce, allreduce, barrier, alltoall} x
// {fail-stop, transient}: every point terminates delivered-or-errored
// with a unanimous final verdict and a balanced conservation law.
TEST(CollectiveChaos, SweepOf64SeedsCompletesDeliveredOrErrored) {
  constexpr std::size_t kSeeds = 64;
  const std::vector<Digest> pts = run_matrix(4, kSeeds, 1);
  ASSERT_EQ(pts.size(), kSeeds * 3);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_FALSE(pts[i].words.empty());
    EXPECT_EQ(pts[i].words.back(), 0u)
        << "invariant violations at point " << i << " (net " << i % 3
        << ", seed " << 1 + i / 3 << ", collective "
        << (1 + i / 3) % 5 << ")";
  }
}

// A slice of the matrix rerun serially and at --jobs=4 must be
// bit-identical (faulted collective runs are as deterministic as clean
// ones).
TEST(CollectiveChaos, RerunsAreBitIdentical) {
  constexpr std::size_t kSeeds = 12;
  const std::vector<Digest> serial = run_matrix(1, kSeeds, 1);
  const std::vector<Digest> rerun = run_matrix(1, kSeeds, 1);
  const std::vector<Digest> threaded = run_matrix(4, kSeeds, 1);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], rerun[i]) << "rerun diverged at point " << i;
    EXPECT_EQ(serial[i], threaded[i]) << "--jobs diverged at point " << i;
  }
}

// PDES partition counts {1, 2, 4} see the same failures in the same
// order: the per-shard dead-link registry and the degradation fast path
// are partition-invariant, so every digest word (errors, counters,
// clock) matches the sequential run.
TEST(CollectiveChaos, FailStopOutcomesAreIdenticalAcrossPartitionCounts) {
  constexpr std::size_t kSeeds = 10;  // seeds 1..10 mix all plan shapes
  const std::vector<Digest> p1 = run_matrix(4, kSeeds, 1);
  const std::vector<Digest> p2 = run_matrix(4, kSeeds, 2);
  const std::vector<Digest> p4 = run_matrix(4, kSeeds, 4);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]) << "--partitions=2 diverged at point " << i;
    EXPECT_EQ(p1[i], p4[i]) << "--partitions=4 diverged at point " << i;
  }
}

// One point in detail on the main thread (readable failures): a NIC that
// dies mid-run stalls every collective tree it sits on, and after the
// agreement epilogue every rank — including the ranks that could still
// talk to each other — reports the same kErrFabric for later rounds.
TEST(CollectiveChaos, DeadNicSurfacesTheSameErrorOnEveryRank) {
  cluster::ClusterConfig cfg{.nodes = kNodes,
                             .net = cluster::Net::kInfiniBand};
  cfg.faults = fault::FaultPlan(21).nic_down(3, sim::Time::us(5));
  cluster::Cluster c(cfg);
  std::vector<std::vector<int>> errs(kNodes);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const mpi::View buf = mpi::View::synth(
        0x40000u + (static_cast<unsigned>(comm.rank()) << 16), kBytes);
    for (int round = 0; round < 4; ++round) {
      co_await comm.allreduce(buf, kBytes / 8, mpi::Dtype::kInt64,
                              mpi::ROp::kSum);
      errs[static_cast<std::size_t>(comm.rank())].push_back(
          comm.last_error());
    }
  });
  for (std::size_t r = 0; r < kNodes; ++r) {
    ASSERT_EQ(errs[r].size(), 4u);
    // Final round: the death long since surfaced, every rank agrees.
    EXPECT_EQ(errs[r].back(), mpi::kErrFabric) << "rank " << r;
    // And each rank's verdict sequence matches rank 0's exactly — the
    // agreement epilogue never lets two live ranks disagree on a round.
    EXPECT_EQ(errs[r], errs[0]) << "rank " << r;
  }
  model::NetFabric& fab = c.fabric();
  EXPECT_GE(fab.links_failed(), 1u);
  EXPECT_EQ(fab.messages_posted(),
            fab.messages_delivered() + fab.messages_errored() +
                fab.messages_aborted());
  EXPECT_TRUE(c.make_audit_report().clean())
      << c.make_audit_report().summary();
}
