// Property tests for the express message path: it is an optimization of
// the simulator, never of the simulated machine. With express enabled the
// fabric applies a message's whole packet trajectory in closed form when
// it can prove exclusive occupancy, and demotes back to packet granularity
// when a competitor lands — so every observable of a run must be
// bit-identical to the same run with express disabled: per-message
// completion instants, the final simulated clock, and every pipe's
// bytes/transfers/busy-time counters, under randomized multi-sender
// contention on all three fabric models (including the shared-processor
// ones) and on the fat-tree topology.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "elan/elan_fabric.hpp"
#include "gm/gm_fabric.hpp"
#include "ib/ib_fabric.hpp"
#include "model/netfabric.hpp"
#include "model/node_hw.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace mns;
using sim::Time;

enum class FabKind { kIb, kIbFatTree, kGm, kElan };

struct MsgRec {
  Time local;
  Time remote;
  bool local_done = false;
  bool remote_done = false;
};

struct RunResult {
  std::vector<MsgRec> msgs;
  Time final_now;
  std::uint64_t delivered = 0;
  std::uint64_t express_msgs = 0;
  std::uint64_t demotions = 0;
  std::vector<std::array<std::uint64_t, 2>> pipe_counts;  // bytes, transfers
  std::vector<Time> pipe_busy;
};

struct TrafficCfg {
  std::size_t nodes;
  int messages;
  std::uint64_t seed;
  Time spread;  // post instants drawn uniformly from [0, spread)
};

std::unique_ptr<model::NetFabric> make_fabric(
    FabKind kind, sim::Engine& eng, std::vector<model::NodeHw*>& nodes) {
  const std::size_t n = nodes.size();
  switch (kind) {
    case FabKind::kIb:
      return std::make_unique<ib::IbFabric>(eng, nodes,
                                            ib::default_ib_config(n));
    case FabKind::kIbFatTree: {
      auto cfg = ib::default_ib_config(n);
      cfg.switch_cfg.fat_tree_radix = 2;
      return std::make_unique<ib::IbFabric>(eng, nodes, cfg);
    }
    case FabKind::kGm:
      return std::make_unique<gm::GmFabric>(eng, nodes,
                                            gm::default_gm_config(n));
    case FabKind::kElan:
      return std::make_unique<elan::ElanFabric>(eng, nodes,
                                                elan::default_elan_config(n));
  }
  return nullptr;
}

RunResult run_traffic(FabKind kind, const TrafficCfg& cfg, bool express) {
  sim::Engine eng;
  std::vector<std::unique_ptr<model::NodeHw>> owned;
  std::vector<model::NodeHw*> nodes;
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    owned.push_back(std::make_unique<model::NodeHw>(
        eng, model::pcix_133(), model::xeon_2003_memcpy()));
    nodes.push_back(owned.back().get());
  }
  auto fab = make_fabric(kind, eng, nodes);
  fab->set_express(express);

  RunResult res;
  res.msgs.resize(static_cast<std::size_t>(cfg.messages));
  // Same seed for the on/off runs => identical traffic.
  util::Rng rng(cfg.seed);
  static constexpr std::uint64_t kSizes[] = {
      0, 1, 64, 1500, 4096, 64 << 10, 300 << 10};
  for (int i = 0; i < cfg.messages; ++i) {
    model::NetMsg m;
    m.src = static_cast<int>(rng.below(cfg.nodes));
    m.dst = static_cast<int>(rng.below(cfg.nodes));  // loopback included
    m.bytes = kSizes[rng.below(std::size(kSizes))];
    m.src_addr = 0x10000 + (rng.below(64) << 12);
    // Half NIC-buffer deliveries, half host-addressed (the latter walk the
    // destination MMU on Quadrics and are vetoed off the express path).
    m.dst_addr = rng.below(2) == 0 ? 0 : 0x2000000 + (rng.below(64) << 12);
    m.complete_on_delivery = rng.below(2) != 0;
    const Time at = Time::ns(static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(cfg.spread.count_ps() / 1000) + 1)));
    MsgRec& rec = res.msgs[static_cast<std::size_t>(i)];
    m.local_complete = [&eng, &rec] {
      rec.local = eng.now();
      rec.local_done = true;
    };
    m.remote_arrival = [&eng, &rec] {
      rec.remote = eng.now();
      rec.remote_done = true;
    };
    eng.after(at, [f = fab.get(), m = std::move(m)]() mutable {
      f->post(std::move(m));
    });
  }
  eng.run();

  res.final_now = eng.now();
  res.delivered = fab->messages_delivered();
  res.express_msgs = fab->express_messages();
  res.demotions = fab->express_demotions();
  std::vector<model::Pipe*> pipes;
  fab->collect_pipes(pipes);
  for (model::Pipe* p : pipes) {
    res.pipe_counts.push_back({p->bytes_moved(), p->transfers()});
    res.pipe_busy.push_back(p->busy_time());
  }
  return res;
}

void expect_identical(const RunResult& on, const RunResult& off) {
  ASSERT_EQ(on.msgs.size(), off.msgs.size());
  for (std::size_t i = 0; i < on.msgs.size(); ++i) {
    EXPECT_EQ(on.msgs[i].local_done, off.msgs[i].local_done) << "msg " << i;
    EXPECT_EQ(on.msgs[i].remote_done, off.msgs[i].remote_done) << "msg " << i;
    EXPECT_EQ(on.msgs[i].local.count_ps(), off.msgs[i].local.count_ps())
        << "msg " << i << " local completion diverged";
    EXPECT_EQ(on.msgs[i].remote.count_ps(), off.msgs[i].remote.count_ps())
        << "msg " << i << " delivery diverged";
  }
  EXPECT_EQ(on.final_now.count_ps(), off.final_now.count_ps());
  EXPECT_EQ(on.delivered, off.delivered);
  ASSERT_EQ(on.pipe_counts.size(), off.pipe_counts.size());
  for (std::size_t i = 0; i < on.pipe_counts.size(); ++i) {
    EXPECT_EQ(on.pipe_counts[i][0], off.pipe_counts[i][0])
        << "pipe " << i << " bytes_moved diverged";
    EXPECT_EQ(on.pipe_counts[i][1], off.pipe_counts[i][1])
        << "pipe " << i << " transfers diverged";
    EXPECT_EQ(on.pipe_busy[i].count_ps(), off.pipe_busy[i].count_ps())
        << "pipe " << i << " busy_time diverged";
  }
}

struct Scenario {
  const char* name;
  FabKind kind;
  TrafficCfg cfg;
};

class ExpressEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(ExpressEquivalence, BitIdenticalToPacketPath) {
  const Scenario& s = GetParam();
  const RunResult on = run_traffic(s.kind, s.cfg, /*express=*/true);
  const RunResult off = run_traffic(s.kind, s.cfg, /*express=*/false);
  expect_identical(on, off);
  EXPECT_EQ(off.express_msgs, 0u);
  EXPECT_EQ(off.demotions, 0u);
  // Sparse schedules must actually exercise the express path; dense ones
  // must exercise demotion. Both counters are deterministic.
  if (s.cfg.spread >= Time::us(400)) {
    EXPECT_GT(on.express_msgs, 0u) << "express path never taken";
  }
}

TEST_P(ExpressEquivalence, ExpressRunIsDeterministic) {
  const Scenario& s = GetParam();
  const RunResult a = run_traffic(s.kind, s.cfg, /*express=*/true);
  const RunResult b = run_traffic(s.kind, s.cfg, /*express=*/true);
  expect_identical(a, b);
  EXPECT_EQ(a.express_msgs, b.express_msgs);
  EXPECT_EQ(a.demotions, b.demotions);
}

INSTANTIATE_TEST_SUITE_P(
    AllFabrics, ExpressEquivalence,
    ::testing::Values(
        // Sparse: posts spread out, most messages run the full express
        // window. Dense: heavy overlap, frequent demotions.
        Scenario{"IbSparse", FabKind::kIb, {4, 48, 0xA11CE, Time::us(800)}},
        Scenario{"IbDense", FabKind::kIb, {4, 48, 0xB0B, Time::us(20)}},
        Scenario{"IbFatTreeSparse", FabKind::kIbFatTree,
                 {8, 48, 0xC3C3, Time::us(800)}},
        Scenario{"IbFatTreeDense", FabKind::kIbFatTree,
                 {8, 48, 0xD4D4, Time::us(20)}},
        Scenario{"GmSparse", FabKind::kGm, {4, 48, 0xE5E5, Time::us(800)}},
        Scenario{"GmDense", FabKind::kGm, {4, 48, 0xF6F6, Time::us(20)}},
        Scenario{"ElanSparse", FabKind::kElan,
                 {4, 48, 0x1717, Time::us(800)}},
        Scenario{"ElanDense", FabKind::kElan, {4, 48, 0x1818, Time::us(20)}}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

// Deterministic fan-in: a second sender's packet-path reservation lands
// inside the first sender's claimed express window, so the first flow must
// demote — and timing must still match the packet path exactly.
TEST(ExpressDemotion, FanInDemotesAndStaysBitIdentical) {
  for (const FabKind kind :
       {FabKind::kIb, FabKind::kGm, FabKind::kElan}) {
    auto run = [&](bool express) {
      sim::Engine eng;
      std::vector<std::unique_ptr<model::NodeHw>> owned;
      std::vector<model::NodeHw*> nodes;
      for (int i = 0; i < 3; ++i) {
        owned.push_back(std::make_unique<model::NodeHw>(
            eng, model::pcix_133(), model::xeon_2003_memcpy()));
        nodes.push_back(owned.back().get());
      }
      auto fab = make_fabric(kind, eng, nodes);
      fab->set_express(express);
      std::array<Time, 2> arrive{};
      for (int s = 0; s < 2; ++s) {
        model::NetMsg m;
        m.src = s;
        m.dst = 2;
        m.bytes = 256 << 10;  // long window: the overlap is guaranteed
        m.src_addr = 0x40000;
        m.remote_arrival = [&eng, &arrive, s] { arrive[s] = eng.now(); };
        eng.after(Time::us(s == 0 ? 0 : 10),
                  [f = fab.get(), m = std::move(m)]() mutable {
                    f->post(std::move(m));
                  });
      }
      eng.run();
      return std::tuple{arrive[0], arrive[1], fab->express_demotions()};
    };
    const auto [a0, a1, demoted] = run(true);
    const auto [b0, b1, off_demoted] = run(false);
    EXPECT_EQ(a0.count_ps(), b0.count_ps());
    EXPECT_EQ(a1.count_ps(), b1.count_ps());
    EXPECT_GT(demoted, 0u) << "fan-in failed to demote the express flow";
    EXPECT_EQ(off_demoted, 0u);
  }
}

// Zero-byte messages ride the same machinery (one header-only packet).
TEST(ExpressZeroByte, HeaderOnlyMessagesMatch) {
  for (const FabKind kind :
       {FabKind::kIb, FabKind::kGm, FabKind::kElan}) {
    const TrafficCfg cfg{2, 16, 0x0B17E5, Time::us(300)};
    auto zero_traffic = [&](bool express) {
      sim::Engine eng;
      std::vector<std::unique_ptr<model::NodeHw>> owned;
      std::vector<model::NodeHw*> nodes;
      for (std::size_t i = 0; i < cfg.nodes; ++i) {
        owned.push_back(std::make_unique<model::NodeHw>(
            eng, model::pcix_133(), model::xeon_2003_memcpy()));
        nodes.push_back(owned.back().get());
      }
      auto fab = make_fabric(kind, eng, nodes);
      fab->set_express(express);
      std::vector<Time> arrive(static_cast<std::size_t>(cfg.messages));
      util::Rng rng(cfg.seed);
      for (int i = 0; i < cfg.messages; ++i) {
        model::NetMsg m;
        m.src = i % 2;
        m.dst = 1 - i % 2;
        m.bytes = 0;
        Time& slot = arrive[static_cast<std::size_t>(i)];
        m.remote_arrival = [&eng, &slot] { slot = eng.now(); };
        eng.after(Time::us(static_cast<std::int64_t>(rng.below(300))),
                  [f = fab.get(), m = std::move(m)]() mutable {
                    f->post(std::move(m));
                  });
      }
      eng.run();
      return std::pair{arrive, fab->express_messages()};
    };
    const auto [on, on_express] = zero_traffic(true);
    const auto [off, off_express] = zero_traffic(false);
    for (std::size_t i = 0; i < on.size(); ++i) {
      EXPECT_EQ(on[i].count_ps(), off[i].count_ps()) << "msg " << i;
    }
    EXPECT_GT(on_express, 0u);
    EXPECT_EQ(off_express, 0u);
  }
}

}  // namespace
