// Tests for the paper's future-work extensions: on-demand RC connections
// (Section 3.8 / Wu et al.) and hardware-multicast collectives over
// InfiniBand (Section 3.7 / Kini et al.).
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Task;

ClusterConfig on_demand_cfg(std::size_t nodes) {
  ClusterConfig cfg{.nodes = nodes, .net = Net::kInfiniBand};
  cfg.tweak_ib = [](ib::IbConfig& c) { c.on_demand_connections = true; };
  return cfg;
}

TEST(OnDemandConnections, MemoryGrowsOnlyWithContactedPeers) {
  // Nearest-neighbour ring traffic: each node talks to 2 peers, so the
  // footprint must stay flat regardless of cluster size.
  for (std::size_t nodes : {4ull, 8ull}) {
    Cluster c(on_demand_cfg(nodes));
    c.run([](Comm& comm) -> Task<> {
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() - 1 + comm.size()) % comm.size();
      for (int i = 0; i < 3; ++i) {
        co_await comm.sendrecv(View::synth(0x100, 1024), right, 0,
                               View::synth(0x200, 1024), left, 0);
      }
    });
    // base 20 MB + exactly 2 connections at 5 MB.
    EXPECT_EQ(c.device_memory_bytes(0), (20ull + 2 * 5) << 20)
        << nodes << " nodes";
  }
}

TEST(OnDemandConnections, AllToAllTrafficReachesStaticFootprint) {
  Cluster c(on_demand_cfg(8));
  c.run([](Comm& comm) -> Task<> {
    co_await comm.alltoall(View::synth(0x100, 8 * 64),
                           View::synth(0x9000, 8 * 64), 64);
  });
  EXPECT_EQ(c.device_memory_bytes(0), (20ull + 7 * 5) << 20);
}

TEST(OnDemandConnections, FirstMessagePaysSetup) {
  // Same ping-pong twice: the first round carries the connection setup.
  Cluster c(on_demand_cfg(2));
  double first = 0, second = 0;
  c.run([&](Comm& comm) -> Task<> {
    const View buf = View::synth(0x100 + comm.rank(), 64);
    const double t0 = comm.wtime();
    if (comm.rank() == 0) {
      co_await comm.send(buf, 1, 0);
      co_await comm.recv(buf, 1, 0);
      first = (comm.wtime() - t0) * 1e6;
      const double t1 = comm.wtime();
      co_await comm.send(buf, 1, 0);
      co_await comm.recv(buf, 1, 0);
      second = (comm.wtime() - t1) * 1e6;
    } else {
      co_await comm.recv(buf, 0, 0);
      co_await comm.send(buf, 0, 0);
      co_await comm.recv(buf, 0, 0);
      co_await comm.send(buf, 0, 0);
    }
  });
  // One setup in round one (connections are bidirectional), none later.
  EXPECT_GT(first, second + 100.0);
  EXPECT_LT(second, 20.0);
}

ClusterConfig multicast_cfg(std::size_t nodes) {
  ClusterConfig cfg{.nodes = nodes, .net = Net::kInfiniBand};
  cfg.tweak_channel = [](mpi::RdvChannelConfig& c) {
    c.hw_multicast = true;
    c.hw_bcast_overhead = sim::Time::us(5);
  };
  return cfg;
}

double time_collective(Cluster& c,
                       std::function<sim::Task<void>(Comm&)> op) {
  double us = 0;
  c.run([&](Comm& comm) -> Task<> {
    co_await comm.barrier();
    const int iters = 30;
    const double t0 = comm.wtime();
    for (int i = 0; i < iters; ++i) co_await op(comm);
    co_await comm.barrier();
    if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
  });
  return us;
}

TEST(IbMulticast, SpeedsUpBroadcastAndAllreduce) {
  auto bcast_op = [](Comm& comm) {
    return comm.bcast(View::synth(0x500, 64), 0);
  };
  auto allreduce_op = [](Comm& comm) {
    return comm.allreduce(View::synth(0x600, 8), 1, mpi::Dtype::kDouble,
                          mpi::ROp::kSum);
  };
  ClusterConfig plain{.nodes = 8, .net = Net::kInfiniBand};
  Cluster c0(plain);
  Cluster c1(multicast_cfg(8));
  const double b_plain = time_collective(c0, bcast_op);
  const double b_mc = time_collective(c1, bcast_op);
  EXPECT_LT(b_mc, b_plain);

  Cluster c2(plain);
  Cluster c3(multicast_cfg(8));
  const double r_plain = time_collective(c2, allreduce_op);
  const double r_mc = time_collective(c3, allreduce_op);
  EXPECT_LT(r_mc, r_plain);
}

TEST(IbMulticast, BroadcastStillDeliversData) {
  Cluster c(multicast_cfg(4));
  std::vector<int> got(4, -1);
  c.run([&got](Comm& comm) -> Task<> {
    int v = comm.rank() == 1 ? 4242 : -1;
    co_await comm.bcast(View::out(&v, 4), 1);
    got[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(got[r], 4242);
}

TEST(IbMulticast, BarrierStaysComparableToDissemination) {
  // Kini et al.'s full win needs RDMA-flag fan-in (children write flags
  // straight into the root's memory), which our device layer does not
  // model; with a message-based gather only the release phase improves,
  // so the multicast barrier lands in the same ballpark as the
  // dissemination tree rather than clearly beating it. Pin that down.
  auto barrier_us = [&](std::size_t nodes, bool mc) {
    ClusterConfig cfg =
        mc ? multicast_cfg(nodes)
           : ClusterConfig{.nodes = nodes, .net = Net::kInfiniBand};
    Cluster c(cfg);
    return time_collective(c,
                           [](Comm& comm) { return comm.barrier(); });
  };
  for (std::size_t nodes : {8ull, 16ull}) {
    const double mc = barrier_us(nodes, true);
    const double tree = barrier_us(nodes, false);
    EXPECT_LT(mc, tree * 1.6) << nodes;
    EXPECT_GT(mc, tree * 0.5) << nodes;
  }
}

}  // namespace
