// Tests for the three interconnect fabric models (below the MPI layer).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "elan/elan_fabric.hpp"
#include "gm/gm_fabric.hpp"
#include "ib/ib_fabric.hpp"
#include "shm/shm_domain.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mns;
using sim::Engine;
using sim::Task;
using sim::Time;

class FabricFixture : public ::testing::Test {
 protected:
  void build_nodes(std::size_t n, bool pcix = true) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_owned.push_back(std::make_unique<model::NodeHw>(
          eng, pcix ? model::pcix_133() : model::pci_66(),
          model::xeon_2003_memcpy()));
      nodes.push_back(nodes_owned.back().get());
    }
  }

  Engine eng;
  std::vector<std::unique_ptr<model::NodeHw>> nodes_owned;
  std::vector<model::NodeHw*> nodes;
};

// --- helpers -------------------------------------------------------------

struct Delivery {
  Time local_complete;
  Time remote_arrival;
  bool local_done = false;
  bool remote_done = false;
};

model::NetMsg probe_msg(Engine& eng, int src, int dst, std::uint64_t bytes,
                        Delivery& d, std::uint64_t addr = 0x100000) {
  model::NetMsg m;
  m.src = src;
  m.dst = dst;
  m.bytes = bytes;
  m.src_addr = addr;
  m.dst_addr = addr + (32 << 20);
  m.local_complete = [&eng, &d] {
    d.local_complete = eng.now();
    d.local_done = true;
  };
  m.remote_arrival = [&eng, &d] {
    d.remote_arrival = eng.now();
    d.remote_done = true;
  };
  return m;
}

// --- InfiniBand ----------------------------------------------------------

TEST_F(FabricFixture, IbSmallMessageDeliversWithinMicroseconds) {
  build_nodes(2);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, 64, d));
  eng.run();
  ASSERT_TRUE(d.remote_done);
  ASSERT_TRUE(d.local_done);
  EXPECT_LT(d.remote_arrival, Time::us(8));
  EXPECT_GT(d.remote_arrival, Time::us(2));
  EXPECT_LE(d.local_complete, d.remote_arrival);
}

TEST_F(FabricFixture, IbLargeMessageNearsNicRate) {
  build_nodes(2);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
  const std::uint64_t bytes = 8 << 20;
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, bytes, d));
  eng.run();
  const double rate = static_cast<double>(bytes) / d.remote_arrival.to_seconds();
  EXPECT_GT(rate, 800e6);
  EXPECT_LT(rate, 890e6);  // below the HCA's 884 MB/s engine cap
}

TEST_F(FabricFixture, IbBidirectionalSharesHostBus) {
  build_nodes(2);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
  const std::uint64_t bytes = 8 << 20;
  Delivery d01, d10;
  fab.post(probe_msg(eng, 0, 1, bytes, d01));
  fab.post(probe_msg(eng, 1, 0, bytes, d10));
  eng.run();
  const Time finish =
      d01.remote_arrival > d10.remote_arrival ? d01.remote_arrival
                                              : d10.remote_arrival;
  const double aggregate =
      static_cast<double>(2 * bytes) / finish.to_seconds();
  // Bus-bound: ~950e6 aggregate, far below 2x the uni-directional rate.
  EXPECT_GT(aggregate, 890e6);
  EXPECT_LT(aggregate, 1000e6);
}

TEST_F(FabricFixture, IbPciBusCutsBandwidth) {
  build_nodes(2, /*pcix=*/false);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
  const std::uint64_t bytes = 8 << 20;
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, bytes, d));
  eng.run();
  const double rate = static_cast<double>(bytes) / d.remote_arrival.to_seconds();
  EXPECT_GT(rate, 350e6);
  EXPECT_LT(rate, 410e6);  // PCI-bound ~378 MB (2^20)/s
}

TEST_F(FabricFixture, IbPerPairOrderingPreserved) {
  build_nodes(2);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(2));
  std::vector<int> arrivals;
  for (int i = 0; i < 10; ++i) {
    model::NetMsg m;
    m.src = 0;
    m.dst = 1;
    m.bytes = (i % 3 == 0) ? 64 : 128 << 10;  // mixed sizes
    m.remote_arrival = [&arrivals, i] { arrivals.push_back(i); };
    fab.post(std::move(m));
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(arrivals[i], i);
}

TEST_F(FabricFixture, IbMemoryGrowsWithNodes) {
  build_nodes(8);
  std::vector<model::NodeHw*> two(nodes.begin(), nodes.begin() + 2);
  Engine eng2;  // separate engines: fabrics spawn daemon loops at build
  std::vector<std::unique_ptr<model::NodeHw>> nodes2;
  std::vector<model::NodeHw*> two_ptrs;
  for (int i = 0; i < 2; ++i) {
    nodes2.push_back(std::make_unique<model::NodeHw>(
        eng2, model::pcix_133(), model::xeon_2003_memcpy()));
    two_ptrs.push_back(nodes2.back().get());
  }
  ib::IbFabric fab8(eng, nodes, ib::default_ib_config(8));
  ib::IbFabric fab2(eng2, two_ptrs, ib::default_ib_config(2));
  EXPECT_GT(fab8.memory_bytes(0), fab2.memory_bytes(0));
  // 6 extra RC connections at 5 MB each.
  EXPECT_EQ(fab8.memory_bytes(0) - fab2.memory_bytes(0), 6ull * (5 << 20));
}

TEST_F(FabricFixture, IbLoopbackSkipsSwitchAndHalvesBusRate) {
  build_nodes(1);
  ib::IbFabric fab(eng, nodes, ib::default_ib_config(1));
  const std::uint64_t bytes = 8 << 20;
  Delivery d;
  fab.post(probe_msg(eng, 0, 0, bytes, d));
  eng.run();
  const double rate = static_cast<double>(bytes) / d.remote_arrival.to_seconds();
  // Crosses the host bus twice: ~475e6 = 450 MB (2^20)/s, the paper's
  // intra-node large-message figure for MPI over InfiniBand.
  EXPECT_GT(rate, 430e6);
  EXPECT_LT(rate, 500e6);
}

// --- Myrinet -------------------------------------------------------------

TEST_F(FabricFixture, GmSmallMessageLatency) {
  build_nodes(2);
  gm::GmFabric fab(eng, nodes, gm::default_gm_config(2));
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, 64, d));
  eng.run();
  EXPECT_LT(d.remote_arrival, Time::us(8));
  EXPECT_GT(d.remote_arrival, Time::us(3));
}

TEST_F(FabricFixture, GmUnidirectionalIsLinkBound) {
  build_nodes(2);
  gm::GmFabric fab(eng, nodes, gm::default_gm_config(2));
  const std::uint64_t bytes = 8 << 20;
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, bytes, d));
  eng.run();
  const double rate = static_cast<double>(bytes) / d.remote_arrival.to_seconds();
  EXPECT_GT(rate, 230e6);
  EXPECT_LT(rate, 250e6);
}

TEST_F(FabricFixture, GmBidirectionalLargeHitsSramWall) {
  build_nodes(2);
  gm::GmFabric fab(eng, nodes, gm::default_gm_config(2));
  const std::uint64_t big = 4 << 20;  // > 256 KB: staging contends
  Delivery d01, d10;
  fab.post(probe_msg(eng, 0, 1, big, d01));
  fab.post(probe_msg(eng, 1, 0, big, d10));
  eng.run();
  const Time finish =
      d01.remote_arrival > d10.remote_arrival ? d01.remote_arrival
                                              : d10.remote_arrival;
  const double aggregate = static_cast<double>(2 * big) / finish.to_seconds();
  // SRAM staging (~356e6) binds, well under 2 x 248e6 link capacity.
  EXPECT_LT(aggregate, 380e6);
  EXPECT_GT(aggregate, 300e6);
}

TEST_F(FabricFixture, GmBidirectionalSmallIsNotSramBound) {
  build_nodes(2);
  gm::GmFabric fab(eng, nodes, gm::default_gm_config(2));
  const std::uint64_t sz = 64 << 10;  // <= 256 KB: no staging contention
  // Back-to-back windows in both directions.
  int remaining = 32;
  Time finish;
  for (int i = 0; i < 16; ++i) {
    for (int dir = 0; dir < 2; ++dir) {
      model::NetMsg m;
      m.src = dir;
      m.dst = 1 - dir;
      m.bytes = sz;
      m.remote_arrival = [&eng = this->eng, &remaining, &finish] {
        if (--remaining == 0) finish = eng.now();
      };
      fab.post(std::move(m));
    }
  }
  eng.run();
  const double aggregate =
      static_cast<double>(32 * sz) / finish.to_seconds();
  EXPECT_GT(aggregate, 420e6);  // near 2 x link rate
}

// --- Quadrics ------------------------------------------------------------

TEST_F(FabricFixture, ElanSmallMessageIsFastest) {
  build_nodes(2, /*pcix=*/false);  // QM-400 sits on PCI 66
  elan::ElanFabric fab(eng, nodes, elan::default_elan_config(2));
  Delivery d;
  // Warm the MMU first so we measure the steady-state path.
  Delivery warm;
  fab.post(probe_msg(eng, 0, 1, 64, warm));
  eng.run();
  fab.post(probe_msg(eng, 0, 1, 64, d));
  eng.run();
  const Time net = d.remote_arrival - warm.remote_arrival;
  // NIC path ~1-2 us plus the previous message's ack retirement on the
  // shared Elan processor; host overhead is charged by the MPI layer.
  EXPECT_LT(net, Time::us(6));
  EXPECT_GT(net, Time::ns(800));
}

TEST_F(FabricFixture, ElanColdBufferPaysMmuStall) {
  build_nodes(2, false);
  elan::ElanFabric fab(eng, nodes, elan::default_elan_config(2));
  Delivery warm1, warm2, cold;
  fab.post(probe_msg(eng, 0, 1, 1024, warm1, 0x10000));
  eng.run();
  const Time t_cold_start = eng.now();
  fab.post(probe_msg(eng, 0, 1, 1024, cold, 0x900000));  // new pages
  eng.run();
  const Time cold_latency = cold.remote_arrival - t_cold_start;
  const Time t_warm_start = eng.now();
  fab.post(probe_msg(eng, 0, 1, 1024, warm2, 0x900000));  // reused
  eng.run();
  const Time warm_latency = warm2.remote_arrival - t_warm_start;
  // Both src and dst pages missed: two base penalties (~3 us each).
  EXPECT_GT(cold_latency - warm_latency, Time::us(5));
}

TEST_F(FabricFixture, ElanUnidirectionalBandwidth) {
  build_nodes(2, false);
  elan::ElanFabric fab(eng, nodes, elan::default_elan_config(2));
  const std::uint64_t bytes = 8 << 20;
  Delivery d;
  fab.post(probe_msg(eng, 0, 1, bytes, d));
  eng.run();
  const double rate = static_cast<double>(bytes) / d.remote_arrival.to_seconds();
  EXPECT_GT(rate, 295e6);
  EXPECT_LT(rate, 330e6);
}

TEST_F(FabricFixture, ElanQueueOverflowDegradesManyOutstanding) {
  // Post an all-at-once burst of small messages. Up to the DMA queue
  // depth (16) they pipeline at the per-message setup rate; beyond it,
  // each message pays the 2.5 us overflow penalty, so a 32-burst takes
  // far more than twice a 16-burst.
  auto run_burst = [](int burst) {
    Engine e;
    std::vector<std::unique_ptr<model::NodeHw>> ns;
    std::vector<model::NodeHw*> ps;
    for (int i = 0; i < 2; ++i) {
      ns.push_back(std::make_unique<model::NodeHw>(e, model::pci_66(),
                                                   model::xeon_2003_memcpy()));
      ps.push_back(ns.back().get());
    }
    elan::ElanFabric fab(e, ps, elan::default_elan_config(2));
    int remaining = burst;
    Time finish;
    for (int i = 0; i < burst; ++i) {
      model::NetMsg m;
      m.src = 0;
      m.dst = 1;
      m.bytes = 64;
      m.src_addr = 0x1000;  // same page: MMU warms immediately
      m.dst_addr = 0x2000;
      m.remote_arrival = [&remaining, &finish, &e] {
        if (--remaining == 0) finish = e.now();
      };
      fab.post(std::move(m));
    }
    e.run();
    return finish;
  };
  const Time burst32 = run_burst(32);
  const Time burst16 = run_burst(16);
  EXPECT_GT(burst32.to_seconds(), 2.0 * burst16.to_seconds());
}

TEST_F(FabricFixture, ElanHwBroadcastReachesAllNodes) {
  build_nodes(8, false);
  elan::ElanFabric fab(eng, nodes, elan::default_elan_config(8));
  bool done = false;
  Time when;
  fab.post_hw_broadcast(0, 256, 0x4000, [&] {
    done = true;
    when = eng.now();
  });
  eng.run();
  ASSERT_TRUE(done);
  EXPECT_LT(when, Time::us(12));
}

// --- Shared memory -------------------------------------------------------

TEST_F(FabricFixture, ShmDeliversAfterCopyAndVisibility) {
  shm::ShmConfig cfg{Time::ns(300), Time::ns(250), Time::ns(150),
                     model::xeon_2003_memcpy()};
  shm::ShmDomain dom(eng, cfg);
  Time arrived, sender_resumed;
  eng.spawn([](Engine& e, shm::ShmDomain& dom, Time& arrived,
               Time& sender_resumed) -> Task<> {
    shm::ShmMsg m;
    m.src_rank = 0;
    m.dst_rank = 1;
    m.bytes = 1024;
    m.remote_arrival = [&e, &arrived] { arrived = e.now(); };
    co_await dom.send_copy(std::move(m));
    sender_resumed = e.now();
  }(eng, dom, arrived, sender_resumed));
  eng.run();
  // Sender resumes before the data is visible at the receiver.
  EXPECT_LT(sender_resumed, arrived);
  EXPECT_GT(arrived, Time::ns(300));
  EXPECT_LT(arrived, Time::us(3));
  EXPECT_EQ(dom.messages(), 1u);
  EXPECT_EQ(dom.bytes_moved(), 1024u);
}

TEST_F(FabricFixture, ShmRecvCostScalesWithSize) {
  shm::ShmConfig cfg{Time::ns(300), Time::ns(250), Time::ns(150),
                     model::xeon_2003_memcpy()};
  shm::ShmDomain dom(eng, cfg);
  EXPECT_LT(dom.recv_cost(64), dom.recv_cost(1 << 20));
}

}  // namespace
