// Chaos harness tests: deterministic fault injection across the three
// fabrics and the per-fabric recovery protocols (IB RC retry, GM
// Go-Back-N, Elan hardware retry).
//
// The load-bearing property is the chaos sweep: >= 64 seeds x 3 fabrics,
// every message either delivers exactly once or completes with
// kErrFabric (never hangs), outcomes are bit-identical across reruns and
// across --jobs settings, and every run balances the packet-loss
// conservation law audited at finalize.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "elan/elan_fabric.hpp"
#include "fault/fault.hpp"
#include "gm/gm_fabric.hpp"
#include "ib/ib_fabric.hpp"
#include "mpi/comm.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/flags.hpp"

using namespace mns;

namespace {

constexpr std::size_t kNodes = 4;
constexpr std::uint64_t kEagerBytes = 256;
constexpr std::uint64_t kRdvBytes = 32 << 10;

// Vary the fault mix by seed so the sweep covers drops, corruption,
// flaps, NIC stalls and registration failures in many combinations.
fault::FaultPlan plan_for(std::uint64_t seed) {
  fault::FaultPlan p(seed);
  p.drop(fault::kAnyNode, fault::kAnyNode,
         0.02 + 0.01 * static_cast<double>(seed % 8));
  if (seed % 2 == 0) p.corrupt(0, 1, 0.05);
  if (seed % 3 == 0) p.flap(1, 2, sim::Time::us(20), sim::Time::us(60));
  if (seed % 4 == 0) {
    p.nic_stall(static_cast<int>(seed % kNodes), sim::Time::us(10),
                sim::Time::us(15));
  }
  if (seed % 5 == 0) p.reg_fail(fault::kAnyNode, 0.10);
  return p;
}

// One simulation point reduced to a flat word list: per-rank completion
// statuses in program order, the fabric's fault/recovery counters, the
// final simulated clock, and a trailing violation count (0 = every
// invariant held). Equality of two digests is bit-identity of the run.
struct Digest {
  std::vector<std::uint64_t> words;
  bool operator==(const Digest&) const = default;
};

// Runs a neighbour-exchange job (each rank sends one eager and one
// rendezvous message to its right neighbour and receives both from its
// left) under the seed's fault plan. Called from SweepRunner worker
// threads, so it must not touch gtest macros — invariant failures are
// folded into the digest's trailing violation count instead.
Digest run_point(cluster::Net net, std::uint64_t seed) {
  cluster::ClusterConfig cfg{.nodes = kNodes, .net = net};
  cfg.faults = plan_for(seed);
  cluster::Cluster c(cfg);
  const auto ranks = static_cast<std::size_t>(c.ranks());
  std::vector<std::vector<mpi::Status>> st(ranks);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const int r = comm.rank();
    const int right = (r + 1) % comm.size();
    const int left = (r + comm.size() - 1) % comm.size();
    auto r1 = co_await comm.irecv(
        mpi::View::synth(0x4000u + static_cast<unsigned>(r), kEagerBytes),
        left, 1);
    auto r2 = co_await comm.irecv(
        mpi::View::synth(0x60000u + static_cast<unsigned>(r), kRdvBytes),
        left, 2);
    auto s1 = co_await comm.isend(
        mpi::View::synth(0x1000u + static_cast<unsigned>(r), kEagerBytes),
        right, 1);
    auto s2 = co_await comm.isend(
        mpi::View::synth(0x20000u + static_cast<unsigned>(r), kRdvBytes),
        right, 2);
    auto& out = st[static_cast<std::size_t>(r)];
    out.push_back(co_await comm.wait(r1));
    out.push_back(co_await comm.wait(r2));
    out.push_back(co_await comm.wait(s1));
    out.push_back(co_await comm.wait(s2));
  });

  model::NetFabric& fab = c.fabric();
  std::uint64_t violations = 0;
  Digest d;
  for (const auto& rank_statuses : st) {
    // Exactly-once-or-error: every request completed exactly once (the
    // run() above could not have returned otherwise) with a status that
    // is either success or the one surfaced fabric error.
    if (rank_statuses.size() != 4) ++violations;
    for (const mpi::Status& s : rank_statuses) {
      if (s.error != mpi::kErrNone && s.error != mpi::kErrFabric) {
        ++violations;
      }
      d.words.push_back(static_cast<std::uint64_t>(s.error));
      d.words.push_back(static_cast<std::uint64_t>(s.source));
      d.words.push_back(static_cast<std::uint64_t>(s.tag));
      d.words.push_back(s.bytes);
    }
  }
  // Conservation: every injected loss is either retransmitted away or
  // surfaced, and every posted message delivered or errored.
  if (fab.packets_dropped() + fab.packets_corrupted() +
          fab.packets_gbn_discarded() !=
      fab.packets_retransmitted() + fab.packets_abandoned()) {
    ++violations;
  }
  if (fab.messages_posted() != fab.messages_delivered() +
                                   fab.messages_errored()) {
    ++violations;
  }
  if (!c.make_audit_report().clean()) ++violations;
  d.words.push_back(fab.messages_posted());
  d.words.push_back(fab.messages_delivered());
  d.words.push_back(fab.messages_errored());
  d.words.push_back(fab.packets_dropped());
  d.words.push_back(fab.packets_corrupted());
  d.words.push_back(fab.packets_gbn_discarded());
  d.words.push_back(fab.packets_retransmitted());
  d.words.push_back(fab.packets_abandoned());
  d.words.push_back(static_cast<std::uint64_t>(c.engine().now().count_ps()));
  d.words.push_back(violations);
  return d;
}

constexpr cluster::Net kAllNets[] = {cluster::Net::kInfiniBand,
                                     cluster::Net::kMyrinet,
                                     cluster::Net::kQuadrics};

std::vector<Digest> run_sweep(int jobs, std::size_t seeds) {
  sweep::SweepRunner runner(jobs);
  return runner.run_indexed(seeds * 3, [&](std::size_t i) {
    return run_point(kAllNets[i % 3], 1 + i / 3);
  });
}

}  // namespace

TEST(FaultPlanParse, ParsesEveryClauseKind) {
  const fault::FaultPlan p = fault::FaultPlan::parse(
      "seed:42;drop:0-1:0.25;corrupt:*:0.125;flap:1-2:100:250;"
      "stall:3:50:20,regfail:*:0.5");
  EXPECT_EQ(p.seed(), 42u);
  ASSERT_EQ(p.links().size(), 2u);
  EXPECT_EQ(p.links()[0].src, 0);
  EXPECT_EQ(p.links()[0].dst, 1);
  EXPECT_DOUBLE_EQ(p.links()[0].drop_prob, 0.25);
  EXPECT_EQ(p.links()[1].src, fault::kAnyNode);
  EXPECT_DOUBLE_EQ(p.links()[1].corrupt_prob, 0.125);
  ASSERT_EQ(p.flaps().size(), 1u);
  EXPECT_EQ(p.flaps()[0].from, sim::Time::us(100));
  EXPECT_EQ(p.flaps()[0].to, sim::Time::us(250));
  ASSERT_EQ(p.stalls().size(), 1u);
  EXPECT_EQ(p.stalls()[0].node, 3);
  ASSERT_EQ(p.reg_fails().size(), 1u);
  EXPECT_EQ(p.reg_fails()[0].node, fault::kAnyNode);
}

TEST(FaultPlanParse, RejectsMalformedClauses) {
  EXPECT_THROW(fault::FaultPlan::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:0-1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:0-1:nan-ish"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("drop:0-1:1.5"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("seed:-3"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("flap:0-1:250:100"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("stall:0:10"), std::invalid_argument);
}

// A malformed --faults spec at the bench CLI boundary exits with code 2
// and a message naming the bad clause (see util::run_cli in the bench
// mains), instead of an unhandled exception.
TEST(FaultCliDeath, MalformedFaultsSpecExitsWithCodeTwo) {
  auto bad = [] {
    fault::FaultPlan::parse("drop:0-1:2.0");
    return 0;
  };
  EXPECT_EXIT(std::exit(util::run_cli(bad)), ::testing::ExitedWithCode(2),
              "bad clause");
}

// An empty FaultPlan (or one that only sets a seed) must leave the data
// path untouched: same clock, same counters, no injector constructed.
TEST(Chaos, EmptyPlanLeavesArtifactsBitIdentical) {
  auto run_once = [](const fault::FaultPlan& plan) {
    cluster::ClusterConfig cfg{.nodes = kNodes,
                               .net = cluster::Net::kInfiniBand};
    cfg.faults = plan;
    cluster::Cluster c(cfg);
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(
          0x1000u + static_cast<unsigned>(comm.rank()), kRdvBytes);
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      auto rr = co_await comm.irecv(buf, left, 0);
      co_await comm.send(buf, right, 0);
      co_await comm.wait(rr);
    });
    struct Snap {
      std::int64_t ps;
      std::uint64_t delivered, errored, retrans;
      bool operator==(const Snap&) const = default;
    };
    return Snap{c.engine().now().count_ps(), c.fabric().messages_delivered(),
                c.fabric().messages_errored(),
                c.fabric().packets_retransmitted()};
  };
  const auto baseline = run_once(fault::FaultPlan{});
  const auto seeded_but_empty = run_once(fault::FaultPlan{99});
  EXPECT_EQ(baseline, seeded_but_empty);
  EXPECT_EQ(baseline.errored, 0u);
  EXPECT_EQ(baseline.retrans, 0u);
}

// One point examined in detail on the main thread (readable failures):
// severe loss with the IB RC retry budget forces at least one surfaced
// error, and the conservation law still balances exactly.
TEST(Chaos, HeavyLossSurfacesErrorsWithoutHanging) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kInfiniBand};
  cfg.faults = fault::FaultPlan(11).drop(0, 1, 0.55);
  cluster::Cluster c(cfg);
  std::vector<mpi::Status> recvs;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const mpi::View buf = mpi::View::synth(0x9000, kRdvBytes);
    for (int i = 0; i < 20; ++i) {
      if (comm.rank() == 0) {
        co_await comm.send(buf, 1, i);
      } else {
        recvs.push_back(co_await comm.recv(buf, 0, i));
      }
    }
  });
  model::NetFabric& fab = c.fabric();
  ASSERT_EQ(recvs.size(), 20u);
  std::size_t errors = 0;
  for (const mpi::Status& s : recvs) {
    EXPECT_TRUE(s.error == mpi::kErrNone || s.error == mpi::kErrFabric);
    if (s.error == mpi::kErrFabric) ++errors;
  }
  EXPECT_GT(fab.packets_dropped(), 0u);
  EXPECT_GT(fab.packets_retransmitted(), 0u);
  if (errors > 0) EXPECT_GT(fab.packets_abandoned(), 0u);
  EXPECT_EQ(fab.packets_dropped() + fab.packets_corrupted() +
                fab.packets_gbn_discarded(),
            fab.packets_retransmitted() + fab.packets_abandoned());
  EXPECT_EQ(fab.messages_posted(),
            fab.messages_delivered() + fab.messages_errored());
  EXPECT_TRUE(c.make_audit_report().clean())
      << c.make_audit_report().summary();
}

// A total outage window shorter than the retry budget's reach: every
// message still delivers (Go-Back-N rides out the flap), and each flap
// casualty is accounted as a retransmission.
TEST(Chaos, FlapWindowRecoversOnGm) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kMyrinet};
  cfg.faults =
      fault::FaultPlan(5).flap(0, 1, sim::Time::us(0), sim::Time::us(120));
  cluster::Cluster c(cfg);
  std::vector<mpi::Status> recvs;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const mpi::View buf = mpi::View::synth(0xA000, kRdvBytes);
    if (comm.rank() == 0) {
      co_await comm.send(buf, 1, 0);
    } else {
      recvs.push_back(co_await comm.recv(buf, 0, 0));
    }
  });
  ASSERT_EQ(recvs.size(), 1u);
  EXPECT_EQ(recvs[0].error, mpi::kErrNone);
  EXPECT_GT(c.fabric().packets_dropped(), 0u);
  EXPECT_EQ(c.fabric().packets_abandoned(), 0u);
  EXPECT_EQ(c.fabric().packets_dropped() + c.fabric().packets_corrupted() +
                c.fabric().packets_gbn_discarded(),
            c.fabric().packets_retransmitted());
}

// Registration failures never lose messages: rendezvous sends fall back
// to the eager protocol (or retry the pin), so everything delivers
// cleanly while the regcache records the injected failures.
TEST(Chaos, RegistrationFailureFallsBackToEager) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kInfiniBand};
  cfg.faults = fault::FaultPlan(3).reg_fail(fault::kAnyNode, 1.0);
  cluster::Cluster c(cfg);
  std::vector<mpi::Status> recvs;
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const mpi::View buf = mpi::View::synth(0xB000, kRdvBytes);
    for (int i = 0; i < 4; ++i) {
      if (comm.rank() == 0) {
        co_await comm.send(buf, 1, i);
      } else {
        recvs.push_back(co_await comm.recv(buf, 0, i));
      }
    }
  });
  ASSERT_EQ(recvs.size(), 4u);
  for (const mpi::Status& s : recvs) EXPECT_EQ(s.error, mpi::kErrNone);
  auto& ib = dynamic_cast<ib::IbFabric&>(c.fabric());
  std::uint64_t failures = 0;
  for (std::size_t n = 0; n < 2; ++n) failures += ib.regcache(static_cast<int>(n)).failures();
  EXPECT_GT(failures, 0u);
  EXPECT_EQ(c.fabric().messages_errored(), 0u);
  EXPECT_TRUE(c.make_audit_report().clean())
      << c.make_audit_report().summary();
}

// --- fail-stop grammar and precedence ---------------------------------------

TEST(FaultPlanParse, ParsesFailStopClauses) {
  const fault::FaultPlan p = fault::FaultPlan::parse(
      "linkdown:2-3:80;nicdown:1:120;linkdown:0-*:40");
  EXPECT_TRUE(p.has_fail_stop());
  ASSERT_EQ(p.link_downs().size(), 2u);
  EXPECT_EQ(p.link_downs()[0].src, 2);
  EXPECT_EQ(p.link_downs()[0].dst, 3);
  EXPECT_EQ(p.link_downs()[0].at, sim::Time::us(80));
  EXPECT_EQ(p.link_downs()[1].src, 0);
  EXPECT_EQ(p.link_downs()[1].dst, fault::kAnyNode);
  ASSERT_EQ(p.nic_downs().size(), 1u);
  EXPECT_EQ(p.nic_downs()[0].node, 1);
  EXPECT_EQ(p.nic_downs()[0].at, sim::Time::us(120));

  EXPECT_THROW(fault::FaultPlan::parse("linkdown:0-1"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("nicdown:*:10"),
               std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("nicdown:2"), std::invalid_argument);
  // A transient-only plan never arms the fail-stop machinery.
  EXPECT_FALSE(fault::FaultPlan::parse("drop:*:0.1").has_fail_stop());
}

TEST(FaultPlanParse, SpecificClauseBeatsWildcardRegardlessOfOrder) {
  // Exact link written FIRST, full wildcard last: the exact clause still
  // owns its link, the wildcard fills in everything else.
  const fault::FaultPlan p = fault::FaultPlan::parse("drop:0-1:0.0;drop:*:0.5");
  fault::Injector inj(p, 4);
  EXPECT_FALSE(inj.link_armed(0, 1));
  EXPECT_TRUE(inj.link_armed(0, 2));
  EXPECT_TRUE(inj.link_armed(1, 0));
  // One-sided wildcards sit between exact and the full wildcard.
  const fault::FaultPlan q = fault::FaultPlan::parse(
      "corrupt:0-*:0.0;corrupt:*:0.5;corrupt:0-3:0.25");
  fault::Injector jnj(q, 4);
  EXPECT_FALSE(jnj.link_armed(0, 1));  // 0-* beats *
  EXPECT_TRUE(jnj.link_armed(0, 3));   // exact beats 0-*
  EXPECT_TRUE(jnj.link_armed(2, 1));   // only * applies
}

TEST(FaultPlanParse, OverlappingDownsTakeTheEarliestInstant) {
  // Fail-stop clauses compose earliest-wins, not specific-beats-wildcard:
  // a link cannot die twice, and the first death is the one that matters.
  const fault::FaultPlan p = fault::FaultPlan::parse(
      "linkdown:0-1:900;linkdown:*:500;nicdown:2:300");
  fault::Injector inj(p, 4);
  EXPECT_EQ(inj.link_down_at(0, 1), sim::Time::us(500));
  EXPECT_EQ(inj.link_down_at(1, 0), sim::Time::us(500));
  EXPECT_EQ(inj.link_down_at(0, 2), sim::Time::us(300));
  EXPECT_EQ(inj.link_down_at(2, 3), sim::Time::us(300));
  EXPECT_FALSE(inj.link_dead(0, 1, sim::Time::us(499)));
  EXPECT_TRUE(inj.link_dead(0, 1, sim::Time::us(500)));
}

// --- fail-stop degradation --------------------------------------------------

// A link that is dead from t=0: the first message runs the fabric's full
// retry protocol and surfaces kErrFabric (that exhaustion is what teaches
// the fabric the link is dead); every later message on the link takes the
// bounded degradation fast path and terminates as `aborted`. Both sides
// observe the error, and the extended conservation law
//   posted == delivered + errored + aborted
// balances on every fabric.
TEST(Chaos, LinkDownDegradesToBoundedFastFailureOnEveryFabric) {
  constexpr int kMsgs = 7;
  for (const cluster::Net net : kAllNets) {
    cluster::ClusterConfig cfg{.nodes = 2, .net = net};
    cfg.faults = fault::FaultPlan(7).link_down(0, 1, sim::Time::zero());
    cluster::Cluster c(cfg);
    std::vector<mpi::Status> sends, recvs;
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      // Rendezvous-sized: the sender only observes delivery failure for
      // messages whose completion is remote (eager sends complete at the
      // local NIC by design — their errors surface at the receiver).
      const mpi::View buf = mpi::View::synth(0x20000, kRdvBytes);
      // Lock-step so exactly one message is in flight at a time: message
      // 0 exhausts the retry budget, messages 1..N-1 hit the learned-dead
      // fast path.
      for (int i = 0; i < kMsgs; ++i) {
        if (comm.rank() == 0) {
          sends.push_back(co_await comm.wait(co_await comm.isend(buf, 1, i)));
        } else {
          recvs.push_back(co_await comm.recv(buf, 0, i));
        }
      }
    });
    model::NetFabric& fab = c.fabric();
    ASSERT_EQ(sends.size(), static_cast<std::size_t>(kMsgs));
    ASSERT_EQ(recvs.size(), static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i) {
      EXPECT_EQ(sends[static_cast<std::size_t>(i)].error, mpi::kErrFabric)
          << net_name(net) << " send " << i;
      EXPECT_EQ(recvs[static_cast<std::size_t>(i)].error, mpi::kErrFabric)
          << net_name(net) << " recv " << i;
    }
    EXPECT_TRUE(fab.link_known_dead(0, 1)) << net_name(net);
    EXPECT_FALSE(fab.link_known_dead(1, 0)) << net_name(net);
    EXPECT_GE(fab.messages_errored(), 1u) << net_name(net);
    EXPECT_GE(fab.messages_aborted(), 1u) << net_name(net);
    EXPECT_EQ(fab.messages_posted(),
              fab.messages_delivered() + fab.messages_errored() +
                  fab.messages_aborted())
        << net_name(net);
    // Per-fabric degradation vocabulary over the same shard state.
    EXPECT_EQ(fab.links_failed(), 1u) << net_name(net);
    EXPECT_EQ(fab.degrade_rounds(), fab.messages_aborted()) << net_name(net);
    if (net == cluster::Net::kInfiniBand) {
      auto& ib = dynamic_cast<ib::IbFabric&>(fab);
      EXPECT_EQ(ib.qp_teardowns(), 1u);
      EXPECT_GE(ib.reconnect_attempts(), 1u);
    } else if (net == cluster::Net::kMyrinet) {
      EXPECT_EQ(dynamic_cast<gm::GmFabric&>(fab).route_probes(), 1u);
    } else {
      EXPECT_EQ(dynamic_cast<elan::ElanFabric&>(fab).retry_escalations(), 1u);
    }
    EXPECT_TRUE(c.make_audit_report().clean())
        << net_name(net) << ": " << c.make_audit_report().summary();
  }
}

// Arming a fail-stop clause must not perturb any transient RNG stream:
// a run whose linkdown sits beyond the end of the simulation is
// bit-identical to one with no linkdown at all.
TEST(Chaos, UnreachedLinkDownLeavesTransientStreamsBitIdentical) {
  auto digest = [](bool with_down) {
    cluster::ClusterConfig cfg{.nodes = kNodes,
                               .net = cluster::Net::kMyrinet};
    cfg.faults = plan_for(9);
    if (with_down) {
      cfg.faults.link_down(0, 1, sim::Time::us(30'000'000));
    }
    cluster::Cluster c(cfg);
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      const int right = (comm.rank() + 1) % comm.size();
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      auto rr = co_await comm.irecv(mpi::View::synth(0x7000, kRdvBytes),
                                    left, 0);
      co_await comm.send(mpi::View::synth(0x8000, kRdvBytes), right, 0);
      co_await comm.wait(rr);
    });
    return std::pair{c.engine().now().count_ps(),
                     c.fabric().packets_retransmitted()};
  };
  EXPECT_EQ(digest(false), digest(true));
}

// --- progress watchdog ------------------------------------------------------

// An unbounded retry budget against a dead link is a genuine livelock:
// simulated time advances (so the quiescence deadlock check never fires)
// but no flow ever terminates. The per-flow watchdog converts it into
// sim::LivelockError carrying the fabric's progress report.
TEST(Chaos, WatchdogTripsOnUnboundedRetryStorm) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kInfiniBand};
  cfg.faults = fault::FaultPlan(1).link_down(0, 1, sim::Time::zero());
  cfg.tweak_ib = [](ib::IbConfig& c) { c.recovery.retry_budget = 1 << 20; };
  cluster::Cluster c(cfg);
  c.fabric().set_watchdog_rounds(64);
  try {
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      if (comm.rank() == 0) {
        co_await comm.send(mpi::View::synth(0xD000, kEagerBytes), 1, 0);
      }
      co_return;
    });
    FAIL() << "expected sim::LivelockError";
  } catch (const sim::LivelockError& e) {
    const std::string r = e.report();
    EXPECT_NE(r.find("netfabric progress report"), std::string::npos) << r;
    EXPECT_NE(r.find("attempts"), std::string::npos) << r;
    EXPECT_NE(r.find("0->1"), std::string::npos) << r;
  }
}

// The --max-sim-time horizon (ClusterConfig::max_sim_time) converts a
// run that overruns its expected simulated duration into the same
// LivelockError, with the engine's own clock diagnostic.
TEST(Chaos, MaxSimTimeGuardAbortsARunThatOverruns) {
  cluster::ClusterConfig cfg{.nodes = 2, .net = cluster::Net::kMyrinet};
  cfg.max_sim_time = sim::Time::us(50);
  cluster::Cluster c(cfg);
  try {
    c.run([](mpi::Comm& comm) -> sim::Task<void> {
      const mpi::View buf = mpi::View::synth(0xE000, kRdvBytes);
      for (int i = 0; i < 64; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, 1, i);
          co_await comm.recv(buf, 1, 1000 + i);
        } else {
          co_await comm.recv(buf, 0, i);
          co_await comm.send(buf, 0, 1000 + i);
        }
      }
    });
    FAIL() << "expected sim::LivelockError";
  } catch (const sim::LivelockError& e) {
    EXPECT_NE(e.report().find("time limit"), std::string::npos) << e.report();
  }
}

// The tentpole property: 64 seeds x 3 fabrics, every point holds the
// exactly-once-or-error and conservation invariants, a rerun of the
// whole sweep is bit-identical, and --jobs=4 equals --jobs=1.
TEST(Chaos, SweepOf64SeedsIsDeterministicAcrossRerunsAndJobs) {
  constexpr std::size_t kSeeds = 64;
  const std::vector<Digest> serial = run_sweep(1, kSeeds);
  ASSERT_EQ(serial.size(), kSeeds * 3);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FALSE(serial[i].words.empty());
    EXPECT_EQ(serial[i].words.back(), 0u)
        << "invariant violations at point " << i << " (net " << i % 3
        << ", seed " << 1 + i / 3 << ")";
  }
  const std::vector<Digest> rerun = run_sweep(1, kSeeds);
  const std::vector<Digest> threaded = run_sweep(4, kSeeds);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], rerun[i]) << "rerun diverged at point " << i;
    EXPECT_EQ(serial[i], threaded[i]) << "--jobs=4 diverged at point " << i;
  }
}
