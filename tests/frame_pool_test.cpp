// Pooled coroutine-frame allocator: freelist recycling, pooled Task
// frames, and the empty-at-exit conservation audit (including that the
// audit actually fires on an injected leak).
#include <gtest/gtest.h>

#include <string>

#include "audit/report.hpp"
#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace mns;
namespace fp = sim::frame_pool;

TEST(FramePool, RecyclesFreedBlocks) {
  const fp::Stats before = fp::stats();
  void* a = fp::allocate(192);
  fp::deallocate(a);
  void* b = fp::allocate(192);  // same size bin: must pop the freed block
  EXPECT_EQ(a, b);
  fp::deallocate(b);
  const fp::Stats after = fp::stats();
  EXPECT_GE(after.pool_hits, before.pool_hits + 1);
  EXPECT_EQ(after.outstanding(), before.outstanding());
}

TEST(FramePool, OversizeBlocksBypassTheBins) {
  const fp::Stats before = fp::stats();
  void* p = fp::allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  fp::deallocate(p);
  const fp::Stats after = fp::stats();
  EXPECT_GE(after.oversize, before.oversize + 1);
  EXPECT_EQ(after.outstanding(), before.outstanding());
}

TEST(FramePool, TaskFramesRecycleAcrossWaves) {
  const fp::Stats before = fp::stats();
  sim::Engine eng;
  // Two waves: the first warms the bins with retired frames, the second
  // must be served from them.
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 64; ++i) {
      eng.spawn([](sim::Engine& e) -> sim::Task<void> {
        co_await e.delay(sim::Time::ns(1));
      }(eng));
    }
    eng.run();
  }
  const fp::Stats after = fp::stats();
  EXPECT_GT(after.allocated, before.allocated);
  EXPECT_GT(after.pool_hits, before.pool_hits);
  EXPECT_EQ(after.outstanding(), before.outstanding());
}

TEST(FramePool, AuditTripsOnInjectedLeakAndClearsAfterFree) {
  ASSERT_EQ(fp::stats().outstanding(), 0u)
      << "earlier test leaked a frame-pool block";
  void* leak = fp::allocate(128);
  audit::AuditReport report;
  fp::register_audits(report);
  report.run();
  EXPECT_FALSE(report.clean());
  bool mentioned = false;
  for (const auto& v : report.violations()) {
    if (v.message.find("frame pool") != std::string::npos) mentioned = true;
  }
  EXPECT_TRUE(mentioned);

  // Return the block: the pool really is empty again (and ASan sees no
  // leak at process exit).
  fp::deallocate(leak);
  audit::AuditReport clean_report;
  fp::register_audits(clean_report);
  clean_report.run();
  EXPECT_TRUE(clean_report.clean());
}

}  // namespace
