#include <gtest/gtest.h>

#include "model/bus.hpp"
#include "model/memcpy_model.hpp"
#include "model/nic_tlb.hpp"
#include "model/pipe.hpp"
#include "model/pipeline.hpp"
#include "model/regcache.hpp"
#include "model/switch.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mns;
using namespace mns::model;
using sim::Engine;
using sim::Task;
using sim::Time;

TEST(Pipe, SerializesAtConfiguredRate) {
  Engine eng;
  Pipe pipe(eng, 1e9);  // 1 GB/s => 1000 bytes = 1 us
  Time done;
  eng.spawn([](Engine& e, Pipe& p, Time& done) -> Task<> {
    co_await p.transfer(1000);
    done = e.now();
  }(eng, pipe, done));
  eng.run();
  EXPECT_EQ(done, Time::us(1));
  EXPECT_EQ(pipe.bytes_moved(), 1000u);
  EXPECT_EQ(pipe.transfers(), 1u);
}

TEST(Pipe, FixedCostAddsLatencyNotOccupancy) {
  Engine eng;
  Pipe pipe(eng, 1e9, Time::ns(500));
  std::vector<Time> done(2);
  auto xfer = [](Engine& e, Pipe& p, Time& out) -> Task<> {
    co_await p.transfer(1000);
    out = e.now();
  };
  eng.spawn(xfer(eng, pipe, done[0]));
  eng.spawn(xfer(eng, pipe, done[1]));
  eng.run();
  // First: 1us serialize + 0.5us fixed. Second queues behind the first's
  // serialization only (pipelined propagation): 2us + 0.5us.
  EXPECT_EQ(done[0], Time::ns(1500));
  EXPECT_EQ(done[1], Time::ns(2500));
}

TEST(Pipe, FifoQueueingUnderContention) {
  Engine eng;
  Pipe pipe(eng, 1e9);
  std::vector<int> order;
  auto xfer = [](Pipe& p, std::vector<int>& order, int id) -> Task<> {
    co_await p.transfer(100);
    order.push_back(id);
  };
  for (int i = 0; i < 5; ++i) eng.spawn(xfer(pipe, order, i));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(eng.now(), Time::ns(500));
  EXPECT_EQ(pipe.busy_time(), Time::ns(500));
}

TEST(Pipe, ZeroByteTransferPaysFixedCostOnly) {
  Engine eng;
  Pipe pipe(eng, 1e9, Time::ns(100));
  Time done;
  eng.spawn([](Engine& e, Pipe& p, Time& out) -> Task<> {
    co_await p.transfer(0);
    out = e.now();
  }(eng, pipe, done));
  eng.run();
  EXPECT_EQ(done, Time::ns(100));
}

TEST(HostBus, SharedBetweenDirections) {
  // Two simultaneous 1 MB DMAs (tx+rx) through one PCI-X bus take twice
  // the time of one: the bus is half-duplex.
  Engine eng;
  HostBus bus(eng, BusConfig{"test", 1e9, Time::zero()});
  Time done1, done2;
  auto dma = [](Engine& e, HostBus& b, Time& out) -> Task<> {
    co_await b.dma(1'000'000);
    out = e.now();
  };
  eng.spawn(dma(eng, bus, done1));
  eng.spawn(dma(eng, bus, done2));
  eng.run();
  EXPECT_EQ(done1, Time::ms(1));
  EXPECT_EQ(done2, Time::ms(2));
}

TEST(HostBus, PcixFasterThanPci) {
  const auto pcix = pcix_133();
  const auto pci = pci_66();
  EXPECT_GT(pcix.effective_bytes_per_second, 2 * pci.effective_bytes_per_second * 0.9);
  EXPECT_LT(pcix.effective_bytes_per_second, 1064e6);  // below theoretical
  EXPECT_LT(pci.effective_bytes_per_second, 532e6);
}

TEST(CrossbarSwitch, IndependentOutputPorts) {
  Engine eng;
  CrossbarSwitch sw(eng, SwitchConfig{8, 1e9, Time::ns(100)});
  Time done1, done2, done3;
  auto fwd = [](Engine& e, CrossbarSwitch& s, std::size_t dst,
                Time& out) -> Task<> {
    co_await s.forward(dst, 1000);
    out = e.now();
  };
  eng.spawn(fwd(eng, sw, 0, done1));
  eng.spawn(fwd(eng, sw, 1, done2));  // different port: no contention
  eng.spawn(fwd(eng, sw, 0, done3));  // same port: queues
  eng.run();
  EXPECT_EQ(done1, Time::ns(1100));
  EXPECT_EQ(done2, Time::ns(1100));
  EXPECT_EQ(done3, Time::ns(2100));
}

TEST(CrossbarSwitch, BadPortThrows) {
  Engine eng;
  CrossbarSwitch sw(eng, SwitchConfig{4, 1e9, Time::zero()});
  EXPECT_THROW(sw.port(4), std::out_of_range);
}

TEST(MemcpyModel, SmallCopiesAtCacheRate) {
  const MemcpyModel m(xeon_2003_memcpy());
  const auto cfg = m.config();
  const Time t = m.copy_time(1024);
  const Time expect = cfg.per_call + sim::transfer_time(1024, cfg.cached_rate);
  EXPECT_EQ(t, expect);
}

TEST(MemcpyModel, LargeCopiesDegrade) {
  const MemcpyModel m(xeon_2003_memcpy());
  const std::uint64_t large = 4 << 20;
  const double rate_large =
      static_cast<double>(large) / m.copy_time(large).to_seconds();
  const double rate_small =
      static_cast<double>(16384) / m.copy_time(16384).to_seconds();
  EXPECT_LT(rate_large, rate_small);
  EXPECT_LT(rate_large, m.config().dram_rate * 1.1);
}

TEST(RegistrationCache, HitIsFree) {
  RegistrationCache rc({Time::us(10), Time::us(1), Time::us(5), 4096,
                        64 << 20});
  const Time miss = rc.acquire(0x1000, 8192);
  EXPECT_EQ(miss, Time::us(10) + Time::us(1) * 2);
  const Time hit = rc.acquire(0x1000, 8192);
  EXPECT_EQ(hit, Time::zero());
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.misses(), 1u);
  EXPECT_EQ(rc.pinned_bytes(), 8192u);
}

TEST(RegistrationCache, SmallerRequestWithinRegionHits) {
  RegistrationCache rc({Time::us(10), Time::us(1), Time::us(5), 4096,
                        64 << 20});
  rc.acquire(0x1000, 16384);
  EXPECT_EQ(rc.acquire(0x1000, 4096), Time::zero());
}

TEST(RegistrationCache, GrowingRegionReRegisters) {
  RegistrationCache rc({Time::us(10), Time::us(1), Time::us(5), 4096,
                        64 << 20});
  rc.acquire(0x1000, 4096);
  const Time cost = rc.acquire(0x1000, 8192);
  EXPECT_EQ(cost, Time::us(5) + Time::us(10) + Time::us(1) * 2);
  EXPECT_EQ(rc.pinned_bytes(), 8192u);
}

TEST(RegistrationCache, LruEviction) {
  // Capacity of 2 pages: registering a third evicts the least recent.
  RegistrationCache rc({Time::us(10), Time::us(1), Time::us(5), 4096, 8192});
  rc.acquire(0xA000, 4096);
  rc.acquire(0xB000, 4096);
  rc.acquire(0xA000, 4096);            // refresh A
  rc.acquire(0xC000, 4096);            // evicts B
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_EQ(rc.acquire(0xA000, 4096), Time::zero());   // A still cached
  EXPECT_NE(rc.acquire(0xB000, 4096), Time::zero());   // B gone
}

TEST(RegistrationCache, ClearDropsEverything) {
  RegistrationCache rc({Time::us(10), Time::us(1), Time::us(5), 4096,
                        64 << 20});
  rc.acquire(0x1000, 4096);
  rc.clear();
  EXPECT_EQ(rc.pinned_bytes(), 0u);
  EXPECT_NE(rc.acquire(0x1000, 4096), Time::zero());
}

TEST(NicTlb, MissThenHit) {
  NicTlb tlb({4096, 16, Time::ns(500), Time::us(1)});
  const Time first = tlb.access(0x1000, 8192);  // 2 pages
  EXPECT_EQ(first, Time::us(1) + Time::ns(500) * 2);
  const Time second = tlb.access(0x1000, 8192);
  EXPECT_EQ(second, Time::zero());
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(NicTlb, CapacityEviction) {
  NicTlb tlb({4096, 2, Time::ns(500), Time::zero()});
  tlb.access(0x0000, 4096);
  tlb.access(0x1000, 4096);
  tlb.access(0x2000, 4096);                       // evicts page 0
  EXPECT_NE(tlb.access(0x0000, 4096), Time::zero());
}

TEST(NicTlb, PageSpanRounding) {
  NicTlb tlb({4096, 64, Time::ns(100), Time::zero()});
  // 1 byte crossing into a page counts that page.
  const Time t = tlb.access(4095, 2);  // touches pages 0 and 1
  EXPECT_EQ(t, Time::ns(200));
}

TEST(PipelinedTransfer, BandwidthSetBySlowestStage) {
  Engine eng;
  Pipe fast1(eng, 4e9), slow(eng, 1e9), fast2(eng, 4e9);
  Time done;
  eng.spawn([](Engine& e, Pipe& a, Pipe& b, Pipe& c, Time& out) -> Task<> {
    std::vector<Pipe*> stages{&a, &b, &c};
    co_await pipelined_transfer(e, stages, 1'000'000, 4096);
    out = e.now();
  }(eng, fast1, slow, fast2, done));
  eng.run();
  // ~1 ms through the 1 GB/s bottleneck, plus one packet's worth of
  // latency through the other stages.
  EXPECT_GT(done, Time::us(1000));
  EXPECT_LT(done, Time::us(1010));
}

TEST(PipelinedTransfer, SinglePacketSumsStages) {
  Engine eng;
  Pipe a(eng, 1e9), b(eng, 1e9);
  Time done;
  eng.spawn([](Engine& e, Pipe& a, Pipe& b, Time& out) -> Task<> {
    std::vector<Pipe*> stages{&a, &b};
    co_await pipelined_transfer(e, stages, 1000, 4096);
    out = e.now();
  }(eng, a, b, done));
  eng.run();
  EXPECT_EQ(done, Time::us(2));
}

TEST(PipelinedTransfer, ZeroBytesTraversesOnce) {
  Engine eng;
  Pipe a(eng, 1e9, Time::ns(100)), b(eng, 1e9, Time::ns(100));
  Time done;
  eng.spawn([](Engine& e, Pipe& a, Pipe& b, Time& out) -> Task<> {
    std::vector<Pipe*> stages{&a, &b};
    co_await pipelined_transfer(e, stages, 0, 4096);
    out = e.now();
  }(eng, a, b, done));
  eng.run();
  EXPECT_EQ(done, Time::ns(200));
}

TEST(PipelinedTransfer, TwoMessagesShareFairly) {
  // Two concurrent 1 MB messages through one bottleneck finish in ~2x the
  // single-message time, and neither starves.
  Engine eng;
  Pipe stage(eng, 1e9);
  Time done1, done2;
  auto send = [](Engine& e, Pipe& s, Time& out) -> Task<> {
    std::vector<Pipe*> stages{&s};
    co_await pipelined_transfer(e, stages, 1'000'000, 4096);
    out = e.now();
  };
  eng.spawn(send(eng, stage, done1));
  eng.spawn(send(eng, stage, done2));
  eng.run();
  // Packets interleave, so both finish near 2 ms.
  EXPECT_GT(done1, Time::us(1990));
  EXPECT_LE(done1, Time::us(2005));
  EXPECT_GT(done2, Time::us(1990));
  EXPECT_LE(done2, Time::us(2005));
}

}  // namespace
