// Collective semantics and shapes across the three devices.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::Dtype;
using mpi::ROp;
using mpi::View;
using sim::Task;
using sim::Time;

class CollAllNets : public ::testing::TestWithParam<Net> {};

INSTANTIATE_TEST_SUITE_P(AllNets, CollAllNets,
                         ::testing::Values(Net::kInfiniBand, Net::kMyrinet,
                                           Net::kQuadrics),
                         [](const auto& info) {
                           switch (info.param) {
                             case Net::kInfiniBand: return "IBA";
                             case Net::kMyrinet: return "Myri";
                             case Net::kQuadrics: return "QSN";
                           }
                           return "?";
                         });

TEST_P(CollAllNets, BarrierAlignsRanks) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<double> after(8, 0);
  c.run([&after](Comm& comm) -> Task<> {
    // Stagger arrivals; everyone must leave at/after the last arrival.
    co_await comm.compute(comm.rank() * 10e-6);
    co_await comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.wtime();
  });
  const double last_arrival = 70e-6;
  for (double t : after) EXPECT_GE(t, last_arrival);
  // Everyone leaves within a few tens of microseconds of each other.
  const auto [lo, hi] = std::minmax_element(after.begin(), after.end());
  EXPECT_LT(*hi - *lo, 60e-6);
}

TEST_P(CollAllNets, BcastDeliversData) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::vector<int>> got(8, std::vector<int>(64, -1));
  c.run([&got](Comm& comm) -> Task<> {
    auto& mine = got[static_cast<std::size_t>(comm.rank())];
    if (comm.rank() == 2) {
      std::iota(mine.begin(), mine.end(), 500);
    }
    co_await comm.bcast(View::out(mine.data(), mine.size() * 4), 2);
  });
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 64; ++i) EXPECT_EQ(got[r][i], 500 + i) << r;
  }
}

TEST_P(CollAllNets, AllreduceSums) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::vector<double>> bufs(8, std::vector<double>(16));
  c.run([&bufs](Comm& comm) -> Task<> {
    auto& b = bufs[static_cast<std::size_t>(comm.rank())];
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = comm.rank() + static_cast<double>(i);
    }
    co_await comm.allreduce(View::out(b.data(), b.size() * 8), b.size(),
                            Dtype::kDouble, ROp::kSum);
  });
  // sum over ranks of (r + i) = 28 + 8i
  for (int r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_DOUBLE_EQ(bufs[r][i], 28.0 + 8.0 * static_cast<double>(i)) << r;
    }
  }
}

TEST_P(CollAllNets, AllreduceMaxMin) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int64_t> maxes(4), mins(4);
  c.run([&](Comm& comm) -> Task<> {
    std::int64_t v = 10 * (comm.rank() + 1);
    co_await comm.allreduce(View::out(&v, 8), 1, Dtype::kInt64, ROp::kMax);
    maxes[static_cast<std::size_t>(comm.rank())] = v;
    std::int64_t w = 10 * (comm.rank() + 1);
    co_await comm.allreduce(View::out(&w, 8), 1, Dtype::kInt64, ROp::kMin);
    mins[static_cast<std::size_t>(comm.rank())] = w;
  });
  for (auto v : maxes) EXPECT_EQ(v, 40);
  for (auto v : mins) EXPECT_EQ(v, 10);
}

TEST_P(CollAllNets, ReduceToRoot) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::int32_t at_root = -1;
  c.run([&at_root](Comm& comm) -> Task<> {
    std::int32_t v = 1 << comm.rank();
    co_await comm.reduce(View::out(&v, 4), 1, Dtype::kInt32, ROp::kSum, 3);
    if (comm.rank() == 3) at_root = v;
  });
  EXPECT_EQ(at_root, 255);
}

TEST_P(CollAllNets, AlltoallPermutesBlocks) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::vector<std::int32_t>> got(4, std::vector<std::int32_t>(4));
  c.run([&got](Comm& comm) -> Task<> {
    const int p = comm.size();
    std::vector<std::int32_t> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) send[d] = 100 * comm.rank() + d;
    auto& recv = got[static_cast<std::size_t>(comm.rank())];
    co_await comm.alltoall(View::in(send.data(), send.size() * 4),
                           View::out(recv.data(), recv.size() * 4), 4);
  });
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(got[r][s], 100 * s + r) << "rank " << r << " from " << s;
    }
  }
}

TEST_P(CollAllNets, AllgatherCollectsAll) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::vector<std::int32_t>> got(8, std::vector<std::int32_t>(8));
  c.run([&got](Comm& comm) -> Task<> {
    std::int32_t mine = comm.rank() * 7;
    auto& recv = got[static_cast<std::size_t>(comm.rank())];
    co_await comm.allgather(View::in(&mine, 4),
                            View::out(recv.data(), recv.size() * 4), 4);
  });
  for (int r = 0; r < 8; ++r) {
    for (int s = 0; s < 8; ++s) EXPECT_EQ(got[r][s], s * 7) << r;
  }
}

TEST_P(CollAllNets, GatherScatterRoundTrip) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int32_t> scattered(4, -1);
  c.run([&scattered](Comm& comm) -> Task<> {
    const int p = comm.size();
    std::vector<std::int32_t> gathered(static_cast<std::size_t>(p), -1);
    std::int32_t mine = comm.rank() + 1;
    co_await comm.gather(View::in(&mine, 4),
                         View::out(gathered.data(), gathered.size() * 4), 4,
                         0);
    if (comm.rank() == 0) {
      for (auto& g : gathered) g *= 2;
    }
    std::int32_t back = -1;
    co_await comm.scatter(View::in(gathered.data(), gathered.size() * 4),
                          View::out(&back, 4), 4, 0);
    scattered[static_cast<std::size_t>(comm.rank())] = back;
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(scattered[r], 2 * (r + 1));
}

TEST_P(CollAllNets, ReduceScatterBlock) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int32_t> got(4, -1);
  c.run([&got](Comm& comm) -> Task<> {
    const int p = comm.size();
    std::vector<std::int32_t> buf(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) buf[i] = comm.rank() + i;
    std::int32_t out = -1;
    co_await comm.reduce_scatter_block(View::out(buf.data(), buf.size() * 4),
                                       1, Dtype::kInt32, ROp::kSum,
                                       View::out(&out, 4));
    got[static_cast<std::size_t>(comm.rank())] = out;
  });
  // sum over ranks of (r + i) = 6 + 4i for block i.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], 6 + 4 * i);
}

TEST_P(CollAllNets, CollectivesWorkWithSyntheticViews) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  c.run([](Comm& comm) -> Task<> {
    co_await comm.barrier();
    co_await comm.bcast(View::synth(0x100, 4096), 0);
    co_await comm.allreduce(View::synth(0x200, 64), 8, Dtype::kDouble,
                            ROp::kSum);
    co_await comm.alltoall(View::synth(0x300, 8 * 1024),
                           View::synth(0x400, 8 * 1024), 1024);
  });
}

TEST_P(CollAllNets, OddRankCountWorks) {
  // Non-power-of-two process counts exercise the tree-edge cases.
  ClusterConfig cfg{.nodes = 5, .net = GetParam()};
  Cluster c(cfg);
  std::vector<double> sums(5, 0);
  c.run([&sums](Comm& comm) -> Task<> {
    co_await comm.barrier();
    double v = comm.rank() + 1.0;
    co_await comm.allreduce(View::out(&v, 8), 1, Dtype::kDouble, ROp::kSum);
    sums[static_cast<std::size_t>(comm.rank())] = v;
    co_await comm.barrier();
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 15.0);
}

TEST(CollectiveLatency, QuadricsAllreduceBeatsIB) {
  // Paper Fig. 12: small-message Allreduce is Quadrics' strength (hardware
  // broadcast), InfiniBand the slowest of the three.
  auto time_allreduce = [](Net net) {
    ClusterConfig cfg{.nodes = 8, .net = net};
    Cluster c(cfg);
    double us = 0;
    c.run([&us](Comm& comm) -> Task<> {
      co_await comm.barrier();
      const int iters = 50;
      double v = 1.0;
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        co_await comm.allreduce(View::out(&v, 8), 1, Dtype::kDouble,
                                ROp::kSum);
      }
      if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
    });
    return us;
  };
  const double ib = time_allreduce(Net::kInfiniBand);
  const double qsn = time_allreduce(Net::kQuadrics);
  EXPECT_LT(qsn, ib);
}

TEST(CollectiveLatency, IBAlltoallBeatsQuadrics) {
  // Paper Fig. 11: Alltoall is host-overhead-bound; Quadrics' expensive
  // descriptor posting makes it worst, InfiniBand best.
  auto time_alltoall = [](Net net) {
    ClusterConfig cfg{.nodes = 8, .net = net};
    Cluster c(cfg);
    double us = 0;
    c.run([&us](Comm& comm) -> Task<> {
      co_await comm.barrier();
      const int iters = 50;
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        co_await comm.alltoall(View::synth(0x1000, 8 * 16),
                               View::synth(0x9000, 8 * 16), 16);
      }
      if (comm.rank() == 0) us = (comm.wtime() - t0) / iters * 1e6;
    });
    return us;
  };
  const double ib = time_alltoall(Net::kInfiniBand);
  const double qsn = time_alltoall(Net::kQuadrics);
  EXPECT_LT(ib, qsn);
}

}  // namespace
