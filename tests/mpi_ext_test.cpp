// Extended MPI API: probe/iprobe, ssend, scan, gatherv/scatterv.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Task;

class ExtAllNets : public ::testing::TestWithParam<Net> {};

INSTANTIATE_TEST_SUITE_P(AllNets, ExtAllNets,
                         ::testing::Values(Net::kInfiniBand, Net::kMyrinet,
                                           Net::kQuadrics),
                         [](const auto& info) {
                           switch (info.param) {
                             case Net::kInfiniBand: return "IBA";
                             case Net::kMyrinet: return "Myri";
                             case Net::kQuadrics: return "QSN";
                           }
                           return "?";
                         });

TEST_P(ExtAllNets, ProbeThenRecvBySize) {
  // The classic probe use: learn the size, then size the receive buffer.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int32_t> got;
  c.run([&got](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      std::vector<std::int32_t> data(37);
      std::iota(data.begin(), data.end(), 5);
      co_await comm.send(View::in(data.data(), data.size() * 4), 1, 9);
    } else {
      const auto st = co_await comm.probe(0, 9);
      EXPECT_EQ(st.bytes, 37u * 4);
      got.resize(st.bytes / 4);
      co_await comm.recv(View::out(got.data(), st.bytes), 0, 9);
    }
  });
  ASSERT_EQ(got.size(), 37u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<std::int32_t>(i) + 5);
  }
}

TEST_P(ExtAllNets, IprobeSeesArrivalOnlyAfterDelivery) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  bool before = true, after = false;
  c.run([&](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      co_await comm.compute(50e-6);
      int v = 1;
      co_await comm.send(View::in(&v, 4), 1, 3);
    } else {
      before = comm.iprobe(0, 3);  // nothing sent yet
      co_await comm.compute(500e-6);
      after = comm.iprobe(0, 3);  // message waiting by now
      int v = 0;
      co_await comm.recv(View::out(&v, 4), 0, 3);
      EXPECT_FALSE(comm.iprobe(0, 3));  // consumed
    }
  });
  EXPECT_FALSE(before);
  EXPECT_TRUE(after);
}

TEST_P(ExtAllNets, SsendWaitsForReceiver) {
  // A small ssend must NOT complete before the receiver shows up —
  // unlike a buffered eager send.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  double send_done = 0, recv_posted_at = 0;
  c.run([&](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      int v = 7;
      co_await comm.ssend(View::in(&v, 4), 1, 0);
      send_done = comm.wtime();
    } else {
      co_await comm.compute(300e-6);  // make the sender wait
      recv_posted_at = comm.wtime();
      int v = 0;
      co_await comm.recv(View::out(&v, 4), 0, 0);
      EXPECT_EQ(v, 7);
    }
  });
  EXPECT_GE(send_done, recv_posted_at);
  EXPECT_GT(send_done, 290e-6);
}

TEST_P(ExtAllNets, PlainSmallSendDoesNotWait) {
  // Contrast with ssend: the eager path buffers and returns early.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  double send_done = 1.0;
  c.run([&](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      int v = 7;
      co_await comm.send(View::in(&v, 4), 1, 0);
      send_done = comm.wtime();
    } else {
      co_await comm.compute(300e-6);
      int v = 0;
      co_await comm.recv(View::out(&v, 4), 0, 0);
    }
  });
  EXPECT_LT(send_done, 100e-6);
}

TEST_P(ExtAllNets, ScanComputesPrefixSums) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int64_t> got(8, -1);
  c.run([&got](Comm& comm) -> Task<> {
    std::int64_t v = comm.rank() + 1;
    co_await comm.scan(View::out(&v, 8), 1, mpi::Dtype::kInt64,
                       mpi::ROp::kSum);
    got[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(got[r], static_cast<std::int64_t>(r + 1) * (r + 2) / 2);
  }
}

TEST_P(ExtAllNets, GathervVariableBlocks) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int32_t> at_root;
  c.run([&at_root](Comm& comm) -> Task<> {
    const int p = comm.size();
    // Rank r contributes r+1 ints of value r.
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p));
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[r] = static_cast<std::uint64_t>(r + 1) * 4;
      total += counts[r];
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   comm.rank());
    std::vector<std::int32_t> all(total / 4, -1);
    co_await comm.gatherv(View::in(mine.data(), mine.size() * 4),
                          View::out(all.data(), total), counts, 2);
    if (comm.rank() == 2) at_root = all;
  });
  // Layout: [0][1,1][2,2,2][3,3,3,3]
  const std::vector<std::int32_t> expect{0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  EXPECT_EQ(at_root, expect);
}

TEST_P(ExtAllNets, ScattervRoundTripsGatherv) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<std::int32_t> received(4, -1);
  c.run([&received](Comm& comm) -> Task<> {
    const int p = comm.size();
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(p), 4);
    std::vector<std::int32_t> all{10, 11, 12, 13};
    std::int32_t mine = -1;
    co_await comm.scatterv(View::in(all.data(), 16), counts,
                           View::out(&mine, 4), 0);
    received[static_cast<std::size_t>(comm.rank())] = mine;
  });
  EXPECT_EQ(received, (std::vector<std::int32_t>{10, 11, 12, 13}));
}

TEST_P(ExtAllNets, ProbeWithWildcards) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  int probed_source = -1;
  c.run([&](Comm& comm) -> Task<> {
    if (comm.rank() == 3) {
      const auto st = co_await comm.probe(mpi::kAnySource, mpi::kAnyTag);
      probed_source = st.source;
      int v = 0;
      co_await comm.recv(View::out(&v, 4), st.source, st.tag);
      EXPECT_EQ(v, st.source * 11);
    } else if (comm.rank() == 1) {
      int v = 11;
      co_await comm.send(View::in(&v, 4), 3, 77);
    }
  });
  EXPECT_EQ(probed_source, 1);
}

}  // namespace
